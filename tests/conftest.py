"""Shared fixtures.

Training fixtures are session-scoped and deliberately small: the goal is
exercising every code path, not reproducing the paper's numbers (the
benchmarks do that).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.model import SequenceClassifier
from repro.nn.trainer import Trainer, TrainingConfig
from repro.ransomware.dataset import build_dataset

#: Shorter than the paper's 100 to keep per-test inference cheap, but
#: long enough that windows carry usable temporal signal.
TEST_SEQUENCE_LENGTH = 60


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small but class-balanced synthetic dataset (shared, read-only)."""
    return build_dataset(scale=0.04, sequence_length=TEST_SEQUENCE_LENGTH, seed=7)


@pytest.fixture(scope="session")
def tiny_split(tiny_dataset):
    return tiny_dataset.train_test_split(test_fraction=0.25, seed=0)


@pytest.fixture(scope="session")
def trained_model(tiny_split):
    """A classifier trained well enough to be clearly better than chance."""
    train, test = tiny_split
    model = SequenceClassifier(seed=0)
    trainer = Trainer(
        model,
        TrainingConfig(epochs=10, batch_size=32, learning_rate=0.005, eval_every=5,
                       restore_best_weights=True),
    )
    trainer.fit(train.sequences, train.labels, test.sequences, test.labels)
    return model


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
