"""Shared fixtures.

Training fixtures are session-scoped and deliberately small: the goal is
exercising every code path, not reproducing the paper's numbers (the
benchmarks do that).
"""

from __future__ import annotations

import numpy as np
import pytest

from tests.reference import (
    REFERENCE_SEQUENCE_LENGTH,
    build_reference_dataset,
    build_reference_split,
    train_reference_model,
)

#: Kept as the historical name; the value lives in ``tests.reference``
#: because the golden-score tooling must use the identical recipe.
TEST_SEQUENCE_LENGTH = REFERENCE_SEQUENCE_LENGTH


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small but class-balanced synthetic dataset (shared, read-only)."""
    return build_reference_dataset()


@pytest.fixture(scope="session")
def tiny_split(tiny_dataset):
    return build_reference_split(tiny_dataset)


@pytest.fixture(scope="session")
def trained_model(tiny_split):
    """A classifier trained well enough to be clearly better than chance.

    Built by :func:`tests.reference.train_reference_model` — the same
    recipe the golden detector scores are pinned against.
    """
    train, test = tiny_split
    return train_reference_model(train, test)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
