"""The reference training recipe shared by fixtures and golden tooling.

The golden detector-regression test pins exact probabilities, so the
session fixtures in ``tests/conftest.py``, the golden test itself, and
``scripts/refresh_golden_scores.py`` must all build the *same* model
from the same dataset, split, seeds, and trainer settings.  That recipe
lives here, in exactly one place.  If you change anything in this
module, regenerate the golden file:

.. code-block:: bash

    PYTHONPATH=src python scripts/refresh_golden_scores.py
"""

from __future__ import annotations

from repro.core.config import OptimizationLevel
from repro.core.engine import engine_at_level
from repro.nn.model import SequenceClassifier
from repro.nn.trainer import Trainer, TrainingConfig
from repro.ransomware.dataset import build_dataset
from repro.ransomware.detector import RansomwareDetector

#: Shorter than the paper's 100 to keep per-test inference cheap, but
#: long enough that windows carry usable temporal signal.
REFERENCE_SEQUENCE_LENGTH = 60

#: How many held-out sequences the golden file pins per optimisation
#: level.  Small on purpose: the point is catching numerical drift, not
#: measuring accuracy (the benchmarks do that).
GOLDEN_SAMPLE_COUNT = 10


def build_reference_dataset():
    """The small class-balanced synthetic dataset the recipe starts from."""
    return build_dataset(
        scale=0.04, sequence_length=REFERENCE_SEQUENCE_LENGTH, seed=7
    )


def build_reference_split(dataset=None):
    """The train/test split every reference artefact derives from."""
    if dataset is None:
        dataset = build_reference_dataset()
    return dataset.train_test_split(test_fraction=0.25, seed=0)


def train_reference_model(train_split, test_split) -> SequenceClassifier:
    """Train the reference classifier (deterministic: seeds pinned)."""
    model = SequenceClassifier(seed=0)
    trainer = Trainer(
        model,
        TrainingConfig(epochs=10, batch_size=32, learning_rate=0.005,
                       eval_every=5, restore_best_weights=True),
    )
    trainer.fit(train_split.sequences, train_split.labels,
                test_split.sequences, test_split.labels)
    return model


# ----------------------------------------------------------------------
# Generalisation (leave-k-families-out) golden recipe
# ----------------------------------------------------------------------

#: The pinned harness run behind
#: ``tests/integration/golden/generalization_recall.json``: one
#: leave-2-out fold of every modality, evaluated at every
#: OptimizationLevel.  Small on purpose — the committed
#: ``BENCH_generalization.json`` carries the full partition.
def reference_generalization_config():
    from repro.ransomware.generalization import GeneralizationConfig

    return GeneralizationConfig(
        modalities=("api", "block_io", "filesystem"),
        held_out_per_fold=2,
        folds=1,
        scale=0.02,
        sequence_length=REFERENCE_SEQUENCE_LENGTH,
        seed=7,
        epochs=4,
        optimizations=tuple(OptimizationLevel),
    )


def golden_generalization_recall() -> dict:
    """Held-out recall per (modality, level, family) for the pinned run.

    Returns a JSON-able mapping ``modality -> level ->
    {held_out_recall, recall_gap, per_family}`` plus the fold's held-out
    family list under ``"_held_out"``.
    """
    from repro.ransomware.generalization import evaluate_generalization

    report = evaluate_generalization(reference_generalization_config())
    recall: dict = {"_held_out": sorted(report.fold_sets[0])}
    for result in report.modalities:
        (fold,) = result.folds
        recall[result.modality] = {
            metrics.optimization: {
                "held_out_recall": metrics.held_out_recall,
                "recall_gap": metrics.recall_gap,
                "per_family": dict(sorted(metrics.per_family_recall.items())),
            }
            for metrics in fold.levels
        }
    return recall


def golden_detector_scores(model, test_split, backend: str = "reference") -> dict:
    """Detector probabilities per optimisation level on the pinned subset.

    Each pinned sequence is streamed through a fresh
    :class:`~repro.ransomware.detector.RansomwareDetector` (stride 1), so
    every score travels the full deployed path: buffer fill, window
    formation, CSD engine inference.  ``backend`` selects the kernel
    backend under test; every registered backend must reproduce the
    golden scores bit-exactly.
    """
    sequences = test_split.sequences[:GOLDEN_SAMPLE_COUNT]
    scores: dict = {}
    for level in OptimizationLevel:
        engine = engine_at_level(
            model, level, sequence_length=REFERENCE_SEQUENCE_LENGTH,
            backend=backend,
        )
        detector = RansomwareDetector(engine)
        level_scores = []
        for sequence in sequences:
            report = detector.scan_trace(
                [int(t) for t in sequence], stop_at_first=False
            )
            assert len(report.verdicts) == 1
            level_scores.append(report.verdicts[0].probability)
        scores[level.name] = level_scores
    return scores
