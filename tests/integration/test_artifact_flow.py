"""Cross-surface integration: every artefact boundary in one flow.

dataset → CSV → (reload) → train → weight file → engine → detector, with
consistency asserted at each hand-off.  This is the flow an operator who
never touches the Python API (only files + CLI) would exercise.
"""

import numpy as np
import pytest

from repro.core.engine import CSDInferenceEngine
from repro.nn.model import SequenceClassifier
from repro.nn.serialization import dump_weights
from repro.nn.trainer import Trainer, TrainingConfig
from repro.ransomware.dataset import load_csv, save_csv
from repro.ransomware.detector import RansomwareDetector


@pytest.fixture(scope="module")
def flow(tmp_path_factory, tiny_dataset):
    """Run the whole artefact chain once; tests inspect the pieces."""
    root = tmp_path_factory.mktemp("flow")
    csv_path = root / "dataset.csv"
    weights_path = root / "weights.txt"

    save_csv(tiny_dataset, csv_path)
    reloaded = load_csv(csv_path)

    train, test = reloaded.train_test_split(0.25, seed=3)
    model = SequenceClassifier(seed=3)
    history = Trainer(
        model,
        TrainingConfig(epochs=5, eval_every=5, learning_rate=0.005,
                       restore_best_weights=True),
    ).fit(train.sequences, train.labels, test.sequences, test.labels)
    dump_weights(model, weights_path)

    engine = CSDInferenceEngine.from_weight_file(
        str(weights_path), sequence_length=reloaded.sequence_length
    )
    detector = RansomwareDetector(engine)
    return {
        "original": tiny_dataset,
        "reloaded": reloaded,
        "model": model,
        "history": history,
        "engine": engine,
        "detector": detector,
        "test": test,
    }


class TestArtifactFlow:
    def test_csv_preserves_content(self, flow):
        np.testing.assert_array_equal(
            flow["reloaded"].sequences, flow["original"].sequences
        )
        np.testing.assert_array_equal(
            flow["reloaded"].labels, flow["original"].labels
        )

    def test_training_on_reloaded_data_converges(self, flow):
        assert flow["history"].peak.test_accuracy > 0.85

    def test_weight_file_engine_matches_model_decisions(self, flow):
        sample = flow["test"].subset(np.arange(min(40, len(flow["test"]))))
        model_pred = flow["model"].predict(sample.sequences)
        engine_pred = flow["engine"].predict(sample.sequences)
        assert float(np.mean(model_pred == engine_pred)) >= 0.95

    def test_detector_evaluation_consistent(self, flow):
        sample = flow["test"].subset(np.arange(min(60, len(flow["test"]))))
        metrics = flow["detector"].evaluate(sample)
        assert metrics["accuracy"] > 0.75

    def test_engine_dimensions_inferred_from_artifacts(self, flow):
        dims = flow["engine"].config.dimensions
        assert dims.vocab_size == 278
        assert dims.sequence_length == flow["reloaded"].sequence_length
