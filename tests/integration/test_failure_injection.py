"""Failure-injection integration tests.

Dependability checks: what the inference stack does when the substrate
misbehaves — SEU bit flips in weight buffers, DMA failures on the P2P
path, AXI stalls — and that the detector's behaviour degrades loudly or
recoverably, never silently wrong by construction.
"""

import numpy as np
import pytest

from repro.core.config import OptimizationLevel
from repro.core.engine import engine_at_level
from repro.hw.axi import TransferError
from repro.hw.faults import AxiStallFault, BitFlipFault, DmaErrorFault, FaultPlan, retry_dma
from tests.conftest import TEST_SEQUENCE_LENGTH


@pytest.fixture
def engine(trained_model):
    return engine_at_level(
        trained_model, OptimizationLevel.FIXED_POINT,
        sequence_length=TEST_SEQUENCE_LENGTH,
    )


class TestBitFlips:
    def test_low_bit_flip_in_embedding_is_negligible(self, engine, rng):
        sequence = rng.integers(0, 278, size=TEST_SEQUENCE_LENGTH)
        clean = engine.infer_sequence(sequence).probability
        fault = BitFlipFault(element_index=3, bit=2)  # flips ~4e-6 of value
        corrupted = fault.corrupt(engine.quantized.embedding)
        engine.preprocess._embedding_fixed = corrupted
        dirty = engine.infer_sequence(sequence).probability
        assert dirty == pytest.approx(clean, abs=0.01)

    def test_high_bit_flip_can_change_output(self, engine, rng):
        sequence = rng.integers(0, 278, size=TEST_SEQUENCE_LENGTH)
        clean = engine.infer_sequence(sequence).probability
        # Flip a high bit of an embedding row the sequence actually uses.
        token = int(sequence[0])
        embedding_dim = engine.config.dimensions.embedding_dim
        fault = BitFlipFault(element_index=token * embedding_dim, bit=40)
        corrupted = fault.corrupt(engine.quantized.embedding)
        engine.preprocess._embedding_fixed = corrupted
        dirty = engine.infer_sequence(sequence).probability
        # A 2^40-scaled perturbation (~1e6 after descaling) must visibly
        # move the output; silent masking would hide SEUs from scrubbing.
        assert abs(dirty - clean) > 1e-6

    def test_scrubbing_restores_output(self, engine, rng):
        sequence = rng.integers(0, 278, size=TEST_SEQUENCE_LENGTH)
        clean = engine.infer_sequence(sequence).probability
        pristine = engine.quantized.embedding
        engine.preprocess._embedding_fixed = BitFlipFault(bit=45).corrupt(pristine)
        engine.infer_sequence(sequence)
        # Scrub: re-load from the host's copy (the paper's host program
        # retains the weight file).
        engine.preprocess._embedding_fixed = pristine
        assert engine.infer_sequence(sequence).probability == clean


class TestDmaFailures:
    def test_transient_dma_failure_recovers_with_retry(self):
        plan = FaultPlan(dma_error=DmaErrorFault(failures=1))
        assert retry_dma(plan, attempts=3) == 2

    def test_persistent_dma_failure_surfaces(self):
        plan = FaultPlan(dma_error=DmaErrorFault(failures=10))
        with pytest.raises(TransferError):
            retry_dma(plan, attempts=3)

    def test_detection_pipeline_survives_transient_dma(self, engine, rng):
        """A transient P2P failure delays but does not corrupt detection."""
        plan = FaultPlan(dma_error=DmaErrorFault(failures=2))
        attempts = retry_dma(plan, attempts=4)
        assert attempts == 3
        sequence = rng.integers(0, 278, size=TEST_SEQUENCE_LENGTH)
        result = engine.infer_sequence(sequence)
        assert 0.0 <= result.probability <= 1.0


class TestAxiStalls:
    def test_stalls_add_latency_not_errors(self):
        fault = AxiStallFault(period=2, extra_cycles=100)
        plan = FaultPlan(axi_stall=fault)
        total_penalty = sum(plan.extra_transfer_cycles() for _ in range(10))
        assert total_penalty == 5 * 100

    def test_stalled_transfer_cycles_monotone(self):
        from repro.hw.axi import AxiMasterPort

        port = AxiMasterPort(name="p")
        plan = FaultPlan(axi_stall=AxiStallFault(period=1, extra_cycles=50))
        base = port.read_cycles(64)
        stalled = port.read_cycles(64) + plan.extra_transfer_cycles()
        assert stalled == base + 50
