"""Executable abstract: every headline claim of the paper, as a test.

Each test names the claim (with its section) and asserts the shape-level
version at test scale; the benchmarks reproduce the precise numbers.
"""

import numpy as np
import pytest

from repro.baselines.cpu import CpuInferenceBaseline
from repro.baselines.gpu import GpuInferenceBaseline
from repro.core.config import EngineConfig, OptimizationLevel
from repro.core.engine import CSDInferenceEngine, engine_at_level
from repro.core.timing import optimization_sweep
from repro.core.weights import HostWeights
from repro.hw.power import A100_GPU_POWER, SMARTSSD_FPGA_POWER, XEON_CPU_POWER
from tests.conftest import TEST_SEQUENCE_LENGTH


class TestAbstractClaims:
    def test_claim_csd_surpasses_gpu_by_orders_of_magnitude(self, trained_model):
        """Abstract: 'surpasses the inference speed of a high-performance
        GPU by 344.6x'."""
        weights = HostWeights.from_model(trained_model)
        engine = engine_at_level(
            trained_model, OptimizationLevel.FIXED_POINT, sequence_length=100
        )
        fpga_us = engine.per_item_microseconds()
        gpu_us = GpuInferenceBaseline(weights).sample_per_item_latencies(2000).mean()
        cpu_us = CpuInferenceBaseline(weights).sample_per_item_latencies(2000).mean()
        assert 250 < gpu_us / fpga_us < 450
        assert cpu_us > gpu_us > fpga_us

    def test_claim_high_detection_quality(self, trained_model, tiny_split):
        """Abstract: 'detect ransomware with high accuracy, precision,
        recall, and F1 scores'."""
        _, test = tiny_split
        engine = engine_at_level(
            trained_model, OptimizationLevel.FIXED_POINT,
            sequence_length=TEST_SEQUENCE_LENGTH,
        )
        from repro.nn.metrics import classification_report

        sample = test.subset(np.arange(min(150, len(test))))
        metrics = classification_report(
            engine.predict(sample.sequences), sample.labels
        )
        for name, value in metrics.items():
            assert value > 0.85, name


class TestSection3Claims:
    def test_claim_fpga_structure_independent_of_weights(self, trained_model):
        """§III-A: the FPGA implementation 'remains fixed regardless of
        changes in the number of parameters or embeddings trained' —
        reloading different weights needs no re-placement."""
        engine = engine_at_level(
            trained_model, OptimizationLevel.FIXED_POINT,
            sequence_length=TEST_SEQUENCE_LENGTH,
        )
        placements_before = set(engine.device.placements)
        from repro.nn.model import SequenceClassifier

        other = SequenceClassifier(seed=99)
        engine.device.ddr.banks[0].free_all()
        engine.load_weights(HostWeights.from_model(other))
        assert set(engine.device.placements) == placements_before

    def test_claim_gates_time_is_max_over_cus(self):
        """§IV: 'the execution time of the gate operations is equivalent
        to the maximum execution time of each of the four CUs'."""
        engine = CSDInferenceEngine.build_unloaded(
            EngineConfig(optimization=OptimizationLevel.VANILLA)
        )
        single = engine.gates._single_gate_timing()
        stage = engine.gates.timing()
        assert stage.reported_cycles == single.reported_cycles  # max, not sum

    def test_claim_softsign_avoids_exp(self):
        """§III-D: softsign 'provides computational efficiency by
        avoiding the exp() operation'."""
        from repro.hw.hls import FLOAT_OPS

        softsign_cost = FLOAT_OPS["add"].depth + FLOAT_OPS["div"].depth
        tanh_cost = FLOAT_OPS["exp"].depth + 2 * FLOAT_OPS["add"].depth + FLOAT_OPS["div"].depth
        assert softsign_cost < tanh_cost

    def test_claim_conservative_two_ddr_banks(self):
        """§III-C: 'utilizes a conservative two DDR banks' while the u200
        supports four."""
        config = EngineConfig()
        assert config.ddr_banks == 2
        assert config.fpga_part.ddr_banks == 4

    def test_claim_scale_factor_preserves_significant_digits(self):
        """§III-D: multiply by 10^6, round, 'preserving significant
        digits'."""
        from repro.fixedpoint.qformat import PAPER_QFORMAT

        values = np.array([0.123456789, -0.000321987, 0.999999])
        recovered = PAPER_QFORMAT.dequantize(PAPER_QFORMAT.quantize(values))
        np.testing.assert_allclose(recovered, values, atol=5e-7)


class TestSection4Claims:
    def test_claim_optimisations_cut_inference_to_a_third(self):
        """§IV: '7.153 us was decreased to roughly 2.15133 us'."""
        sweep = optimization_sweep()
        ratio = sweep["VANILLA"]["total"] / sweep["FIXED_POINT"]["total"]
        assert 2.8 < ratio < 3.9

    def test_claim_fpga_emulation_is_deterministic(self, trained_model, rng):
        """§IV: the FPGA row's CI is 'N/A' because hardware emulation is
        deterministic — repeated runs give identical timing."""
        engine = engine_at_level(
            trained_model, OptimizationLevel.FIXED_POINT,
            sequence_length=TEST_SEQUENCE_LENGTH,
        )
        sequence = rng.integers(0, 278, size=TEST_SEQUENCE_LENGTH)
        times = {
            engine.infer_sequence(sequence).timing.sequence_cycles
            for _ in range(5)
        }
        assert len(times) == 1


class TestIntroductionClaims:
    def test_claim_low_power_processing(self):
        """§I: 'lower-power processing capability of CSDs, compared to
        high-performance CPUs and GPUs'."""
        assert SMARTSSD_FPGA_POWER.active_watts <= XEON_CPU_POWER.active_watts / 2
        assert SMARTSSD_FPGA_POWER.active_watts <= A100_GPU_POWER.active_watts / 10

    def test_claim_bypass_cpu_via_p2p(self):
        """§II: P2P 'drastically reduces PCIe traffic and CPU overhead'."""
        from repro.hw.smartssd import SmartSSD

        device = SmartSSD()
        num_bytes = 1 << 20
        saving = device.switch.p2p_savings_seconds(num_bytes)
        p2p = device.switch.p2p_transfer_seconds(num_bytes)
        assert saving > p2p  # host route costs more than 2x the P2P route

    def test_claim_generalises_beyond_ransomware(self, rng):
        """§I: the methodology 'can generalize to any number of data
        center tasks' — the engine accepts any vocabulary/dimensions."""
        from repro.nn.model import SequenceClassifier

        model = SequenceClassifier(vocab_size=12, embedding_dim=4, hidden_size=8, seed=0)
        engine = CSDInferenceEngine.from_model(model, sequence_length=10)
        probability = engine.infer_sequence(rng.integers(0, 12, size=10)).probability
        assert 0.0 <= probability <= 1.0
