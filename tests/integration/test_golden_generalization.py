"""Golden regression on leave-k-families-out recall.

Pins the held-out per-family recall and the recall gap of the reference
generalisation run (``tests/reference.py``) for every modality at every
optimisation level.  Drift here means the trace synthesis, the
adapters, the dataset protocol, the training recipe, or the engine's
numerics changed the harness's headline numbers.

When a change is *intentional*, regenerate the file and commit the diff
alongside the change:

.. code-block:: bash

    PYTHONPATH=src python scripts/refresh_golden_scores.py
"""

import json
import pathlib

import pytest

from repro.core.config import OptimizationLevel
from repro.ransomware.traces import MODALITIES
from tests.reference import golden_generalization_recall

GOLDEN_PATH = (
    pathlib.Path(__file__).parent / "golden" / "generalization_recall.json"
)

#: Recall values are window-count ratios over a few dozen held-out
#: windows; the tolerance admits one window flipping its verdict
#: (≈1/40) from platform-level float drift in training, nothing more.
ATOL = 0.03


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())["recall"]


@pytest.fixture(scope="module")
def live():
    return golden_generalization_recall()


class TestGoldenGeneralizationRecall:
    def test_golden_covers_every_modality_and_level(self, golden):
        assert set(golden) - {"_held_out"} == set(MODALITIES)
        assert len(golden["_held_out"]) == 2
        for modality in MODALITIES:
            assert set(golden[modality]) == {
                level.name for level in OptimizationLevel
            }
            for row in golden[modality].values():
                assert set(row["per_family"]) == set(golden["_held_out"])

    def test_same_fold_partition(self, golden, live):
        assert live["_held_out"] == golden["_held_out"]

    @pytest.mark.parametrize("modality", sorted(MODALITIES))
    @pytest.mark.parametrize("level", [l.name for l in OptimizationLevel])
    def test_recall_matches_golden(self, golden, live, modality, level):
        want = golden[modality][level]
        got = live[modality][level]
        for key in ("held_out_recall", "recall_gap"):
            assert got[key] == pytest.approx(want[key], abs=ATOL), (
                f"{modality}/{level} {key}: golden {want[key]!r} vs live "
                f"{got[key]!r} — if this drift is intentional, run "
                "scripts/refresh_golden_scores.py and commit the diff"
            )
        for family, recall in want["per_family"].items():
            assert got["per_family"][family] == pytest.approx(
                recall, abs=ATOL
            ), f"{modality}/{level} family {family}"

    def test_float_levels_agree_exactly(self, live):
        # VANILLA and II_OPTIMIZED share the float datapath; the harness
        # numbers must be identical, not merely within tolerance.
        for modality in MODALITIES:
            assert (live[modality]["VANILLA"]
                    == live[modality]["II_OPTIMIZED"]), modality
