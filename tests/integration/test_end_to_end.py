"""Integration tests: the full paper pipeline across module boundaries."""

import dataclasses

import numpy as np
import pytest

from repro.core.config import EngineConfig, OptimizationLevel
from repro.core.engine import CSDInferenceEngine, engine_at_level
from repro.core.weights import HostWeights
from repro.hw.smartssd import SmartSSD
from repro.nn.metrics import classification_report
from repro.nn.serialization import dump_weights
from repro.ransomware.detector import RansomwareDetector
from repro.ransomware.families import LOCKBIT, WANNACRY
from repro.ransomware.mitigation import (
    MitigationEngine,
    ProtectedStorage,
    WriteBlocked,
)
from repro.ransomware.sandbox import CuckooSandbox
from tests.conftest import TEST_SEQUENCE_LENGTH


class TestDeploymentPath:
    """Offline training -> text weight file -> host ingest -> CSD engine."""

    def test_weight_file_deployment_is_lossless(self, trained_model, tmp_path, rng):
        path = tmp_path / "deployed.txt"
        dump_weights(trained_model, path)
        engine = CSDInferenceEngine.from_weight_file(
            str(path), sequence_length=TEST_SEQUENCE_LENGTH
        )
        sequences = rng.integers(0, 278, size=(5, TEST_SEQUENCE_LENGTH))
        direct = engine_at_level(
            trained_model, OptimizationLevel.FIXED_POINT,
            sequence_length=TEST_SEQUENCE_LENGTH,
        )
        np.testing.assert_allclose(
            engine.predict_proba(sequences), direct.predict_proba(sequences)
        )

    def test_all_levels_agree_on_predictions(self, trained_model, tiny_split):
        """The optimisations must not change *what* is computed, only how
        fast: all three levels agree with the offline model's labels on
        the overwhelming majority of windows."""
        _, test = tiny_split
        sample = test.subset(np.arange(min(50, len(test))))
        reference = trained_model.predict(sample.sequences)
        for level in OptimizationLevel:
            engine = engine_at_level(
                trained_model, level, sequence_length=TEST_SEQUENCE_LENGTH
            )
            predictions = engine.predict(sample.sequences)
            agreement = float(np.mean(predictions == reference))
            assert agreement >= 0.96, level

    def test_fixed_point_probability_error_small(self, trained_model, tiny_split):
        _, test = tiny_split
        sample = test.subset(np.arange(min(30, len(test))))
        engine = engine_at_level(
            trained_model, OptimizationLevel.FIXED_POINT,
            sequence_length=TEST_SEQUENCE_LENGTH,
        )
        fixed = engine.predict_proba(sample.sequences)
        float_probs = trained_model.predict_proba(sample.sequences)
        # The PLAN sigmoid's ~0.019 per-gate error accumulates through the
        # recurrence; bounded drift on probabilities, decisions unchanged
        # (asserted in test_all_levels_agree_on_predictions).
        assert np.max(np.abs(fixed - float_probs)) < 0.15
        assert np.mean(np.abs(fixed - float_probs)) < 0.05

    def test_detection_metrics_consistent_between_model_and_engine(
        self, trained_model, tiny_split
    ):
        _, test = tiny_split
        sample = test.subset(np.arange(min(60, len(test))))
        engine = engine_at_level(
            trained_model, OptimizationLevel.FIXED_POINT,
            sequence_length=TEST_SEQUENCE_LENGTH,
        )
        model_metrics = classification_report(
            trained_model.predict(sample.sequences), sample.labels
        )
        engine_metrics = classification_report(
            engine.predict(sample.sequences), sample.labels
        )
        assert engine_metrics["accuracy"] == pytest.approx(
            model_metrics["accuracy"], abs=0.05
        )


class TestDetectAndMitigate:
    """The paper's motivating scenario: detection at the drive stops the
    encryption in flight."""

    def test_ransomware_write_burst_is_stopped(self, trained_model):
        engine = engine_at_level(
            trained_model, OptimizationLevel.FIXED_POINT,
            sequence_length=TEST_SEQUENCE_LENGTH,
        )
        detector = RansomwareDetector(engine, stride=5)
        storage = ProtectedStorage(SmartSSD().ssd)
        mitigation = MitigationEngine(storage)

        trace = CuckooSandbox(seed=21).execute_ransomware(LOCKBIT, 2)
        process_id = 1337
        blocked_at = None
        writes_before_block = 0
        detector.reset()
        for index, call in enumerate(trace.calls):
            # The malware writes an "encrypted file" on every NtWriteFile.
            if call == "NtWriteFile":
                try:
                    storage.write(process_id, f"file-{index}", 4096)
                    writes_before_block += 1
                except WriteBlocked:
                    blocked_at = index
                    break
            verdict = detector.observe(call)
            if verdict is not None:
                mitigation.handle_verdict(process_id, verdict)

        assert blocked_at is not None, "mitigation never engaged"
        # The bulk of the encryption happens after the alarm; most writes
        # must have been prevented.
        total_writes = sum(1 for c in trace.calls if c == "NtWriteFile")
        assert writes_before_block < 0.5 * total_writes
        assert mitigation.summary()["quarantined_processes"] == 1

    def test_detection_latency_is_microseconds(self, trained_model):
        engine = engine_at_level(
            trained_model, OptimizationLevel.FIXED_POINT,
            sequence_length=TEST_SEQUENCE_LENGTH,
        )
        detector = RansomwareDetector(engine)
        trace = CuckooSandbox(seed=5).execute_ransomware(WANNACRY, 1)
        report = detector.scan_trace(trace.calls)
        assert report.detected
        # One window's inference on the CSD is ~sequence_length items at
        # ~2.3 us/item: well under a millisecond.
        assert report.first_detection.inference_microseconds < 1000.0


class TestStorageIntegration:
    def test_p2p_inference_pipeline(self, trained_model, rng):
        engine = engine_at_level(
            trained_model, OptimizationLevel.FIXED_POINT,
            sequence_length=TEST_SEQUENCE_LENGTH,
        )
        device = SmartSSD()
        engine.attach_storage(device)
        sequence = rng.integers(0, 278, size=TEST_SEQUENCE_LENGTH)
        device.ssd.write_object("window-0", int(sequence.nbytes))
        result, transfer_seconds = engine.infer_from_storage("window-0", sequence)
        assert 0.0 <= result.probability <= 1.0
        # Transfer is storage-latency bound (~90 us), inference ~2 us/item;
        # both far below the CPU baseline's ~1 ms/item.
        assert transfer_seconds < 1e-3
        assert device.traffic_summary()["p2p"] == sequence.nbytes

    def test_weight_download_fits_fpga_dram(self, trained_model):
        weights = HostWeights.from_model(trained_model)
        device = SmartSSD()
        seconds = device.host_load_weights(weights.total_bytes())
        assert seconds < 1e-3  # ~30 KB of parameters: trivial download
