"""Golden regression test on detector scores.

Pins the exact ransomware probability the deployed detector produces for
a fixed set of held-out sequences at every optimisation level.  Any
numerical drift — a changed rounding mode, a reordered accumulation, an
activation-table tweak — shows up here as a hard failure even when the
thresholded accuracy metrics stay identical.

When a change is *intentional*, regenerate the file and commit the diff
alongside the change:

.. code-block:: bash

    PYTHONPATH=src python scripts/refresh_golden_scores.py
"""

import json
import pathlib

import pytest

from repro.core.config import OptimizationLevel
from repro.core.kernels.backends import available_backends
from tests.reference import GOLDEN_SAMPLE_COUNT, golden_detector_scores

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "detector_scores.json"

#: Far below the fixed-point resolution (1e-6) and the sigmoid's output
#: granularity, but tolerant of last-ulp differences between BLAS
#: backends on the float levels.
ATOL = 1e-9


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def live_scores(trained_model, tiny_split):
    _, test_split = tiny_split
    return golden_detector_scores(trained_model, test_split)


class TestGoldenScores:
    def test_golden_file_covers_every_level(self, golden):
        assert set(golden["scores"]) == {l.name for l in OptimizationLevel}
        for values in golden["scores"].values():
            assert len(values) == GOLDEN_SAMPLE_COUNT
            assert all(0.0 <= v <= 1.0 for v in values)

    @pytest.mark.parametrize("level", [l.name for l in OptimizationLevel])
    def test_scores_match_golden(self, golden, live_scores, level):
        expected = golden["scores"][level]
        actual = live_scores[level]
        assert len(actual) == len(expected)
        for index, (want, got) in enumerate(zip(expected, actual)):
            assert got == pytest.approx(want, abs=ATOL), (
                f"{level} sequence {index}: golden {want!r} vs live {got!r} "
                "— if this drift is intentional, run "
                "scripts/refresh_golden_scores.py and commit the diff"
            )

    def test_levels_agree_on_verdicts(self, live_scores):
        # The optimisation rungs approximate each other: scores may
        # differ in the low decimals but the thresholded verdicts on the
        # pinned subset must agree between float and fixed-point.
        verdicts = {
            level: [score >= 0.5 for score in scores]
            for level, scores in live_scores.items()
        }
        baseline = verdicts[OptimizationLevel.VANILLA.name]
        for level, decided in verdicts.items():
            assert decided == baseline, f"{level} disagrees with VANILLA"


#: Every registered backend beyond the default the golden file was
#: generated with; each must reproduce the golden scores bit-exactly.
_EXTRA_BACKENDS = [b for b in available_backends() if b != "reference"]


@pytest.fixture(scope="module", params=_EXTRA_BACKENDS)
def backend_scores(request, trained_model, tiny_split):
    _, test_split = tiny_split
    return request.param, golden_detector_scores(
        trained_model, test_split, backend=request.param
    )


class TestBackendParityMatrix:
    """Backend × optimisation-level golden matrix.

    The ``reference`` backend *is* the pipeline the golden file pins
    (covered by :class:`TestGoldenScores`); every other registered
    backend must hit the same scores at every level, through the full
    deployed detector path.
    """

    @pytest.mark.parametrize("level", [l.name for l in OptimizationLevel])
    def test_backend_matches_golden(self, golden, backend_scores, level):
        backend, scores = backend_scores
        expected = golden["scores"][level]
        actual = scores[level]
        assert len(actual) == len(expected)
        for index, (want, got) in enumerate(zip(expected, actual)):
            assert got == pytest.approx(want, abs=ATOL), (
                f"backend {backend} at {level}, sequence {index}: "
                f"golden {want!r} vs live {got!r}"
            )
