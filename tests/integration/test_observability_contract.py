"""docs/observability.md is a contract, not a description.

Three enforcement angles:

* the ``spantree`` block in the doc must equal, byte for byte, the tree
  a 64-sequence ``infer_batch`` actually records;
* every documented engine metric must be emitted with the documented
  cardinality (one histogram observation per sequence);
* every ``repro_*`` metric name that appears as a string literal in the
  source must be documented — no undocumented telemetry can ship.
"""

import re
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import OptimizationLevel
from repro.core.engine import engine_at_level
from repro.telemetry import Telemetry
from tests.conftest import TEST_SEQUENCE_LENGTH

REPO_ROOT = Path(__file__).resolve().parents[2]
DOC = REPO_ROOT / "docs" / "observability.md"
SRC = REPO_ROOT / "src" / "repro"

BATCH_SIZE = 64


def documented_spantree() -> str:
    match = re.search(r"```spantree\n(.*?)```", DOC.read_text(), re.DOTALL)
    assert match, "docs/observability.md lost its ```spantree block"
    return match.group(1).rstrip("\n")


@pytest.fixture(scope="module")
def traced(trained_model):
    engine = engine_at_level(
        trained_model, OptimizationLevel.FIXED_POINT,
        sequence_length=TEST_SEQUENCE_LENGTH,
    )
    telemetry = Telemetry()
    engine.attach_telemetry(telemetry)
    rng = np.random.default_rng(0)
    sequences = rng.integers(0, 278, size=(BATCH_SIZE, TEST_SEQUENCE_LENGTH))
    result = engine.infer_batch(sequences)
    return engine, telemetry, sequences, result


class TestSpanTreeMatchesDoc:
    def test_rendered_tree_equals_doc_block_exactly(self, traced):
        _, telemetry, _, _ = traced
        assert telemetry.tracer.render_tree() == documented_spantree()

    def test_intervals_tile_the_documented_schedule(self, traced):
        engine, telemetry, _, result = traced
        (root,) = telemetry.tracer.roots
        children = {c.name: c for c in root.children}
        timing = result.timing
        assert root.start_cycle == 0
        assert root.end_cycle == timing.sequence_cycles + timing.classification_cycles
        # per-item stages are back to back in stage order
        assert children["csd.preprocess"].start_cycle == 0
        assert (
            children["csd.gates"].start_cycle
            == children["csd.preprocess"].end_cycle
        )
        assert (
            children["csd.hidden_state"].start_cycle
            == children["csd.gates"].end_cycle
        )
        # the FC epilogue closes the sequence
        fc = children["csd.fc_head"]
        assert fc.start_cycle == timing.sequence_cycles
        assert fc.end_cycle == root.end_cycle
        # concurrent CUs all cover the gates stage interval
        gates = children["csd.gates"]
        for cu in gates.children:
            assert (cu.start_cycle, cu.end_cycle) == (
                gates.start_cycle, gates.end_cycle,
            )


class TestMetricCardinality:
    def test_one_kernel_observation_per_sequence(self, traced):
        _, telemetry, _, _ = traced
        for kernel in ("kernel_preprocess", "kernel_gates", "kernel_hidden_state"):
            hist = telemetry.histogram("repro_kernel_latency_cycles", kernel=kernel)
            assert hist.count == BATCH_SIZE, kernel
        assert telemetry.histogram("repro_sequence_latency_cycles").count == BATCH_SIZE

    def test_sequence_counter_advances_by_batch_size(self, traced):
        engine, telemetry, _, _ = traced
        counter = telemetry.counter(
            "repro_sequences_processed_total",
            optimization=engine.config.optimization.name,
        )
        assert counter.value == BATCH_SIZE


class TestTelemetryIsObservationOnly:
    def test_disabled_path_is_bit_exact(self, traced, trained_model):
        _, _, sequences, result = traced
        bare = engine_at_level(
            trained_model, OptimizationLevel.FIXED_POINT,
            sequence_length=TEST_SEQUENCE_LENGTH,
        )
        assert np.array_equal(
            bare.infer_batch(sequences).probabilities, result.probabilities
        )


class TestEveryMetricIsDocumented:
    def test_source_literals_appear_in_doc(self):
        doc_text = DOC.read_text()
        pattern = re.compile(r'"(repro_[a-z0-9_]+)"')
        undocumented = set()
        for path in sorted(SRC.rglob("*.py")):
            for name in pattern.findall(path.read_text()):
                if name not in doc_text:
                    undocumented.add(f"{name} ({path.relative_to(REPO_ROOT)})")
        assert not undocumented, (
            "metrics emitted but missing from docs/observability.md:\n  "
            + "\n  ".join(sorted(undocumented))
        )

    def test_doc_metrics_exist_in_source(self):
        # the reverse direction: the doc may not promise metrics nothing emits
        doc_names = set(re.findall(r"`(repro_[a-z0-9_]+)`", DOC.read_text()))
        source_text = "\n".join(
            path.read_text() for path in sorted(SRC.rglob("*.py"))
        )
        stale = {name for name in doc_names if f'"{name}"' not in source_text}
        assert not stale, f"documented but never emitted: {sorted(stale)}"
