"""Integration tests: multi-process replay and sustained throughput."""

import numpy as np
import pytest

from repro.core.config import OptimizationLevel
from repro.core.engine import engine_at_level
from repro.core.throughput import ThroughputReport, throughput_report
from repro.hw.smartssd import SmartSSD
from repro.ransomware.benign import ALL_BENIGN_PROFILES
from repro.ransomware.families import CERBER, LOCKY
from repro.ransomware.mitigation import ProtectedStorage
from repro.ransomware.replay import HostReplay, PerProcessDetectorBank, ReplayEvent
from repro.ransomware.sandbox import CuckooSandbox
from tests.conftest import TEST_SEQUENCE_LENGTH


@pytest.fixture(scope="module")
def engine(request):
    model = request.getfixturevalue("trained_model")
    return engine_at_level(
        model, OptimizationLevel.FIXED_POINT, sequence_length=TEST_SEQUENCE_LENGTH
    )


class TestInterleave:
    def test_preserves_per_trace_order(self):
        sandbox = CuckooSandbox(seed=1)
        traces = [
            sandbox.execute_benign(ALL_BENIGN_PROFILES[0], 0, target_length=300),
            sandbox.execute_benign(ALL_BENIGN_PROFILES[1], 0, target_length=300),
        ]
        events = HostReplay.interleave(traces, seed=4)
        assert len(events) == sum(len(t.calls) for t in traces)
        for pid, trace in zip((1000, 1001), traces):
            replayed = tuple(e.call for e in events if e.process_id == pid)
            assert replayed == trace.calls

    def test_steps_are_sequential(self):
        sandbox = CuckooSandbox(seed=1)
        traces = [sandbox.execute_benign(ALL_BENIGN_PROFILES[2], 0, target_length=200)]
        events = HostReplay.interleave(traces, seed=0)
        assert [e.step for e in events] == list(range(len(events)))

    def test_deterministic_given_seed(self):
        sandbox = CuckooSandbox(seed=1)
        traces = [
            sandbox.execute_benign(ALL_BENIGN_PROFILES[0], 0, target_length=200),
            sandbox.execute_benign(ALL_BENIGN_PROFILES[3], 0, target_length=200),
        ]
        a = HostReplay.interleave(traces, seed=9)
        b = HostReplay.interleave(traces, seed=9)
        assert a == b


class TestDetectorBank:
    def test_separate_windows_per_process(self, engine):
        bank = PerProcessDetectorBank(engine, stride=1)
        # Alternate two processes: neither reaches a full window until it
        # has seen TEST_SEQUENCE_LENGTH of *its own* calls.
        verdicts = []
        for _ in range(TEST_SEQUENCE_LENGTH - 1):
            verdicts.append(bank.observe(1, "NtReadFile"))
            verdicts.append(bank.observe(2, "NtReadFile"))
        assert all(v is None for v in verdicts)
        assert bank.observe(1, "NtReadFile") is not None
        assert set(bank.monitored_processes) == {1, 2}


class TestHostReplay:
    @pytest.fixture(scope="class")
    def outcomes(self, engine):
        sandbox = CuckooSandbox(seed=31)
        traces = [
            sandbox.execute_benign(ALL_BENIGN_PROFILES[0], 0, target_length=800),
            sandbox.execute_ransomware(CERBER, 1),
            sandbox.execute_benign(ALL_BENIGN_PROFILES[9], 0, target_length=800),
        ]
        # High-confidence threshold: mitigation should not fire on the
        # ambiguous startup region every process (benign or not) emits.
        replay = HostReplay(
            engine, ProtectedStorage(SmartSSD().ssd), threshold=0.7, stride=10
        )
        return replay, replay.run(traces, seed=5)

    def test_ransomware_process_quarantined(self, outcomes):
        _, results = outcomes
        cerber = next(o for o in results.values() if o.source == "Cerber")
        assert cerber.quarantined_at_step is not None
        assert cerber.writes_blocked > 0

    def test_benign_processes_untouched(self, outcomes):
        _, results = outcomes
        for outcome in results.values():
            if not outcome.is_ransomware:
                assert outcome.quarantined_at_step is None
                assert outcome.writes_blocked == 0

    def test_summary_aggregates(self, outcomes):
        replay, results = outcomes
        summary = replay.incident_summary(results)
        assert summary["ransomware_processes"] == 1
        assert summary["caught"] == 1
        assert summary["falsely_quarantined"] == 0
        assert summary["writes_blocked"] > 0

    def test_two_simultaneous_infections(self, engine):
        sandbox = CuckooSandbox(seed=8)
        traces = [
            sandbox.execute_ransomware(CERBER, 0),
            sandbox.execute_ransomware(LOCKY, 0),
            sandbox.execute_benign(ALL_BENIGN_PROFILES[5], 0, target_length=600),
        ]
        replay = HostReplay(
            engine, ProtectedStorage(SmartSSD().ssd), threshold=0.7, stride=10
        )
        results = replay.run(traces, seed=2)
        summary = replay.incident_summary(results)
        assert summary["caught"] == 2
        assert summary["falsely_quarantined"] == 0


class TestThroughput:
    def test_report_structure(self, engine):
        report = throughput_report(engine)
        assert isinstance(report, ThroughputReport)
        assert report.windows_per_second > 0
        assert report.bottleneck in ("compute", "ingest")

    def test_compute_is_the_bottleneck_at_fixed_point(self, engine):
        # ~4,400 windows/s compute vs ~hundreds of thousands ingest.
        report = throughput_report(engine)
        assert report.bottleneck == "compute"

    def test_single_busy_host_is_small_fraction(self, engine):
        report = throughput_report(
            engine, api_calls_per_second=2000, detection_stride=10
        )
        # Background scanning headroom: >1 stream per CSD.
        assert report.concurrent_streams > 1.0
        assert report.utilization < 1.0

    def test_stride_one_costs_more(self, engine):
        sparse = throughput_report(engine, detection_stride=10)
        dense = throughput_report(engine, detection_stride=1)
        assert dense.demand_windows_per_second > sparse.demand_windows_per_second
        assert dense.concurrent_streams < sparse.concurrent_streams

    def test_validation(self, engine):
        with pytest.raises(ValueError):
            throughput_report(engine, api_calls_per_second=0)
        with pytest.raises(ValueError):
            throughput_report(engine, detection_stride=0)
