"""Smoke checks on the example scripts.

Running the examples end to end takes minutes each (they train models),
so the suite checks they are importable, expose a ``main``, and document
themselves; the CLI-level behaviours they exercise are covered by the
dedicated integration tests.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_at_least_five_examples(self):
        assert len(EXAMPLE_FILES) >= 5

    def test_quickstart_exists(self):
        assert (EXAMPLES_DIR / "quickstart.py").exists()

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
    def test_importable_with_main(self, path):
        module = _load(path)
        assert callable(getattr(module, "main", None)), f"{path.stem} lacks main()"
        assert module.__doc__, f"{path.stem} lacks a module docstring"
        assert "Run:" in module.__doc__, f"{path.stem} docstring lacks run line"
