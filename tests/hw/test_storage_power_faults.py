"""Tests for PCIe, SSD, SmartSSD composition, power, and fault injection."""

import numpy as np
import pytest

from repro.hw.axi import TransferError
from repro.hw.faults import (
    AxiStallFault,
    BitFlipFault,
    DmaErrorFault,
    FaultPlan,
    retry_dma,
)
from repro.hw.pcie import PcieLink, PcieSwitch
from repro.hw.power import (
    A100_GPU_POWER,
    SMARTSSD_FPGA_POWER,
    XEON_CPU_POWER,
    PowerProfile,
    energy_comparison,
)
from repro.hw.smartssd import SmartSSD
from repro.hw.ssd import NvmeSsd


class TestPcieLink:
    def test_gen3_x4_bandwidth(self):
        link = PcieLink(generation=3, lanes=4)
        assert link.bandwidth_bytes_per_second == pytest.approx(3.94e9, rel=0.01)

    def test_transfer_time_scales_with_size(self):
        link = PcieLink()
        small = link.transfer_seconds(1024)
        large = link.transfer_seconds(1024 * 1024)
        assert large > small

    def test_zero_bytes_free(self):
        assert PcieLink().transfer_seconds(0) == 0.0

    def test_rejects_unknown_generation(self):
        with pytest.raises(ValueError):
            PcieLink(generation=7)

    def test_rejects_bad_lanes(self):
        with pytest.raises(ValueError):
            PcieLink(lanes=3)


class TestPcieSwitch:
    def test_p2p_faster_than_host_mediated(self):
        switch = PcieSwitch()
        num_bytes = 1 << 20
        assert switch.p2p_transfer_seconds(num_bytes) < switch.host_mediated_transfer_seconds(
            num_bytes
        )

    def test_savings_positive(self):
        switch = PcieSwitch()
        assert switch.p2p_savings_seconds(4096) > 0

    def test_traffic_counters(self):
        switch = PcieSwitch()
        switch.p2p_transfer_seconds(100)
        switch.host_mediated_transfer_seconds(200)
        assert switch.p2p_bytes == 100
        assert switch.host_bytes == 200


class TestNvmeSsd:
    def test_write_then_read(self):
        ssd = NvmeSsd()
        ssd.write_object("trace", 4096)
        num_bytes, seconds = ssd.read_object("trace")
        assert num_bytes == 4096
        assert seconds > ssd.read_latency_seconds

    def test_capacity_enforced(self):
        ssd = NvmeSsd(capacity_bytes=1000)
        with pytest.raises(MemoryError):
            ssd.write_object("big", 2000)

    def test_overwrite_replaces_size(self):
        ssd = NvmeSsd(capacity_bytes=1000)
        ssd.write_object("a", 800)
        ssd.write_object("a", 100)
        assert ssd.used_bytes == 100

    def test_missing_object(self):
        with pytest.raises(KeyError):
            NvmeSsd().read_object("nope")

    def test_delete(self):
        ssd = NvmeSsd()
        ssd.write_object("a", 100)
        ssd.delete_object("a")
        assert ssd.used_bytes == 0
        with pytest.raises(KeyError):
            ssd.delete_object("a")

    def test_io_counters(self):
        ssd = NvmeSsd()
        ssd.write_object("a", 10)
        ssd.read_object("a")
        ssd.read_seconds(100)
        assert ssd.writes_issued == 1
        assert ssd.reads_issued == 2


class TestSmartSSD:
    def test_default_composition_is_smartssd_like(self):
        device = SmartSSD()
        assert device.fpga.part.name == "xcku15p"
        assert device.ssd.name == "PM1733"

    def test_p2p_fetch_flow(self):
        device = SmartSSD()
        device.ssd.write_object("batch", 1 << 16)
        seconds = device.p2p_fetch("batch")
        assert seconds > 0
        assert device.traffic_summary()["p2p"] == 1 << 16

    def test_p2p_beats_host_fetch(self):
        a, b = SmartSSD(), SmartSSD()
        a.ssd.write_object("x", 1 << 20)
        b.ssd.write_object("x", 1 << 20)
        assert a.p2p_fetch("x") < b.host_fetch("x")

    def test_fpga_dram_accounting(self):
        device = SmartSSD(fpga_dram_bytes=1000)
        device.ssd.write_object("x", 900)
        device.p2p_fetch("x")
        assert device.fpga_dram_free_bytes == 100
        device.release_fpga_dram(900)
        assert device.fpga_dram_free_bytes == 1000

    def test_fpga_dram_exhaustion(self):
        device = SmartSSD(fpga_dram_bytes=100)
        device.ssd.write_object("x", 200)
        with pytest.raises(MemoryError):
            device.p2p_fetch("x")

    def test_release_validation(self):
        device = SmartSSD()
        with pytest.raises(ValueError):
            device.release_fpga_dram(1)

    def test_weight_load(self):
        device = SmartSSD()
        seconds = device.host_load_weights(7472 * 4)
        assert seconds > 0
        assert device.traffic_summary()["host_to_fpga"] == 7472 * 4


class TestPower:
    def test_fpga_lowest_power(self):
        assert SMARTSSD_FPGA_POWER.active_watts < XEON_CPU_POWER.active_watts
        assert XEON_CPU_POWER.active_watts < A100_GPU_POWER.active_watts

    def test_energy_per_inference(self):
        joules = SMARTSSD_FPGA_POWER.energy_per_inference_joules(2.15e-6)
        assert joules == pytest.approx(10.0 * 2.15e-6)

    def test_comparison_structure(self):
        result = energy_comparison(
            {SMARTSSD_FPGA_POWER: 2.15e-6, A100_GPU_POWER: 741e-6}
        )
        assert result["SmartSSD-FPGA"] < result["A100-40GB"]

    def test_rejects_active_below_idle(self):
        with pytest.raises(ValueError):
            PowerProfile(name="x", idle_watts=10.0, active_watts=5.0)

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            SMARTSSD_FPGA_POWER.energy_joules(-1.0)


class TestFaults:
    def test_axi_stall_fires_periodically(self):
        fault = AxiStallFault(period=3, extra_cycles=50)
        penalties = [fault.stall_cycles() for _ in range(6)]
        assert penalties == [0, 0, 50, 0, 0, 50]

    def test_bit_flip_changes_one_element(self):
        fault = BitFlipFault(element_index=2, bit=4)
        buffer = np.array([10, 20, 30, 40], dtype=np.int64)
        corrupted = fault.corrupt(buffer)
        assert corrupted[2] == 30 ^ (1 << 4)
        assert list(corrupted[[0, 1, 3]]) == [10, 20, 40]
        # Original untouched.
        assert buffer[2] == 30

    def test_bit_flip_fires_once(self):
        fault = BitFlipFault(fire_once=True)
        buffer = np.array([1], dtype=np.int64)
        first = fault.corrupt(buffer)
        second = fault.corrupt(buffer)
        assert first[0] != buffer[0]
        np.testing.assert_array_equal(second, buffer)

    def test_dma_error_then_recovery(self):
        plan = FaultPlan(dma_error=DmaErrorFault(failures=2))
        assert retry_dma(plan, attempts=3) == 3

    def test_dma_retry_budget_exhausted(self):
        plan = FaultPlan(dma_error=DmaErrorFault(failures=5))
        with pytest.raises(TransferError):
            retry_dma(plan, attempts=3)

    def test_empty_plan_is_noop(self):
        plan = FaultPlan()
        assert plan.extra_transfer_cycles() == 0
        buffer = np.array([1], dtype=np.int64)
        np.testing.assert_array_equal(plan.maybe_corrupt(buffer), buffer)
        plan.check_dma()  # must not raise

    def test_retry_dma_rejects_zero_attempts(self):
        with pytest.raises(ValueError):
            retry_dma(FaultPlan(), attempts=0)
