"""Property-based tests on the HLS loop model's invariants."""

from hypothesis import given, settings, strategies as st

from repro.hw.hls import HlsLoop, PragmaSet

trips = st.integers(min_value=0, max_value=10_000)
depths = st.integers(min_value=1, max_value=200)
iis = st.integers(min_value=1, max_value=64)
unrolls = st.sampled_from([1, 2, 4, 8, 16])


class TestHlsInvariants:
    @given(trips=trips, depth=depths, ii=iis)
    @settings(max_examples=80, deadline=None)
    def test_achieved_ii_never_below_requested(self, trips, depth, ii):
        loop = HlsLoop(
            name="l", trip_count=trips, iteration_depth=depth,
            pragmas=PragmaSet(pipeline=True, target_ii=ii),
        )
        assert loop.achieved_ii >= ii

    @given(trips=trips, depth=depths, dep=iis)
    @settings(max_examples=80, deadline=None)
    def test_achieved_ii_respects_dependency(self, trips, depth, dep):
        loop = HlsLoop(
            name="l", trip_count=trips, iteration_depth=depth,
            pragmas=PragmaSet(pipeline=True, target_ii=1),
            carried_dependency_ii=dep,
        )
        assert loop.achieved_ii >= dep

    @given(a=trips, b=trips, depth=depths)
    @settings(max_examples=60, deadline=None)
    def test_latency_monotone_in_trip_count(self, a, b, depth):
        low, high = sorted((a, b))
        make = lambda t: HlsLoop(
            name="l", trip_count=t, iteration_depth=depth,
            pragmas=PragmaSet(pipeline=True, target_ii=1),
        )
        assert make(low).latency_cycles <= make(high).latency_cycles

    @given(trips=st.integers(min_value=1, max_value=10_000), a=depths, b=depths)
    @settings(max_examples=60, deadline=None)
    def test_latency_monotone_in_depth(self, trips, a, b):
        low, high = sorted((a, b))
        make = lambda d: HlsLoop(name="l", trip_count=trips, iteration_depth=d)
        assert make(low).latency_cycles <= make(high).latency_cycles

    @given(trips=st.integers(min_value=1, max_value=10_000), depth=depths,
           unroll=unrolls)
    @settings(max_examples=60, deadline=None)
    def test_penalty_free_unroll_never_hurts_pipelined_loops(self, trips, depth, unroll):
        base = HlsLoop(
            name="l", trip_count=trips, iteration_depth=depth,
            pragmas=PragmaSet(pipeline=True, target_ii=1, array_partition=True),
        )
        unrolled = HlsLoop(
            name="l", trip_count=trips, iteration_depth=depth,
            pragmas=PragmaSet(pipeline=True, target_ii=1, unroll=unroll,
                              array_partition=True),
            unroll_depth_penalty=0,
        )
        assert unrolled.latency_cycles <= base.latency_cycles

    @given(trips=trips, depth=depths, accesses=st.integers(min_value=0, max_value=32))
    @settings(max_examples=60, deadline=None)
    def test_partitioning_never_hurts(self, trips, depth, accesses):
        shared = HlsLoop(
            name="l", trip_count=trips, iteration_depth=depth,
            pragmas=PragmaSet(pipeline=True, target_ii=1),
            memory_accesses_per_iteration=accesses,
        )
        partitioned = HlsLoop(
            name="l", trip_count=trips, iteration_depth=depth,
            pragmas=PragmaSet(pipeline=True, target_ii=1, array_partition=True),
            memory_accesses_per_iteration=accesses,
        )
        assert partitioned.latency_cycles <= shared.latency_cycles

    @given(trips=st.integers(min_value=1, max_value=1000), depth=depths)
    @settings(max_examples=40, deadline=None)
    def test_steady_state_rate_consistent_with_latency(self, trips, depth):
        loop = HlsLoop(
            name="l", trip_count=trips, iteration_depth=depth,
            pragmas=PragmaSet(pipeline=True, target_ii=1),
        )
        # latency = depth + II*(n-1): per-result cost approaches the II.
        assert loop.latency_cycles == depth + loop.steady_state_ii * (trips - 1)
