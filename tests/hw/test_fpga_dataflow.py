"""Tests for FPGA resource accounting and dataflow scheduling."""

import pytest

from repro.hw.dataflow import (
    StageTiming,
    parallel_stage_cycles,
    pipeline_speedup,
    pipelined_schedule,
    schedule,
    serial_schedule,
)
from repro.hw.fpga import (
    ALVEO_U200,
    KU15P,
    FpgaDevice,
    ResourceExhausted,
    ResourceRequest,
)


class TestParts:
    def test_u200_larger_than_ku15p(self):
        # The paper's experimental platform is the bigger sibling.
        assert ALVEO_U200.dsp_slices > KU15P.dsp_slices
        assert ALVEO_U200.luts > KU15P.luts

    def test_u200_has_four_ddr_banks(self):
        assert ALVEO_U200.ddr_banks == 4

    def test_ku15p_dsp_count(self):
        assert KU15P.dsp_slices == 1968


class TestFpgaDevice:
    def test_default_two_banks(self):
        device = FpgaDevice()
        assert len(device.ddr.banks) == 2

    def test_rejects_more_banks_than_part_has(self):
        with pytest.raises(ValueError):
            FpgaDevice(part=KU15P, ddr_banks_used=2)

    def test_rejects_overclock(self):
        with pytest.raises(ValueError):
            FpgaDevice(kernel_clock_hz=500e6)

    def test_placement_accumulates(self):
        device = FpgaDevice()
        device.place_kernel("a", ResourceRequest(luts=1000, dsp_slices=10))
        device.place_kernel("b", ResourceRequest(luts=2000, dsp_slices=20))
        assert device.used.luts == 3000
        assert device.used.dsp_slices == 30

    def test_duplicate_placement_rejected(self):
        device = FpgaDevice()
        device.place_kernel("a", ResourceRequest(luts=1))
        with pytest.raises(ValueError):
            device.place_kernel("a", ResourceRequest(luts=1))

    def test_dsp_exhaustion(self):
        device = FpgaDevice(part=KU15P, ddr_banks_used=1)
        device.place_kernel("big", ResourceRequest(dsp_slices=1900))
        with pytest.raises(ResourceExhausted):
            device.place_kernel("more", ResourceRequest(dsp_slices=100))

    def test_failed_placement_charges_nothing(self):
        device = FpgaDevice(part=KU15P, ddr_banks_used=1)
        with pytest.raises(ResourceExhausted):
            device.place_kernel("huge", ResourceRequest(luts=10**9))
        assert device.used.luts == 0
        assert "huge" not in device.placements

    def test_utilization_fractions(self):
        device = FpgaDevice()
        device.place_kernel("half", ResourceRequest(dsp_slices=3420))
        assert device.utilization()["dsp_slices"] == pytest.approx(0.5)

    def test_reset(self):
        device = FpgaDevice()
        device.place_kernel("a", ResourceRequest(luts=10))
        device.ddr.banks[0].allocate(100)
        device.reset()
        assert device.used.luts == 0
        assert device.ddr.total_allocated() == 0

    def test_rejects_negative_request(self):
        with pytest.raises(ValueError):
            ResourceRequest(luts=-1)


class TestDataflow:
    timing = StageTiming(preprocess=100, gates=200, hidden_state=300)

    def test_serial_total(self):
        assert self.timing.serial_total == 600
        assert serial_schedule(self.timing, 10) == 6000

    def test_pipelined_hides_preprocess(self):
        # Steady state is max(P, G+H) = 500; fill pays P once, drain G+H.
        assert pipelined_schedule(self.timing, 10) == 100 + 500 * 9 + 500

    def test_pipelined_never_slower(self):
        for items in (0, 1, 2, 50):
            assert pipelined_schedule(self.timing, items) <= serial_schedule(
                self.timing, items
            )

    def test_preprocess_bound_pipeline(self):
        slow_preprocess = StageTiming(preprocess=1000, gates=10, hidden_state=10)
        # Steady state bound by preprocess.
        assert pipelined_schedule(slow_preprocess, 5) == 1000 + 1000 * 4 + 20

    def test_zero_items(self):
        assert pipelined_schedule(self.timing, 0) == 0
        assert serial_schedule(self.timing, 0) == 0

    def test_single_item_equals_serial(self):
        assert pipelined_schedule(self.timing, 1) == self.timing.serial_total

    def test_schedule_dispatch(self):
        assert schedule(self.timing, 10, preemptive=True) == pipelined_schedule(self.timing, 10)
        assert schedule(self.timing, 10, preemptive=False) == serial_schedule(self.timing, 10)

    def test_speedup_above_one(self):
        assert pipeline_speedup(self.timing, 100) > 1.0

    def test_parallel_stage_is_max(self):
        assert parallel_stage_cycles([5, 9, 3, 7]) == 9

    def test_parallel_stage_rejects_empty(self):
        with pytest.raises(ValueError):
            parallel_stage_cycles([])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            StageTiming(preprocess=-1, gates=0, hidden_state=0)
        with pytest.raises(ValueError):
            serial_schedule(self.timing, -1)
