"""Tests for the XRT-style host runtime shim."""

import pytest

from repro.hw.clock import ClockDomain
from repro.hw.fpga import FpgaDevice
from repro.hw.pcie import PcieLink
from repro.hw.xrt import CommandQueue, Direction, XrtDevice


@pytest.fixture
def device():
    return XrtDevice(FpgaDevice(), link=PcieLink(generation=3, lanes=16))


class TestBuffers:
    def test_allocation_charges_bank(self, device):
        before = device.fpga.ddr.banks[0].allocated_bytes
        device.allocate_buffer("weights", 4096)
        assert device.fpga.ddr.banks[0].allocated_bytes == before + 4096

    def test_bank_selection(self, device):
        device.allocate_buffer("a", 100, bank_index=1)
        assert device.fpga.ddr.banks[1].allocated_bytes == 100
        assert device.fpga.ddr.banks[0].allocated_bytes == 0

    def test_duplicate_name_rejected(self, device):
        device.allocate_buffer("x", 10)
        with pytest.raises(ValueError):
            device.allocate_buffer("x", 10)

    def test_bad_bank_index(self, device):
        with pytest.raises(ValueError):
            device.allocate_buffer("x", 10, bank_index=5)

    def test_zero_size_rejected(self, device):
        with pytest.raises(ValueError):
            device.allocate_buffer("x", 0)

    def test_oversized_allocation(self, device):
        with pytest.raises(MemoryError):
            device.allocate_buffer("huge", 10**18)

    def test_release_tracks_liveness(self, device):
        buffer = device.allocate_buffer("x", 10)
        assert buffer in device.live_buffers
        buffer.release()
        assert buffer not in device.live_buffers
        with pytest.raises(RuntimeError):
            buffer.release()


class TestQueue:
    def test_migrate_advances_timeline(self, device):
        queue = device.create_queue()
        buffer = device.allocate_buffer("input", 1 << 20)
        event = queue.enqueue_migrate(buffer, Direction.HOST_TO_DEVICE)
        assert event.duration_seconds > 0
        assert queue.timeline_seconds == event.end_seconds

    def test_in_order_execution(self, device):
        queue = device.create_queue()
        buffer = device.allocate_buffer("input", 4096)
        first = queue.enqueue_migrate(buffer, Direction.HOST_TO_DEVICE)
        second = queue.enqueue_kernel("gates", cycles=1000, clock=ClockDomain())
        assert second.start_seconds == first.end_seconds

    def test_kernel_duration_matches_clock(self, device):
        queue = device.create_queue()
        clock = ClockDomain(frequency_hz=300e6)
        event = queue.enqueue_kernel("k", cycles=300, clock=clock)
        assert event.duration_seconds == pytest.approx(1e-6)

    def test_migrate_released_buffer_rejected(self, device):
        queue = device.create_queue()
        buffer = device.allocate_buffer("x", 10)
        buffer.release()
        with pytest.raises(RuntimeError):
            queue.enqueue_migrate(buffer, Direction.HOST_TO_DEVICE)

    def test_negative_cycles_rejected(self, device):
        queue = device.create_queue()
        with pytest.raises(ValueError):
            queue.enqueue_kernel("k", cycles=-1, clock=ClockDomain())

    def test_finish_returns_total(self, device):
        queue = device.create_queue()
        buffer = device.allocate_buffer("x", 1 << 16)
        queue.enqueue_migrate(buffer, Direction.HOST_TO_DEVICE)
        queue.enqueue_kernel("k", cycles=3000, clock=ClockDomain())
        queue.enqueue_migrate(buffer, Direction.DEVICE_TO_HOST)
        assert queue.finish() == pytest.approx(queue.timeline_seconds)

    def test_profile_summary(self, device):
        queue = device.create_queue()
        buffer = device.allocate_buffer("x", 1 << 16)
        queue.enqueue_migrate(buffer, Direction.HOST_TO_DEVICE)
        queue.enqueue_kernel("k", cycles=3000, clock=ClockDomain())
        summary = XrtDevice.profile_summary(queue)
        assert summary["migrate"] > 0
        assert summary["kernel"] > 0
        assert summary["total"] == pytest.approx(summary["migrate"] + summary["kernel"])


class TestHostFlowIntegration:
    def test_weight_download_then_inference_episode(self, device):
        """The paper's host flow: weights down once, then kernel runs."""
        from repro.core.config import EngineConfig, OptimizationLevel
        from repro.core.engine import CSDInferenceEngine

        engine = CSDInferenceEngine.build_unloaded(
            EngineConfig(optimization=OptimizationLevel.FIXED_POINT)
        )
        queue = device.create_queue()
        weights = device.allocate_buffer("weights", 7505 * 8)
        queue.enqueue_migrate(weights, Direction.HOST_TO_DEVICE)
        item_cycles = int(
            engine.per_item_microseconds()
            * 100 * engine.device.clock.frequency_hz * 1e-6
        )
        queue.enqueue_kernel("lstm_sequence", cycles=item_cycles, clock=engine.device.clock)
        summary = XrtDevice.profile_summary(queue)
        # One-off weight download is small next to a full sequence.
        assert summary["kernel"] > summary["migrate"]