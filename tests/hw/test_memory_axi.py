"""Tests for the AXI port and DDR bank models."""

import pytest

from repro.hw.axi import AxiMasterPort
from repro.hw.memory import DdrBank, DdrSubsystem, bandwidth_bound_ii


class TestAxiPort:
    def test_zero_bytes_is_free(self):
        port = AxiMasterPort(name="p")
        assert port.read_cycles(0) == 0

    def test_read_is_latency_plus_beats(self):
        port = AxiMasterPort(name="p", data_width_bits=512, read_latency_cycles=100)
        # 65 bytes = 2 beats of 64 bytes.
        assert port.read_cycles(65) == 102

    def test_write_cheaper_setup_than_read(self):
        port = AxiMasterPort(name="p")
        assert port.write_cycles(64) < port.read_cycles(64)

    def test_contention_stretches_data_phase(self):
        port = AxiMasterPort(name="p", read_latency_cycles=0)
        assert port.read_cycles(640, contention_factor=2.0) == 20

    def test_traffic_accounting(self):
        port = AxiMasterPort(name="p")
        port.read_cycles(100)
        port.write_cycles(50)
        assert port.bytes_transferred == 150
        assert port.transfer_count == 2

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            AxiMasterPort(name="p", data_width_bits=100)

    def test_rejects_negative_bytes(self):
        with pytest.raises(ValueError):
            AxiMasterPort(name="p").read_cycles(-1)

    def test_rejects_sub_unity_contention(self):
        with pytest.raises(ValueError):
            AxiMasterPort(name="p").read_cycles(64, contention_factor=0.5)


class TestDdrBank:
    def test_allocation_tracking(self):
        bank = DdrBank(name="b", capacity_bytes=100)
        bank.allocate(60)
        assert bank.allocated_bytes == 60
        with pytest.raises(MemoryError):
            bank.allocate(50)

    def test_free_all(self):
        bank = DdrBank(name="b", capacity_bytes=100)
        bank.allocate(80)
        bank.free_all()
        bank.allocate(100)

    def test_contention_factor_counts_readers(self):
        bank = DdrBank(name="b")
        assert bank.contention_factor == 1.0
        bank.attach_reader("cu0")
        bank.attach_reader("cu1")
        assert bank.contention_factor == 2.0

    def test_bandwidth_bound_ii(self):
        bank = DdrBank(name="b", peak_bandwidth_bytes_per_cycle=64)
        assert bandwidth_bound_ii(128, bank) == 2
        assert bandwidth_bound_ii(0, bank) == 1
        bank.attach_reader("a")
        bank.attach_reader("b")
        assert bandwidth_bound_ii(128, bank) == 4


class TestDdrSubsystem:
    def test_paper_configuration_two_banks_four_cus(self):
        # "a conservative two DDR banks" with 4 gates CUs -> 2 CUs/bank.
        subsystem = DdrSubsystem.with_bank_count(2)
        subsystem.assign_readers([f"gates_{i}" for i in range(4)])
        assert subsystem.worst_contention_factor == 2.0

    def test_four_banks_one_cu_each(self):
        subsystem = DdrSubsystem.with_bank_count(4)
        subsystem.assign_readers([f"gates_{i}" for i in range(4)])
        assert subsystem.worst_contention_factor == 1.0

    def test_round_robin_assignment(self):
        subsystem = DdrSubsystem.with_bank_count(2)
        assignment = subsystem.assign_readers(["a", "b", "c"])
        assert assignment["a"].name == "DDR[0]"
        assert assignment["b"].name == "DDR[1]"
        assert assignment["c"].name == "DDR[0]"

    def test_reassignment_clears_old_readers(self):
        subsystem = DdrSubsystem.with_bank_count(2)
        subsystem.assign_readers(["a", "b", "c", "d"])
        subsystem.assign_readers(["a"])
        assert subsystem.worst_contention_factor == 1.0

    def test_rejects_zero_banks(self):
        with pytest.raises(ValueError):
            DdrSubsystem.with_bank_count(0)

    def test_total_allocated(self):
        subsystem = DdrSubsystem.with_bank_count(2)
        subsystem.banks[0].allocate(10)
        subsystem.banks[1].allocate(20)
        assert subsystem.total_allocated() == 30
