"""Tests for the Vitis-style emulation report renderers."""

import pytest

from repro.core.config import EngineConfig, OptimizationLevel
from repro.core.engine import CSDInferenceEngine
from repro.hw.emulation import (
    loop_report,
    render_engine_report,
    render_loop_report,
    render_utilization_report,
)
from repro.hw.hls import HlsLoop, LoopNest, PragmaSet


@pytest.fixture
def nest():
    return LoopNest(
        name="kernel_demo",
        loops=(
            HlsLoop(name="load", trip_count=16, iteration_depth=4,
                    pragmas=PragmaSet(pipeline=True, target_ii=1)),
            HlsLoop(name="compute", trip_count=32, iteration_depth=10),
        ),
        prologue_cycles=50,
    )


class TestLoopReport:
    def test_rows_match_loops(self, nest):
        rows = loop_report(nest)
        assert [row.loop for row in rows] == ["load", "compute"]

    def test_pipelined_loop_shows_ii(self, nest):
        rows = loop_report(nest)
        assert rows[0].achieved_ii == 1
        assert rows[1].achieved_ii is None

    def test_latency_matches_model(self, nest):
        rows = loop_report(nest)
        assert rows[0].latency_cycles == 4 + 15
        assert rows[1].latency_cycles == 32 * 11

    def test_render_contains_total(self, nest):
        text = render_loop_report(nest)
        assert "kernel_demo" in text
        assert str(nest.latency_cycles) in text
        assert "invocation overhead" in text


class TestDeviceReports:
    @pytest.fixture
    def engine(self):
        return CSDInferenceEngine.build_unloaded(
            EngineConfig(optimization=OptimizationLevel.FIXED_POINT)
        )

    def test_utilization_report_lists_kernels(self, engine):
        text = render_utilization_report(engine.device)
        assert "kernel_preprocess" in text
        assert "kernel_gates_0" in text
        assert "kernel_gates_3" in text
        assert "kernel_hidden_state" in text
        assert "UTILISATION" in text

    def test_engine_report_totals_match_breakdown(self, engine):
        text = render_engine_report(engine)
        assert "TOTAL (per item)" in text
        # The per-item total equals the engine's own figure.
        us = engine.per_item_microseconds()
        assert f"{us:.5f}" in text

    def test_engine_report_states_configuration(self, engine):
        text = render_engine_report(engine)
        assert "FIXED_POINT" in text
        assert "4 gates CU(s)" in text
