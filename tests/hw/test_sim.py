"""Tests for the discrete-event core and its cross-validation against the
analytic pipeline schedules."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw.dataflow import StageTiming, pipelined_schedule, serial_schedule
from repro.hw.sim import PipelineTrace, Resource, Simulator, simulate_item_pipeline


class TestSimulator:
    def test_events_fire_in_time_order(self):
        simulator = Simulator()
        order = []
        simulator.schedule(10, lambda: order.append("b"))
        simulator.schedule(5, lambda: order.append("a"))
        simulator.schedule(20, lambda: order.append("c"))
        assert simulator.run() == 20
        assert order == ["a", "b", "c"]

    def test_ties_fire_in_insertion_order(self):
        simulator = Simulator()
        order = []
        simulator.schedule(5, lambda: order.append(1))
        simulator.schedule(5, lambda: order.append(2))
        simulator.run()
        assert order == [1, 2]

    def test_actions_can_schedule(self):
        simulator = Simulator()
        seen = []

        def first():
            seen.append(simulator.now)
            simulator.schedule(7, lambda: seen.append(simulator.now))

        simulator.schedule(3, first)
        assert simulator.run() == 10
        assert seen == [3, 10]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1, lambda: None)

    def test_runaway_guard(self):
        simulator = Simulator()

        def forever():
            simulator.schedule(1, forever)

        simulator.schedule(0, forever)
        with pytest.raises(RuntimeError, match="runaway"):
            simulator.run(max_events=100)


class TestResource:
    def test_immediate_acquire_when_free(self):
        resource = Resource("r")
        fired = []
        resource.acquire(lambda: fired.append(1))
        assert fired == [1]
        assert resource.busy

    def test_waiters_run_fifo_on_release(self):
        resource = Resource("r")
        order = []
        resource.acquire(lambda: order.append("first"))
        resource.acquire(lambda: order.append("second"))
        resource.acquire(lambda: order.append("third"))
        assert order == ["first"]
        resource.release()
        assert order == ["first", "second"]
        resource.release()
        assert order == ["first", "second", "third"]

    def test_release_while_free_raises(self):
        with pytest.raises(RuntimeError):
            Resource("r").release()


class TestPipelineCrossValidation:
    """The DES and the analytic schedule must agree cycle-for-cycle."""

    CASES = [
        StageTiming(preprocess=100, gates=200, hidden_state=300),  # compute-bound
        StageTiming(preprocess=1000, gates=10, hidden_state=10),   # preprocess-bound
        StageTiming(preprocess=224, gates=1, hidden_state=454),    # paper FP shape
        StageTiming(preprocess=248, gates=404, hidden_state=1633), # paper vanilla
        StageTiming(preprocess=5, gates=5, hidden_state=5),
    ]

    @pytest.mark.parametrize("timing", CASES)
    @pytest.mark.parametrize("items", [0, 1, 2, 3, 10, 100])
    def test_preemptive_matches_analytic(self, timing, items):
        total, _ = simulate_item_pipeline(timing, items, preemptive=True)
        assert total == pipelined_schedule(timing, items)

    @pytest.mark.parametrize("timing", CASES)
    @pytest.mark.parametrize("items", [0, 1, 2, 10])
    def test_serial_matches_analytic(self, timing, items):
        total, _ = simulate_item_pipeline(timing, items, preemptive=False)
        assert total == serial_schedule(timing, items)

    @given(
        preprocess=st.integers(min_value=1, max_value=3000),
        gates=st.integers(min_value=1, max_value=3000),
        hidden=st.integers(min_value=1, max_value=3000),
        items=st.integers(min_value=0, max_value=60),
    )
    @settings(max_examples=60, deadline=None)
    def test_agreement_property(self, preprocess, gates, hidden, items):
        timing = StageTiming(preprocess=preprocess, gates=gates, hidden_state=hidden)
        des_pipe, _ = simulate_item_pipeline(timing, items, preemptive=True)
        des_serial, _ = simulate_item_pipeline(timing, items, preemptive=False)
        assert des_pipe == pipelined_schedule(timing, items)
        assert des_serial == serial_schedule(timing, items)
        assert des_pipe <= des_serial

    def test_trace_spans_do_not_overlap_on_compute(self):
        timing = StageTiming(preprocess=50, gates=100, hidden_state=100)
        _, trace = simulate_item_pipeline(timing, 10, preemptive=True)
        spans = sorted(trace.compute_spans)
        for (_, end), (next_start, _) in zip(spans, spans[1:]):
            assert next_start >= end  # the recurrence serialises compute

    def test_trace_shows_overlap_in_preemptive_mode(self):
        timing = StageTiming(preprocess=100, gates=100, hidden_state=100)
        _, trace = simulate_item_pipeline(timing, 5, preemptive=True)
        # Some preprocess span must start before the previous compute ends.
        compute_spans = sorted(trace.compute_spans)
        preprocess_spans = sorted(trace.preprocess_spans)
        overlapped = any(
            p_start < c_end
            for (p_start, _), (_, c_end) in zip(preprocess_spans[1:], compute_spans)
        )
        assert overlapped
