"""Tests for clock domains and the HLS loop latency model."""

import pytest
from hypothesis import given, strategies as st

from repro.hw.clock import DEFAULT_KERNEL_CLOCK_HZ, ClockDomain
from repro.hw.hls import (
    FIXED_OPS,
    FLOAT_OPS,
    HlsLoop,
    LOOP_OVERHEAD_CYCLES,
    LoopNest,
    OpLatency,
    PragmaSet,
    op_table,
)


class TestClockDomain:
    def test_default_is_300mhz(self):
        assert DEFAULT_KERNEL_CLOCK_HZ == 300_000_000

    def test_one_cycle_at_300mhz_is_one_third_microsecond_scaled(self):
        clock = ClockDomain()
        assert clock.cycles_to_microseconds(1) == pytest.approx(0.003333, rel=1e-3)

    def test_round_trip(self):
        clock = ClockDomain(frequency_hz=100e6)
        assert clock.seconds_to_cycles(clock.cycles_to_seconds(42)) == 42

    def test_seconds_to_cycles_rounds_up(self):
        clock = ClockDomain(frequency_hz=100e6)
        assert clock.seconds_to_cycles(1.01e-8) == 2

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            ClockDomain(frequency_hz=0)

    def test_rejects_negative_cycles(self):
        with pytest.raises(ValueError):
            ClockDomain().cycles_to_seconds(-1)


class TestOpLatency:
    def test_tables_have_core_ops(self):
        for table in (FLOAT_OPS, FIXED_OPS):
            assert {"add", "mul", "div"} <= set(table)

    def test_fixed_add_is_single_cycle(self):
        assert FIXED_OPS["add"].depth == 1

    def test_float_ops_slower_than_fixed(self):
        # The premise of the paper's fixed-point optimisation.
        for op in ("add", "mul"):
            assert FLOAT_OPS[op].depth > FIXED_OPS[op].depth

    def test_op_table_dispatch(self):
        assert op_table(fixed_point=True) is FIXED_OPS
        assert op_table(fixed_point=False) is FLOAT_OPS

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            OpLatency(depth=-1)
        with pytest.raises(ValueError):
            OpLatency(depth=1, ii=0)


class TestHlsLoop:
    def test_unpipelined_latency(self):
        loop = HlsLoop(name="l", trip_count=10, iteration_depth=5)
        assert loop.latency_cycles == 10 * (5 + LOOP_OVERHEAD_CYCLES)

    def test_pipelined_latency(self):
        loop = HlsLoop(
            name="l", trip_count=10, iteration_depth=5,
            pragmas=PragmaSet(pipeline=True, target_ii=1),
        )
        assert loop.latency_cycles == 5 + 1 * 9

    def test_pipelining_never_hurts(self):
        for trips in (1, 2, 16, 100):
            plain = HlsLoop(name="l", trip_count=trips, iteration_depth=7)
            piped = HlsLoop(
                name="l", trip_count=trips, iteration_depth=7,
                pragmas=PragmaSet(pipeline=True, target_ii=1),
            )
            assert piped.latency_cycles <= plain.latency_cycles

    def test_carried_dependency_bounds_ii(self):
        loop = HlsLoop(
            name="l", trip_count=10, iteration_depth=5,
            pragmas=PragmaSet(pipeline=True, target_ii=1),
            carried_dependency_ii=8,
        )
        assert loop.achieved_ii == 8

    def test_memory_port_bound(self):
        # 6 accesses over 2 BRAM ports -> II >= 3.
        loop = HlsLoop(
            name="l", trip_count=10, iteration_depth=5,
            pragmas=PragmaSet(pipeline=True, target_ii=1),
            memory_accesses_per_iteration=6,
        )
        assert loop.achieved_ii == 3

    def test_array_partition_removes_port_bound(self):
        loop = HlsLoop(
            name="l", trip_count=10, iteration_depth=5,
            pragmas=PragmaSet(pipeline=True, target_ii=1, array_partition=True),
            memory_accesses_per_iteration=6,
        )
        assert loop.achieved_ii == 1

    def test_unroll_reduces_trip_count(self):
        loop = HlsLoop(
            name="l", trip_count=10, iteration_depth=5,
            pragmas=PragmaSet(pipeline=True, target_ii=1, unroll=4, array_partition=True),
            unroll_depth_penalty=0,
        )
        assert loop.effective_trip_count == 3

    def test_unroll_raises_memory_demand(self):
        loop = HlsLoop(
            name="l", trip_count=16, iteration_depth=5,
            pragmas=PragmaSet(pipeline=True, target_ii=1, unroll=4),
            memory_accesses_per_iteration=2,
        )
        # 2 * 4 accesses over 2 ports -> II 4.
        assert loop.achieved_ii == 4

    def test_unroll_depth_penalty(self):
        loop = HlsLoop(
            name="l", trip_count=16, iteration_depth=10,
            pragmas=PragmaSet(pipeline=True, unroll=4, array_partition=True),
            unroll_depth_penalty=8,
        )
        assert loop.effective_depth == 10 + 8 * 2  # log2(4) = 2 levels

    def test_zero_trip_count(self):
        loop = HlsLoop(name="l", trip_count=0, iteration_depth=5)
        assert loop.latency_cycles == 0

    def test_steady_state_ii(self):
        piped = HlsLoop(
            name="l", trip_count=10, iteration_depth=5,
            pragmas=PragmaSet(pipeline=True, target_ii=2),
        )
        assert piped.steady_state_ii == 2
        plain = HlsLoop(name="l", trip_count=10, iteration_depth=5)
        assert plain.steady_state_ii == 5 + LOOP_OVERHEAD_CYCLES

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            HlsLoop(name="l", trip_count=-1, iteration_depth=5)
        with pytest.raises(ValueError):
            HlsLoop(name="l", trip_count=1, iteration_depth=0)
        with pytest.raises(ValueError):
            PragmaSet(unroll=0)

    @given(
        st.integers(min_value=1, max_value=1000),
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=16),
    )
    def test_pipelined_latency_formula_property(self, trips, depth, ii):
        loop = HlsLoop(
            name="l", trip_count=trips, iteration_depth=depth,
            pragmas=PragmaSet(pipeline=True, target_ii=ii),
        )
        assert loop.latency_cycles == depth + ii * (trips - 1)


class TestDataflowRegion:
    def test_latency_is_max_plus_channel(self):
        from repro.hw.hls import DataflowRegion

        region = DataflowRegion(
            name="d",
            loops=(
                HlsLoop(name="a", trip_count=10, iteration_depth=5),   # 60
                HlsLoop(name="b", trip_count=3, iteration_depth=4),    # 15
            ),
            channel_cycles=2,
        )
        assert region.latency_cycles == 60 + 2

    def test_parallel_never_slower_than_any_member(self):
        from repro.hw.hls import DataflowRegion

        loops = tuple(
            HlsLoop(name=f"l{i}", trip_count=i + 1, iteration_depth=7)
            for i in range(4)
        )
        region = DataflowRegion(name="d", loops=loops, channel_cycles=0)
        assert region.latency_cycles == max(l.latency_cycles for l in loops)

    def test_region_composes_in_nest(self):
        from repro.hw.hls import DataflowRegion

        region = DataflowRegion(
            name="d",
            loops=(HlsLoop(name="a", trip_count=2, iteration_depth=3),),
            channel_cycles=1,
        )
        tail = HlsLoop(name="t", trip_count=2, iteration_depth=3)
        nest = LoopNest(name="k", loops=(region, tail), prologue_cycles=5)
        assert nest.latency_cycles == 5 + region.latency_cycles + tail.latency_cycles
        assert "d" in nest.breakdown()

    def test_empty_region_rejected(self):
        from repro.hw.hls import DataflowRegion

        with pytest.raises(ValueError):
            DataflowRegion(name="d", loops=())


class TestLoopNest:
    def test_sums_loops_and_prologue(self):
        nest = LoopNest(
            name="k",
            loops=(
                HlsLoop(name="a", trip_count=4, iteration_depth=3),
                HlsLoop(name="b", trip_count=2, iteration_depth=5),
            ),
            prologue_cycles=10,
        )
        assert nest.latency_cycles == 10 + 4 * 4 + 2 * 6

    def test_breakdown_keys(self):
        nest = LoopNest(
            name="k",
            loops=(HlsLoop(name="a", trip_count=4, iteration_depth=3),),
            prologue_cycles=7,
        )
        breakdown = nest.breakdown()
        assert breakdown["prologue"] == 7
        assert breakdown["a"] == 16
