"""The self-protecting SmartSSD write path: stream admission modes,
copy-on-write pre-image preservation, snapshot/restore byte-identity,
integrity checksums, honest timing, and the telemetry-detached
transfer-recording regression."""

import pytest

from repro.hw.smartssd import (
    MODE_ALLOW,
    MODE_BLOCK,
    MODE_COW,
    IntegrityError,
    SmartSSD,
    WriteRefused,
)
from repro.telemetry import Telemetry


def _fill(key: str, num_bytes: int, tag: str = "v1") -> bytes:
    seed = f"{key}:{tag}".encode()
    return (seed * (num_bytes // len(seed) + 1))[:num_bytes]


@pytest.fixture
def device():
    return SmartSSD()


@pytest.fixture
def seeded(device):
    originals = {}
    for index in range(4):
        key = f"user-{index}"
        data = _fill(key, 8192)
        device.ssd.write_object(key, 8192, data=data)
        originals[key] = data
    return device, originals


class TestStreamModes:
    def test_default_mode_is_allow(self, device):
        assert device.stream_mode("anyone") == MODE_ALLOW

    def test_unknown_mode_rejected(self, device):
        with pytest.raises(ValueError, match="unknown stream mode"):
            device.set_stream_mode("s", "panic")

    def test_allow_clears_a_previous_mode(self, device):
        device.set_stream_mode("s", MODE_BLOCK)
        device.set_stream_mode("s", MODE_ALLOW)
        seconds = device.stream_write("s", "out", 4096)
        assert seconds > 0
        assert device.allowed_writes == 1

    def test_blocked_stream_raises_and_is_counted(self, device):
        device.set_stream_mode("s", MODE_BLOCK)
        with pytest.raises(WriteRefused):
            device.stream_write("s", "victim", 4096)
        assert device.blocked_writes == 1
        assert device.blocked_bytes == 4096
        assert device.blocked_by_stream["s"] == {"writes": 1, "bytes": 4096}
        assert not device.ssd.has_object("victim")

    def test_block_is_per_stream(self, device):
        device.set_stream_mode("bad", MODE_BLOCK)
        device.stream_write("good", "neighbour", 4096)
        assert device.ssd.has_object("neighbour")


class TestCopyOnWrite:
    def test_cow_preserves_the_first_preimage(self, seeded):
        device, originals = seeded
        device.set_stream_mode("s", MODE_COW)
        device.stream_write("s", "user-0", 8192, data=_fill("user-0", 8192, "evil"))
        assert device.cow_copies == 1
        assert device.cow_bytes == 8192
        # Second overwrite of the same object copies nothing new.
        device.stream_write("s", "user-0", 8192, data=_fill("user-0", 8192, "evil2"))
        assert device.cow_copies == 1

    def test_cow_write_costs_more_than_a_plain_write(self, seeded):
        device, _ = seeded
        plain = device.stream_write("p", "user-1", 8192,
                                    data=_fill("user-1", 8192, "v2"))
        device.set_stream_mode("s", MODE_COW)
        protected = device.stream_write("s", "user-2", 8192,
                                        data=_fill("user-2", 8192, "evil"))
        assert protected > plain
        assert device.protection_overhead_seconds > 0

    def test_cow_arms_a_snapshot_automatically(self, seeded):
        device, _ = seeded
        assert device.active_snapshot_id is None
        device.set_stream_mode("s", MODE_COW)
        device.stream_write("s", "user-0", 8192, data=b"x" * 8192)
        assert device.active_snapshot_id is not None

    def test_new_objects_are_tracked_for_deletion_not_copied(self, seeded):
        device, _ = seeded
        device.snapshot_volume()
        device.set_stream_mode("s", MODE_COW)
        device.stream_write("s", "dropper", 4096, data=b"y" * 4096)
        assert device.cow_copies == 0
        result = device.restore_volume()
        assert result.deleted_objects == 1
        assert not device.ssd.has_object("dropper")


class TestSnapshotRestore:
    def test_restore_is_byte_identical(self, seeded):
        device, originals = seeded
        device.snapshot_volume()
        device.set_stream_mode("s", MODE_COW)
        for key in originals:
            device.stream_write("s", key, 8192, data=_fill(key, 8192, "evil"))
        for key, data in originals.items():
            assert device.ssd.read_object_data(key) != data
        result = device.restore_volume()
        assert result.restored_objects == len(originals)
        assert result.restored_bytes == 8192 * len(originals)
        assert result.seconds > 0
        for key, data in originals.items():
            assert device.ssd.read_object_data(key) == data
            assert device.verify_object(key)

    def test_restore_without_snapshot_raises(self, device):
        with pytest.raises(RuntimeError, match="no active snapshot"):
            device.restore_volume()

    def test_restore_unknown_snapshot_raises(self, seeded):
        device, _ = seeded
        device.snapshot_volume()
        with pytest.raises(KeyError):
            device.restore_volume(snapshot_id=999)

    def test_corrupted_snapshot_copy_is_detected(self, seeded):
        device, _ = seeded
        snapshot_id = device.snapshot_volume()
        device.set_stream_mode("s", MODE_COW)
        device.stream_write("s", "user-0", 8192, data=b"z" * 8192)
        snapshot = device._snapshots[snapshot_id]
        num_bytes, data, checksum = snapshot.delta["user-0"]
        snapshot.delta["user-0"] = (num_bytes, b"\x00" * num_bytes, checksum)
        with pytest.raises(IntegrityError):
            device.restore_volume()

    def test_verify_object_detects_out_of_band_tampering(self, seeded):
        device, _ = seeded
        device.snapshot_volume()       # records checksum baselines
        assert device.verify_object("user-0")
        device.ssd.write_object("user-0", 8192, data=b"t" * 8192)
        # write_object bypasses stream_write, so the recorded checksum
        # is now stale — exactly what verify_object must flag.
        assert not device.verify_object("user-0")

    def test_verify_object_unknown_key_raises(self, device):
        with pytest.raises(KeyError):
            device.verify_object("ghost")


class TestAccountingAndTelemetry:
    def test_protection_summary_keys(self, seeded):
        device, _ = seeded
        device.set_stream_mode("s", MODE_COW)
        device.stream_write("s", "user-0", 8192, data=b"x" * 8192)
        device.set_stream_mode("s", MODE_BLOCK)
        with pytest.raises(WriteRefused):
            device.stream_write("s", "user-1", 8192)
        summary = device.protection_summary()
        assert summary["allowed_writes"] == 1
        assert summary["blocked_writes"] == 1
        assert summary["cow_copies"] == 1
        assert summary["snapshots"] == 1
        assert summary["streams_blocked"] == 1
        assert summary["protection_overhead_seconds"] > 0

    def test_protection_metrics_recorded_when_attached(self, seeded):
        device, _ = seeded
        device.telemetry = Telemetry()
        device.set_stream_mode("s", MODE_COW)
        device.stream_write("s", "user-0", 8192, data=b"x" * 8192)
        device.set_stream_mode("s", MODE_BLOCK)
        with pytest.raises(WriteRefused):
            device.stream_write("s", "user-1", 8192)
        device.restore_volume()
        names = {entry["name"] for entry in device.telemetry.metrics.snapshot()}
        assert {
            "repro_resp_blocked_writes_total",
            "repro_resp_blocked_bytes_total",
            "repro_resp_cow_bytes_total",
            "repro_resp_snapshots_total",
            "repro_resp_restores_total",
            "repro_resp_enforcement_seconds",
        } <= names

    def test_numbers_identical_with_and_without_telemetry(self):
        def run(telemetry):
            device = SmartSSD()
            device.telemetry = telemetry
            device.ssd.write_object("user", 4096, data=b"a" * 4096)
            device.set_stream_mode("s", MODE_COW)
            seconds = device.stream_write("s", "user", 4096, data=b"b" * 4096)
            result = device.restore_volume()
            return seconds, result, device.protection_summary()

        assert run(None) == run(Telemetry())


class TestTransferRecordingRegression:
    """`_record_transfer` must guard telemetry inside the helper, so every
    transfer path is safe with telemetry detached (the historical bug:
    an unguarded `self.telemetry.metrics` access)."""

    def test_all_transfer_paths_safe_with_telemetry_detached(self, device):
        assert device.telemetry is None
        device.host_load_weights(1024)
        device.ssd.write_object("obj", 2048)
        device.p2p_fetch("obj")
        device.host_fetch("obj")
        assert [r.route for r in device.transfers] == [
            "host_to_fpga", "p2p", "host",
        ]

    def test_record_transfer_itself_is_guarded(self, device):
        from repro.hw.smartssd import TransferRecord

        device.telemetry = None
        device._record_transfer(TransferRecord("p2p", 1, 1e-6))  # must not raise

    def test_transfers_recorded_when_telemetry_attached(self, device):
        device.telemetry = Telemetry()
        device.host_load_weights(1024)
        names = {entry["name"] for entry in device.telemetry.metrics.snapshot()}
        assert "repro_storage_bytes_total" in names
