"""The hash-chained audit log: determinism, tamper evidence, per-stream
chains, and the JSONL round trip."""

import dataclasses

import pytest

from repro.response.audit import (
    GENESIS_HASH,
    AuditLog,
    AuditTamperError,
)


def _sample_appends(log: AuditLog) -> AuditLog:
    log.append("proc-1", 3, "alert", "observe", {"probability": 0.8})
    log.append("proc-2", 1, "alert", "observe", {"probability": 0.9})
    log.append("proc-1", 5, "escalate", "write_block",
               {"probability": 0.92, "streak": 2, "applied": ["write_block"]})
    log.append("proc-2", 4, "gated", "kill", {"probability": 0.99})
    return log


class TestChaining:
    def test_empty_log_heads_are_genesis(self):
        log = AuditLog()
        assert log.head_hash == GENESIS_HASH
        assert log.stream_head("anything") == GENESIS_HASH
        assert log.stream_heads() == {}
        assert log.verify()

    def test_identical_appends_give_bit_identical_logs(self):
        first = _sample_appends(AuditLog())
        second = _sample_appends(AuditLog())
        assert first.head_hash == second.head_hash
        assert first.stream_heads() == second.stream_heads()
        assert first.to_jsonl() == second.to_jsonl()

    def test_each_record_chains_on_the_previous(self):
        log = _sample_appends(AuditLog())
        records = log.records
        assert records[0].prev_hash == GENESIS_HASH
        for prev, record in zip(records, records[1:]):
            assert record.prev_hash == prev.entry_hash
        assert log.head_hash == records[-1].entry_hash

    def test_order_matters_for_the_global_chain(self):
        forward = AuditLog()
        forward.append("a", 0, "alert", "observe", {})
        forward.append("b", 0, "alert", "observe", {})
        swapped = AuditLog()
        swapped.append("b", 0, "alert", "observe", {})
        swapped.append("a", 0, "alert", "observe", {})
        assert forward.head_hash != swapped.head_hash

    def test_verify_passes_on_untouched_log(self):
        assert _sample_appends(AuditLog()).verify()


class TestPerStreamChains:
    def test_stream_chain_independent_of_interleaving(self):
        """The failover-invariance core: a stream's chain depends only on
        its own records, not on how other streams interleave globally."""
        mixed = _sample_appends(AuditLog())
        solo = AuditLog()
        solo.append("proc-1", 3, "alert", "observe", {"probability": 0.8})
        solo.append("proc-1", 5, "escalate", "write_block",
                    {"probability": 0.92, "streak": 2,
                     "applied": ["write_block"]})
        assert mixed.stream_head("proc-1") == solo.stream_head("proc-1")
        assert mixed.head_hash != solo.head_hash

    def test_stream_heads_cover_every_stream(self):
        log = _sample_appends(AuditLog())
        assert set(log.stream_heads()) == {"proc-1", "proc-2"}

    def test_stream_names_are_canonicalised_to_str(self):
        log = AuditLog()
        log.append(17, 0, "alert", "observe", {})
        assert log.stream_head(17) == log.stream_head("17") != GENESIS_HASH


class TestTamperEvidence:
    def test_mutated_details_break_verification(self):
        log = _sample_appends(AuditLog())
        # Frozen dataclass: forge a record the way an attacker with
        # memory access would, then verify must catch it.
        forged = dataclasses.replace(
            log.records[1], details={"probability": 0.1}
        )
        log._records[1] = forged
        with pytest.raises(AuditTamperError):
            log.verify()

    def test_dropped_record_breaks_verification(self):
        log = _sample_appends(AuditLog())
        del log._records[1]
        with pytest.raises(AuditTamperError):
            log.verify()

    def test_reordered_records_break_verification(self):
        log = _sample_appends(AuditLog())
        log._records[0], log._records[1] = log._records[1], log._records[0]
        with pytest.raises(AuditTamperError):
            log.verify()

    def test_truncated_head_breaks_verification(self):
        log = _sample_appends(AuditLog())
        log._records.pop()
        with pytest.raises(AuditTamperError):
            log.verify()


class TestJsonlRoundTrip:
    def test_write_read_round_trip(self, tmp_path):
        log = _sample_appends(AuditLog())
        path = tmp_path / "audit.jsonl"
        log.write(path)
        loaded = AuditLog.read(path)
        assert loaded.head_hash == log.head_hash
        assert loaded.stream_heads() == log.stream_heads()
        assert loaded.to_jsonl() == log.to_jsonl()
        assert loaded.verify()

    def test_read_rejects_edited_file(self, tmp_path):
        log = _sample_appends(AuditLog())
        path = tmp_path / "audit.jsonl"
        log.write(path)
        text = path.read_text().replace("0.92", "0.02")
        assert text != path.read_text()
        path.write_text(text)
        with pytest.raises(AuditTamperError):
            AuditLog.read(path)
