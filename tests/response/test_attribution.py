"""Occlusion attribution: bit-exactness, chunk invariance, ranking."""

import numpy as np
import pytest

from repro.core.config import OptimizationLevel
from repro.core.engine import engine_at_level
from repro.response.attribution import attribute_window
from tests.conftest import TEST_SEQUENCE_LENGTH


@pytest.fixture(scope="module")
def engine(trained_model):
    return engine_at_level(
        trained_model, OptimizationLevel.FIXED_POINT,
        sequence_length=TEST_SEQUENCE_LENGTH,
    )


@pytest.fixture(scope="module")
def window(rng_module):
    return rng_module.integers(0, 278, size=TEST_SEQUENCE_LENGTH)


@pytest.fixture(scope="module")
def rng_module():
    return np.random.default_rng(2024)


class TestScores:
    def test_scores_match_manual_occlusion(self, engine, window):
        attribution = attribute_window(engine, window, baseline_token=0)
        original = float(engine.infer_batch(
            np.asarray(window)[None, :]).probabilities[0])
        assert attribution.probability == original
        for position in (0, TEST_SEQUENCE_LENGTH // 2,
                         TEST_SEQUENCE_LENGTH - 1):
            occluded = np.asarray(window).copy()
            occluded[position] = 0
            p_occluded = float(
                engine.infer_batch(occluded[None, :]).probabilities[0]
            )
            assert attribution.scores[position].score == original - p_occluded
            assert attribution.scores[position].token == int(window[position])

    def test_chunking_never_changes_a_bit(self, engine, window):
        whole = attribute_window(engine, window, max_batch=1024)
        chunked = attribute_window(engine, window, max_batch=7)
        assert whole == chunked

    def test_deterministic_across_calls(self, engine, window):
        assert attribute_window(engine, window) == attribute_window(
            engine, window
        )

    def test_baseline_token_changes_scores(self, engine, window):
        # Guard against a baseline that is a no-op: occluding with a
        # different token must (for this trained model) move some score.
        zero = attribute_window(engine, window, baseline_token=0)
        other = attribute_window(engine, window, baseline_token=5)
        assert zero.baseline_token == 0 and other.baseline_token == 5
        assert any(
            a.score != b.score for a, b in zip(zero.scores, other.scores)
        )


class TestRanking:
    def test_top_k_sorted_by_score_then_position(self, engine, window):
        attribution = attribute_window(engine, window)
        top = attribution.top(5)
        assert len(top) == 5
        keys = [(-a.score, a.position) for a in top]
        assert keys == sorted(keys)
        best = max(a.score for a in attribution.scores)
        assert top[0].score == best

    def test_as_dict_shape(self, engine, window):
        record = attribute_window(engine, window, window_index=9).as_dict(3)
        assert record["window_index"] == 9
        assert len(record["top"]) == 3
        position, token, score = record["top"][0]
        assert isinstance(position, int) and isinstance(token, int)
        assert isinstance(score, float)


class TestValidation:
    def test_rejects_wrong_window_length(self, engine):
        with pytest.raises(ValueError, match="sequence length"):
            attribute_window(engine, np.zeros(TEST_SEQUENCE_LENGTH + 1,
                                              dtype=np.int64))

    def test_rejects_non_1d_window(self, engine):
        with pytest.raises(ValueError, match="1-D"):
            attribute_window(
                engine,
                np.zeros((2, TEST_SEQUENCE_LENGTH), dtype=np.int64),
            )
