"""The graduated response policy state machine."""

import dataclasses

import pytest

from repro.hw.smartssd import MODE_BLOCK, MODE_COW, SmartSSD, WriteRefused
from repro.response.policy import (
    ACTION_KILL,
    ACTION_OBSERVE,
    ACTION_QUARANTINE,
    ACTION_RESTORE,
    ACTION_WRITE_BLOCK,
    ESCALATION_LADDER,
    ResponseEngine,
    ResponsePolicy,
    SmartSsdEnforcer,
)
from repro.telemetry import Telemetry


@dataclasses.dataclass(frozen=True)
class _Verdict:
    window_index: int
    probability: float
    is_ransomware: bool = True


def v(window_index, probability, is_ransomware=True):
    return _Verdict(window_index, probability, is_ransomware)


POLICY = ResponsePolicy(
    observe_threshold=0.5, write_block_threshold=0.6,
    quarantine_threshold=0.8, kill_threshold=0.95,
    confirmations=2, attribute=False,
)


class _RecordingEnforcer:
    """Duck-typed enforcer that records hook invocations in order."""

    def __init__(self):
        self.calls = []

    def observe(self, stream):
        self.calls.append(("observe", stream))

    def write_block(self, stream):
        self.calls.append(("write_block", stream))

    def quarantine(self, stream):
        self.calls.append(("quarantine", stream))

    def kill(self, stream):
        self.calls.append(("kill", stream))

    def restore(self, stream):
        self.calls.append(("restore", stream))
        return None


class TestPolicyValidation:
    def test_target_action_picks_most_severe_cleared_rung(self):
        assert POLICY.target_action(0.55) == ACTION_OBSERVE
        assert POLICY.target_action(0.6) == ACTION_WRITE_BLOCK
        assert POLICY.target_action(0.85) == ACTION_QUARANTINE
        assert POLICY.target_action(0.99) == ACTION_KILL

    def test_disabled_rungs_are_skipped(self):
        policy = ResponsePolicy(write_block_threshold=None,
                                quarantine_threshold=0.8,
                                kill_threshold=None)
        assert policy.target_action(0.7) == ACTION_OBSERVE
        assert policy.target_action(0.9) == ACTION_QUARANTINE

    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_thresholds_validated(self, bad):
        with pytest.raises(ValueError):
            ResponsePolicy(write_block_threshold=bad)

    def test_confirmations_validated(self):
        with pytest.raises(ValueError):
            ResponsePolicy(confirmations=0)


class TestEscalation:
    def test_streak_gates_escalation(self):
        engine = ResponseEngine(POLICY)
        first = engine.on_verdict("p", v(0, 0.9))
        assert not first.escalated and first.action == ACTION_OBSERVE
        second = engine.on_verdict("p", v(1, 0.9))
        assert second.escalated and second.action == ACTION_QUARANTINE

    def test_non_qualifying_verdict_resets_the_streak(self):
        engine = ResponseEngine(POLICY)
        engine.on_verdict("p", v(0, 0.9))
        engine.on_verdict("p", v(1, 0.3, is_ransomware=False))
        assert engine.streak_of("p") == 0
        third = engine.on_verdict("p", v(2, 0.9))
        assert not third.escalated

    def test_escalation_is_monotonic(self):
        engine = ResponseEngine(POLICY)
        engine.on_verdict("p", v(0, 0.9))
        engine.on_verdict("p", v(1, 0.9))
        assert engine.action_of("p") == ACTION_QUARANTINE
        # A later, weaker confirmed verdict never de-escalates.
        engine.on_verdict("p", v(2, 0.65))
        assert engine.action_of("p") == ACTION_QUARANTINE

    def test_intermediate_rungs_applied_on_a_jump(self):
        enforcer = _RecordingEnforcer()
        engine = ResponseEngine(POLICY, enforcer=enforcer)
        engine.on_verdict("p", v(0, 0.9))
        engine.on_verdict("p", v(1, 0.9))
        assert enforcer.calls == [
            ("observe", "p"), ("write_block", "p"), ("quarantine", "p"),
        ]

    def test_streams_are_independent(self):
        engine = ResponseEngine(POLICY)
        engine.on_verdict("a", v(0, 0.9))
        engine.on_verdict("a", v(1, 0.9))
        engine.on_verdict("b", v(0, 0.9))
        assert engine.action_of("a") == ACTION_QUARANTINE
        assert engine.action_of("b") == ACTION_OBSERVE

    def test_enforcer_with_missing_hooks_is_tolerated(self):
        class QuarantineOnly:
            def __init__(self):
                self.quarantined = []

            def quarantine(self, stream):
                self.quarantined.append(stream)

        enforcer = QuarantineOnly()
        engine = ResponseEngine(POLICY, enforcer=enforcer)
        engine.on_verdict("p", v(0, 0.9))
        engine.on_verdict("p", v(1, 0.9))
        assert enforcer.quarantined == ["p"]

    def test_alert_recorded_once_per_stream(self):
        engine = ResponseEngine(POLICY)
        engine.on_verdict("p", v(0, 0.55))
        engine.on_verdict("p", v(1, 0.55))
        events = [r.event for r in engine.audit.records]
        assert events.count("alert") == 1


class TestGating:
    def test_kill_is_gated_without_allow_kill(self):
        enforcer = _RecordingEnforcer()
        engine = ResponseEngine(POLICY, enforcer=enforcer)
        engine.on_verdict("p", v(0, 0.99))
        decision = engine.on_verdict("p", v(1, 0.99))
        assert decision.gated == (ACTION_KILL,)
        assert decision.action == ACTION_QUARANTINE
        assert ("kill", "p") not in enforcer.calls
        gated = [r for r in engine.audit.records if r.event == "gated"]
        assert len(gated) == 1 and gated[0].action == ACTION_KILL

    def test_gated_event_recorded_once(self):
        engine = ResponseEngine(POLICY)
        engine.on_verdict("p", v(0, 0.99))
        engine.on_verdict("p", v(1, 0.99))
        engine.on_verdict("p", v(2, 0.99))
        gated = [r for r in engine.audit.records if r.event == "gated"]
        assert len(gated) == 1

    def test_allow_kill_unlocks_the_rung(self):
        policy = dataclasses.replace(POLICY, allow_kill=True)
        enforcer = _RecordingEnforcer()
        engine = ResponseEngine(policy, enforcer=enforcer)
        engine.on_verdict("p", v(0, 0.99))
        decision = engine.on_verdict("p", v(1, 0.99))
        assert decision.action == ACTION_KILL
        assert ("kill", "p") in enforcer.calls

    def test_stream_at_kill_ignores_further_verdicts(self):
        policy = dataclasses.replace(POLICY, allow_kill=True)
        engine = ResponseEngine(policy)
        engine.on_verdict("p", v(0, 0.99))
        engine.on_verdict("p", v(1, 0.99))
        records_before = len(engine.audit)
        decision = engine.on_verdict("p", v(2, 0.99))
        assert not decision.escalated
        assert len(engine.audit) == records_before

    def test_restore_requires_allow_restore(self):
        engine = ResponseEngine(POLICY)
        with pytest.raises(PermissionError):
            engine.restore("p")

    def test_kill_with_allow_restore_rolls_back(self):
        policy = dataclasses.replace(
            POLICY, allow_kill=True, allow_restore=True
        )
        enforcer = _RecordingEnforcer()
        engine = ResponseEngine(policy, enforcer=enforcer)
        engine.on_verdict("p", v(0, 0.99))
        engine.on_verdict("p", v(1, 0.99))
        assert engine.action_of("p") == ACTION_RESTORE
        assert enforcer.calls[-1] == ("restore", "p")
        assert [r.event for r in engine.audit.records][-1] == "restore"


class TestSmartSsdEnforcer:
    def test_observe_arms_copy_on_write(self):
        storage = SmartSSD()
        engine = ResponseEngine(POLICY, enforcer=SmartSsdEnforcer(storage))
        engine.on_verdict("p", v(0, 0.55))
        assert storage.stream_mode("p") == MODE_COW

    def test_write_block_refuses_writes(self):
        storage = SmartSSD()
        engine = ResponseEngine(POLICY, enforcer=SmartSsdEnforcer(storage))
        engine.on_verdict("p", v(0, 0.7))
        engine.on_verdict("p", v(1, 0.7))
        assert storage.stream_mode("p") == MODE_BLOCK
        with pytest.raises(WriteRefused):
            storage.stream_write("p", "victim", 4096)


class TestReportingAndTelemetry:
    def test_summary_counts_streams_by_rung(self):
        engine = ResponseEngine(POLICY)
        engine.on_verdict("a", v(0, 0.9))
        engine.on_verdict("a", v(1, 0.9))
        engine.on_verdict("b", v(0, 0.55))
        summary = engine.summary()
        assert summary["streams"] == 2
        assert summary["actions"][ACTION_QUARANTINE] == 1
        assert summary["actions"][ACTION_OBSERVE] == 1
        assert summary["audit_records"] == len(engine.audit)
        assert summary["audit_head"] == engine.audit.head_hash
        assert set(summary["actions"]) == set(ESCALATION_LADDER)

    def test_telemetry_records_actions_and_span(self):
        telemetry = Telemetry()
        engine = ResponseEngine(POLICY, telemetry=telemetry)
        engine.on_verdict("p", v(0, 0.9))
        engine.on_verdict("p", v(1, 0.9))
        counters = {
            (entry["name"], tuple(sorted(entry["labels"].items()))):
                entry["value"]
            for entry in telemetry.metrics.snapshot()
            if entry["type"] == "counter"
        }
        assert counters[(
            "repro_resp_actions_total", (("action", ACTION_QUARANTINE),)
        )] == 1
        assert counters[("repro_resp_audit_records_total", ())] == len(
            engine.audit
        )
        spans = [root for root in telemetry.tracer.roots
                 if root.name == "response.act"]
        assert len(spans) == 1
        assert spans[0].attributes["unit"] == "window"
        assert spans[0].attributes["action"] == ACTION_QUARANTINE

    def test_decisions_identical_with_and_without_telemetry(self):
        plain = ResponseEngine(POLICY)
        traced = ResponseEngine(POLICY, telemetry=Telemetry())
        verdicts = [v(0, 0.55), v(1, 0.7), v(2, 0.3, is_ransomware=False),
                    v(3, 0.9), v(4, 0.99)]
        for verdict in verdicts:
            assert plain.on_verdict("p", verdict) == traced.on_verdict(
                "p", verdict
            )
        assert plain.audit.head_hash == traced.audit.head_hash
