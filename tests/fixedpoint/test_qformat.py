"""Tests for the fixed-point format descriptor."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.fixedpoint.qformat import PAPER_QFORMAT, PAPER_SCALE_FACTOR, QFormat


class TestConstruction:
    def test_paper_scale_is_ten_to_the_six(self):
        assert PAPER_SCALE_FACTOR == 10**6
        assert PAPER_QFORMAT.scale == 10**6

    def test_rejects_zero_scale(self):
        with pytest.raises(ValueError):
            QFormat(scale=0)

    def test_rejects_negative_scale(self):
        with pytest.raises(ValueError):
            QFormat(scale=-5)

    def test_rejects_float_scale(self):
        with pytest.raises(TypeError):
            QFormat(scale=1000.0)

    def test_is_frozen(self):
        with pytest.raises(Exception):
            PAPER_QFORMAT.scale = 10

    def test_scale_squared(self):
        assert QFormat(scale=1000).scale_squared == 10**6

    def test_resolution(self):
        assert QFormat(scale=100).resolution == pytest.approx(0.01)


class TestQuantize:
    def test_scalar_round_trip(self):
        q = PAPER_QFORMAT
        assert q.dequantize(q.quantize(0.5)) == pytest.approx(0.5)

    def test_scalar_returns_python_int(self):
        assert isinstance(PAPER_QFORMAT.quantize(0.25), int)

    def test_rounds_to_nearest(self):
        q = QFormat(scale=10)
        assert q.quantize(0.26) == 3
        assert q.quantize(0.24) == 2

    def test_negative_values(self):
        q = QFormat(scale=10)
        assert q.quantize(-0.26) == -3

    def test_array_dtype_is_int64(self):
        out = PAPER_QFORMAT.quantize(np.array([0.1, -0.2, 0.3]))
        assert out.dtype == np.int64

    def test_array_round_trip_within_resolution(self):
        q = PAPER_QFORMAT
        values = np.linspace(-2.0, 2.0, 101)
        error = np.abs(q.dequantize(q.quantize(values)) - values)
        assert error.max() <= 0.5 / q.scale + 1e-15

    def test_quantization_error_bound(self):
        q = QFormat(scale=100)
        assert q.quantization_error(np.array([0.123, 0.456])) <= 0.005 + 1e-12


class TestProperties:
    @given(st.floats(min_value=-100.0, max_value=100.0, allow_nan=False))
    def test_round_trip_error_bounded(self, value):
        q = PAPER_QFORMAT
        assert abs(q.dequantize(q.quantize(value)) - value) <= q.resolution

    @given(
        st.floats(min_value=-50.0, max_value=50.0),
        st.floats(min_value=-50.0, max_value=50.0),
    )
    def test_quantize_is_monotone(self, a, b):
        q = PAPER_QFORMAT
        if a <= b:
            assert q.quantize(a) <= q.quantize(b)
