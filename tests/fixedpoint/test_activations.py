"""Tests for fixed-point activation functions."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.fixedpoint.activations import qsigmoid, qsoftsign, qtanh
from repro.fixedpoint.qformat import PAPER_QFORMAT
from repro.nn.activations import sigmoid, softsign

FMT = PAPER_QFORMAT


def q(value):
    return FMT.quantize(value)


def dq(value):
    return FMT.dequantize(value)


class TestSoftsign:
    def test_zero_maps_to_zero(self):
        assert qsoftsign(0, FMT) == 0

    def test_matches_float_softsign(self):
        xs = np.linspace(-8.0, 8.0, 201)
        actual = dq(qsoftsign(q(xs), FMT))
        expected = softsign(xs)
        np.testing.assert_allclose(actual, expected, atol=2e-6)

    def test_output_strictly_inside_unit_interval(self):
        for x in (-1000.0, -3.0, -0.1, 0.1, 3.0, 1000.0):
            value = qsoftsign(q(x), FMT)
            assert abs(value) < FMT.scale

    def test_odd_symmetry(self):
        for x in (0.3, 1.7, 42.0):
            assert qsoftsign(q(x), FMT) == -qsoftsign(q(-x), FMT)

    def test_scalar_returns_int(self):
        assert isinstance(qsoftsign(q(1.5), FMT), int)

    @given(st.floats(min_value=-100.0, max_value=100.0, allow_nan=False))
    def test_monotone_nondecreasing_property(self, x):
        lower = qsoftsign(q(x), FMT)
        upper = qsoftsign(q(x) + 1, FMT)
        assert upper >= lower


class TestSigmoid:
    def test_zero_maps_to_half(self):
        assert qsigmoid(0, FMT) == FMT.scale // 2

    def test_saturates_high(self):
        assert qsigmoid(q(10.0), FMT) == FMT.scale

    def test_saturates_low(self):
        assert qsigmoid(q(-10.0), FMT) == 0

    def test_plan_error_bound(self):
        # PLAN's documented max absolute error is 0.0189.
        xs = np.linspace(-8.0, 8.0, 401)
        actual = dq(qsigmoid(q(xs), FMT))
        expected = sigmoid(xs)
        assert np.max(np.abs(actual - expected)) < 0.0189 + 1e-4

    def test_symmetry_around_half(self):
        for x in (0.5, 1.3, 2.5, 4.0):
            high = qsigmoid(q(x), FMT)
            low = qsigmoid(q(-x), FMT)
            assert high + low == FMT.scale

    def test_output_in_unit_interval(self):
        xs = q(np.linspace(-20, 20, 101))
        values = qsigmoid(xs, FMT)
        assert values.min() >= 0
        assert values.max() <= FMT.scale

    def test_nearly_monotone_over_grid(self):
        # Canonical PLAN has a ~0.004 downward step at the |x| = 2.375
        # segment boundary; anything larger would be a regression.
        xs = q(np.linspace(-6, 6, 301))
        values = qsigmoid(xs, FMT)
        assert np.min(np.diff(values)) >= -0.004 * FMT.scale

    def test_scalar_returns_int(self):
        assert isinstance(qsigmoid(q(0.7), FMT), int)


class TestTanh:
    def test_zero_maps_to_zero(self):
        assert qtanh(0, FMT) == 0

    def test_approximates_float_tanh(self):
        xs = np.linspace(-3.0, 3.0, 121)
        actual = dq(qtanh(q(xs), FMT))
        # Error is 2x the PLAN sigmoid bound.
        assert np.max(np.abs(actual - np.tanh(xs))) < 0.04

    def test_saturates(self):
        assert qtanh(q(10.0), FMT) == FMT.scale
        assert qtanh(q(-10.0), FMT) == -FMT.scale

    def test_odd_symmetry(self):
        for x in (0.4, 1.1, 2.2):
            assert qtanh(q(x), FMT) == -qtanh(q(-x), FMT)
