"""The overflow screen must not rescan static weights per timestep.

``_wide_accumulate_rescale`` screens its operands with ``max(|x|)`` before
deciding whether the wide accumulation can wrap int64.  Weights never
change after load, so the engine precomputes their bound once
(:func:`repro.fixedpoint.ops.operand_bound`) and passes it down — the
per-timestep full-matrix scan of the ``(4H, H+E)`` stacked gate matrix is
pure overhead.  These tests count actual bound evaluations to pin that
the scan is really gone, and that skipping it changes no value (the same
float64 bound feeds the same branch decisions).
"""

import numpy as np
import pytest

from repro.core.config import OptimizationLevel
from repro.core.engine import engine_at_level
from repro.fixedpoint import ops
from repro.fixedpoint.qformat import QFormat
from repro.nn.model import SequenceClassifier

SEQ_LEN = 12
VOCAB = 278


@pytest.fixture
def fmt():
    return QFormat()


@pytest.fixture
def trace(monkeypatch):
    """Capture the element count of every bound scan."""
    captured = []
    monkeypatch.setattr(ops, "bound_scan_trace", captured)
    return captured


def test_operand_bound_matches_full_scan(fmt):
    rng = np.random.default_rng(0)
    array = rng.integers(-10**7, 10**7, size=(16, 9))
    assert ops.operand_bound(array) == float(np.max(np.abs(array)))
    assert ops.operand_bound(np.zeros((0, 3))) == 0.0


def test_qmatmul_precomputed_bound_skips_one_scan(fmt):
    rng = np.random.default_rng(1)
    a = rng.integers(-10**6, 10**6, size=(8, 5))
    b = rng.integers(-10**6, 10**6, size=(5, 6))
    bound = ops.operand_bound(b)

    before = ops.bound_scan_count()
    plain = ops.qmatmul(a, b, fmt)
    mid = ops.bound_scan_count()
    bounded = ops.qmatmul(a, b, fmt, b_bound=bound)
    after = ops.bound_scan_count()

    assert np.array_equal(plain, bounded)
    assert mid - before == 2   # both operands scanned without hints
    assert after - mid == 1    # only the dynamic operand scanned


def test_qmatvec_precomputed_bound_skips_one_scan(fmt):
    rng = np.random.default_rng(2)
    matrix = rng.integers(-10**6, 10**6, size=(8, 5))
    vector = rng.integers(-10**6, 10**6, size=5)
    bound = ops.operand_bound(matrix)

    before = ops.bound_scan_count()
    plain = ops.qmatvec(matrix, vector, fmt)
    mid = ops.bound_scan_count()
    bounded = ops.qmatvec(matrix, vector, fmt, matrix_bound=bound)
    after = ops.bound_scan_count()

    assert np.array_equal(plain, bounded)
    assert mid - before == 2
    assert after - mid == 1


def test_screen_decisions_identical_with_precomputed_bound(fmt):
    # Values near the overflow screen's trigger point: the precomputed
    # bound must route through the exact same suspect-recompute branch.
    huge = np.full((2, 2), 3 * 10**9, dtype=np.int64)
    bound = ops.operand_bound(huge)
    assert np.array_equal(
        ops.qmatmul(huge, huge, fmt),
        ops.qmatmul(huge, huge, fmt, a_bound=bound, b_bound=bound),
    )


class TestEngineNeverRescansWeights:
    """End-to-end: load scans the weights once, inference never again."""

    def _sizes(self, engine):
        dims = engine.config.dimensions
        stacked = 4 * dims.hidden_size * dims.gate_input_size
        per_gate = dims.hidden_size * dims.gate_input_size
        return stacked, per_gate

    def test_load_scans_each_weight_operand_once(self, trace):
        model = SequenceClassifier(seed=11)
        engine = engine_at_level(
            model, OptimizationLevel.FIXED_POINT, sequence_length=SEQ_LEN
        )
        stacked, per_gate = self._sizes(engine)
        assert trace.count(stacked) == 1      # stacked (4H, H+E) matrix
        assert trace.count(per_gate) == 4     # one per gate
        assert trace.count(engine.config.dimensions.hidden_size) >= 1  # FC

    def test_inference_never_scans_weight_sized_operands(self, trace):
        model = SequenceClassifier(seed=11)
        engine = engine_at_level(
            model, OptimizationLevel.FIXED_POINT, sequence_length=SEQ_LEN
        )
        stacked, per_gate = self._sizes(engine)
        trace.clear()  # drop the load-time scans

        rng = np.random.default_rng(7)
        batch = rng.integers(0, VOCAB, size=(4, SEQ_LEN))
        engine.infer_batch(batch)
        assert trace, "inference should still screen dynamic activations"
        assert stacked not in trace
        assert per_gate not in trace

    def test_sequential_path_never_scans_weight_sized_operands(self, trace):
        model = SequenceClassifier(seed=11)
        engine = engine_at_level(
            model, OptimizationLevel.FIXED_POINT, sequence_length=SEQ_LEN
        )
        stacked, per_gate = self._sizes(engine)
        trace.clear()

        rng = np.random.default_rng(8)
        engine.infer_sequence(rng.integers(0, VOCAB, size=SEQ_LEN))
        assert stacked not in trace
        assert per_gate not in trace
