"""Tests for fixed-point arithmetic primitives."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.fixedpoint.ops import (
    _rounded_scale_division,
    qadd,
    qaffine,
    qdot,
    qmatvec,
    qmul,
    qsub,
)
from repro.fixedpoint.qformat import PAPER_QFORMAT, QFormat

FMT = PAPER_QFORMAT


def q(value):
    return FMT.quantize(value)


def dq(value):
    return FMT.dequantize(value)


class TestRoundedDivision:
    def test_positive_half_rounds_away(self):
        assert _rounded_scale_division(15, 10) == 2
        assert _rounded_scale_division(14, 10) == 1

    def test_negative_half_rounds_away(self):
        assert _rounded_scale_division(-15, 10) == -2
        assert _rounded_scale_division(-14, 10) == -1

    def test_scalar_returns_int(self):
        assert isinstance(_rounded_scale_division(100, 10), int)

    def test_array(self):
        out = _rounded_scale_division(np.array([15, -15, 21]), 10)
        assert out.tolist() == [2, -2, 2]

    def test_symmetry(self):
        for value in (7, 13, 15, 99, 101):
            pos = _rounded_scale_division(value, 10)
            neg = _rounded_scale_division(-value, 10)
            assert pos == -neg


class TestElementwise:
    def test_add_preserves_scale(self):
        assert dq(qadd(q(0.25), q(0.5))) == pytest.approx(0.75)

    def test_sub_preserves_scale(self):
        assert dq(qsub(q(0.25), q(0.5))) == pytest.approx(-0.25)

    def test_mul_rescales(self):
        assert dq(qmul(q(0.5), q(0.5), FMT)) == pytest.approx(0.25, abs=1e-6)

    def test_mul_arrays(self):
        a = q(np.array([0.5, -0.5, 2.0]))
        b = q(np.array([0.5, 0.5, 0.25]))
        np.testing.assert_allclose(dq(qmul(a, b, FMT)), [0.25, -0.25, 0.5], atol=1e-6)

    def test_add_scalar_returns_int(self):
        assert isinstance(qadd(q(0.1), q(0.2)), int)


class TestMatvec:
    def test_matches_float_matmul(self, rng):
        matrix = rng.uniform(-1, 1, size=(8, 5))
        vector = rng.uniform(-1, 1, size=5)
        expected = matrix @ vector
        actual = dq(qmatvec(q(matrix), q(vector), FMT))
        np.testing.assert_allclose(actual, expected, atol=1e-5)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            qmatvec(np.zeros((3, 4), dtype=np.int64), np.zeros(5, dtype=np.int64), FMT)

    def test_rejects_non_2d_matrix(self):
        with pytest.raises(ValueError):
            qmatvec(np.zeros(4, dtype=np.int64), np.zeros(4, dtype=np.int64), FMT)

    def test_rejects_non_1d_vector(self):
        with pytest.raises(ValueError):
            qmatvec(np.zeros((3, 3), dtype=np.int64), np.zeros((3, 1), dtype=np.int64), FMT)

    def test_wide_accumulation_beats_per_product_rescale(self, rng):
        # Summing many small products: accumulating wide then rescaling
        # once must not lose the sub-resolution mass.
        count = 1000
        values = np.full(count, 0.0004)  # each product 1.6e-7 < resolution
        matrix = q(values.reshape(1, count))
        vector = q(np.full(count, 0.0004))
        result = dq(qmatvec(matrix, vector, FMT))[0]
        assert result == pytest.approx(count * 0.0004 * 0.0004, rel=0.01)


class TestDotAndAffine:
    def test_dot_matches_float(self, rng):
        a = rng.uniform(-1, 1, size=16)
        b = rng.uniform(-1, 1, size=16)
        assert dq(qdot(q(a), q(b), FMT)) == pytest.approx(a @ b, abs=1e-5)

    def test_dot_rejects_mismatch(self):
        with pytest.raises(ValueError):
            qdot(np.zeros(3, dtype=np.int64), np.zeros(4, dtype=np.int64), FMT)

    def test_affine_matches_float(self, rng):
        matrix = rng.uniform(-1, 1, size=(6, 4))
        vector = rng.uniform(-1, 1, size=4)
        bias = rng.uniform(-1, 1, size=6)
        expected = matrix @ vector + bias
        actual = dq(qaffine(q(matrix), q(vector), q(bias), FMT))
        np.testing.assert_allclose(actual, expected, atol=1e-5)


class TestProperties:
    values = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False)

    @given(values, values)
    def test_mul_commutative(self, a, b):
        assert qmul(q(a), q(b), FMT) == qmul(q(b), q(a), FMT)

    @given(values, values)
    def test_mul_error_bounded(self, a, b):
        exact = a * b
        approx = dq(qmul(q(a), q(b), FMT))
        # Error sources: two input quantisations (each |x| * resolution/2)
        # plus the output rounding (resolution/2).
        bound = (abs(a) + abs(b) + 1.5) * FMT.resolution
        assert abs(approx - exact) <= bound

    @given(values)
    def test_mul_by_one_is_identity(self, a):
        assert qmul(q(a), FMT.scale, FMT) == q(a)

    @given(values, values, values)
    def test_add_associative(self, a, b, c):
        left = qadd(qadd(q(a), q(b)), q(c))
        right = qadd(q(a), qadd(q(b), q(c)))
        assert left == right
