"""Tests for fixed-point arithmetic primitives."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.fixedpoint.ops import (
    FixedPointOverflowError,
    _rounded_scale_division,
    qadd,
    qaffine,
    qdot,
    qmatmul,
    qmatvec,
    qmul,
    qsub,
)
from repro.fixedpoint.qformat import PAPER_QFORMAT, QFormat
from repro.fixedpoint.saturation import rescale_saturation_limit

FMT = PAPER_QFORMAT


def q(value):
    return FMT.quantize(value)


def dq(value):
    return FMT.dequantize(value)


class TestRoundedDivision:
    def test_positive_half_rounds_away(self):
        assert _rounded_scale_division(15, 10) == 2
        assert _rounded_scale_division(14, 10) == 1

    def test_negative_half_rounds_away(self):
        assert _rounded_scale_division(-15, 10) == -2
        assert _rounded_scale_division(-14, 10) == -1

    def test_scalar_returns_int(self):
        assert isinstance(_rounded_scale_division(100, 10), int)

    def test_array(self):
        out = _rounded_scale_division(np.array([15, -15, 21]), 10)
        assert out.tolist() == [2, -2, 2]

    def test_symmetry(self):
        for value in (7, 13, 15, 99, 101):
            pos = _rounded_scale_division(value, 10)
            neg = _rounded_scale_division(-value, 10)
            assert pos == -neg


class TestElementwise:
    def test_add_preserves_scale(self):
        assert dq(qadd(q(0.25), q(0.5))) == pytest.approx(0.75)

    def test_sub_preserves_scale(self):
        assert dq(qsub(q(0.25), q(0.5))) == pytest.approx(-0.25)

    def test_mul_rescales(self):
        assert dq(qmul(q(0.5), q(0.5), FMT)) == pytest.approx(0.25, abs=1e-6)

    def test_mul_arrays(self):
        a = q(np.array([0.5, -0.5, 2.0]))
        b = q(np.array([0.5, 0.5, 0.25]))
        np.testing.assert_allclose(dq(qmul(a, b, FMT)), [0.25, -0.25, 0.5], atol=1e-6)

    def test_add_scalar_returns_int(self):
        assert isinstance(qadd(q(0.1), q(0.2)), int)


class TestMatvec:
    def test_matches_float_matmul(self, rng):
        matrix = rng.uniform(-1, 1, size=(8, 5))
        vector = rng.uniform(-1, 1, size=5)
        expected = matrix @ vector
        actual = dq(qmatvec(q(matrix), q(vector), FMT))
        np.testing.assert_allclose(actual, expected, atol=1e-5)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            qmatvec(np.zeros((3, 4), dtype=np.int64), np.zeros(5, dtype=np.int64), FMT)

    def test_rejects_non_2d_matrix(self):
        with pytest.raises(ValueError):
            qmatvec(np.zeros(4, dtype=np.int64), np.zeros(4, dtype=np.int64), FMT)

    def test_rejects_non_1d_vector(self):
        with pytest.raises(ValueError):
            qmatvec(np.zeros((3, 3), dtype=np.int64), np.zeros((3, 1), dtype=np.int64), FMT)

    def test_wide_accumulation_beats_per_product_rescale(self, rng):
        # Summing many small products: accumulating wide then rescaling
        # once must not lose the sub-resolution mass.
        count = 1000
        values = np.full(count, 0.0004)  # each product 1.6e-7 < resolution
        matrix = q(values.reshape(1, count))
        vector = q(np.full(count, 0.0004))
        result = dq(qmatvec(matrix, vector, FMT))[0]
        assert result == pytest.approx(count * 0.0004 * 0.0004, rel=0.01)


class TestDotAndAffine:
    def test_dot_matches_float(self, rng):
        a = rng.uniform(-1, 1, size=16)
        b = rng.uniform(-1, 1, size=16)
        assert dq(qdot(q(a), q(b), FMT)) == pytest.approx(a @ b, abs=1e-5)

    def test_dot_rejects_mismatch(self):
        with pytest.raises(ValueError):
            qdot(np.zeros(3, dtype=np.int64), np.zeros(4, dtype=np.int64), FMT)

    def test_affine_matches_float(self, rng):
        matrix = rng.uniform(-1, 1, size=(6, 4))
        vector = rng.uniform(-1, 1, size=4)
        bias = rng.uniform(-1, 1, size=6)
        expected = matrix @ vector + bias
        actual = dq(qaffine(q(matrix), q(vector), q(bias), FMT))
        np.testing.assert_allclose(actual, expected, atol=1e-5)


class TestMatmul:
    def test_matches_columnwise_matvec_exactly(self, rng):
        a = q(rng.uniform(-2, 2, size=(9, 6)))
        b = q(rng.uniform(-2, 2, size=(6, 5)))
        product = qmatmul(a, b, FMT)
        assert product.shape == (9, 5)
        for col in range(b.shape[1]):
            np.testing.assert_array_equal(product[:, col], qmatvec(a, b[:, col], FMT))

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            qmatmul(np.zeros(4, dtype=np.int64), np.zeros((4, 2), dtype=np.int64), FMT)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            qmatmul(np.zeros((2, 3), dtype=np.int64), np.zeros((4, 2), dtype=np.int64), FMT)


class TestOverflow:
    """Adversarially large in-format values that wrap plain int64 math."""

    # In-format value ~4.6e12 (near the saturation limit): its square is
    # ~2.1e31 at scale**2, far beyond INT64_MAX ~ 9.2e18.
    BIG = rescale_saturation_limit(FMT) // 2

    def test_qmul_saturates_by_default(self):
        limit = rescale_saturation_limit(FMT)
        assert qmul(self.BIG, self.BIG, FMT) == limit
        assert qmul(-self.BIG, self.BIG, FMT) == -limit
        assert qmul(-self.BIG, -self.BIG, FMT) == limit

    def test_qmul_raise_mode(self):
        with pytest.raises(FixedPointOverflowError):
            qmul(self.BIG, self.BIG, FMT, on_overflow="raise")

    def test_qmul_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            qmul(self.BIG, self.BIG, FMT, on_overflow="wrap")

    def test_qmul_array_saturates_only_wrapped_elements(self):
        a = np.array([self.BIG, q(0.5)], dtype=np.int64)
        b = np.array([self.BIG, q(0.5)], dtype=np.int64)
        out = qmul(a, b, FMT)
        assert out[0] == rescale_saturation_limit(FMT)
        assert out[1] == qmul(q(0.5), q(0.5), FMT)

    def test_qmul_near_threshold_unaffected(self):
        # Large but in-range products must pass through bit-identically
        # even when the overflow screen triggers a full exact recompute.
        a, b = 3_000_000_000, 3_000_000_000  # product 9e18 < 2**63-1
        assert qmul(a, b, FMT) == _rounded_scale_division(a * b, FMT.scale)

    def test_qmatvec_accumulation_saturates(self):
        matrix = np.full((2, 4), self.BIG, dtype=np.int64)
        vector = np.full(4, self.BIG, dtype=np.int64)
        out = qmatvec(matrix, vector, FMT)
        np.testing.assert_array_equal(
            out, np.full(2, rescale_saturation_limit(FMT), dtype=np.int64)
        )

    def test_qmatvec_raise_mode(self):
        matrix = np.full((1, 2), self.BIG, dtype=np.int64)
        vector = np.full(2, -self.BIG, dtype=np.int64)
        with pytest.raises(FixedPointOverflowError):
            qmatvec(matrix, vector, FMT, on_overflow="raise")

    def test_qmatvec_cancelling_accumulation_not_flagged(self):
        # Individual products overflow the screen's bound but the true sum
        # fits: the exact recompute must keep the correct value.
        big = 4_000_000_000_000  # big^2 ~ 1.6e25 overflows; sum cancels
        matrix = np.array([[big, big]], dtype=np.int64)
        vector = np.array([big, -big], dtype=np.int64)
        assert qmatvec(matrix, vector, FMT)[0] == 0

    def test_qmatmul_saturates(self):
        a = np.full((2, 3), self.BIG, dtype=np.int64)
        b = np.full((3, 2), -self.BIG, dtype=np.int64)
        out = qmatmul(a, b, FMT)
        np.testing.assert_array_equal(
            out, np.full((2, 2), -rescale_saturation_limit(FMT), dtype=np.int64)
        )

    def test_qdot_saturates(self):
        a = np.full(3, self.BIG, dtype=np.int64)
        assert qdot(a, a, FMT) == rescale_saturation_limit(FMT)

    def test_saturated_value_survives_downstream_softsign(self):
        # The saturation limit is chosen so q * scale still fits int64,
        # keeping qsoftsign's numerator in range.
        from repro.fixedpoint.activations import qsoftsign

        limit = rescale_saturation_limit(FMT)
        out = qsoftsign(np.array([limit, -limit]), FMT)
        assert abs(int(out[0])) <= FMT.scale  # softsign output in (-1, 1)
        assert int(out[0]) == -int(out[1])

    def test_rounded_division_near_int64_limit(self):
        # The old +half implementation wrapped for magnitudes within
        # scale // 2 of the int64 limit.
        top = np.iinfo(np.int64).max
        assert _rounded_scale_division(top, FMT.scale) == round(top / FMT.scale)
        assert _rounded_scale_division(-top, FMT.scale) == -round(top / FMT.scale)


class TestProperties:
    values = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False)

    @given(values, values)
    def test_mul_commutative(self, a, b):
        assert qmul(q(a), q(b), FMT) == qmul(q(b), q(a), FMT)

    @given(values, values)
    def test_mul_error_bounded(self, a, b):
        exact = a * b
        approx = dq(qmul(q(a), q(b), FMT))
        # Error sources: two input quantisations (each |x| * resolution/2)
        # plus the output rounding (resolution/2).
        bound = (abs(a) + abs(b) + 1.5) * FMT.resolution
        assert abs(approx - exact) <= bound

    @given(values)
    def test_mul_by_one_is_identity(self, a):
        assert qmul(q(a), FMT.scale, FMT) == q(a)

    @given(values, values, values)
    def test_add_associative(self, a, b, c):
        left = qadd(qadd(q(a), q(b)), q(c))
        right = qadd(q(a), qadd(q(b), q(c)))
        assert left == right
