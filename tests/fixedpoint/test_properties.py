"""Property-based tests on the fixed-point arithmetic invariants.

The example-based tests in ``test_ops.py`` / ``test_saturation.py`` pin
specific values; these tests assert the *laws* the datapath must obey for
every input hypothesis can dream up:

* quantise/dequantise round-trips within half a resolution step;
* the rescaled ops track their float references within the derived
  quantisation-error bound;
* ``qmatmul`` is element-for-element the same computation as ``qdot``
  over rows and columns (the batched layout cannot change any value);
* overflow never silently wraps — every result is either the exactly
  rounded wide quotient or the documented saturation limit with the
  correct sign (and ``on_overflow="raise"`` raises instead).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fixedpoint.ops import (
    FixedPointOverflowError,
    qadd,
    qdot,
    qmatmul,
    qmatvec,
    qmul,
    qsub,
)
from repro.fixedpoint.qformat import QFormat
from repro.fixedpoint.saturation import (
    headroom_bits,
    qsaturate,
    rescale_saturation_limit,
)

INT64_MAX = np.iinfo(np.int64).max
INT64_MIN = np.iinfo(np.int64).min

scales = st.sampled_from([10**2, 10**4, 10**6, 2**20])
reals = st.floats(min_value=-100.0, max_value=100.0,
                  allow_nan=False, allow_infinity=False)
# Magnitudes the model actually quantises (|weights| < ~3, |h| < 1).
unit_reals = st.floats(min_value=-2.0, max_value=2.0,
                       allow_nan=False, allow_infinity=False)
# Full-width int64 values, biased toward the overflow-relevant extremes.
wide_ints = st.one_of(
    st.integers(min_value=INT64_MIN + 1, max_value=INT64_MAX),
    st.integers(min_value=-10**9, max_value=10**9),
    st.sampled_from([0, 1, -1, INT64_MAX, INT64_MIN + 1, 2**31, -(2**31)]),
)


def _exact_rounded_division(value: int, scale: int) -> int:
    """Round-half-away-from-zero division in exact Python integers."""
    magnitude, sign = abs(value), -1 if value < 0 else 1
    quotient, remainder = divmod(magnitude, scale)
    if remainder >= scale - scale // 2:
        quotient += 1
    return sign * quotient


class TestRoundTrip:
    @given(value=reals, scale=scales)
    @settings(max_examples=200, deadline=None)
    def test_round_trip_within_half_resolution(self, value, scale):
        fmt = QFormat(scale=scale)
        recovered = fmt.dequantize(fmt.quantize(value))
        assert abs(recovered - value) <= 0.5 / scale + 1e-12

    @given(values=st.lists(reals, min_size=1, max_size=16), scale=scales)
    @settings(max_examples=100, deadline=None)
    def test_array_round_trip_matches_scalar(self, values, scale):
        fmt = QFormat(scale=scale)
        array = np.asarray(values, dtype=np.float64)
        quantized = fmt.quantize(array)
        assert quantized.dtype == np.int64
        assert [int(q) for q in quantized] == [fmt.quantize(v) for v in array]
        assert fmt.quantization_error(array) <= 0.5 / scale + 1e-12


class TestAdditiveGroup:
    @given(a=wide_ints, b=st.integers(min_value=-10**12, max_value=10**12))
    @settings(max_examples=100, deadline=None)
    def test_qsub_inverts_qadd(self, a, b):
        # int64 add/sub wrap symmetrically, so the round trip is exact
        # even at the extremes.
        assert qsub(qadd(a, b), b) == a


class TestFloatReference:
    @given(a=unit_reals, b=unit_reals, scale=scales)
    @settings(max_examples=200, deadline=None)
    def test_qmul_tracks_float_product(self, a, b, scale):
        fmt = QFormat(scale=scale)
        result = fmt.dequantize(qmul(fmt.quantize(a), fmt.quantize(b), fmt))
        # |Δ(ab)| <= |a|Δb + |b|Δa + ΔaΔb with Δ <= 0.5/scale, plus
        # another 0.5/scale for the final rounded rescale.
        tolerance = (0.5 * abs(a) + 0.5 * abs(b) + 1.0) / scale + 0.25 / scale**2
        assert abs(result - a * b) <= tolerance + 1e-12

    @given(
        matrix=st.lists(
            st.lists(unit_reals, min_size=3, max_size=3), min_size=1, max_size=5
        ),
        vector=st.lists(unit_reals, min_size=3, max_size=3),
        scale=scales,
    )
    @settings(max_examples=100, deadline=None)
    def test_qmatvec_tracks_float_product(self, matrix, vector, scale):
        fmt = QFormat(scale=scale)
        m = np.asarray(matrix, dtype=np.float64)
        v = np.asarray(vector, dtype=np.float64)
        result = fmt.dequantize(qmatvec(fmt.quantize(m), fmt.quantize(v), fmt))
        # Each of the k products contributes the qmul bound; the single
        # final rescale adds one more half-step.
        k = m.shape[1]
        per_term = (0.5 * np.abs(m) @ np.ones(k) + 0.5 * np.abs(v).sum()) / scale
        tolerance = per_term + (0.5 + k * 0.25 / scale) / scale + 1e-12
        assert np.all(np.abs(result - m @ v) <= tolerance)


class TestBatchedConsistency:
    @given(
        a=st.lists(
            st.lists(st.integers(min_value=-10**7, max_value=10**7),
                     min_size=4, max_size=4),
            min_size=1, max_size=4,
        ),
        b=st.lists(
            st.lists(st.integers(min_value=-10**7, max_value=10**7),
                     min_size=3, max_size=3),
            min_size=4, max_size=4,
        ),
        scale=scales,
    )
    @settings(max_examples=100, deadline=None)
    def test_qmatmul_equals_qdot_per_element(self, a, b, scale):
        fmt = QFormat(scale=scale)
        am = np.asarray(a, dtype=np.int64)
        bm = np.asarray(b, dtype=np.int64)
        product = qmatmul(am, bm, fmt)
        for i in range(am.shape[0]):
            for j in range(bm.shape[1]):
                assert product[i, j] == qdot(am[i], bm[:, j], fmt)

    @given(
        a=st.lists(
            st.lists(st.integers(min_value=-10**7, max_value=10**7),
                     min_size=4, max_size=4),
            min_size=1, max_size=4,
        ),
        b=st.lists(st.integers(min_value=-10**7, max_value=10**7),
                   min_size=4, max_size=4),
        scale=scales,
    )
    @settings(max_examples=100, deadline=None)
    def test_qmatvec_equals_qmatmul_column(self, a, b, scale):
        fmt = QFormat(scale=scale)
        am = np.asarray(a, dtype=np.int64)
        bv = np.asarray(b, dtype=np.int64)
        assert np.array_equal(
            qmatvec(am, bv, fmt), qmatmul(am, bv[:, np.newaxis], fmt)[:, 0]
        )


class TestOverflowNeverWraps:
    @given(a=wide_ints, b=wide_ints, scale=scales)
    @settings(max_examples=300, deadline=None)
    def test_qmul_is_exact_or_saturated(self, a, b, scale):
        fmt = QFormat(scale=scale)
        exact = a * b  # Python ints: arbitrary precision
        result = qmul(a, b, fmt)
        if INT64_MIN <= exact <= INT64_MAX:
            assert result == _exact_rounded_division(exact, scale)
        else:
            limit = rescale_saturation_limit(fmt)
            assert result == (-limit if exact < 0 else limit)

    @given(a=wide_ints, b=wide_ints, scale=scales)
    @settings(max_examples=150, deadline=None)
    def test_qmul_raise_mode_matches_saturate_decision(self, a, b, scale):
        fmt = QFormat(scale=scale)
        exact = a * b
        if INT64_MIN <= exact <= INT64_MAX:
            assert qmul(a, b, fmt, on_overflow="raise") == qmul(a, b, fmt)
        else:
            with pytest.raises(FixedPointOverflowError):
                qmul(a, b, fmt, on_overflow="raise")

    @given(
        row=st.lists(wide_ints, min_size=1, max_size=4),
        col=st.lists(wide_ints, min_size=1, max_size=4),
        scale=scales,
    )
    @settings(max_examples=200, deadline=None)
    def test_qdot_is_exact_or_saturated(self, row, col, scale):
        size = min(len(row), len(col))
        row, col = row[:size], col[:size]
        fmt = QFormat(scale=scale)
        exact = sum(x * y for x, y in zip(row, col))
        result = qdot(
            np.asarray(row, dtype=np.int64), np.asarray(col, dtype=np.int64), fmt
        )
        if INT64_MIN <= exact <= INT64_MAX:
            assert result == _exact_rounded_division(exact, scale)
        else:
            limit = rescale_saturation_limit(fmt)
            assert result == (-limit if exact < 0 else limit)
            with pytest.raises(FixedPointOverflowError):
                qdot(np.asarray(row, dtype=np.int64),
                     np.asarray(col, dtype=np.int64), fmt, on_overflow="raise")

    @given(a=wide_ints, scale=scales)
    @settings(max_examples=100, deadline=None)
    def test_saturated_value_survives_rescale_by_scale(self, a, scale):
        # The documented purpose of the limit: a saturated result can be
        # re-multiplied by the scale without wrapping int64.
        fmt = QFormat(scale=scale)
        limit = rescale_saturation_limit(fmt)
        assert limit * scale <= INT64_MAX
        assert (limit + 1) * scale > INT64_MAX


class TestSaturationWindow:
    @given(q=wide_ints, bits=st.integers(min_value=2, max_value=63))
    @settings(max_examples=200, deadline=None)
    def test_qsaturate_bounded_and_idempotent(self, q, bits):
        limit = (1 << (bits - 1)) - 1
        clamped = qsaturate(q, bits)
        assert -limit - 1 <= clamped <= limit
        assert qsaturate(clamped, bits) == clamped
        if -limit - 1 <= q <= limit:
            assert clamped == q

    @given(
        values=st.lists(wide_ints, min_size=1, max_size=8),
        bits=st.integers(min_value=2, max_value=63),
    )
    @settings(max_examples=150, deadline=None)
    def test_headroom_certifies_no_clipping(self, values, bits):
        q = np.asarray(values, dtype=np.int64)
        if headroom_bits(q, bits) >= 0:
            assert np.array_equal(qsaturate(q, bits), q)
