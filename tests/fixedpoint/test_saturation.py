"""Tests for saturating arithmetic and the pre-deployment overflow audit."""

import numpy as np
import pytest

from repro.core.weights import HostWeights
from repro.fixedpoint.qformat import PAPER_QFORMAT, QFormat
from repro.fixedpoint.saturation import (
    AuditResult,
    OverflowAudit,
    headroom_bits,
    qsaturate,
)
from repro.nn.model import SequenceClassifier


class TestSaturate:
    def test_values_inside_range_unchanged(self):
        values = np.array([100, -100, 0], dtype=np.int64)
        np.testing.assert_array_equal(qsaturate(values, bits=16), values)

    def test_clamps_high(self):
        assert qsaturate(40_000, bits=16) == 32_767

    def test_clamps_low(self):
        assert qsaturate(-40_000, bits=16) == -32_768

    def test_scalar_returns_int(self):
        assert isinstance(qsaturate(5, bits=8), int)

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            qsaturate(1, bits=1)
        with pytest.raises(ValueError):
            qsaturate(1, bits=64)


class TestHeadroom:
    def test_zero_has_full_headroom(self):
        assert headroom_bits(np.zeros(3, dtype=np.int64), bits=16) == 15

    def test_exact_fit(self):
        # 32767 needs 15 magnitude bits + sign = 16.
        assert headroom_bits(32_767, bits=16) == 0

    def test_overflow_is_negative(self):
        assert headroom_bits(70_000, bits=16) < 0

    def test_paper_scale_weights_fit_32_bits(self):
        model = SequenceClassifier(seed=0)
        quantized = HostWeights.from_model(model).quantized(PAPER_QFORMAT)
        # Unit-range weights at scale 1e6 need ~21 bits: lots of headroom.
        assert headroom_bits(quantized.gates["i"].matrix, bits=32) > 5


class TestOverflowAudit:
    @pytest.fixture(scope="class")
    def quantized(self):
        model = SequenceClassifier(seed=0)
        return HostWeights.from_model(model)

    def test_paper_configuration_fits_dsp48(self, quantized):
        audit = OverflowAudit(PAPER_QFORMAT, accumulator_bits=48, sequence_length=100)
        result = audit.audit(quantized.quantized(PAPER_QFORMAT))
        assert isinstance(result, AuditResult)
        assert result.fits
        assert result.worst_case_accumulator_magnitude < (1 << 47)

    def test_huge_scale_flags_overflow(self, quantized):
        huge = QFormat(10**12)
        audit = OverflowAudit(huge, accumulator_bits=48, sequence_length=100)
        result = audit.audit(quantized.quantized(huge))
        assert not result.fits

    def test_detail_covers_all_gates(self, quantized):
        audit = OverflowAudit(PAPER_QFORMAT)
        result = audit.audit(quantized.quantized(PAPER_QFORMAT))
        assert set(result.detail) == {"i", "f", "c", "o"}

    def test_cell_bound_scales_with_sequence_length(self, quantized):
        q = quantized.quantized(PAPER_QFORMAT)
        short = OverflowAudit(PAPER_QFORMAT, sequence_length=10).audit(q)
        long = OverflowAudit(PAPER_QFORMAT, sequence_length=1000).audit(q)
        assert long.worst_case_cell_magnitude == 100 * short.worst_case_cell_magnitude

    def test_validation(self):
        with pytest.raises(ValueError):
            OverflowAudit(PAPER_QFORMAT, accumulator_bits=4)
        with pytest.raises(ValueError):
            OverflowAudit(PAPER_QFORMAT, sequence_length=0)

    def test_runtime_cell_state_respects_audit_bound(self, quantized):
        """Empirical check: actual cell magnitudes stay under the bound."""
        from repro.core.config import EngineConfig, OptimizationLevel, ModelDimensions
        from repro.core.engine import CSDInferenceEngine

        dims = ModelDimensions(sequence_length=50)
        engine = CSDInferenceEngine(
            EngineConfig(dimensions=dims, optimization=OptimizationLevel.FIXED_POINT),
            quantized,
        )
        rng = np.random.default_rng(0)
        engine.infer_sequence(rng.integers(0, 278, size=50))
        observed = int(np.max(np.abs(engine.hidden_state._cell)))
        bound = OverflowAudit(PAPER_QFORMAT, sequence_length=50).audit(
            quantized.quantized(PAPER_QFORMAT)
        ).worst_case_cell_magnitude
        assert observed <= bound
