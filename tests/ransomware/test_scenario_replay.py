"""Attack-scenario replays: scenario construction across modalities,
interleaving determinism, data-loss accounting, the end-to-end protected
replay, and the retired-mitigation deprecation shim."""

import warnings

import numpy as np
import pytest

from repro.core.config import OptimizationLevel
from repro.core.engine import engine_at_level
from repro.ransomware.replay import (
    ScenarioReplay,
    ScenarioStream,
    build_scenario,
    data_loss_accounting,
    interleave_traces,
)
from repro.ransomware.traces.adapters import MODALITIES
from repro.response.policy import ACTION_OBSERVE, ResponsePolicy
from repro.hw.smartssd import SmartSSD
from tests.conftest import TEST_SEQUENCE_LENGTH

MODALITY_NAMES = ("api", "block_io", "filesystem")


class TestBuildScenario:
    @pytest.mark.parametrize("modality", MODALITY_NAMES)
    def test_counts_flags_and_token_ranges(self, modality):
        streams = build_scenario(modality, ransomware=2, benign=3, seed=1,
                                 benign_length=120)
        assert len(streams) == 5
        assert sum(s.is_ransomware for s in streams) == 2
        vocabulary = MODALITIES[modality].vocabulary
        for stream in streams:
            assert len(stream.tokens) == len(stream.write_bytes) == len(stream)
            assert all(0 <= t < vocabulary.size for t in stream.tokens)
            assert stream.source  # family / profile provenance
            assert stream.total_write_bytes == sum(stream.write_bytes)
        names = [s.name for s in streams]
        assert sum(n.startswith("rw-") for n in names) == 2
        assert sum(n.startswith("benign-") for n in names) == 3

    def test_every_ransomware_stream_writes(self):
        for modality in MODALITY_NAMES:
            streams = build_scenario(modality, ransomware=2, benign=0, seed=0)
            for stream in streams:
                assert stream.total_write_bytes > 0, (modality, stream.name)

    def test_deterministic_for_a_seed(self):
        first = build_scenario("block_io", ransomware=1, benign=2, seed=9,
                               benign_length=100)
        second = build_scenario("block_io", ransomware=1, benign=2, seed=9,
                                benign_length=100)
        for a, b in zip(first, second):
            assert a == b

    def test_masquerade_stripped_by_default(self):
        stripped = build_scenario("api", ransomware=1, benign=0, seed=0)
        full = build_scenario("api", ransomware=1, benign=0, seed=0,
                              strip_masquerade=False)
        assert len(stripped[0]) < len(full[0])

    def test_unknown_modality_raises(self):
        with pytest.raises(ValueError, match="unknown modality"):
            build_scenario("syscalls")

    def test_stream_validation(self):
        with pytest.raises(ValueError):
            ScenarioStream(name="x", source="api", is_ransomware=False,
                           tokens=(1, 2, 3), write_bytes=(0, 0))


class TestInterleaving:
    def test_permutation_with_correct_multiplicities(self):
        order = interleave_traces([3, 5, 2], seed=4)
        assert len(order) == 10
        assert sorted(set(order)) == [0, 1, 2]
        for index, length in enumerate([3, 5, 2]):
            assert order.count(index) == length

    def test_deterministic_per_seed(self):
        assert interleave_traces([4, 4], seed=7) == interleave_traces(
            [4, 4], seed=7
        )
        assert interleave_traces([40, 40], seed=7) != interleave_traces(
            [40, 40], seed=8
        )

    def test_relative_order_within_a_trace_is_preserved(self):
        # The schedule names which trace advances; by construction each
        # trace's own events replay in order. Verify the schedule is
        # consumable: prefix counts never exceed the trace length.
        lengths = [6, 3, 9]
        seen = [0] * len(lengths)
        for index in interleave_traces(lengths, seed=0):
            seen[index] += 1
            assert seen[index] <= lengths[index]


class TestDataLossAccounting:
    def _stream(self, name, is_ransomware, write_bytes):
        return ScenarioStream(
            name=name, source="api", is_ransomware=is_ransomware,
            tokens=tuple(range(len(write_bytes))),
            write_bytes=tuple(write_bytes),
        )

    def test_cut_point_splits_exposed_from_prevented(self):
        rw = self._stream("rw", True, [100, 100, 100, 100])
        benign = self._stream("ok", False, [50, 50])
        accounting = data_loss_accounting(
            [rw, benign], {"rw": 2, "ok": None}
        )
        per = accounting["per_stream"]
        assert per["rw"] == {
            "is_ransomware": True, "total_bytes": 400,
            "exposed_bytes": 200, "prevented_bytes": 200,
        }
        assert per["ok"]["prevented_bytes"] == 0
        assert accounting["ransomware_bytes_prevented"] == 200
        assert accounting["ransomware_bytes_exposed"] == 200
        assert accounting["benign_bytes_prevented"] == 0

    def test_unenforced_stream_is_fully_exposed(self):
        rw = self._stream("rw", True, [10, 10])
        accounting = data_loss_accounting([rw], {})
        assert accounting["per_stream"]["rw"]["exposed_bytes"] == 20
        assert accounting["per_stream"]["rw"]["prevented_bytes"] == 0

    def test_cut_at_zero_prevents_everything(self):
        rw = self._stream("rw", True, [10, 10])
        accounting = data_loss_accounting([rw], {"rw": 0})
        assert accounting["per_stream"]["rw"]["prevented_bytes"] == 20


class TestScenarioReplay:
    """End-to-end against the protected drive.

    The aggressive policy (every positive verdict qualifies and clears
    the write-block rung) makes enforcement model-independent, so the
    mechanical invariants — byte conservation, audit determinism — hold
    for any trained fixture model.
    """

    @pytest.fixture(scope="class")
    def engine(self, trained_model):
        return engine_at_level(
            trained_model, OptimizationLevel.FIXED_POINT,
            sequence_length=TEST_SEQUENCE_LENGTH,
        )

    def _run(self, engine):
        streams = build_scenario("api", ransomware=1, benign=1, seed=3,
                                 benign_length=150)
        policy = ResponsePolicy(
            observe_threshold=0.0, write_block_threshold=0.0,
            quarantine_threshold=None, kill_threshold=None,
            confirmations=2, attribute=False,
        )
        replay = ScenarioReplay(engine, SmartSSD(), policy=policy,
                                monitor_threshold=0.01, stride=5)
        user_keys = replay.seed_user_objects(count=4, num_bytes=4096)
        outcomes = replay.run(streams, seed=3, user_keys=user_keys)
        return replay, streams, outcomes

    def test_byte_conservation_per_stream(self, engine):
        _, streams, outcomes = self._run(engine)
        for stream in streams:
            outcome = outcomes[stream.name]
            assert outcome.tokens_replayed == len(stream)
            assert (outcome.bytes_admitted + outcome.bytes_blocked
                    == stream.total_write_bytes)
            assert (outcome.writes_admitted + outcome.writes_blocked
                    == sum(1 for b in stream.write_bytes if b))

    def test_aggressive_policy_enforces_every_stream(self, engine):
        _, _, outcomes = self._run(engine)
        for outcome in outcomes.values():
            assert outcome.enforced_window_index is not None
            assert outcome.detection_latency_tokens is not None
            assert outcome.final_action != ACTION_OBSERVE

    def test_report_and_audit(self, engine):
        replay, streams, outcomes = self._run(engine)
        report = replay.report(outcomes)
        assert report["ransomware_streams"] == 1
        assert report["enforced"] == 1
        assert report["bytes_blocked"] == sum(
            o.bytes_blocked for o in outcomes.values() if o.is_ransomware
        )
        assert report["audit_head"] == replay.audit.head_hash
        assert replay.audit.verify()

    def test_repeated_runs_are_bit_identical(self, engine):
        first, _, _ = self._run(engine)
        second, _, _ = self._run(engine)
        assert first.audit.to_jsonl() == second.audit.to_jsonl()
        assert first.audit.stream_heads() == second.audit.stream_heads()

    def test_write_seconds_accumulate(self, engine):
        # Observe-only policy: nothing is ever blocked, so every write
        # lands and its modelled device time accumulates.  The scenario
        # includes the archiver profiles, which actually write.
        streams = build_scenario("api", ransomware=0, benign=4, seed=3,
                                 benign_length=150)
        policy = ResponsePolicy(
            observe_threshold=0.0, write_block_threshold=None,
            quarantine_threshold=None, kill_threshold=None,
            confirmations=2, attribute=False,
        )
        replay = ScenarioReplay(engine, SmartSSD(), policy=policy,
                                monitor_threshold=0.01, stride=5)
        outcomes = replay.run(streams, seed=3)
        writers = [o for o in outcomes.values() if o.bytes_admitted]
        assert writers
        assert all(o.write_seconds > 0 for o in writers)
        assert all(o.writes_blocked == 0 for o in outcomes.values())


class TestMitigationShim:
    def test_engine_and_storage_import_silently(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            from repro.ransomware.mitigation import (  # noqa: F401
                MitigationEngine,
                ProtectedStorage,
            )

    def test_retired_names_warn_on_module_attribute_access(self):
        import repro.ransomware.mitigation as mitigation

        with pytest.warns(DeprecationWarning, match="repro.response"):
            mitigation.WriteBlocked
        with pytest.warns(DeprecationWarning, match="repro.response"):
            mitigation.QuarantineEvent

    def test_shim_resolves_to_the_new_home(self):
        import repro.ransomware.mitigation as mitigation
        from repro.response import legacy

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert mitigation.WriteBlocked is legacy.WriteBlocked
            assert mitigation.QuarantineEvent is legacy.QuarantineEvent
        assert mitigation.MitigationEngine is legacy.MitigationEngine
        assert mitigation.ProtectedStorage is legacy.ProtectedStorage

    def test_unknown_attribute_still_raises(self):
        import repro.ransomware.mitigation as mitigation

        with pytest.raises(AttributeError):
            mitigation.NoSuchThing
