"""Tests for the CTI feed queue and feed-processing loop."""

import dataclasses

import numpy as np
import pytest

from repro.core.config import OptimizationLevel
from repro.core.engine import engine_at_level
from repro.ransomware.cti import (
    CtiFeed,
    ModelUpdateWorkflow,
    NOVEL_STRAIN,
    ThreatReport,
)
from tests.conftest import TEST_SEQUENCE_LENGTH


def report(strain=NOVEL_STRAIN, date="2026-07-01"):
    return ThreatReport(strain=strain, first_seen=date)


class TestCtiFeed:
    def test_publish_and_take_fifo(self):
        feed = CtiFeed()
        first = report(date="2026-06-01")
        second = report(
            strain=dataclasses.replace(NOVEL_STRAIN, name="Other"),
            date="2026-06-02",
        )
        feed.publish(first)
        feed.publish(second)
        assert feed.take() is first
        assert feed.take() is second
        assert feed.take() is None

    def test_processed_strains_skipped(self):
        feed = CtiFeed()
        first = report()
        feed.publish(first)
        taken = feed.take()
        feed.mark_processed(taken)
        feed.publish(report(date="2026-07-02"))  # same strain again
        assert feed.take() is None
        assert feed.processed_strains == ("Hive-like",)

    def test_constructor_seeds_pending(self):
        feed = CtiFeed([report()])
        assert len(feed.pending) == 1


class TestProcessFeed:
    def test_drains_feed_and_updates_model(self, trained_model, tiny_dataset):
        from repro.nn.model import SequenceClassifier

        model = SequenceClassifier(seed=0)
        model.set_weights(trained_model.get_weights())
        engine = engine_at_level(
            model, OptimizationLevel.FIXED_POINT,
            sequence_length=TEST_SEQUENCE_LENGTH,
        )
        workflow = ModelUpdateWorkflow(engine, model)
        feed = CtiFeed([report(), report(date="2026-07-03")])  # duplicate strain
        refresh = tiny_dataset.subset(np.arange(min(200, len(tiny_dataset))))
        results = workflow.process_feed(feed, refresh, epochs=1, seed=2)
        # The duplicate is skipped: exactly one update cycle ran.
        assert len(results) == 1
        assert results[0].strain_name == "Hive-like"
        assert feed.take() is None
