"""Tests for the sandbox trace synthesiser and dataset construction."""

import collections

import numpy as np
import pytest

from repro.ransomware.api_vocabulary import API_TO_CATEGORY
from repro.ransomware.benign import ALL_BENIGN_PROFILES
from repro.ransomware.dataset import (
    Dataset,
    DEFAULT_STRIDE,
    _distribute,
    build_dataset,
    extract_windows,
    load_csv,
    save_csv,
)
from repro.ransomware.families import CERBER, RYUK, WANNACRY
from repro.ransomware.sandbox import CuckooSandbox


class TestSandbox:
    def test_trace_is_reproducible(self):
        a = CuckooSandbox(seed=3).execute_ransomware(RYUK, 0)
        b = CuckooSandbox(seed=3).execute_ransomware(RYUK, 0)
        assert a.calls == b.calls

    def test_variants_differ(self):
        a = CuckooSandbox(seed=3).execute_ransomware(RYUK, 0)
        b = CuckooSandbox(seed=3).execute_ransomware(RYUK, 1)
        assert a.calls != b.calls

    def test_os_versions_differ(self):
        win10 = CuckooSandbox(os_version="windows10", seed=3).execute_ransomware(RYUK, 0)
        win11 = CuckooSandbox(os_version="windows11", seed=3).execute_ransomware(RYUK, 0)
        assert win10.calls != win11.calls

    def test_rejects_unknown_os(self):
        with pytest.raises(ValueError):
            CuckooSandbox(os_version="windows95")

    def test_rejects_bad_variant_index(self):
        with pytest.raises(ValueError):
            CuckooSandbox().execute_ransomware(RYUK, RYUK.variant_count)

    def test_trace_metadata(self):
        trace = CuckooSandbox().execute_ransomware(CERBER, 2)
        assert trace.source == "Cerber"
        assert trace.variant == 2
        assert trace.is_ransomware

    def test_ransomware_trace_is_crypto_heavy(self):
        trace = CuckooSandbox().execute_ransomware(CERBER, 0)
        categories = collections.Counter(API_TO_CATEGORY[c] for c in trace.calls)
        crypto_fraction = categories["crypto"] / len(trace)
        benign = CuckooSandbox().execute_benign(ALL_BENIGN_PROFILES[0], 0, 2000)
        benign_counter = collections.Counter(API_TO_CATEGORY[c] for c in benign.calls)
        benign_fraction = benign_counter["crypto"] / len(benign)
        assert crypto_fraction > 0.04
        assert crypto_fraction > 3 * benign_fraction

    def test_worm_trace_is_network_heavy(self):
        worm = CuckooSandbox().execute_ransomware(WANNACRY, 0)
        benign_app = CuckooSandbox().execute_benign(ALL_BENIGN_PROFILES[0], 0, 2000)
        def network_fraction(trace):
            counter = collections.Counter(API_TO_CATEGORY[c] for c in trace.calls)
            return counter["network"] / len(trace)
        assert network_fraction(worm) > network_fraction(benign_app)

    def test_benign_trace_reaches_target_length(self):
        trace = CuckooSandbox().execute_benign(ALL_BENIGN_PROFILES[0], 0, target_length=2500)
        assert len(trace) >= 2500
        assert not trace.is_ransomware

    def test_benign_rejects_bad_length(self):
        with pytest.raises(ValueError):
            CuckooSandbox().execute_benign(ALL_BENIGN_PROFILES[0], 0, target_length=0)

    def test_all_calls_in_vocabulary(self):
        trace = CuckooSandbox().execute_ransomware(RYUK, 1)
        for call in trace.calls:
            assert call in API_TO_CATEGORY


class TestExtractWindows:
    def _trace(self, length=500):
        return CuckooSandbox(seed=1).execute_benign(
            ALL_BENIGN_PROFILES[1], 0, target_length=length
        )

    def test_window_count_and_length(self):
        windows = extract_windows(self._trace(), length=50, count=10)
        assert len(windows) == 10
        assert all(len(w) == 50 for w in windows)

    def test_first_window_starts_at_call_zero(self):
        # "beginning with the first API call made to promote early
        # detection" (Appendix A).
        trace = self._trace()
        from repro.ransomware.api_vocabulary import encode

        windows = extract_windows(trace, length=50, count=3)
        assert windows[0] == encode(trace.calls[:50])

    def test_stride_adapts_to_short_trace(self):
        trace = self._trace(length=200)
        windows = extract_windows(trace, length=100, count=40, max_stride=12)
        assert len(windows) == 40  # stride had to shrink below 12

    def test_single_window(self):
        windows = extract_windows(self._trace(200), length=100, count=1)
        assert len(windows) == 1

    def test_impossible_request_raises(self):
        trace = self._trace(200)
        with pytest.raises(ValueError):
            extract_windows(trace, length=100, count=100000)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            extract_windows(self._trace(200), length=0, count=1)


class TestDistribute:
    def test_even(self):
        assert _distribute(10, 5) == [2, 2, 2, 2, 2]

    def test_remainder_spread(self):
        assert _distribute(11, 3) == [4, 4, 3]

    def test_sum_preserved(self):
        assert sum(_distribute(13340, 78)) == 13340

    def test_rejects_impossible(self):
        with pytest.raises(ValueError):
            _distribute(2, 5)


class TestBuildDataset:
    @pytest.fixture(scope="class")
    def dataset(self):
        return build_dataset(scale=0.02, sequence_length=50, seed=11)

    def test_class_balance_near_paper(self, dataset):
        # Paper: 46% ransomware.
        assert dataset.ransomware_fraction == pytest.approx(0.46, abs=0.01)

    def test_scaled_counts(self, dataset):
        assert len(dataset) == round(13340 * 0.02) + round(15660 * 0.02)

    def test_all_sources_present(self, dataset):
        sources = set(dataset.sources)
        assert "Ryuk" in sources
        assert any(s.startswith("7-Zip") for s in sources)

    def test_token_range(self, dataset):
        assert dataset.sequences.min() >= 0
        assert dataset.sequences.max() < 278

    def test_reproducible(self):
        a = build_dataset(scale=0.01, sequence_length=30, seed=5)
        b = build_dataset(scale=0.01, sequence_length=30, seed=5)
        np.testing.assert_array_equal(a.sequences, b.sequences)

    def test_seed_changes_shuffle(self):
        a = build_dataset(scale=0.01, sequence_length=30, seed=5)
        b = build_dataset(scale=0.01, sequence_length=30, seed=6)
        assert not np.array_equal(a.sequences, b.sequences)

    def test_split_stratified(self, dataset):
        train, test = dataset.train_test_split(test_fraction=0.25, seed=0)
        assert len(train) + len(test) == len(dataset)
        assert train.ransomware_fraction == pytest.approx(
            test.ransomware_fraction, abs=0.03
        )

    def test_split_by_source_no_leakage(self, dataset):
        train, test = dataset.split_by_source({"Ryuk", "Wannacry"})
        assert set(test.sources) == {"Ryuk", "Wannacry"}
        assert not ({"Ryuk", "Wannacry"} & set(train.sources))

    def test_split_by_source_unknown_raises(self, dataset):
        with pytest.raises(ValueError, match="unknown sources.*NotAFamily"):
            dataset.split_by_source({"NotAFamily"})

    def test_split_by_source_unknown_named_even_with_known(self, dataset):
        # A typo'd name must not silently fall through because a valid
        # one was also supplied.
        with pytest.raises(ValueError, match="NotAFamily"):
            dataset.split_by_source({"Ryuk", "NotAFamily"})

    def test_split_by_source_empty_raises(self, dataset):
        with pytest.raises(ValueError, match="empty"):
            dataset.split_by_source(set())
        with pytest.raises(ValueError, match="empty"):
            dataset.split_by_source([])

    def test_split_by_source_all_sources_raises(self, dataset):
        with pytest.raises(ValueError, match="training side would be empty"):
            dataset.split_by_source(set(dataset.sources))

    def test_split_by_source_single_source_boundary(self, dataset):
        train, test = dataset.split_by_source({"Ryuk"})
        assert set(test.sources) == {"Ryuk"}
        assert len(train) + len(test) == len(dataset)
        assert len(test) > 0

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            build_dataset(scale=0.0)

    def test_dataset_validation(self):
        with pytest.raises(ValueError):
            Dataset(
                sequences=np.zeros((3, 5), dtype=np.int64),
                labels=np.zeros(2, dtype=np.int64),
                sources=("a", "b", "c"),
            )


class TestCsvRoundTrip:
    def test_round_trip(self, tmp_path):
        dataset = build_dataset(scale=0.01, sequence_length=20, seed=2)
        path = tmp_path / "data.csv"
        save_csv(dataset, path)
        loaded = load_csv(path)
        np.testing.assert_array_equal(loaded.sequences, dataset.sequences)
        np.testing.assert_array_equal(loaded.labels, dataset.labels)

    def test_csv_has_n_plus_one_columns(self, tmp_path):
        dataset = build_dataset(scale=0.01, sequence_length=20, seed=2)
        path = tmp_path / "data.csv"
        save_csv(dataset, path)
        with open(path) as handle:
            first = handle.readline().strip().split(",")
        assert len(first) == 21

    def test_load_rejects_bad_label(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1,2,3,7\n")
        with pytest.raises(ValueError, match="label"):
            load_csv(path)

    def test_load_rejects_ragged_rows(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("1,2,3,1\n1,2,1\n")
        with pytest.raises(ValueError, match="inconsistent"):
            load_csv(path)

    def test_load_rejects_non_integer(self, tmp_path):
        path = tmp_path / "text.csv"
        path.write_text("1,x,3,1\n")
        with pytest.raises(ValueError, match="non-integer"):
            load_csv(path)

    def test_load_rejects_empty(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_csv(path)
