"""Tests for the Cuckoo report interchange."""

import json

import pytest

from repro.ransomware.cuckoo_report import (
    load_report,
    report_to_trace,
    save_report,
    trace_to_report,
)
from repro.ransomware.families import TESLACRYPT
from repro.ransomware.sandbox import CuckooSandbox


@pytest.fixture(scope="module")
def trace():
    return CuckooSandbox(os_version="windows11", seed=4).execute_ransomware(
        TESLACRYPT, 2
    )


class TestEmit:
    def test_report_structure(self, trace):
        report = trace_to_report(trace)
        assert report["info"]["platform"] == "windows11"
        assert report["info"]["custom"] == "Teslacrypt/2"
        assert len(report["behavior"]["processes"][0]["calls"]) == len(trace)
        assert report["repro"]["is_ransomware"] is True

    def test_apistats_counts(self, trace):
        report = trace_to_report(trace, pid=77)
        stats = report["behavior"]["apistats"]["77"]
        assert sum(stats.values()) == len(trace)
        assert stats["NtCreateFile"] == trace.calls.count("NtCreateFile")

    def test_json_serialisable(self, trace):
        json.dumps(trace_to_report(trace))


class TestRoundTrip:
    def test_exact_round_trip(self, trace):
        recovered, dropped = report_to_trace(trace_to_report(trace))
        assert dropped == 0
        assert recovered.calls == trace.calls
        assert recovered.source == trace.source
        assert recovered.variant == trace.variant
        assert recovered.os_version == trace.os_version
        assert recovered.is_ransomware == trace.is_ransomware

    def test_file_round_trip(self, trace, tmp_path):
        path = tmp_path / "report.json"
        save_report(trace, path)
        recovered, dropped = load_report(path)
        assert dropped == 0
        assert recovered.calls == trace.calls


class TestForeignReports:
    def test_unknown_apis_dropped_and_counted(self):
        report = {
            "info": {"platform": "windows10", "custom": "Foreign/0"},
            "behavior": {
                "processes": [{
                    "pid": 1,
                    "calls": [
                        {"api": "NtCreateFile"},
                        {"api": "TotallyUnknownApi"},
                        {"api": "NtWriteFile"},
                    ],
                }],
            },
        }
        trace, dropped = report_to_trace(report)
        assert dropped == 1
        assert trace.calls == ("NtCreateFile", "NtWriteFile")
        assert not trace.is_ransomware  # no repro metadata -> benign default

    def test_multi_process_calls_concatenate(self):
        report = {
            "behavior": {
                "processes": [
                    {"pid": 1, "calls": [{"api": "NtCreateFile"}]},
                    {"pid": 2, "calls": [{"api": "NtWriteFile"}]},
                ],
            },
        }
        trace, _ = report_to_trace(report)
        assert trace.calls == ("NtCreateFile", "NtWriteFile")

    def test_missing_behaviour_rejected(self):
        with pytest.raises(ValueError, match="behavior"):
            report_to_trace({"info": {}})

    def test_empty_processes_rejected(self):
        with pytest.raises(ValueError, match="no processes"):
            report_to_trace({"behavior": {"processes": []}})

    def test_all_unknown_calls_rejected(self):
        report = {
            "behavior": {"processes": [{"pid": 1, "calls": [{"api": "Nope"}]}]},
        }
        with pytest.raises(ValueError, match="no in-vocabulary"):
            report_to_trace(report)

    def test_windowing_foreign_trace(self, tmp_path):
        """A foreign report flows into the standard windowing pipeline."""
        from repro.ransomware.dataset import extract_windows

        calls = [{"api": "NtReadFile"}, {"api": "NtWriteFile"}] * 120
        report = {
            "info": {"platform": "windows10", "custom": "Foreign/1"},
            "behavior": {"processes": [{"pid": 1, "calls": calls}]},
            "repro": {"is_ransomware": True, "variant": 1},
        }
        trace, _ = report_to_trace(report)
        windows = extract_windows(trace, length=50, count=5)
        assert len(windows) == 5
