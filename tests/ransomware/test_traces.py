"""Trace front-end and adapter invariants (block-I/O + filesystem).

The adapter contract that lets the unchanged serving stack consume the
new modalities: every emitted token is in-vocabulary, tokenisation is
1:1 with events, window extraction preserves counts and ordering, and
adapter output round-trips through the CSV dataset format losslessly.
"""

import numpy as np
import pytest

from repro.ransomware.benign import ALL_BENIGN_PROFILES
from repro.ransomware.dataset import extract_windows, load_csv, save_csv
from repro.ransomware.families import ALL_FAMILIES
from repro.ransomware.traces import (
    BLOCK_IO_VOCABULARY,
    FILESYSTEM_VOCABULARY,
    MODALITIES,
    BlockIoEvent,
    BlockIoSynthesizer,
    FsEvent,
    FsEventSynthesizer,
    TokenTrace,
    TraceVocabulary,
    build_block_io_dataset,
    build_filesystem_dataset,
    tokenize_block_trace,
    tokenize_filesystem_trace,
)

#: One synthesizer+tokenizer pair per new modality, for parametrising.
FRONT_ENDS = {
    "block_io": (BlockIoSynthesizer, tokenize_block_trace, BLOCK_IO_VOCABULARY),
    "filesystem": (FsEventSynthesizer, tokenize_filesystem_trace,
                   FILESYSTEM_VOCABULARY),
}


@pytest.fixture(scope="module", params=sorted(FRONT_ENDS))
def front_end(request):
    synth_cls, tokenize, vocabulary = FRONT_ENDS[request.param]
    return synth_cls(seed=3), tokenize, vocabulary


class TestVocabularies:
    def test_sizes(self):
        assert BLOCK_IO_VOCABULARY.size == 105
        assert FILESYSTEM_VOCABULARY.size == 120
        assert MODALITIES["api"].vocabulary.size == 278

    def test_tokens_unique_and_encode_decode_roundtrip(self):
        for vocabulary in (BLOCK_IO_VOCABULARY, FILESYSTEM_VOCABULARY):
            assert len(set(vocabulary.tokens)) == vocabulary.size
            ids = vocabulary.encode(vocabulary.tokens)
            assert ids == list(range(vocabulary.size))
            assert vocabulary.decode(ids) == list(vocabulary.tokens)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="block_io"):
            BLOCK_IO_VOCABULARY.encode(["no-such-token"])

    def test_duplicate_tokens_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            TraceVocabulary(name="bad", tokens=("a", "a"))


class TestEventValidation:
    def test_block_event_rejects_bad_fields(self):
        with pytest.raises(ValueError, match="unknown op"):
            BlockIoEvent("copy", 0, 1)
        with pytest.raises(ValueError, match="outside"):
            BlockIoEvent("read", -1, 1)
        with pytest.raises(ValueError, match="positive"):
            BlockIoEvent("read", 0, 0)
        with pytest.raises(ValueError, match="entropy"):
            BlockIoEvent("write", 0, 1, entropy=1.5)

    def test_fs_event_rejects_bad_fields(self):
        with pytest.raises(ValueError, match="unknown op"):
            FsEvent("truncate", "doc")
        with pytest.raises(ValueError, match="extension"):
            FsEvent("open", "xls")
        with pytest.raises(ValueError, match="rename"):
            FsEvent("open", "doc", new_ext="crypt")
        with pytest.raises(ValueError, match="rename"):
            FsEvent("rename", "doc")
        with pytest.raises(ValueError, match="target"):
            FsEvent("rename", "doc", new_ext="xls")

    def test_synthesizer_rejects_bad_variant_and_length(self, front_end):
        synthesizer, _, _ = front_end
        family = ALL_FAMILIES[0]
        with pytest.raises(ValueError, match="variant"):
            synthesizer.synthesize_ransomware(family, family.variant_count)
        with pytest.raises(ValueError, match="target_length"):
            synthesizer.synthesize_benign(ALL_BENIGN_PROFILES[0], 0,
                                          target_length=0)


class TestTokenizerInvariants:
    def test_every_token_in_vocabulary(self, front_end):
        synthesizer, tokenize, vocabulary = front_end
        for family in ALL_FAMILIES[:4]:
            trace = synthesizer.synthesize_ransomware(family, 0)
            encoded = tokenize(trace)
            assert all(0 <= t < vocabulary.size for t in encoded.token_ids)
        for profile in ALL_BENIGN_PROFILES[:4]:
            trace = synthesizer.synthesize_benign(profile, 0, target_length=400)
            encoded = tokenize(trace)
            assert all(0 <= t < vocabulary.size for t in encoded.token_ids)

    def test_one_token_per_event_and_metadata_carried(self, front_end):
        synthesizer, tokenize, _ = front_end
        trace = synthesizer.synthesize_ransomware(ALL_FAMILIES[2], 1)
        encoded = tokenize(trace)
        assert len(encoded) == len(trace)
        assert encoded.source == trace.source
        assert encoded.variant == trace.variant
        assert encoded.is_ransomware is True

    def test_equal_traces_tokenize_equally(self, front_end):
        synthesizer, tokenize, _ = front_end
        first = tokenize(synthesizer.synthesize_ransomware(ALL_FAMILIES[1], 0))
        second = tokenize(synthesizer.synthesize_ransomware(ALL_FAMILIES[1], 0))
        assert first.token_ids == second.token_ids


class TestWindowExtraction:
    def test_windows_preserve_count_and_ordering(self, front_end):
        synthesizer, tokenize, _ = front_end
        encoded = tokenize(
            synthesizer.synthesize_benign(ALL_BENIGN_PROFILES[1], 0,
                                          target_length=900)
        )
        tokens = list(encoded.token_ids)
        length, count = 50, 12
        windows = extract_windows(encoded, length, count)
        assert len(windows) == count
        stride = (len(tokens) - length) // (count - 1)
        for index, window in enumerate(windows):
            start = index * stride
            assert list(window) == tokens[start : start + length]

    def test_token_trace_too_short_raises(self):
        trace = TokenTrace(token_ids=tuple(range(10)), source="x",
                           variant=0, is_ransomware=False)
        with pytest.raises(ValueError, match="cannot yield"):
            extract_windows(trace, 8, 5)


class TestDatasetBuilders:
    @pytest.fixture(scope="class", params=["block_io", "filesystem"])
    def built(self, request):
        builder = (build_block_io_dataset if request.param == "block_io"
                   else build_filesystem_dataset)
        return request.param, builder(scale=0.01, sequence_length=40, seed=5)

    def test_shape_balance_and_sources(self, built):
        name, dataset = built
        assert dataset.sequences.shape == (len(dataset), 40)
        assert dataset.sequences.dtype == np.int64
        # Same quotas as the API builder: 76 ransomware + 31 benign at
        # the scale floor.
        assert 0.4 < dataset.ransomware_fraction < 0.55
        family_names = {f.name for f in ALL_FAMILIES}
        profile_names = {p.name for p in ALL_BENIGN_PROFILES}
        for source, label in zip(dataset.sources, dataset.labels):
            assert source in (family_names if label else profile_names)

    def test_tokens_bounded_by_vocabulary(self, built):
        name, dataset = built
        vocabulary = MODALITIES[name].vocabulary
        assert dataset.sequences.min() >= 0
        assert dataset.sequences.max() < vocabulary.size

    def test_csv_roundtrip_lossless(self, built, tmp_path):
        _, dataset = built
        path = tmp_path / "trace_dataset.csv"
        save_csv(dataset, path)
        loaded = load_csv(path)
        np.testing.assert_array_equal(loaded.sequences, dataset.sequences)
        np.testing.assert_array_equal(loaded.labels, dataset.labels)

    def test_scale_validation(self):
        with pytest.raises(ValueError, match="scale"):
            build_block_io_dataset(scale=0.0)


class TestModalityRegistry:
    def test_three_modalities_share_the_builder_contract(self):
        assert sorted(MODALITIES) == ["api", "block_io", "filesystem"]
        for modality in MODALITIES.values():
            assert modality.vocabulary.size > 0
            assert callable(modality.build_dataset)

    def test_api_modality_is_the_original_builder(self):
        from repro.ransomware.dataset import build_dataset

        assert MODALITIES["api"].build_dataset is build_dataset
