"""Tests for the streaming detector, mitigation engine, and CTI updates."""

import numpy as np
import pytest

from repro.core.engine import CSDInferenceEngine, engine_at_level
from repro.core.config import OptimizationLevel
from repro.hw.ssd import NvmeSsd
from repro.ransomware.cti import ModelUpdateWorkflow, NOVEL_STRAIN, ThreatReport
from repro.ransomware.detector import RansomwareDetector, Verdict, train_detector
from repro.ransomware.families import RYUK
from repro.ransomware.mitigation import (
    MitigationEngine,
    ProtectedStorage,
    WriteBlocked,
)
from repro.ransomware.sandbox import CuckooSandbox
from tests.conftest import TEST_SEQUENCE_LENGTH


@pytest.fixture(scope="module")
def deployed_detector(request):
    model = request.getfixturevalue("trained_model")
    engine = engine_at_level(
        model, OptimizationLevel.FIXED_POINT, sequence_length=TEST_SEQUENCE_LENGTH
    )
    return RansomwareDetector(engine, threshold=0.5)


class TestDetectorStreaming:
    def test_no_verdict_until_window_full(self, deployed_detector):
        deployed_detector.reset()
        for _ in range(TEST_SEQUENCE_LENGTH - 1):
            assert deployed_detector.observe("NtReadFile") is None

    def test_verdict_once_window_full(self, deployed_detector):
        deployed_detector.reset()
        verdict = None
        for _ in range(TEST_SEQUENCE_LENGTH):
            verdict = deployed_detector.observe("NtReadFile")
        assert isinstance(verdict, Verdict)
        assert verdict.window_index == 0
        assert verdict.inference_microseconds > 0

    def test_accepts_token_ids(self, deployed_detector):
        deployed_detector.reset()
        verdict = None
        for _ in range(TEST_SEQUENCE_LENGTH):
            verdict = deployed_detector.observe(5)
        assert verdict is not None

    def test_stride_skips_windows(self, trained_model):
        engine = engine_at_level(
            trained_model, OptimizationLevel.FIXED_POINT,
            sequence_length=TEST_SEQUENCE_LENGTH,
        )
        detector = RansomwareDetector(engine, stride=10)
        verdicts = [
            detector.observe("NtReadFile")
            for _ in range(TEST_SEQUENCE_LENGTH + 20)
        ]
        fired = [v for v in verdicts if v is not None]
        assert len(fired) == 3  # windows 0, 10, 20

    def test_detects_ransomware_trace(self, deployed_detector):
        trace = CuckooSandbox(seed=9).execute_ransomware(RYUK, 0)
        report = deployed_detector.scan_trace(trace.calls)
        assert report.detected
        assert report.calls_until_detection is not None
        # Early detection: alarm well before the trace ends.
        assert report.calls_until_detection < len(trace) / 2

    def test_benign_trace_mostly_clean(self, deployed_detector, tiny_dataset):
        # Use benign sequences from the held-out pool: scan a few windows'
        # worth of calls and require no alarm on the large majority.
        from repro.ransomware.benign import ALL_BENIGN_PROFILES

        trace = CuckooSandbox(seed=9).execute_benign(
            ALL_BENIGN_PROFILES[6], 0, target_length=300
        )
        report = deployed_detector.scan_trace(trace.calls, stop_at_first=False)
        positives = sum(1 for v in report.verdicts if v.is_ransomware)
        assert positives <= 0.2 * max(1, len(report.verdicts))

    def test_evaluate_returns_metrics(self, deployed_detector, tiny_split):
        _, test = tiny_split
        small = test.subset(np.arange(min(40, len(test))))
        metrics = deployed_detector.evaluate(small)
        assert set(metrics) == {"accuracy", "precision", "recall", "f1"}
        assert metrics["accuracy"] > 0.6

    def test_rejects_bad_threshold(self, trained_model):
        engine = engine_at_level(
            trained_model, OptimizationLevel.FIXED_POINT,
            sequence_length=TEST_SEQUENCE_LENGTH,
        )
        with pytest.raises(ValueError):
            RansomwareDetector(engine, threshold=1.5)
        with pytest.raises(ValueError):
            RansomwareDetector(engine, stride=0)


class TestTrainDetectorPipeline:
    def test_end_to_end(self, tiny_dataset):
        from repro.nn.trainer import TrainingConfig

        detector, history, test_split = train_detector(
            tiny_dataset,
            training=TrainingConfig(epochs=4, eval_every=2, learning_rate=0.005),
            seed=1,
        )
        assert len(history.records) == 2
        metrics = detector.evaluate(test_split.subset(np.arange(30)))
        assert metrics["accuracy"] > 0.5


class TestMitigation:
    def _verdict(self, probability=0.99):
        return Verdict(
            window_index=7, probability=probability,
            is_ransomware=probability >= 0.5, inference_microseconds=215.0,
        )

    def test_quarantine_blocks_writes(self):
        storage = ProtectedStorage(NvmeSsd())
        engine = MitigationEngine(storage)
        storage.write(process_id=42, key="doc", num_bytes=100)
        assert engine.handle_verdict(42, self._verdict())
        with pytest.raises(WriteBlocked):
            storage.write(process_id=42, key="doc2", num_bytes=100)
        assert storage.blocked_writes == 1
        assert storage.blocked_bytes == 100

    def test_other_processes_unaffected(self):
        storage = ProtectedStorage(NvmeSsd())
        engine = MitigationEngine(storage)
        engine.handle_verdict(42, self._verdict())
        storage.write(process_id=7, key="ok", num_bytes=50)
        assert storage.allowed_writes == 1

    def test_benign_verdict_ignored(self):
        storage = ProtectedStorage(NvmeSsd())
        engine = MitigationEngine(storage)
        assert not engine.handle_verdict(42, self._verdict(probability=0.1))
        assert not storage.quarantined_processes

    def test_quarantine_threshold(self):
        storage = ProtectedStorage(NvmeSsd())
        engine = MitigationEngine(storage, quarantine_threshold=0.9)
        assert not engine.handle_verdict(42, self._verdict(probability=0.7))
        assert engine.handle_verdict(42, self._verdict(probability=0.95))

    def test_release(self):
        storage = ProtectedStorage(NvmeSsd())
        storage.quarantine(42)
        storage.release(42)
        storage.write(process_id=42, key="ok", num_bytes=10)

    def test_duplicate_quarantine_single_event(self):
        storage = ProtectedStorage(NvmeSsd())
        engine = MitigationEngine(storage)
        engine.handle_verdict(42, self._verdict())
        engine.handle_verdict(42, self._verdict())
        assert len(engine.events) == 1

    def test_summary(self):
        storage = ProtectedStorage(NvmeSsd())
        engine = MitigationEngine(storage)
        engine.handle_verdict(42, self._verdict())
        summary = engine.summary()
        assert summary["quarantined_processes"] == 1
        assert summary["quarantine_events"] == 1

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            MitigationEngine(ProtectedStorage(NvmeSsd()), quarantine_threshold=1.0)

    def test_rejects_bad_confirmations(self):
        with pytest.raises(ValueError):
            MitigationEngine(ProtectedStorage(NvmeSsd()), confirmations=0)

    def test_confirmations_require_consecutive_positives(self):
        storage = ProtectedStorage(NvmeSsd())
        engine = MitigationEngine(storage, confirmations=3)
        assert not engine.handle_verdict(42, self._verdict())
        assert not engine.handle_verdict(42, self._verdict())
        assert engine.handle_verdict(42, self._verdict())
        assert 42 in storage.quarantined_processes

    def test_negative_verdict_resets_streak(self):
        storage = ProtectedStorage(NvmeSsd())
        engine = MitigationEngine(storage, confirmations=2)
        engine.handle_verdict(42, self._verdict())
        engine.handle_verdict(42, self._verdict(probability=0.1))  # reset
        assert not engine.handle_verdict(42, self._verdict())
        assert 42 not in storage.quarantined_processes
        assert engine.handle_verdict(42, self._verdict())

    def test_streaks_are_per_process(self):
        storage = ProtectedStorage(NvmeSsd())
        engine = MitigationEngine(storage, confirmations=2)
        engine.handle_verdict(1, self._verdict())
        engine.handle_verdict(2, self._verdict())
        # Neither process has two consecutive positives yet.
        assert not storage.quarantined_processes
        assert engine.handle_verdict(1, self._verdict())
        assert 2 not in storage.quarantined_processes

    def test_quarantined_process_stays_quarantined_after_negative(self):
        storage = ProtectedStorage(NvmeSsd())
        engine = MitigationEngine(storage)
        engine.handle_verdict(42, self._verdict())
        # A later benign-looking window must not lift the quarantine.
        still = engine.handle_verdict(42, self._verdict(probability=0.1))
        assert still
        assert 42 in storage.quarantined_processes


class TestCtiWorkflow:
    @staticmethod
    def _copy_of(model):
        """Fine-tuning mutates the model; never touch the shared fixture."""
        from repro.nn.model import SequenceClassifier

        clone = SequenceClassifier(seed=0)
        clone.set_weights(model.get_weights())
        return clone

    def test_update_improves_novel_strain_detection(self, trained_model, tiny_dataset):
        model = self._copy_of(trained_model)
        engine = engine_at_level(
            model, OptimizationLevel.FIXED_POINT,
            sequence_length=TEST_SEQUENCE_LENGTH,
        )
        workflow = ModelUpdateWorkflow(engine, model)
        report = ThreatReport(strain=NOVEL_STRAIN, first_seen="2026-07-01")

        refresh = tiny_dataset.subset(np.arange(min(300, len(tiny_dataset))))
        result = workflow.apply_update(report, refresh, epochs=2, seed=3)
        assert result.strain_name == "Hive-like"
        assert result.sequences_added == 3 * 60
        assert result.detection_rate_after >= result.detection_rate_before
        assert result.detection_rate_after > 0.8

    def test_synthesize_strain_data_labels(self, trained_model):
        engine = engine_at_level(
            trained_model, OptimizationLevel.FIXED_POINT,
            sequence_length=TEST_SEQUENCE_LENGTH,
        )
        workflow = ModelUpdateWorkflow(engine, trained_model)
        data = workflow.synthesize_strain_data(
            ThreatReport(strain=NOVEL_STRAIN, first_seen="2026-07-01"),
            windows_per_variant=5,
        )
        assert np.all(data.labels == 1)
        assert data.sequences.shape == (15, TEST_SEQUENCE_LENGTH)
