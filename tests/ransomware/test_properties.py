"""Property-based tests on dataset and sandbox invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ransomware.api_vocabulary import VOCABULARY_SIZE, encode
from repro.ransomware.benign import ALL_BENIGN_PROFILES
from repro.ransomware.dataset import Dataset, _distribute, extract_windows
from repro.ransomware.families import ALL_FAMILIES
from repro.ransomware.sandbox import CuckooSandbox


@pytest.fixture(scope="module")
def sample_trace():
    return CuckooSandbox(seed=2).execute_benign(
        ALL_BENIGN_PROFILES[3], 0, target_length=1500
    )


class TestWindowProperties:
    @given(
        length=st.integers(min_value=1, max_value=200),
        count=st.integers(min_value=1, max_value=60),
    )
    @settings(max_examples=40, deadline=None)
    def test_windows_are_contiguous_substrings(self, sample_trace, length, count):
        tokens = encode(sample_trace.calls)
        available = len(tokens) - length
        if available < 0 or (count > 1 and available < count - 1):
            with pytest.raises(ValueError):
                extract_windows(sample_trace, length, count)
            return
        windows = extract_windows(sample_trace, length, count)
        assert len(windows) == count
        stride = 0 if count == 1 else available // (count - 1)
        for index, window in enumerate(windows):
            start = index * stride
            assert window == tokens[start : start + length]

    @given(count=st.integers(min_value=2, max_value=100))
    @settings(max_examples=30, deadline=None)
    def test_last_window_near_trace_end(self, sample_trace, count):
        """Uncapped stride must spread windows over the whole execution."""
        length = 100
        windows = extract_windows(sample_trace, length, count)
        tokens = encode(sample_trace.calls)
        available = len(tokens) - length
        stride = available // (count - 1)
        last_start = (count - 1) * stride
        # Uncovered tail is exactly the flooring remainder: < count - 1.
        leftover = len(tokens) - (last_start + length)
        assert leftover == available % (count - 1)
        assert leftover < count - 1


class TestDistributeProperties:
    @given(
        total=st.integers(min_value=1, max_value=50_000),
        buckets=st.integers(min_value=1, max_value=500),
    )
    @settings(max_examples=100, deadline=None)
    def test_distribute_invariants(self, total, buckets):
        if total < buckets:
            with pytest.raises(ValueError):
                _distribute(total, buckets)
            return
        parts = _distribute(total, buckets)
        assert sum(parts) == total
        assert len(parts) == buckets
        assert min(parts) >= 1
        assert max(parts) - min(parts) <= 1  # near-equal


class TestDatasetProperties:
    @given(seed=st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=10, deadline=None)
    def test_shuffle_preserves_rows(self, tiny_dataset, seed):
        shuffled = tiny_dataset.shuffled(seed)
        assert len(shuffled) == len(tiny_dataset)
        assert shuffled.labels.sum() == tiny_dataset.labels.sum()
        # Row multiset preserved: sort both by a stable key.
        original = np.sort(tiny_dataset.sequences.sum(axis=1) * 2 + tiny_dataset.labels)
        permuted = np.sort(shuffled.sequences.sum(axis=1) * 2 + shuffled.labels)
        np.testing.assert_array_equal(original, permuted)

    @given(
        fraction=st.floats(min_value=0.05, max_value=0.9),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=20, deadline=None)
    def test_split_is_a_partition(self, tiny_dataset, fraction, seed):
        train, test = tiny_dataset.train_test_split(fraction, seed=seed)
        assert len(train) + len(test) == len(tiny_dataset)
        assert len(train) > 0 and len(test) > 0

    def test_all_tokens_in_vocabulary_range(self, tiny_dataset):
        assert tiny_dataset.sequences.min() >= 0
        assert tiny_dataset.sequences.max() < VOCABULARY_SIZE


class TestSandboxProperties:
    @given(
        family_index=st.integers(min_value=0, max_value=len(ALL_FAMILIES) - 1),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=15, deadline=None)
    def test_every_family_variant_zero_produces_valid_trace(self, family_index, seed):
        family = ALL_FAMILIES[family_index]
        trace = CuckooSandbox(seed=seed).execute_ransomware(family, 0)
        assert trace.is_ransomware
        assert len(trace) > 500
        tokens = encode(trace.calls)  # raises if any call is unknown
        assert max(tokens) < VOCABULARY_SIZE

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=10, deadline=None)
    def test_traces_deterministic_in_seed(self, seed):
        family = ALL_FAMILIES[seed % len(ALL_FAMILIES)]
        a = CuckooSandbox(seed=seed).execute_ransomware(family, 0)
        b = CuckooSandbox(seed=seed).execute_ransomware(family, 0)
        assert a.calls == b.calls
