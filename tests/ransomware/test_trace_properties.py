"""Property-based determinism tests across all three signal modalities.

The harness's bit-identical-reproduction guarantee rests on these: the
same seed must produce byte-identical traces and datasets in every
modality, different families must produce measurably distinct token
distributions, and different seeds must actually change the synthesis.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ransomware.benign import ALL_BENIGN_PROFILES
from repro.ransomware.families import ALL_FAMILIES
from repro.ransomware.traces import (
    MODALITIES,
    BlockIoSynthesizer,
    FsEventSynthesizer,
    tokenize_block_trace,
    tokenize_filesystem_trace,
)

FRONT_ENDS = {
    "block_io": (BlockIoSynthesizer, tokenize_block_trace),
    "filesystem": (FsEventSynthesizer, tokenize_filesystem_trace),
}

family_indices = st.integers(min_value=0, max_value=len(ALL_FAMILIES) - 1)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


class TestTraceDeterminism:
    @pytest.mark.parametrize("front_end", sorted(FRONT_ENDS))
    @given(seed=seeds, family_index=family_indices)
    @settings(max_examples=15, deadline=None)
    def test_same_seed_identical_trace(self, front_end, seed, family_index):
        synth_cls, tokenize = FRONT_ENDS[front_end]
        family = ALL_FAMILIES[family_index]
        variant = seed % family.variant_count
        first = synth_cls(seed=seed).synthesize_ransomware(family, variant)
        second = synth_cls(seed=seed).synthesize_ransomware(family, variant)
        assert first == second
        assert tokenize(first).token_ids == tokenize(second).token_ids

    @pytest.mark.parametrize("front_end", sorted(FRONT_ENDS))
    @given(seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_same_seed_identical_benign_trace(self, front_end, seed):
        synth_cls, _ = FRONT_ENDS[front_end]
        profile = ALL_BENIGN_PROFILES[seed % len(ALL_BENIGN_PROFILES)]
        first = synth_cls(seed=seed).synthesize_benign(profile, 1,
                                                       target_length=300)
        second = synth_cls(seed=seed).synthesize_benign(profile, 1,
                                                        target_length=300)
        assert first == second

    @pytest.mark.parametrize("front_end", sorted(FRONT_ENDS))
    @given(seed=seeds, family_index=family_indices)
    @settings(max_examples=10, deadline=None)
    def test_call_order_independence(self, front_end, seed, family_index):
        """Per-(source, variant) hashed streams: synthesising other
        traces first must not perturb a trace."""
        synth_cls, _ = FRONT_ENDS[front_end]
        family = ALL_FAMILIES[family_index]
        fresh = synth_cls(seed=seed).synthesize_ransomware(family, 0)
        reused = synth_cls(seed=seed)
        reused.synthesize_benign(ALL_BENIGN_PROFILES[0], 0, target_length=120)
        reused.synthesize_ransomware(ALL_FAMILIES[(family_index + 1)
                                                  % len(ALL_FAMILIES)], 0)
        assert reused.synthesize_ransomware(family, 0) == fresh

    @pytest.mark.parametrize("front_end", sorted(FRONT_ENDS))
    @given(seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_different_seeds_differ(self, front_end, seed):
        synth_cls, tokenize = FRONT_ENDS[front_end]
        family = ALL_FAMILIES[0]
        first = tokenize(
            synth_cls(seed=seed).synthesize_ransomware(family, 0))
        second = tokenize(
            synth_cls(seed=seed + 1).synthesize_ransomware(family, 0))
        assert first.token_ids != second.token_ids


def _token_distribution(token_ids, vocab_size: int) -> np.ndarray:
    counts = np.bincount(np.asarray(token_ids), minlength=vocab_size)
    return counts / counts.sum()


class TestFamilyDistinctness:
    @pytest.mark.parametrize("front_end", sorted(FRONT_ENDS))
    @given(
        pair=st.tuples(family_indices, family_indices).filter(
            lambda p: p[0] != p[1]
        ),
    )
    @settings(max_examples=12, deadline=None)
    def test_families_have_distinct_token_distributions(self, front_end, pair):
        """Two families' token histograms must be measurably apart (L1
        distance) — otherwise per-family profiles collapsed and the
        leave-family-out protocol tests nothing."""
        synth_cls, tokenize = FRONT_ENDS[front_end]
        vocab = MODALITIES[front_end].vocabulary.size
        distributions = []
        for family_index in pair:
            family = ALL_FAMILIES[family_index]
            encoded = tokenize(
                synth_cls(seed=11).synthesize_ransomware(family, 0))
            distributions.append(
                _token_distribution(encoded.token_ids, vocab))
        l1 = float(np.abs(distributions[0] - distributions[1]).sum())
        assert l1 > 0.02, (
            f"families {pair} are indistinguishable in {front_end} "
            f"(L1 distance {l1:.4f})"
        )


class TestDatasetDeterminism:
    @pytest.mark.parametrize("modality", sorted(MODALITIES))
    def test_same_seed_byte_identical_dataset(self, modality):
        builder = MODALITIES[modality].build_dataset
        first = builder(scale=0.01, sequence_length=30, seed=9)
        second = builder(scale=0.01, sequence_length=30, seed=9)
        assert first.sequences.tobytes() == second.sequences.tobytes()
        assert first.labels.tobytes() == second.labels.tobytes()
        assert first.sources == second.sources

    @pytest.mark.parametrize("modality", sorted(MODALITIES))
    def test_different_seed_different_dataset(self, modality):
        builder = MODALITIES[modality].build_dataset
        first = builder(scale=0.01, sequence_length=30, seed=9)
        second = builder(scale=0.01, sequence_length=30, seed=10)
        assert first.sequences.tobytes() != second.sequences.tobytes()
