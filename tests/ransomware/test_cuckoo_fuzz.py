"""Seeded fuzzing of the Cuckoo report parser.

A report file is adversarial input: the analysed sample can influence
what Cuckoo writes, and truncated or hand-edited reports are routine.
The parser's contract is narrow — every input either parses to
``(ApiTrace, dropped)`` or raises :class:`ReportParseError`; no other
exception may escape, ever.  These tests attack it three ways with
deterministic seeds (no flakes): byte-level truncation/garbling of valid
JSON, structural mutation of a valid report (type confusion, key
deletion), and hypothesis-generated arbitrary JSON documents.
"""

import copy
import json
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.ransomware.api_vocabulary import API_TO_ID
from repro.ransomware.cuckoo_report import (
    ReportParseError,
    report_from_json,
    report_to_trace,
    trace_to_report,
)
from repro.ransomware.sandbox import ApiTrace

VOCAB = tuple(API_TO_ID)

#: Values a mutated report swaps in — one of every JSON type, plus the
#: shapes that historically break naive parsers (empty containers, a
#: string where a number goes, a list where an object goes).
CONFUSIONS = (
    None, True, 7, -1, 3.5, "", "x", "no-slash-here", [], [1, 2],
    {}, {"api": 5}, [[]],
)


def _base_report() -> dict:
    trace = ApiTrace(
        calls=tuple(VOCAB[:12]) * 3,
        source="Ryuk",
        variant=2,
        os_version="windows10",
        is_ransomware=True,
    )
    return trace_to_report(trace)


def _assert_parses_or_rejects(text: str):
    """The only two permitted outcomes for any input text."""
    try:
        trace, dropped = report_from_json(text)
    except ReportParseError:
        return None
    assert isinstance(dropped, int) and dropped >= 0
    assert trace.calls
    return trace


def _paths(node, prefix=()):
    yield prefix
    if isinstance(node, dict):
        for key, value in node.items():
            yield from _paths(value, prefix + (key,))
    elif isinstance(node, list):
        for index, value in enumerate(node):
            yield from _paths(value, prefix + (index,))


def _parent_of(node, path):
    for key in path[:-1]:
        node = node[key]
    return node


class TestByteLevelFuzz:
    def test_every_truncation_point_is_handled(self):
        text = json.dumps(_base_report())
        rng = random.Random(0xC0FFEE)
        offsets = {0, 1, len(text) - 1, len(text)}
        offsets.update(rng.randrange(len(text)) for _ in range(300))
        for offset in sorted(offsets):
            _assert_parses_or_rejects(text[:offset])

    def test_garbled_bytes_are_handled(self):
        text = json.dumps(_base_report())
        rng = random.Random(1234)
        for _ in range(200):
            chars = list(text)
            for _ in range(rng.randint(1, 8)):
                chars[rng.randrange(len(chars))] = chr(rng.randrange(32, 127))
            _assert_parses_or_rejects("".join(chars))

    def test_invalid_json_raises_parse_error(self):
        for bad in ("", "{", "[1,", "nul", '{"a": }', "\x00", "{}trailing"):
            with pytest.raises(ReportParseError):
                report_from_json(bad)


class TestStructuralFuzz:
    def test_mutated_reports_never_crash(self):
        base = _base_report()
        for trial in range(300):
            rng = random.Random(trial)
            report = copy.deepcopy(base)
            for _ in range(rng.randint(1, 3)):
                paths = [p for p in _paths(report) if p]
                path = rng.choice(paths)
                parent = _parent_of(report, path)
                if rng.random() < 0.3:
                    if isinstance(parent, dict):
                        del parent[path[-1]]
                    else:
                        parent.pop(path[-1])
                else:
                    parent[path[-1]] = rng.choice(CONFUSIONS)
            _assert_parses_or_rejects(json.dumps(report))

    def test_type_confused_api_fields_are_dropped_not_fatal(self):
        report = _base_report()
        calls = report["behavior"]["processes"][0]["calls"]
        # Unhashable and non-string api values: counted as dropped.
        calls[0]["api"] = ["NtCreateFile"]
        calls[1]["api"] = {"nested": True}
        calls[2]["api"] = 42
        del calls[3]["api"]
        trace, dropped = report_to_trace(report)
        assert dropped == 4
        assert len(trace.calls) == len(calls) - 4

    def test_all_calls_type_confused_raises(self):
        report = _base_report()
        for call in report["behavior"]["processes"][0]["calls"]:
            call["api"] = 42
        with pytest.raises(ReportParseError,
                           match="no in-vocabulary API calls"):
            report_to_trace(report)

    def test_parse_error_is_a_value_error(self):
        # Pre-hardening callers catch ValueError; that must keep working.
        assert issubclass(ReportParseError, ValueError)
        with pytest.raises(ValueError):
            report_to_trace({"behavior": {"processes": "not-a-list"}})


json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-10**6, max_value=10**6)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=8),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=25,
)


class TestArbitraryDocuments:
    @given(document=json_values)
    @settings(max_examples=150, deadline=None)
    def test_arbitrary_json_parses_or_rejects(self, document):
        _assert_parses_or_rejects(json.dumps(document))

    @given(processes=json_values)
    @settings(max_examples=150, deadline=None)
    def test_arbitrary_processes_section(self, processes):
        document = {"behavior": {"processes": processes}}
        _assert_parses_or_rejects(json.dumps(document))

    @given(info=json_values, repro=json_values)
    @settings(max_examples=100, deadline=None)
    def test_arbitrary_metadata_sections(self, info, repro):
        document = _base_report()
        document["info"] = info
        document["repro"] = repro
        _assert_parses_or_rejects(json.dumps(document))
