"""ProcessMonitor: the ransomware-layer face of the session subsystem."""

import dataclasses

import numpy as np
import pytest

from repro.core.config import EngineConfig, OptimizationLevel
from repro.core.engine import CSDInferenceEngine
from repro.core.weights import HostWeights
from repro.nn.model import SequenceClassifier
from repro.ransomware.api_vocabulary import API_NAMES, API_TO_ID
from repro.ransomware.detector import RansomwareDetector, Verdict
from repro.ransomware.monitor import ProcessMonitor
from repro.ransomware.replay import PerProcessDetectorBank

WINDOW = 12

_WEIGHTS = HostWeights.from_model(SequenceClassifier(seed=9))


@pytest.fixture(scope="module")
def engine():
    config = EngineConfig(
        dimensions=dataclasses.replace(_WEIGHTS.dimensions, sequence_length=WINDOW),
        optimization=OptimizationLevel.FIXED_POINT,
    )
    return CSDInferenceEngine(config, _WEIGHTS)


def random_calls(seed: int, count: int) -> list:
    rng = np.random.default_rng(seed)
    return [API_NAMES[i] for i in rng.integers(0, len(API_NAMES), size=count)]


class TestObserve:
    def test_api_names_match_recompute_detector(self, engine):
        """Call-name streams score identically to RansomwareDetector."""
        calls = random_calls(5, 3 * WINDOW)
        monitor = ProcessMonitor(engine, threshold=0.5, stride=2)
        detector = RansomwareDetector(engine, threshold=0.5, stride=2)
        got, want = [], []
        for call in calls:
            verdict = monitor.observe(4242, call)
            if verdict is not None:
                got.append(verdict)
            baseline = detector.observe(call)
            if baseline is not None:
                want.append(baseline)
        assert got == want  # Verdict is a frozen dataclass: full equality
        assert all(isinstance(v, Verdict) for v in got)

    def test_token_ids_accepted(self, engine):
        monitor = ProcessMonitor(engine, stride=1)
        verdicts = [
            monitor.observe(1, API_TO_ID[call])
            for call in random_calls(6, WINDOW)
        ]
        assert verdicts[-1] is not None

    def test_observe_tick_batches_many_processes(self, engine):
        """One batched tick per step scores like per-process observation."""
        streams = {pid: random_calls(pid, WINDOW + 3) for pid in (1, 2, 3)}
        batched = ProcessMonitor(engine, stride=1)
        collected: dict = {pid: [] for pid in streams}
        for step in range(WINDOW + 3):
            tick = {pid: calls[step] for pid, calls in streams.items()}
            for pid, verdict in batched.observe_tick(tick).items():
                collected[pid].append(verdict)
        for pid, calls in streams.items():
            solo = ProcessMonitor(engine, stride=1)
            want = [v for v in (solo.observe(pid, c) for c in calls) if v]
            assert collected[pid] == want


class TestLifecycle:
    def test_close_frees_process_state(self, engine):
        monitor = ProcessMonitor(engine, stride=1)
        for call in random_calls(7, 5):
            monitor.observe(77, call)
        assert monitor.monitored_processes == (77,)
        monitor.close(77)
        assert monitor.monitored_processes == ()
        assert monitor.stats()["evictions"] == {"closed": 1}

    def test_idle_processes_evicted_and_counted(self, engine):
        monitor = ProcessMonitor(engine, stride=1, idle_after_steps=2)
        monitor.observe(1, "NtWriteFile")
        for call in random_calls(8, 3):
            monitor.observe(2, call)
        stats = monitor.stats()
        assert stats["evictions"] == {"idle": 1}
        assert 1 in monitor.monitored_processes  # checkpointed, not lost


class TestDetectorBank:
    def test_bank_growth_is_bounded_by_budget(self, engine):
        """The unbounded per-process growth fix: residency stays capped."""
        probe = PerProcessDetectorBank(engine, stride=WINDOW)
        per_session = probe._monitor.sessions.session_bytes
        bank = PerProcessDetectorBank(
            engine, stride=WINDOW, memory_budget_bytes=16 * per_session
        )
        for pid in range(200):
            bank.observe(pid, "NtWriteFile")
        stats = bank.stats()
        assert stats["resident_sessions"] <= 16
        assert stats["evictions"]["lru"] == 200 - stats["resident_sessions"]
        assert len(bank.monitored_processes) == 200  # evicted, not forgotten

    def test_bank_close_drops_exited_process(self, engine):
        bank = PerProcessDetectorBank(engine, stride=1)
        bank.observe(1, "NtWriteFile")
        bank.observe(2, "NtReadFile")
        assert set(bank.monitored_processes) == {1, 2}
        bank.close(1)
        assert set(bank.monitored_processes) == {2}
        assert bank.stats()["evictions"]["closed"] == 1
