"""Leave-k-families-out harness tests.

Covers the fold partition, config validation, the report structure from
a tiny end-to-end run, the ``repro_gen_*`` telemetry emission, and —
the point of the adapters — serving a non-API modality's tokens through
the unchanged ``FleetServer.serve_tokens`` session stack.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.core.config import EngineConfig, OptimizationLevel
from repro.core.fleet import MonitoredStream
from repro.core.serving import FleetServer, ServingConfig, TokenArrival, build_fleet
from repro.core.sessions import SessionConfig
from repro.core.weights import HostWeights
from repro.nn.model import SequenceClassifier
from repro.ransomware.families import ALL_FAMILIES
from repro.ransomware.generalization import (
    GeneralizationConfig,
    evaluate_generalization,
    leave_k_out_folds,
)
from repro.ransomware.traces import MODALITIES
from repro.telemetry import Telemetry

FAMILY_NAMES = [family.name for family in ALL_FAMILIES]


class TestLeaveKOutFolds:
    def test_full_partition_holds_every_family_out_exactly_once(self):
        folds = leave_k_out_folds(FAMILY_NAMES, 2, seed=7)
        assert len(folds) == 5
        held = [family for fold in folds for family in fold]
        assert sorted(held) == sorted(FAMILY_NAMES)

    def test_uneven_last_fold(self):
        folds = leave_k_out_folds(FAMILY_NAMES, 3, seed=0)
        assert [len(fold) for fold in folds] == [3, 3, 3, 1]

    def test_deterministic_per_seed(self):
        assert (leave_k_out_folds(FAMILY_NAMES, 2, seed=3)
                == leave_k_out_folds(FAMILY_NAMES, 2, seed=3))
        assert (leave_k_out_folds(FAMILY_NAMES, 2, seed=3)
                != leave_k_out_folds(FAMILY_NAMES, 2, seed=4))

    def test_folds_truncation(self):
        folds = leave_k_out_folds(FAMILY_NAMES, 2, folds=2, seed=7)
        assert len(folds) == 2

    def test_validation(self):
        with pytest.raises(ValueError, match="no family names"):
            leave_k_out_folds([], 1)
        with pytest.raises(ValueError, match="k must be"):
            leave_k_out_folds(FAMILY_NAMES, 0)
        with pytest.raises(ValueError, match="k must be"):
            leave_k_out_folds(FAMILY_NAMES, len(FAMILY_NAMES) + 1)


class TestConfigValidation:
    def test_unknown_modality(self):
        with pytest.raises(ValueError, match="unknown modalities"):
            GeneralizationConfig(modalities=("api", "syscall"))

    def test_empty_modalities(self):
        with pytest.raises(ValueError, match="at least one"):
            GeneralizationConfig(modalities=())

    def test_bad_k(self):
        with pytest.raises(ValueError, match="held_out_per_fold"):
            GeneralizationConfig(held_out_per_fold=0)
        with pytest.raises(ValueError, match="held_out_per_fold"):
            GeneralizationConfig(held_out_per_fold=len(ALL_FAMILIES))

    def test_bad_folds(self):
        with pytest.raises(ValueError, match="folds"):
            GeneralizationConfig(folds=0)


#: One tiny end-to-end run shared by the structural tests below: a
#: single fold of one modality, two epochs, both float and fixed-point.
TINY_CONFIG = GeneralizationConfig(
    modalities=("block_io",),
    held_out_per_fold=2,
    folds=1,
    scale=0.01,
    sequence_length=40,
    seed=7,
    epochs=2,
    optimizations=(OptimizationLevel.VANILLA, OptimizationLevel.FIXED_POINT),
)


@pytest.fixture(scope="module")
def tiny_run():
    telemetry = Telemetry()
    report = evaluate_generalization(TINY_CONFIG, telemetry=telemetry)
    return report, telemetry


class TestReportStructure:
    def test_fold_sets_and_modalities(self, tiny_run):
        report, _ = tiny_run
        assert len(report.fold_sets) == 1
        assert len(report.fold_sets[0]) == 2
        assert [r.modality for r in report.modalities] == ["block_io"]
        assert report.modality("block_io").vocabulary_size == 105
        with pytest.raises(KeyError):
            report.modality("api")

    def test_fold_result_fields(self, tiny_run):
        report, _ = tiny_run
        (fold,) = report.modality("block_io").folds
        assert fold.held_out == report.fold_sets[0]
        assert fold.train_windows > 0
        assert fold.in_distribution_windows > 0
        assert fold.held_out_windows > 0
        assert {m.optimization for m in fold.levels} == {
            "VANILLA", "FIXED_POINT"
        }
        with pytest.raises(KeyError):
            fold.level(OptimizationLevel.II_OPTIMIZED)

    def test_metrics_are_probabilities_and_gap_consistent(self, tiny_run):
        report, _ = tiny_run
        (fold,) = report.modality("block_io").folds
        for metrics in fold.levels:
            for value in (
                metrics.held_out_recall, metrics.held_out_auc,
                metrics.held_out_precision, metrics.in_distribution_auc,
                *metrics.in_distribution.values(),
                *metrics.per_family_recall.values(),
            ):
                assert 0.0 <= value <= 1.0
            assert metrics.recall_gap == pytest.approx(
                metrics.in_distribution["recall"] - metrics.held_out_recall
            )
            assert set(metrics.per_family_recall) == set(fold.held_out)

    def test_per_family_recall_merges_folds(self, tiny_run):
        report, _ = tiny_run
        result = report.modality("block_io")
        merged = result.per_family_recall(OptimizationLevel.FIXED_POINT)
        assert set(merged) == set(report.fold_sets[0])
        assert np.isfinite(result.mean_recall_gap(OptimizationLevel.FIXED_POINT))

    def test_as_dict_is_json_serialisable(self, tiny_run):
        report, _ = tiny_run
        document = json.loads(json.dumps(report.as_dict()))
        assert document["protocol"] == "leave-k-families-out"
        assert document["config"]["modalities"] == ["block_io"]
        assert document["modalities"][0]["folds"][0]["levels"][0]["optimization"] \
            == "VANILLA"

    def test_telemetry_contract_metrics_emitted(self, tiny_run):
        _, telemetry = tiny_run
        names = {metric.name for metric in telemetry.metrics.all_metrics()}
        assert {"repro_gen_folds_total", "repro_gen_windows_total",
                "repro_gen_recall_gap", "repro_gen_heldout_recall"} <= names


class TestDeterminism:
    def test_same_config_same_report(self, tiny_run):
        report, _ = tiny_run
        again = evaluate_generalization(TINY_CONFIG)
        assert again.as_dict() == report.as_dict()

    def test_progress_callback_receives_lines(self):
        lines: list = []
        config = dataclasses.replace(
            TINY_CONFIG, optimizations=(OptimizationLevel.FIXED_POINT,)
        )
        evaluate_generalization(config, progress=lines.append)
        assert any("fold 0" in line for line in lines)


class TestServingStackParity:
    """A non-API modality flows through the unchanged session stack."""

    def test_block_io_windows_through_serve_tokens(self, tiny_run):
        report, _ = tiny_run
        vocabulary = MODALITIES["block_io"].vocabulary
        window = 16
        weights = HostWeights.from_model(
            SequenceClassifier(vocab_size=vocabulary.size, seed=3)
        )
        config = EngineConfig(
            dimensions=dataclasses.replace(
                weights.dimensions, sequence_length=window
            ),
            optimization=OptimizationLevel.FIXED_POINT,
        )
        engines = build_fleet(weights, 2, config=config)

        dataset = MODALITIES["block_io"].build_dataset(
            scale=0.01, sequence_length=window, seed=7, shuffle=True
        )
        sequences = dataset.sequences[:3]
        streams = [MonitoredStream(f"m{i}", 10_000.0)
                   for i in range(len(sequences))]
        arrivals = [
            TokenArrival(stream=streams[row].name, token=int(token),
                         arrival_us=step * 50)
            for step in range(window)
            for row, token in enumerate(sequences[:, step])
        ]
        server = FleetServer(
            engines, streams,
            ServingConfig(max_batch=8, max_wait_us=100, queue_depth=1024),
        )
        result = server.serve_tokens(
            arrivals, sessions=SessionConfig(stride=window)
        )
        by_stream = {record.stream: record for record in result.verdicts}
        assert set(by_stream) == {stream.name for stream in streams}
        # The sessionised probability equals the batch engine's — the
        # same engine the harness evaluates with.
        expected = engines[0].predict_proba(sequences)
        for row, stream in enumerate(streams):
            assert by_stream[stream.name].probability == pytest.approx(
                float(expected[row]), abs=1e-12
            )


class TestFoldParallelTrainingAndCache:
    """The PR's contract: pool/backend/cache change *nothing* in the report."""

    def test_workers_parity_and_merged_telemetry(self, tiny_run):
        serial_report, serial_telemetry = tiny_run
        telemetry = Telemetry()
        pooled = evaluate_generalization(
            dataclasses.replace(TINY_CONFIG, workers=2), telemetry=telemetry
        )
        assert pooled.as_dict() == serial_report.as_dict()

        def gen_counters(session):
            return sorted(
                (r["name"], tuple(sorted(r["labels"].items())), r["value"])
                for r in session.metrics.snapshot()
                if r["type"] == "counter" and r["name"].startswith("repro_gen_")
            )
        assert gen_counters(telemetry) == gen_counters(serial_telemetry)

    def test_fused_backend_parity(self, tiny_run):
        serial_report, _ = tiny_run
        fused = evaluate_generalization(
            dataclasses.replace(TINY_CONFIG, train_backend="fused")
        )
        assert fused.as_dict() == serial_report.as_dict()

    def test_warm_cache_trains_zero_models(self, tiny_run, tmp_path):
        serial_report, _ = tiny_run
        config = dataclasses.replace(TINY_CONFIG, cache_dir=str(tmp_path))
        cold = evaluate_generalization(config)
        telemetry = Telemetry()
        warm = evaluate_generalization(config, telemetry=telemetry)
        assert cold.as_dict() == warm.as_dict() == serial_report.as_dict()
        counts = {}
        for record in telemetry.metrics.snapshot():
            if record["type"] == "counter":
                counts[record["name"]] = (
                    counts.get(record["name"], 0) + record["value"]
                )
        models = len(warm.modalities) * len(warm.fold_sets)
        assert counts.get("repro_train_cache_hits_total") == models
        assert counts.get("repro_train_batches_total", 0) == 0

    def test_as_dict_config_keys_unchanged(self, tiny_run):
        """The committed BENCH_generalization.json schema must not grow
        keys for the new knobs (workers/backend/cache are run mechanics,
        not recipe)."""
        report, _ = tiny_run
        assert sorted(report.as_dict()["config"]) == [
            "epochs", "folds", "held_out_per_fold", "modalities",
            "optimizations", "scale", "seed", "sequence_length", "threshold",
        ]

    def test_config_validates_new_fields(self):
        with pytest.raises(ValueError, match="workers must be positive"):
            GeneralizationConfig(workers=0)
        with pytest.raises(ValueError, match="unknown train backend"):
            GeneralizationConfig(train_backend="turbo")
