"""Tests for the API vocabulary and the Table II family profiles."""

import pytest

from repro.ransomware.api_vocabulary import (
    API_CATEGORIES,
    API_NAMES,
    API_TO_CATEGORY,
    API_TO_ID,
    CATEGORY_TOKEN_IDS,
    VOCABULARY_SIZE,
    decode,
    encode,
)
from repro.ransomware.benign import ALL_BENIGN_PROFILES, MANUAL_INTERACTION
from repro.ransomware.families import (
    ALL_FAMILIES,
    FamilyProfile,
    Motif,
    Phase,
    TOTAL_VARIANTS,
    table_ii,
)


class TestVocabulary:
    def test_size_matches_paper_embedding(self):
        # 2,224 embedding parameters at dim 8 -> exactly 278 tokens.
        assert VOCABULARY_SIZE == 278
        assert len(API_NAMES) == 278

    def test_no_duplicates(self):
        assert len(set(API_NAMES)) == len(API_NAMES)

    def test_ids_are_dense(self):
        assert sorted(API_TO_ID.values()) == list(range(278))

    def test_every_name_categorised(self):
        assert set(API_TO_CATEGORY) == set(API_NAMES)

    def test_category_ids_partition_vocabulary(self):
        all_ids = [i for ids in CATEGORY_TOKEN_IDS.values() for i in ids]
        assert sorted(all_ids) == list(range(278))

    def test_encode_decode_round_trip(self):
        calls = ["CryptEncrypt", "NtWriteFile", "RegOpenKeyExW"]
        assert decode(encode(calls)) == calls

    def test_encode_unknown_raises(self):
        with pytest.raises(KeyError):
            encode(["NotARealApi"])

    def test_crypto_category_has_the_encryption_calls(self):
        crypto = API_CATEGORIES["crypto"]
        assert "CryptEncrypt" in crypto
        assert "BCryptEncrypt" in crypto


class TestMotifAndPhase:
    def test_all_motif_calls_in_vocabulary(self):
        for family in ALL_FAMILIES:
            for phase in family.phases:
                for motif in phase.motifs:
                    for call in motif.calls:
                        assert call in API_TO_ID, (family.name, motif.name, call)

    def test_all_phase_categories_valid(self):
        for family in ALL_FAMILIES:
            for phase in family.phases:
                for category in phase.category_weights:
                    assert category in API_CATEGORIES, (family.name, phase.name)

    def test_phase_validation(self):
        with pytest.raises(ValueError):
            Phase(name="bad", length=0, category_weights={"file": 1.0})
        with pytest.raises(ValueError):
            Phase(name="bad", length=5, category_weights={})
        with pytest.raises(ValueError):
            Phase(name="bad", length=5, category_weights={"file": 1.0},
                  motif_probability=0.5)  # motifs missing

    def test_family_validation(self):
        with pytest.raises(ValueError):
            FamilyProfile(name="x", variant_count=0, encrypts=True,
                          self_propagates=False, phases=(Phase(
                              name="p", length=5, category_weights={"file": 1.0}),))


class TestTableII:
    def test_ten_families(self):
        assert len(ALL_FAMILIES) == 10

    def test_variant_total_matches_table_ii(self):
        # The paper's prose says "78 variants" but its own Table II rows
        # sum to 76; we reproduce the table (see EXPERIMENTS.md).
        assert TOTAL_VARIANTS == 76

    def test_all_encrypt(self):
        # "all aggregated variants encrypt files".
        assert all(family.encrypts for family in ALL_FAMILIES)

    def test_self_propagating_set(self):
        propagating = {f.name for f in ALL_FAMILIES if f.self_propagates}
        assert propagating == {"Ryuk", "Lockbit", "Wannacry", "BadRabbit"}

    def test_exact_variant_counts(self):
        counts = {f.name: f.variant_count for f in ALL_FAMILIES}
        assert counts == {
            "Ryuk": 5, "Lockbit": 6, "Teslacrypt": 10, "Virlock": 11,
            "Cryptowall": 8, "Cerber": 9, "Wannacry": 7, "Locky": 6,
            "Chimera": 9, "BadRabbit": 5,
        }

    def test_table_rows(self):
        rows = table_ii()
        assert rows[0] == ("Ryuk", 5, True, True)
        assert len(rows) == 10


class TestBenignProfiles:
    def test_thirty_applications_plus_manual(self):
        # Appendix A: 30 popular applications + manual interaction.
        assert len(ALL_BENIGN_PROFILES) == 31
        assert MANUAL_INTERACTION in ALL_BENIGN_PROFILES

    def test_profile_phases_reference_valid_categories(self):
        for profile in ALL_BENIGN_PROFILES:
            for phase in (profile.startup,) + profile.work_phases:
                for category in phase.category_weights:
                    assert category in API_CATEGORIES
                for motif in phase.motifs:
                    for call in motif.calls:
                        assert call in API_TO_ID

    def test_unique_names(self):
        names = [profile.name for profile in ALL_BENIGN_PROFILES]
        assert len(set(names)) == len(names)
