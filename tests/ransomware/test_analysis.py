"""Tests for the dataset analysis utilities."""

import numpy as np
import pytest

from repro.ransomware.analysis import (
    category_distribution,
    category_divergence,
    per_family_detection,
    source_summary,
    window_overlap_fraction,
)


class TestSourceSummary:
    def test_counts_sum_to_dataset(self, tiny_dataset):
        summary = source_summary(tiny_dataset)
        assert sum(entry["windows"] for entry in summary.values()) == len(tiny_dataset)

    def test_labels_consistent(self, tiny_dataset):
        summary = source_summary(tiny_dataset)
        assert summary["Ryuk"]["label"] == 1
        benign_sources = [s for s, e in summary.items() if e["label"] == 0]
        assert benign_sources  # the 30 apps + manual interaction


class TestCategoryDistribution:
    def test_distributions_are_probabilities(self, tiny_dataset):
        for label in (0, 1):
            distribution = category_distribution(tiny_dataset, label)
            assert sum(distribution.values()) == pytest.approx(1.0)
            assert all(v >= 0 for v in distribution.values())

    def test_no_single_category_gives_the_class_away(self, tiny_dataset):
        # The corpus is built so no category ratio trivially separates
        # the classes (benign archivers/backup tools also encrypt): every
        # per-category gap stays well below a decisive margin, so the
        # LSTM's temporal modelling is actually doing the work.
        benign = category_distribution(tiny_dataset, 0)
        ransomware = category_distribution(tiny_dataset, 1)
        for category in benign:
            assert abs(benign[category] - ransomware[category]) < 0.35, category

    def test_benign_heavier_in_ui(self, tiny_dataset):
        benign = category_distribution(tiny_dataset, 0)
        ransomware = category_distribution(tiny_dataset, 1)
        assert benign["ui"] > ransomware["ui"]

    def test_rejects_bad_label(self, tiny_dataset):
        with pytest.raises(ValueError):
            category_distribution(tiny_dataset, 2)


class TestDivergence:
    def test_divergence_in_open_interval(self, tiny_dataset):
        divergence = category_divergence(tiny_dataset)
        # Separable but not trivially so: the regime the paper's 0.9833
        # accuracy implies.
        assert 0.05 < divergence < 0.8


class TestPerFamilyDetection:
    def test_covers_all_families(self, trained_model, tiny_dataset):
        from repro.core.config import OptimizationLevel
        from repro.core.engine import engine_at_level
        from repro.ransomware.detector import RansomwareDetector
        from tests.conftest import TEST_SEQUENCE_LENGTH

        engine = engine_at_level(
            trained_model, OptimizationLevel.FIXED_POINT,
            sequence_length=TEST_SEQUENCE_LENGTH,
        )
        detector = RansomwareDetector(engine)
        sample = tiny_dataset.subset(np.arange(min(250, len(tiny_dataset))))
        results = per_family_detection(detector, sample)
        names = {r.source for r in results}
        assert names  # at least some families present in the sample
        for result in results:
            assert 0.0 <= result.rate <= 1.0
            assert result.windows > 0


class TestOverlap:
    def test_random_pairs_rarely_overlap(self, tiny_dataset):
        # Shuffled dataset: sampled pairs come from different positions
        # and mostly different sources.
        assert window_overlap_fraction(tiny_dataset, sample=400) < 0.2
