"""Tests for the statistics helpers and CPU/GPU baselines."""

import numpy as np
import pytest

from repro.baselines.comparison import format_table, hardware_comparison
from repro.baselines.cpu import (
    CalibratedLatencyModel,
    CpuInferenceBaseline,
    PAPER_CPU_MEAN_US,
    PAPER_CPU_SIGMA_US,
)
from repro.baselines.gpu import GpuCostModel, GpuInferenceBaseline, PAPER_GPU_MEAN_US
from repro.baselines.statistics import (
    _normal_quantile,
    mean_confidence_interval,
    normal_interval,
)
from repro.core.engine import engine_at_level
from repro.core.config import OptimizationLevel
from repro.core.weights import HostWeights
from repro.nn.model import SequenceClassifier


@pytest.fixture(scope="module")
def model():
    return SequenceClassifier(seed=6)


@pytest.fixture(scope="module")
def weights(model):
    return HostWeights.from_model(model)


class TestStatistics:
    def test_normal_quantile_known_values(self):
        assert _normal_quantile(0.975) == pytest.approx(1.959964, abs=1e-4)
        assert _normal_quantile(0.5) == pytest.approx(0.0, abs=1e-9)
        assert _normal_quantile(0.025) == pytest.approx(-1.959964, abs=1e-4)

    def test_normal_quantile_tails(self):
        assert _normal_quantile(1e-6) < -4.0
        assert _normal_quantile(1 - 1e-6) > 4.0

    def test_normal_quantile_rejects_bounds(self):
        with pytest.raises(ValueError):
            _normal_quantile(0.0)

    def test_normal_interval_reproduces_paper_convention(self):
        # Synthetic normal samples with the paper's CPU parameters must
        # recover an interval close to Table I's.
        rng = np.random.default_rng(0)
        samples = rng.normal(PAPER_CPU_MEAN_US, PAPER_CPU_SIGMA_US, size=100_000)
        summary = normal_interval(samples)
        assert summary.ci_low_us == pytest.approx(217.5, rel=0.05)
        assert summary.ci_high_us == pytest.approx(1765.7, rel=0.05)

    def test_interval_symmetric(self):
        summary = normal_interval([1.0, 2.0, 3.0, 4.0])
        assert summary.mean_us - summary.ci_low_us == pytest.approx(
            summary.ci_high_us - summary.mean_us
        )

    def test_mean_ci_narrower_than_sample_interval(self):
        rng = np.random.default_rng(1)
        samples = rng.normal(100, 10, size=400)
        sample_interval = normal_interval(samples)
        mean_interval = mean_confidence_interval(samples)
        assert (mean_interval.ci_high_us - mean_interval.ci_low_us) < (
            sample_interval.ci_high_us - sample_interval.ci_low_us
        )

    def test_requires_two_samples(self):
        with pytest.raises(ValueError):
            normal_interval([1.0])

    def test_summary_str(self):
        text = str(normal_interval([1.0, 2.0]))
        assert "95% CI" in text


class TestCalibratedModel:
    def test_sample_statistics(self):
        model = CalibratedLatencyModel(mean_us=500.0, sigma_us=50.0)
        samples = model.sample(np.random.default_rng(0), 50_000)
        assert samples.mean() == pytest.approx(500.0, rel=0.02)
        assert samples.std() == pytest.approx(50.0, rel=0.05)

    def test_floor_enforced(self):
        model = CalibratedLatencyModel(mean_us=10.0, sigma_us=100.0, floor_us=5.0)
        samples = model.sample(np.random.default_rng(0), 10_000)
        assert samples.min() >= 5.0

    def test_rejects_zero_count(self):
        with pytest.raises(ValueError):
            CalibratedLatencyModel(mean_us=1.0, sigma_us=1.0).sample(
                np.random.default_rng(0), 0
            )


class TestCpuBaseline:
    def test_functional_matches_model(self, model, weights, rng):
        baseline = CpuInferenceBaseline(weights)
        sequence = rng.integers(0, 278, size=30)
        assert baseline.infer_sequence(sequence) == pytest.approx(
            float(model.predict_proba(sequence[None, :])[0]), abs=1e-10
        )

    def test_sampled_latencies_near_paper(self, weights):
        baseline = CpuInferenceBaseline(weights)
        samples = baseline.sample_per_item_latencies(20_000)
        assert samples.mean() == pytest.approx(PAPER_CPU_MEAN_US, rel=0.05)

    def test_local_measurement_runs(self, weights):
        baseline = CpuInferenceBaseline(weights)
        samples = baseline.measure_local_per_item(trials=10, warmup=2)
        assert samples.shape == (10,)
        assert np.all(samples > 0)


class TestGpuBaseline:
    def test_cost_model_decomposition_sums_to_paper_mean(self):
        assert GpuCostModel().deterministic_us == pytest.approx(PAPER_GPU_MEAN_US, rel=0.001)

    def test_functional_matches_cpu(self, weights, rng):
        cpu = CpuInferenceBaseline(weights)
        gpu = GpuInferenceBaseline(weights)
        sequence = rng.integers(0, 278, size=25)
        assert gpu.infer_sequence(sequence) == cpu.infer_sequence(sequence)

    def test_sampled_latencies_near_paper(self, weights):
        gpu = GpuInferenceBaseline(weights)
        samples = gpu.sample_per_item_latencies(20_000)
        assert samples.mean() == pytest.approx(PAPER_GPU_MEAN_US, rel=0.05)

    def test_gpu_faster_than_cpu_on_average(self, weights):
        cpu = CpuInferenceBaseline(weights).sample_per_item_latencies(5000)
        gpu = GpuInferenceBaseline(weights).sample_per_item_latencies(5000)
        assert gpu.mean() < cpu.mean()


class TestComparison:
    @pytest.fixture(scope="class")
    def comparison(self, model, weights):
        engine = engine_at_level(model, OptimizationLevel.FIXED_POINT, sequence_length=10)
        return hardware_comparison(
            engine,
            CpuInferenceBaseline(weights),
            GpuInferenceBaseline(weights),
            trials=4000,
        )

    def test_fpga_row_has_no_ci(self, comparison):
        assert comparison.fpga.ci_low_us is None

    def test_fpga_fastest(self, comparison):
        assert comparison.fpga.mean_us < comparison.gpu.mean_us < comparison.cpu.mean_us

    def test_speedup_magnitude_matches_paper(self, comparison):
        # Paper: 344.6x over the GPU; shape check allows calibration slack.
        assert 250 < comparison.speedup_over_gpu < 450
        assert comparison.speedup_over_cpu > comparison.speedup_over_gpu

    def test_format_table_contains_rows(self, comparison):
        text = format_table(comparison)
        for token in ("FPGA", "CPU", "GPU", "N/A", "speedup"):
            assert token in text
