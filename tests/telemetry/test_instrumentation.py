"""Hot-path instrumentation: every hook fires, and only when attached."""

import numpy as np
import pytest

from repro.core.config import OptimizationLevel
from repro.core.engine import engine_at_level
from repro.hw.axi import AxiMasterPort, TransferError
from repro.hw.dataflow import StageTiming
from repro.hw.faults import DmaErrorFault, FaultPlan, retry_dma
from repro.hw.sim import simulate_item_pipeline
from repro.hw.smartssd import SmartSSD
from repro.ransomware.detector import RansomwareDetector
from repro.telemetry import Telemetry
from tests.conftest import TEST_SEQUENCE_LENGTH


@pytest.fixture
def engine(trained_model):
    return engine_at_level(
        trained_model, OptimizationLevel.FIXED_POINT,
        sequence_length=TEST_SEQUENCE_LENGTH,
    )


def batch(rng, rows=4):
    return rng.integers(0, 278, size=(rows, TEST_SEQUENCE_LENGTH))


class TestEngineInstrumentation:
    def test_infer_batch_counts_and_histograms(self, engine, rng):
        telemetry = Telemetry()
        engine.attach_telemetry(telemetry)
        engine.infer_batch(batch(rng, rows=4))
        opt = engine.config.optimization.name
        assert telemetry.counter("repro_batches_total").value == 1
        assert (
            telemetry.counter("repro_sequences_processed_total", optimization=opt).value
            == 4
        )
        assert (
            telemetry.counter("repro_items_processed_total", optimization=opt).value
            == 4 * TEST_SEQUENCE_LENGTH
        )
        assert telemetry.histogram("repro_batch_size").count == 1
        for kernel in ("kernel_preprocess", "kernel_gates", "kernel_hidden_state"):
            hist = telemetry.histogram("repro_kernel_latency_cycles", kernel=kernel)
            assert hist.count == 4, kernel
        assert telemetry.histogram("repro_sequence_latency_cycles").count == 4

    def test_span_tree_has_one_cu_child_per_configured_cu(self, engine, rng):
        telemetry = Telemetry()
        engine.attach_telemetry(telemetry)
        engine.infer_batch(batch(rng, rows=2))
        (root,) = telemetry.tracer.roots
        assert root.name == "csd.infer_batch"
        assert root.attributes["batch_size"] == 2
        gates = next(c for c in root.children if c.name == "csd.gates")
        assert len(gates.children) == engine.config.num_gate_cus

    def test_disabled_path_records_nothing_and_stays_bit_exact(self, engine, trained_model, rng):
        sequences = batch(rng, rows=8)
        bare = engine.infer_batch(sequences).probabilities
        instrumented = engine_at_level(
            trained_model, OptimizationLevel.FIXED_POINT,
            sequence_length=TEST_SEQUENCE_LENGTH,
        )
        telemetry = Telemetry()
        instrumented.attach_telemetry(telemetry)
        observed = instrumented.infer_batch(sequences).probabilities
        assert np.array_equal(bare, observed)
        assert engine.telemetry is None

    def test_infer_from_storage_records_p2p_span(self, engine):
        telemetry = Telemetry()
        device = SmartSSD()
        engine.attach_storage(device)
        engine.attach_telemetry(telemetry)
        sequence = np.zeros(TEST_SEQUENCE_LENGTH, dtype=np.int64)
        device.ssd.write_object("window", sequence.nbytes)
        engine.infer_from_storage("window", sequence)
        dma_roots = [r for r in telemetry.tracer.roots if r.name == "csd.p2p_dma"]
        assert len(dma_roots) == 1
        assert dma_roots[0].attributes["route"] == "p2p"
        assert dma_roots[0].attributes["key"] == "window"


class TestAxiInstrumentation:
    def test_reads_and_writes_mirror_port_counters(self):
        telemetry = Telemetry()
        port = AxiMasterPort(name="gmem0")
        port.telemetry = telemetry
        port.read_cycles(256)
        port.read_cycles(64)
        port.write_cycles(128)
        reads = telemetry.counter("repro_axi_bytes_total", port="gmem0", op="read")
        writes = telemetry.counter("repro_axi_bytes_total", port="gmem0", op="write")
        assert reads.value + writes.value == port.bytes_transferred
        assert (
            telemetry.counter("repro_axi_transfers_total", port="gmem0", op="read").value
            == 2
        )
        hist = telemetry.histogram("repro_axi_transfer_cycles", port="gmem0", op="read")
        assert hist.count == 2

    def test_zero_byte_transfer_records_nothing(self):
        telemetry = Telemetry()
        port = AxiMasterPort(name="gmem0")
        port.telemetry = telemetry
        port.read_cycles(0)
        assert len(telemetry.metrics) == 0


class TestStorageInstrumentation:
    def test_routes_and_dram_gauge(self):
        telemetry = Telemetry()
        device = SmartSSD()
        device.telemetry = telemetry
        device.ssd.write_object("x", 4096)
        device.host_load_weights(1024)
        device.p2p_fetch("x")
        assert (
            telemetry.counter("repro_storage_bytes_total", route="host_to_fpga").value
            == 1024
        )
        assert telemetry.counter("repro_storage_bytes_total", route="p2p").value == 4096
        assert (
            telemetry.histogram("repro_storage_transfer_seconds", route="p2p").count == 1
        )
        gauge = telemetry.gauge("repro_fpga_dram_used_bytes")
        assert gauge.value == 1024 + 4096
        device.release_fpga_dram(4096)
        assert gauge.value == 1024


class TestDmaRetryInstrumentation:
    def test_retry_then_success(self):
        telemetry = Telemetry()
        plan = FaultPlan(dma_error=DmaErrorFault(failures=2))
        used = retry_dma(plan, attempts=3, telemetry=telemetry)
        assert used == 3
        assert telemetry.counter("repro_dma_attempts_total").value == 3
        assert telemetry.counter("repro_dma_retries_total").value == 2
        assert telemetry.counter("repro_dma_failures_total").value == 0

    def test_budget_exhaustion_counts_a_failure(self):
        telemetry = Telemetry()
        plan = FaultPlan(dma_error=DmaErrorFault(failures=5))
        with pytest.raises(TransferError):
            retry_dma(plan, attempts=2, telemetry=telemetry)
        assert telemetry.counter("repro_dma_attempts_total").value == 2
        assert telemetry.counter("repro_dma_retries_total").value == 1
        assert telemetry.counter("repro_dma_failures_total").value == 1


class TestSimInstrumentation:
    def test_pipeline_reports_events_and_stage_cycles(self):
        telemetry = Telemetry()
        timing = StageTiming(preprocess=10, gates=5, hidden_state=20)
        simulate_item_pipeline(timing, num_items=6, preemptive=True,
                               telemetry=telemetry)
        assert telemetry.counter("repro_sim_events_total").value > 0
        pre = telemetry.histogram("repro_sim_stage_cycles", stage="preprocess")
        compute = telemetry.histogram("repro_sim_stage_cycles", stage="compute")
        assert pre.count == 6
        assert compute.count == 6


class TestDetectorInstrumentation:
    def test_evaluate_and_observe_counters(self, engine, tiny_split):
        telemetry = Telemetry()
        engine.attach_telemetry(telemetry)
        detector = RansomwareDetector(engine, threshold=0.5)
        _, test = tiny_split
        subset = test.subset(np.arange(6))
        detector.evaluate(subset)
        assert telemetry.counter("repro_detector_evaluations_total").value == 1
        assert telemetry.counter("repro_detector_windows_total").value == 6
        for token in subset.sequences[0]:
            detector.observe(int(token))
        verdicts = sum(
            telemetry.counter("repro_detector_verdicts_total", verdict=v).value
            for v in ("ransomware", "benign")
        )
        assert verdicts == 1  # exactly one full window was classified
