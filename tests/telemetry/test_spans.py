"""Unit tests for the span tracer: nesting, iteration, rendering."""

import pytest

from repro.telemetry import Span, Tracer


class TestSpan:
    def test_duration(self):
        assert Span("s", 10, 25).duration_cycles == 15

    def test_rejects_negative_interval(self):
        with pytest.raises(ValueError, match="ends .* before"):
            Span("s", 10, 5)

    def test_zero_length_span_allowed(self):
        assert Span("s", 7, 7).duration_cycles == 0


class TestTracerNesting:
    def test_parent_child_structure(self):
        tracer = Tracer()
        root = tracer.record("root", 0, 100, attributes={"k": "v"})
        child = tracer.record("child", 0, 40, parent=root)
        tracer.record("grandchild", 10, 20, parent=child)
        assert tracer.roots == [root]
        assert [c.name for c in root.children] == ["child"]
        assert [c.name for c in child.children] == ["grandchild"]
        assert root.attributes == {"k": "v"}

    def test_multiple_roots(self):
        tracer = Tracer()
        tracer.record("a", 0, 1)
        tracer.record("b", 0, 2)
        assert [r.name for r in tracer.roots] == ["a", "b"]

    def test_clear_drops_everything(self):
        tracer = Tracer()
        tracer.record("a", 0, 1)
        tracer.clear()
        assert tracer.roots == []

    def test_iter_spans_is_depth_first_with_parents(self):
        tracer = Tracer()
        root = tracer.record("root", 0, 100)
        left = tracer.record("left", 0, 50, parent=root)
        tracer.record("left.leaf", 0, 10, parent=left)
        tracer.record("right", 50, 100, parent=root)
        walk = [(s.name, p.name if p else None) for s, p in tracer.iter_spans()]
        assert walk == [
            ("root", None),
            ("left", "root"),
            ("left.leaf", "left"),
            ("right", "root"),
        ]


class TestRenderTree:
    def test_names_only_rendition(self):
        tracer = Tracer()
        root = tracer.record("root", 0, 100)
        a = tracer.record("a", 0, 10, parent=root)
        tracer.record("a.1", 0, 5, parent=a)
        tracer.record("a.2", 5, 10, parent=a)
        tracer.record("b", 10, 100, parent=root)
        assert tracer.render_tree() == (
            "root\n"
            "├─ a\n"
            "│  ├─ a.1\n"
            "│  └─ a.2\n"
            "└─ b"
        )

    def test_cycles_rendition_appends_intervals(self):
        tracer = Tracer()
        root = tracer.record("root", 0, 3)
        tracer.record("kid", 1, 2, parent=root)
        assert tracer.render_tree(cycles=True) == (
            "root [0, 3)\n"
            "└─ kid [1, 2)"
        )

    def test_render_specific_root(self):
        tracer = Tracer()
        tracer.record("a", 0, 1)
        b = tracer.record("b", 0, 2)
        assert tracer.render_tree(root=b) == "b"
