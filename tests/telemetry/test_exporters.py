"""Unit tests for exporters and the Telemetry facade lifecycle."""

import json

from repro.telemetry import (
    SCHEMA,
    InMemoryExporter,
    JsonLinesExporter,
    PrometheusFileExporter,
    Telemetry,
    metric_events,
    render_prometheus,
    span_events,
)


def populated_telemetry(exporters=()):
    telemetry = Telemetry(exporters=exporters)
    telemetry.counter("repro_reads_total", op="read").inc(3)
    telemetry.gauge("repro_used_bytes").set(512)
    hist = telemetry.histogram("repro_latency_cycles", buckets=(1, 2, 4))
    hist.observe(1)
    hist.observe(3, count=2)
    root = telemetry.record_span("root", 0, 100, attributes={"k": 1})
    telemetry.record_span("kid", 0, 40, parent=root)
    return telemetry


class TestEventStream:
    def test_every_event_is_schema_stamped(self):
        telemetry = populated_telemetry()
        events = telemetry.events()
        assert events, "expected a non-empty stream"
        assert all(e["schema"] == SCHEMA for e in events)

    def test_metric_events_mirror_snapshot(self):
        telemetry = populated_telemetry()
        events = metric_events(telemetry.metrics)
        by_name = {e["name"]: e for e in events}
        assert by_name["repro_reads_total"]["value"] == 3
        assert by_name["repro_reads_total"]["labels"] == {"op": "read"}
        assert by_name["repro_used_bytes"]["value"] == 512
        hist = by_name["repro_latency_cycles"]
        assert hist["count"] == 3
        assert hist["buckets"] == [[1, 1], [2, 1], [4, 3], ["+Inf", 3]]

    def test_span_events_link_parent_ids(self):
        telemetry = populated_telemetry()
        events = span_events(telemetry.tracer)
        root, kid = events
        assert root["name"] == "root" and root["parent_id"] is None
        assert kid["name"] == "kid" and kid["parent_id"] == root["span_id"]
        assert root["attributes"] == {"k": 1}
        assert (kid["start_cycle"], kid["end_cycle"]) == (0, 40)


class TestInMemoryExporter:
    def test_collects_and_filters_by_type(self):
        exporter = InMemoryExporter()
        telemetry = populated_telemetry(exporters=[exporter])
        telemetry.close()
        assert exporter.closed
        assert len(exporter.by_type("span")) == 2
        assert len(exporter.by_type("counter")) == 1

    def test_close_is_idempotent(self):
        exporter = InMemoryExporter()
        telemetry = populated_telemetry(exporters=[exporter])
        telemetry.close()
        events_after_first_close = len(exporter.events)
        telemetry.close()  # must not re-export
        assert len(exporter.events) == events_after_first_close


class TestJsonLinesExporter:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        telemetry = populated_telemetry(exporters=[JsonLinesExporter(path)])
        telemetry.emit({"type": "bench_report", "title": "t", "lines": ["a"]})
        telemetry.close()
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert all(e["schema"] == SCHEMA for e in events)
        types = [e["type"] for e in events]
        assert types[0] == "bench_report"  # streamed before the final export
        assert "counter" in types and "span" in types and "histogram" in types

    def test_output_is_byte_stable(self, tmp_path):
        texts = []
        for name in ("a.jsonl", "b.jsonl"):
            path = tmp_path / name
            telemetry = populated_telemetry(exporters=[JsonLinesExporter(path)])
            telemetry.close()
            texts.append(path.read_text())
        assert texts[0] == texts[1]


class TestPrometheusRendition:
    def test_counter_gauge_histogram_series(self):
        telemetry = populated_telemetry()
        text = render_prometheus(telemetry.events())
        assert "# TYPE repro_reads_total counter" in text
        assert 'repro_reads_total{op="read"} 3' in text
        assert "# TYPE repro_used_bytes gauge" in text
        assert "repro_used_bytes 512" in text
        assert 'repro_latency_cycles_bucket{le="+Inf"} 3' in text
        assert "repro_latency_cycles_sum 7" in text
        assert "repro_latency_cycles_count 3" in text
        # spans are not a Prometheus type and must not leak in
        assert "root" not in text and "span" not in text

    def test_file_exporter_writes_rendition(self, tmp_path):
        path = tmp_path / "metrics.prom"
        telemetry = populated_telemetry(exporters=[PrometheusFileExporter(path)])
        telemetry.close()
        assert path.read_text() == render_prometheus(telemetry.events())

    def test_empty_stream_renders_empty(self):
        assert render_prometheus([]) == ""
