"""Unit tests for counters, gauges, and fixed-bucket histograms."""

import pytest

from repro.telemetry import (
    DEFAULT_CYCLE_BUCKETS,
    DEFAULT_SECONDS_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
)
from repro.telemetry.metrics import default_buckets_for


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("repro_things_total", {})
        assert c.value == 0
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_rejects_negative_increment(self):
        c = Counter("repro_things_total", {})
        with pytest.raises(ValueError, match="only increase"):
            c.inc(-1)

    def test_rejects_bad_labels(self):
        with pytest.raises(ValueError):
            Counter("c", {"": "x"})
        with pytest.raises(ValueError):
            Counter("c", {"k": object()})


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("repro_used_bytes", {})
        g.set(100)
        g.add(-30)
        assert g.value == 70


class TestHistogramBucketing:
    """Prometheus ``le`` semantics: first bucket with bound >= value."""

    def test_observation_lands_in_le_bucket(self):
        h = Histogram("h_cycles", {}, buckets=(1, 2, 4, 8))
        h.observe(1)   # le=1
        h.observe(2)   # le=2
        h.observe(3)   # le=4 (first bound >= 3)
        h.observe(8)   # le=8 — boundary is inclusive
        h.observe(9)   # +Inf overflow
        assert h.bucket_counts == [1, 1, 1, 1, 1]
        assert h.count == 5
        assert h.sum == 1 + 2 + 3 + 8 + 9

    def test_cumulative_buckets_end_with_inf_total(self):
        h = Histogram("h_cycles", {}, buckets=(1, 2, 4))
        for value in (1, 1, 3, 100):
            h.observe(value)
        assert h.cumulative_buckets() == [(1, 2), (2, 2), (4, 3), ("+Inf", 4)]

    def test_count_parameter_folds_identical_observations(self):
        folded = Histogram("h", {}, buckets=(10,))
        looped = Histogram("h", {}, buckets=(10,))
        folded.observe(7, count=64)
        for _ in range(64):
            looped.observe(7)
        assert folded.bucket_counts == looped.bucket_counts
        assert folded.count == looped.count == 64
        assert folded.sum == looped.sum == 7 * 64

    def test_count_must_be_positive(self):
        h = Histogram("h", {}, buckets=(1,))
        with pytest.raises(ValueError, match="count"):
            h.observe(1, count=0)

    def test_bounds_must_strictly_increase(self):
        with pytest.raises(ValueError, match="strictly increase"):
            Histogram("h", {}, buckets=(1, 1, 2))
        with pytest.raises(ValueError, match="at least one"):
            Histogram("h", {}, buckets=())


class TestHistogramMerge:
    def test_merge_is_exact_elementwise_addition(self):
        a = Histogram("h", {}, buckets=(1, 2, 4))
        b = Histogram("h", {}, buckets=(1, 2, 4))
        a.observe(1)
        a.observe(3)
        b.observe(2, count=5)
        b.observe(100)
        a.merge(b)
        assert a.count == 8
        assert a.sum == 1 + 3 + 2 * 5 + 100
        assert a.bucket_counts == [1, 5, 1, 1]

    def test_merge_order_independent(self):
        def shard(values):
            h = Histogram("h", {}, buckets=(1, 2, 4))
            for v in values:
                h.observe(v)
            return h

        ab = shard([1, 3])
        ab.merge(shard([2, 8]))
        ba = shard([2, 8])
        ba.merge(shard([1, 3]))
        assert ab.bucket_counts == ba.bucket_counts
        assert ab.count == ba.count
        assert ab.sum == ba.sum

    def test_merge_rejects_mismatched_buckets(self):
        a = Histogram("h", {}, buckets=(1, 2))
        b = Histogram("h", {}, buckets=(1, 2, 4))
        with pytest.raises(ValueError, match="different buckets"):
            a.merge(b)


class TestDefaultBuckets:
    def test_unit_suffix_selects_buckets(self):
        assert default_buckets_for("x_cycles") is DEFAULT_CYCLE_BUCKETS
        assert default_buckets_for("x_seconds") is DEFAULT_SECONDS_BUCKETS
        assert default_buckets_for("x_bytes") is DEFAULT_SIZE_BUCKETS

    def test_cycle_buckets_cover_one_cycle_to_a_million(self):
        assert DEFAULT_CYCLE_BUCKETS[0] == 1
        assert DEFAULT_CYCLE_BUCKETS[-1] == 2 ** 20


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricRegistry()
        a = reg.counter("repro_x_total", op="read")
        b = reg.counter("repro_x_total", op="read")
        assert a is b
        assert len(reg) == 1

    def test_distinct_labels_are_distinct_instruments(self):
        reg = MetricRegistry()
        reg.counter("repro_x_total", op="read")
        reg.counter("repro_x_total", op="write")
        assert len(reg) == 2

    def test_kind_mismatch_raises(self):
        reg = MetricRegistry()
        reg.counter("repro_x_total")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("repro_x_total")

    def test_snapshot_is_sorted_and_plain_data(self):
        reg = MetricRegistry()
        reg.counter("b_total").inc(2)
        reg.gauge("a_bytes").set(7)
        reg.histogram("c_cycles").observe(3)
        snap = reg.snapshot()
        assert [r["name"] for r in snap] == ["a_bytes", "b_total", "c_cycles"]
        assert snap[0] == {"type": "gauge", "name": "a_bytes", "labels": {}, "value": 7}
        assert snap[1] == {"type": "counter", "name": "b_total", "labels": {}, "value": 2}
        hist = snap[2]
        assert hist["type"] == "histogram"
        assert hist["count"] == 1 and hist["sum"] == 3
        assert hist["buckets"][-1] == ["+Inf", 1]


class TestMergeSnapshot:
    """Cross-process fold-in: the worker-pool telemetry merge path."""

    def _worker_registry(self):
        reg = MetricRegistry()
        reg.counter("repro_batches_total").inc(3)
        reg.counter("repro_seq_total", optimization="FIXED_POINT").inc(40)
        reg.gauge("repro_depth").set(5)
        hist = reg.histogram("repro_batch_size")
        hist.observe(4, count=2)
        hist.observe(100)
        return reg

    def test_merge_into_empty_reproduces_snapshot(self):
        source = self._worker_registry()
        target = MetricRegistry()
        target.merge_snapshot(source.snapshot())
        assert target.snapshot() == source.snapshot()

    def test_merge_is_exact_fold_in(self):
        target = self._worker_registry()
        target.merge_snapshot(self._worker_registry().snapshot())
        assert target.counter("repro_batches_total").value == 6
        assert target.counter(
            "repro_seq_total", optimization="FIXED_POINT"
        ).value == 80
        assert target.gauge("repro_depth").value == 5  # gauges take the value
        hist = target.histogram("repro_batch_size")
        assert hist.count == 6
        assert hist.sum == 2 * (4 * 2 + 100)

    def test_merge_order_independent_for_counters_and_histograms(self):
        a, b = self._worker_registry(), MetricRegistry()
        b.counter("repro_batches_total").inc(7)
        b.histogram("repro_batch_size").observe(9)

        left = MetricRegistry()
        left.merge_snapshot(a.snapshot())
        left.merge_snapshot(b.snapshot())
        right = MetricRegistry()
        right.merge_snapshot(b.snapshot())
        right.merge_snapshot(a.snapshot())
        assert [r for r in left.snapshot() if r["type"] != "gauge"] == [
            r for r in right.snapshot() if r["type"] != "gauge"
        ]

    def test_mismatched_buckets_raise(self):
        source = MetricRegistry()
        source.histogram("repro_x_cycles", buckets=(1, 2, 4)).observe(3)
        target = MetricRegistry()
        target.histogram("repro_x_cycles", buckets=(1, 10))
        with pytest.raises(ValueError, match="different buckets"):
            target.merge_snapshot(source.snapshot())

    def test_unknown_record_type_raises(self):
        with pytest.raises(ValueError, match="unknown snapshot record"):
            MetricRegistry().merge_snapshot(
                [{"type": "summary", "name": "x", "labels": {}, "value": 1}]
            )
