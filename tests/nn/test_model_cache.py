"""Content-addressed model cache: key sensitivity, hit flow, corruption.

The cache's correctness story is that its key covers *everything* the
default-Adam training trajectory is a pure function of — initial weights
(architecture + init seed), every TrainingConfig field except the
bit-exact ``backend`` choice, and the exact train/test split bytes — so
a hit can only ever restore the identical model.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.nn.cache import ModelCache
from repro.nn.kernels import METRIC_TRAIN_BATCHES
from repro.nn.model import SequenceClassifier
from repro.nn.optimizers import SGD
from repro.nn.trainer import Trainer, TrainingConfig
from repro.telemetry import Telemetry

VOCAB = 37


def _model(seed=0, hidden_size=8):
    return SequenceClassifier(
        vocab_size=VOCAB, embedding_dim=4, hidden_size=hidden_size, seed=seed
    )


@pytest.fixture
def split():
    rng = np.random.default_rng(9)
    sequences = rng.integers(0, VOCAB, size=(40, 8))
    labels = rng.integers(0, 2, size=40)
    return sequences[8:], labels[8:], sequences[:8], labels[:8]


@pytest.fixture
def cache(tmp_path):
    return ModelCache(tmp_path / "cache")


def _key(cache, split, *, model=None, config=None):
    return cache.key_for(
        model or _model(), config or TrainingConfig(), *split
    )


class TestKeySensitivity:
    def test_deterministic(self, cache, split):
        assert _key(cache, split) == _key(cache, split)

    def test_model_seed_changes_key(self, cache, split):
        assert _key(cache, split) != _key(cache, split, model=_model(seed=1))

    def test_architecture_changes_key(self, cache, split):
        assert _key(cache, split) != _key(
            cache, split, model=_model(hidden_size=16)
        )

    @pytest.mark.parametrize("field, value", [
        ("epochs", 31), ("batch_size", 32), ("learning_rate", 0.01),
        ("gradient_clip", 1.0), ("seed", 99), ("shuffle", False),
        ("lr_decay", 0.9), ("weight_decay", 0.1),
        ("restore_best_weights", True),
    ])
    def test_every_config_field_changes_key(self, cache, split, field, value):
        changed = dataclasses.replace(TrainingConfig(), **{field: value})
        assert _key(cache, split) != _key(cache, split, config=changed)

    def test_backend_field_shares_key(self, cache, split):
        """The one deliberate exception: backends are bit-exact, so a
        model trained by either may serve the other's lookup."""
        fused = TrainingConfig(backend="fused")
        assert _key(cache, split) == _key(cache, split, config=fused)

    def test_split_bytes_change_key(self, cache, split):
        train_x, train_y, test_x, test_y = split
        perturbed = train_x.copy()
        perturbed[0, 0] = (perturbed[0, 0] + 1) % VOCAB
        assert _key(cache, split) != cache.key_for(
            _model(), TrainingConfig(), perturbed, train_y, test_x, test_y
        )
        flipped = train_y.copy()
        flipped[0] ^= 1
        assert _key(cache, split) != cache.key_for(
            _model(), TrainingConfig(), train_x, flipped, test_x, test_y
        )


class TestHitFlow:
    def test_second_fit_trains_zero_batches(self, cache, split):
        config = TrainingConfig(epochs=2, batch_size=16)
        model_a = _model()
        history_a = Trainer(model_a, config, cache=cache).fit(*split)
        assert cache.misses == 1 and cache.hits == 0

        telemetry = Telemetry()
        model_b = _model()
        history_b = Trainer(
            model_b, config, telemetry=telemetry, cache=cache
        ).fit(*split)
        assert cache.hits == 1
        batches = sum(
            record["value"] for record in telemetry.metrics.snapshot()
            if record["name"] == METRIC_TRAIN_BATCHES
        )
        assert batches == 0, "a cache hit must not train a single batch"
        for a, b in zip(model_a.get_weights(), model_b.get_weights()):
            assert np.array_equal(a, b)
        assert history_a.records == history_b.records

    def test_hit_restores_same_model_as_scratch_run(self, cache, split):
        config = TrainingConfig(epochs=2, batch_size=16)
        Trainer(_model(), config, cache=cache).fit(*split)
        cached_model = _model()
        Trainer(cached_model, config, cache=cache).fit(*split)
        scratch_model = _model()
        Trainer(scratch_model, config).fit(*split)
        for a, b in zip(cached_model.get_weights(), scratch_model.get_weights()):
            assert np.array_equal(a, b)

    def test_cross_backend_hit(self, cache, split):
        Trainer(_model(), TrainingConfig(epochs=2, backend="fused"),
                cache=cache).fit(*split)
        Trainer(_model(), TrainingConfig(epochs=2, backend="reference"),
                cache=cache).fit(*split)
        assert cache.hits == 1 and cache.misses == 1

    def test_custom_optimizer_bypasses_cache(self, cache, split):
        config = TrainingConfig(epochs=1)
        Trainer(_model(), config, optimizer=SGD(0.01), cache=cache).fit(*split)
        assert cache.hits == cache.misses == 0
        assert not list(cache.directory.iterdir())


class TestCorruption:
    def _prime(self, cache, split):
        config = TrainingConfig(epochs=1, batch_size=16)
        Trainer(_model(), config, cache=cache).fit(*split)
        key = cache.key_for(_model(), config, *split)
        return config, key

    def test_corrupt_meta_invalidates_and_retrains(self, cache, split):
        config, key = self._prime(cache, split)
        (cache.directory / f"{key}.meta.json").write_text("{not json")
        model = _model()
        Trainer(model, config, cache=cache).fit(*split)
        assert cache.invalidations == 1
        assert cache.hits == 0
        scratch = _model()
        Trainer(scratch, config).fit(*split)
        for a, b in zip(model.get_weights(), scratch.get_weights()):
            assert np.array_equal(a, b), "retrain after invalidation diverged"

    def test_corrupt_weights_invalidates(self, cache, split):
        config, key = self._prime(cache, split)
        (cache.directory / f"{key}.weights.txt").write_text("garbage")
        Trainer(_model(), config, cache=cache).fit(*split)
        assert cache.invalidations == 1
        # The damaged pair was deleted and rewritten by the retrain.
        assert (cache.directory / f"{key}.weights.txt").exists()
        Trainer(_model(), config, cache=cache).fit(*split)
        assert cache.hits == 1

    def test_schema_bump_invalidates(self, cache, split):
        config, key = self._prime(cache, split)
        meta_path = cache.directory / f"{key}.meta.json"
        meta = json.loads(meta_path.read_text())
        meta["schema"] = 999
        meta_path.write_text(json.dumps(meta))
        Trainer(_model(), config, cache=cache).fit(*split)
        assert cache.invalidations == 1

    def test_shape_mismatch_leaves_model_untouched(self, cache, split):
        """An entry whose weights don't fit the model must not half-mutate
        it: the model is only written after the whole entry validates."""
        config, key = self._prime(cache, split)
        other = _model(hidden_size=16)
        before = [w.copy() for w in other.get_weights()]
        # Force the wrong entry under the other model's key.
        other_key = cache.key_for(other, config, *split)
        for suffix in (".weights.txt", ".meta.json"):
            (cache.directory / f"{other_key}{suffix}").write_text(
                (cache.directory / f"{key}{suffix}").read_text()
            )
        result = cache.load(other_key, other)
        assert result is None
        assert cache.invalidations == 1
        for a, b in zip(before, other.get_weights()):
            assert np.array_equal(a, b)
