"""Tests for the SequenceClassifier model and the training loop."""

import numpy as np
import pytest

from repro.nn.model import (
    PAPER_EMBEDDING_DIM,
    PAPER_HIDDEN_SIZE,
    PAPER_VOCAB_SIZE,
    SequenceClassifier,
)
from repro.nn.optimizers import Adam, SGD
from repro.nn.trainer import ConvergenceHistory, EpochRecord, Trainer, TrainingConfig


class TestModel:
    def test_paper_parameter_counts(self):
        model = SequenceClassifier()
        assert model.embedding.parameter_count == 2224
        assert model.lstm.parameter_count == 5248
        assert model.embedding.parameter_count + model.lstm.parameter_count == 7472
        assert model.head.parameter_count == 33

    def test_paper_constants(self):
        assert (PAPER_VOCAB_SIZE, PAPER_EMBEDDING_DIM, PAPER_HIDDEN_SIZE) == (278, 8, 32)

    def test_logits_shape(self, rng):
        model = SequenceClassifier(vocab_size=12, embedding_dim=4, hidden_size=5)
        x = rng.integers(0, 12, size=(3, 7))
        assert model.forward_logits(x).shape == (3,)

    def test_proba_in_unit_interval(self, rng):
        model = SequenceClassifier(vocab_size=12, embedding_dim=4, hidden_size=5)
        probs = model.predict_proba(rng.integers(0, 12, size=(5, 7)))
        assert np.all((probs > 0) & (probs < 1))

    def test_predict_threshold(self, rng):
        model = SequenceClassifier(vocab_size=12, embedding_dim=4, hidden_size=5)
        x = rng.integers(0, 12, size=(5, 7))
        probs = model.predict_proba(x)
        np.testing.assert_array_equal(model.predict(x, threshold=0.0), np.ones(5))
        np.testing.assert_array_equal(
            model.predict(x), (probs >= 0.5).astype(int)
        )

    def test_deterministic_given_seed(self, rng):
        x = rng.integers(0, 12, size=(2, 7))
        a = SequenceClassifier(vocab_size=12, embedding_dim=4, hidden_size=5, seed=9)
        b = SequenceClassifier(vocab_size=12, embedding_dim=4, hidden_size=5, seed=9)
        np.testing.assert_array_equal(a.predict_proba(x), b.predict_proba(x))

    def test_weights_round_trip_preserves_outputs(self, rng):
        x = rng.integers(0, 12, size=(2, 7))
        a = SequenceClassifier(vocab_size=12, embedding_dim=4, hidden_size=5, seed=1)
        b = SequenceClassifier(vocab_size=12, embedding_dim=4, hidden_size=5, seed=2)
        b.set_weights(a.get_weights())
        np.testing.assert_allclose(a.predict_proba(x), b.predict_proba(x))

    def test_set_weights_rejects_wrong_count(self):
        model = SequenceClassifier(vocab_size=12, embedding_dim=4, hidden_size=5)
        with pytest.raises(ValueError):
            model.set_weights(model.get_weights()[:5])

    def test_parameters_are_live_views(self, rng):
        model = SequenceClassifier(vocab_size=12, embedding_dim=4, hidden_size=5)
        params = model.parameters()
        params["head/b"] += 1.0
        assert model.head.b[0] == 1.0

    def test_train_batch_gradient_keys_match_parameters(self, rng):
        model = SequenceClassifier(vocab_size=12, embedding_dim=4, hidden_size=5)
        x = rng.integers(0, 12, size=(3, 7))
        y = rng.integers(0, 2, size=3)
        _, grads = model.train_batch(x, y)
        assert set(grads) == set(model.parameters())

    def test_training_reduces_loss(self, rng):
        model = SequenceClassifier(vocab_size=12, embedding_dim=4, hidden_size=6, seed=0)
        x = rng.integers(0, 12, size=(32, 10))
        y = (x[:, -1] > 5).astype(int)  # learnable from the last token
        optimizer = Adam(learning_rate=0.02)
        params = model.parameters()
        first_loss, grads = model.train_batch(x, y)
        for _ in range(60):
            loss, grads = model.train_batch(x, y)
            optimizer.step(params, grads)
        assert loss < first_loss * 0.5


class TestTrainer:
    def _toy_data(self, rng, count=48, length=10):
        x = rng.integers(0, 12, size=(count, length))
        y = (x[:, -1] > 5).astype(int)
        return x, y

    def test_fit_returns_history(self, rng):
        x, y = self._toy_data(rng)
        model = SequenceClassifier(vocab_size=12, embedding_dim=4, hidden_size=6)
        trainer = Trainer(model, TrainingConfig(epochs=3, batch_size=16, eval_every=1))
        history = trainer.fit(x, y, x, y)
        assert len(history.records) == 3
        assert history.epochs == [1, 2, 3]

    def test_eval_every_spacing(self, rng):
        x, y = self._toy_data(rng)
        model = SequenceClassifier(vocab_size=12, embedding_dim=4, hidden_size=6)
        trainer = Trainer(model, TrainingConfig(epochs=6, eval_every=3))
        history = trainer.fit(x, y, x, y)
        assert history.epochs == [3, 6]

    def test_final_epoch_always_evaluated(self, rng):
        x, y = self._toy_data(rng)
        model = SequenceClassifier(vocab_size=12, embedding_dim=4, hidden_size=6)
        trainer = Trainer(model, TrainingConfig(epochs=5, eval_every=3))
        history = trainer.fit(x, y, x, y)
        assert history.epochs[-1] == 5

    def test_early_stop(self, rng):
        x, y = self._toy_data(rng, count=64)
        model = SequenceClassifier(vocab_size=12, embedding_dim=4, hidden_size=8)
        trainer = Trainer(
            model,
            TrainingConfig(epochs=200, eval_every=1, early_stop_accuracy=0.95,
                           learning_rate=0.02),
        )
        history = trainer.fit(x, y, x, y)
        assert history.records[-1].test_accuracy >= 0.95
        assert history.records[-1].epoch < 200

    def test_learns_toy_task(self, rng):
        x, y = self._toy_data(rng, count=96)
        model = SequenceClassifier(vocab_size=12, embedding_dim=4, hidden_size=8)
        trainer = Trainer(model, TrainingConfig(epochs=30, learning_rate=0.02, eval_every=30))
        history = trainer.fit(x, y, x, y)
        assert history.peak.test_accuracy > 0.9

    def test_rejects_empty_dataset(self):
        model = SequenceClassifier(vocab_size=12, embedding_dim=4, hidden_size=6)
        trainer = Trainer(model)
        empty = np.zeros((0, 5), dtype=int)
        with pytest.raises(ValueError):
            trainer.fit(empty, np.zeros(0), empty, np.zeros(0))

    def test_rejects_mismatched_labels(self, rng):
        x, y = self._toy_data(rng)
        model = SequenceClassifier(vocab_size=12, embedding_dim=4, hidden_size=6)
        with pytest.raises(ValueError):
            Trainer(model).fit(x, y[:-1], x, y)

    def test_rejects_empty_eval_split(self, rng):
        x, y = self._toy_data(rng)
        model = SequenceClassifier(vocab_size=12, embedding_dim=4, hidden_size=6)
        empty = np.zeros((0, x.shape[1]), dtype=int)
        with pytest.raises(ValueError, match="empty test split"):
            Trainer(model).fit(x, y, empty, np.zeros(0))

    def test_rejects_mismatched_eval_split(self, rng):
        x, y = self._toy_data(rng)
        model = SequenceClassifier(vocab_size=12, embedding_dim=4, hidden_size=6)
        with pytest.raises(ValueError, match="eval sequence/label count mismatch"):
            Trainer(model).fit(x, y, x, y[:-1])

    def test_evaluate_validates_split(self, rng):
        x, y = self._toy_data(rng)
        model = SequenceClassifier(vocab_size=12, embedding_dim=4, hidden_size=6)
        trainer = Trainer(model)
        with pytest.raises(ValueError, match="empty test split"):
            trainer.evaluate(np.zeros((0, x.shape[1]), dtype=int), np.zeros(0))
        with pytest.raises(ValueError, match="count mismatch"):
            trainer.evaluate(x, y[:-1])

    def test_epoch_loss_is_sample_weighted(self, rng):
        """A short ragged final mini-batch must contribute by its sample
        count, not as a full batch (the old unweighted-mean bias)."""
        x, y = self._toy_data(rng, count=40)  # batch 16 -> 16 + 16 + 8
        model = SequenceClassifier(vocab_size=12, embedding_dim=4, hidden_size=6)
        trainer = Trainer(
            model,
            TrainingConfig(epochs=1, batch_size=16, eval_every=1, shuffle=False),
        )
        captured = []
        original = trainer.kernel.train_batch

        def spy(tokens, labels):
            loss, grads = original(tokens, labels)
            captured.append((loss, labels.shape[0]))
            return loss, grads

        trainer.kernel.train_batch = spy
        history = trainer.fit(x, y, x, y)
        assert [count for _, count in captured] == [16, 16, 8]
        weighted = sum(loss * count for loss, count in captured) / 40
        unweighted = sum(loss for loss, _ in captured) / 3
        assert history.records[0].train_loss == weighted
        assert history.records[0].train_loss != unweighted

    def test_history_peak(self):
        history = ConvergenceHistory()
        history.append(EpochRecord(1, 0.5, 0.8, 0.8, 0.8, 0.8))
        history.append(EpochRecord(2, 0.4, 0.95, 0.9, 0.9, 0.9))
        history.append(EpochRecord(3, 0.3, 0.9, 0.9, 0.9, 0.9))
        assert history.peak.epoch == 2

    def test_history_peak_empty_raises(self):
        with pytest.raises(ValueError):
            ConvergenceHistory().peak

    def test_restore_best_weights(self, rng):
        x, y = self._toy_data(rng, count=64)
        model = SequenceClassifier(vocab_size=12, embedding_dim=4, hidden_size=8)
        trainer = Trainer(
            model,
            TrainingConfig(epochs=15, eval_every=1, learning_rate=0.02,
                           restore_best_weights=True),
        )
        history = trainer.fit(x, y, x, y)
        # The restored model must score the peak accuracy, even if the
        # final epoch drifted below it.
        from repro.nn.metrics import classification_report

        final = classification_report(model.predict(x), y)
        assert final["accuracy"] == pytest.approx(history.peak.test_accuracy)

    def test_lr_decay_reduces_optimizer_rate(self, rng):
        x, y = self._toy_data(rng)
        model = SequenceClassifier(vocab_size=12, embedding_dim=4, hidden_size=6)
        trainer = Trainer(
            model, TrainingConfig(epochs=4, eval_every=4, learning_rate=0.01,
                                  lr_decay=0.5),
        )
        trainer.fit(x, y, x, y)
        assert trainer.optimizer.learning_rate == pytest.approx(0.01 * 0.5**4)

    def test_weight_decay_shrinks_unused_weights(self, rng):
        # With pure decay pressure (no useful gradient on the unused
        # embedding rows), weight norms must drop relative to no-decay.
        x, y = self._toy_data(rng, count=32)
        decayed = SequenceClassifier(vocab_size=50, embedding_dim=4, hidden_size=6, seed=3)
        plain = SequenceClassifier(vocab_size=50, embedding_dim=4, hidden_size=6, seed=3)
        for model, decay in ((decayed, 0.05), (plain, 0.0)):
            trainer = Trainer(
                model, TrainingConfig(epochs=6, eval_every=6, weight_decay=decay)
            )
            trainer.fit(x % 12, y, x % 12, y)  # rows 12..49 never used
        unused_decayed = np.linalg.norm(decayed.embedding.weights[20:])
        unused_plain = np.linalg.norm(plain.embedding.weights[20:])
        assert unused_decayed < unused_plain

    def test_restore_best_weights_off_keeps_final(self, rng):
        x, y = self._toy_data(rng, count=64)
        model = SequenceClassifier(vocab_size=12, embedding_dim=4, hidden_size=8)
        trainer = Trainer(
            model, TrainingConfig(epochs=5, eval_every=1, learning_rate=0.02)
        )
        history = trainer.fit(x, y, x, y)
        from repro.nn.metrics import classification_report

        final = classification_report(model.predict(x), y)
        assert final["accuracy"] == pytest.approx(
            history.records[-1].test_accuracy
        )
