"""Tests for the embedding, LSTM, and dense layers, including exact
numerical gradient checks of the full BPTT backward pass."""

import numpy as np
import pytest

from repro.nn.dense import Dense
from repro.nn.embedding import Embedding
from repro.nn.initializers import glorot_uniform, orthogonal, uniform_embedding, zeros
from repro.nn.lstm import GATE_ORDER, LSTM


class TestInitializers:
    def test_glorot_limit(self, rng):
        weights = glorot_uniform(rng, (64, 32))
        limit = np.sqrt(6.0 / (64 + 32))
        assert np.all(np.abs(weights) <= limit)

    def test_glorot_rejects_non_2d(self, rng):
        with pytest.raises(ValueError):
            glorot_uniform(rng, (4,))

    def test_orthogonal_rows(self, rng):
        weights = orthogonal(rng, (16, 16))
        np.testing.assert_allclose(weights @ weights.T, np.eye(16), atol=1e-10)

    def test_orthogonal_rectangular(self, rng):
        weights = orthogonal(rng, (8, 16))
        np.testing.assert_allclose(weights @ weights.T, np.eye(8), atol=1e-10)

    def test_zeros(self):
        assert np.all(zeros((3, 4)) == 0.0)

    def test_uniform_embedding_range(self, rng):
        table = uniform_embedding(rng, (100, 8), scale=0.05)
        assert np.all(np.abs(table) <= 0.05)


class TestEmbedding:
    def test_forward_shape(self, rng):
        layer = Embedding(20, 6, rng)
        out = layer.forward(np.array([[1, 2], [3, 4], [5, 6]]))
        assert out.shape == (3, 2, 6)

    def test_forward_is_row_lookup(self, rng):
        layer = Embedding(10, 4, rng)
        out = layer.forward(np.array([[7]]))
        np.testing.assert_array_equal(out[0, 0], layer.weights[7])

    def test_rejects_out_of_range_ids(self, rng):
        layer = Embedding(10, 4, rng)
        with pytest.raises(ValueError):
            layer.forward(np.array([[10]]))
        with pytest.raises(ValueError):
            layer.forward(np.array([[-1]]))

    def test_backward_before_forward_raises(self, rng):
        with pytest.raises(RuntimeError):
            Embedding(10, 4, rng).backward(np.zeros((1, 1, 4)))

    def test_backward_accumulates_repeated_ids(self, rng):
        layer = Embedding(10, 4, rng)
        ids = np.array([[2, 2, 2]])
        layer.forward(ids)
        grad = layer.backward(np.ones((1, 3, 4)))
        np.testing.assert_array_equal(grad[2], np.full(4, 3.0))
        assert np.all(grad[[0, 1, 3]] == 0.0)

    def test_parameter_count(self, rng):
        assert Embedding(278, 8, rng).parameter_count == 2224

    def test_weights_round_trip(self, rng):
        layer = Embedding(10, 4, rng)
        other = Embedding(10, 4, rng)
        other.set_weights(layer.get_weights())
        np.testing.assert_array_equal(layer.weights, other.weights)

    def test_set_weights_rejects_wrong_shape(self, rng):
        layer = Embedding(10, 4, rng)
        with pytest.raises(ValueError):
            layer.set_weights([np.zeros((5, 4))])

    def test_rejects_nonpositive_dims(self, rng):
        with pytest.raises(ValueError):
            Embedding(0, 4, rng)


class TestLSTM:
    def test_parameter_count_matches_paper(self, rng):
        layer = LSTM(8, 32, rng)
        assert layer.parameter_count == 5248

    def test_forward_shape(self, rng):
        layer = LSTM(4, 7, rng)
        out = layer.forward(rng.standard_normal((5, 9, 4)))
        assert out.shape == (5, 7)

    def test_forward_rejects_wrong_input_dim(self, rng):
        layer = LSTM(4, 7, rng)
        with pytest.raises(ValueError):
            layer.forward(rng.standard_normal((5, 9, 3)))

    def test_forget_bias_initialised_to_one(self, rng):
        layer = LSTM(4, 6, rng)
        np.testing.assert_array_equal(layer.b[6:12], np.ones(6))

    def test_deterministic_given_seed(self):
        a = LSTM(4, 6, np.random.default_rng(5))
        b = LSTM(4, 6, np.random.default_rng(5))
        np.testing.assert_array_equal(a.W_x, b.W_x)

    def test_backward_before_forward_raises(self, rng):
        with pytest.raises(RuntimeError):
            LSTM(4, 6, rng).backward(np.zeros((1, 6)))

    def test_gate_order_is_keras(self):
        assert GATE_ORDER == ("i", "f", "c", "o")

    @pytest.mark.parametrize("activation", ["softsign", "tanh"])
    def test_full_gradient_check(self, activation):
        """Exact BPTT gradients against central differences."""
        rng = np.random.default_rng(3)
        layer = LSTM(3, 4, rng, cell_activation=activation)
        inputs = rng.standard_normal((2, 6, 3))
        upstream = rng.standard_normal((2, 4))

        def loss():
            return float(np.sum(layer.forward(inputs) * upstream))

        loss()
        _, grads = layer.backward(upstream)
        eps = 1e-6
        for key, param in (("W_x", layer.W_x), ("W_h", layer.W_h), ("b", layer.b)):
            flat = param.reshape(-1)
            for index in rng.choice(flat.size, size=5, replace=False):
                original = flat[index]
                flat[index] = original + eps
                up = loss()
                flat[index] = original - eps
                down = loss()
                flat[index] = original
                numeric = (up - down) / (2 * eps)
                analytic = grads[key].reshape(-1)[index]
                assert analytic == pytest.approx(numeric, abs=1e-5), key

    def test_input_gradient_check(self):
        rng = np.random.default_rng(4)
        layer = LSTM(3, 4, rng)
        inputs = rng.standard_normal((2, 5, 3))
        upstream = rng.standard_normal((2, 4))
        layer.forward(inputs)
        grad_inputs, _ = layer.backward(upstream)
        eps = 1e-6
        for _ in range(5):
            b, t, d = (rng.integers(0, s) for s in inputs.shape)
            original = inputs[b, t, d]
            inputs[b, t, d] = original + eps
            up = float(np.sum(layer.forward(inputs) * upstream))
            inputs[b, t, d] = original - eps
            down = float(np.sum(layer.forward(inputs) * upstream))
            inputs[b, t, d] = original
            layer.forward(inputs)
            assert grad_inputs[b, t, d] == pytest.approx((up - down) / (2 * eps), abs=1e-5)

    def test_weights_round_trip(self, rng):
        layer = LSTM(3, 4, rng)
        other = LSTM(3, 4, np.random.default_rng(99))
        other.set_weights(layer.get_weights())
        inputs = rng.standard_normal((2, 5, 3))
        np.testing.assert_allclose(layer.forward(inputs), other.forward(inputs))

    def test_set_weights_rejects_wrong_shapes(self, rng):
        layer = LSTM(3, 4, rng)
        w_x, w_h, b = layer.get_weights()
        with pytest.raises(ValueError):
            layer.set_weights([w_x.T, w_h, b])

    def test_state_is_per_forward_not_persistent(self, rng):
        # Two identical forwards give identical outputs (state resets).
        layer = LSTM(3, 4, rng)
        inputs = rng.standard_normal((2, 5, 3))
        first = layer.forward(inputs)
        second = layer.forward(inputs)
        np.testing.assert_array_equal(first, second)


class TestDense:
    def test_forward_affine(self, rng):
        layer = Dense(4, 2, rng)
        x = rng.standard_normal((3, 4))
        np.testing.assert_allclose(layer.forward(x), x @ layer.W + layer.b)

    def test_parameter_count_matches_paper_head(self, rng):
        assert Dense(32, 1, rng).parameter_count == 33

    def test_backward_gradients(self, rng):
        layer = Dense(4, 2, rng)
        x = rng.standard_normal((3, 4))
        upstream = rng.standard_normal((3, 2))
        layer.forward(x)
        grad_inputs, grads = layer.backward(upstream)
        np.testing.assert_allclose(grads["W"], x.T @ upstream)
        np.testing.assert_allclose(grads["b"], upstream.sum(axis=0))
        np.testing.assert_allclose(grad_inputs, upstream @ layer.W.T)

    def test_backward_before_forward_raises(self, rng):
        with pytest.raises(RuntimeError):
            Dense(4, 2, rng).backward(np.zeros((1, 2)))

    def test_forward_rejects_wrong_width(self, rng):
        with pytest.raises(ValueError):
            Dense(4, 2, rng).forward(np.zeros((3, 5)))

    def test_weights_round_trip(self, rng):
        layer = Dense(4, 2, rng)
        other = Dense(4, 2, np.random.default_rng(77))
        other.set_weights(layer.get_weights())
        x = rng.standard_normal((3, 4))
        np.testing.assert_allclose(layer.forward(x), other.forward(x))
