"""Bit-exactness and degradation contract of the training kernel registry.

The fused backend's whole value proposition is "faster and *identical*":
every loss, every gradient array, and every full training trajectory must
match the reference path bit for bit, on every shape hypothesis can dream
up.  The degradation ladder (numba -> C -> NumPy -> reference) must be
observable through ``repro_train_backend_fallback_total`` and never
change a single number.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import kernels
from repro.nn.kernels import (
    DEFAULT_TRAIN_BACKEND,
    FALLBACK_SELF_CHECK,
    FALLBACK_UNSUPPORTED,
    FusedTrainingKernel,
    METRIC_TRAIN_BATCHES,
    METRIC_TRAIN_FALLBACK,
    ReferenceTrainingKernel,
    available_training_backends,
    register_training_backend,
    resolve_training_backend,
)
from repro.nn.model import SequenceClassifier
from repro.nn.trainer import Trainer, TrainingConfig
from repro.telemetry import Telemetry

VOCAB = 41


def _model(seed=0, hidden_size=16, cell_activation="softsign"):
    return SequenceClassifier(
        vocab_size=VOCAB, embedding_dim=5, hidden_size=hidden_size,
        seed=seed, cell_activation=cell_activation,
    )


def _batch(rng, batch_size, timesteps):
    token_ids = rng.integers(0, VOCAB, size=(batch_size, timesteps))
    labels = rng.integers(0, 2, size=batch_size)
    return token_ids, labels


def _assert_same_result(result_a, result_b):
    loss_a, grads_a = result_a
    loss_b, grads_b = result_b
    assert loss_a == loss_b
    assert grads_a.keys() == grads_b.keys()
    for key in grads_a:
        assert np.array_equal(grads_a[key], grads_b[key]), key


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert "reference" in available_training_backends()
        assert "fused" in available_training_backends()
        assert DEFAULT_TRAIN_BACKEND == "reference"

    def test_resolve_returns_bound_kernels(self):
        model = _model()
        assert isinstance(
            resolve_training_backend("reference", model), ReferenceTrainingKernel
        )
        assert isinstance(
            resolve_training_backend("fused", model), FusedTrainingKernel
        )

    def test_unknown_backend_raises_with_available_list(self):
        with pytest.raises(ValueError, match="unknown training backend"):
            resolve_training_backend("turbo", _model())

    def test_register_custom_backend(self):
        register_training_backend("custom-test", ReferenceTrainingKernel)
        try:
            kernel = resolve_training_backend("custom-test", _model())
            assert isinstance(kernel, ReferenceTrainingKernel)
        finally:
            del kernels._REGISTRY["custom-test"]

    def test_trainer_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown training backend"):
            Trainer(_model(), TrainingConfig(backend="turbo"))


class TestFusedParity:
    """The core contract: fused == reference, bit for bit."""

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        batch_size=st.integers(1, 7),
        timesteps=st.integers(1, 9),
        hidden_size=st.sampled_from([4, 16]),
    )
    def test_train_batch_bitwise(self, seed, batch_size, timesteps, hidden_size):
        reference_model = _model(seed=seed, hidden_size=hidden_size)
        fused_model = _model(seed=seed, hidden_size=hidden_size)
        fused = resolve_training_backend("fused", fused_model)
        rng = np.random.default_rng(seed)
        for _ in range(2):  # second batch reuses the persistent buffers
            token_ids, labels = _batch(rng, batch_size, timesteps)
            _assert_same_result(
                fused.train_batch(token_ids, labels),
                reference_model.train_batch(token_ids, labels),
            )

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 2**16), batch_size=st.integers(8, 32))
    def test_full_fit_trajectory_bitwise(self, seed, batch_size):
        """Whole fit() runs — weights and history — match across backends.

        ``batch_size`` ranges over values that leave a ragged final
        mini-batch, exercising the buffer reshape path mid-epoch.
        """
        rng = np.random.default_rng(seed)
        train_x, train_y = _batch(rng, 50, 12)
        test_x, test_y = _batch(rng, 10, 12)
        weights = {}
        for backend in ("reference", "fused"):
            model = _model(seed=seed)
            Trainer(
                model,
                TrainingConfig(epochs=3, batch_size=batch_size,
                               eval_every=1, seed=seed, backend=backend),
            ).fit(train_x, train_y, test_x, test_y)
            weights[backend] = model.get_weights()
        for a, b in zip(weights["reference"], weights["fused"]):
            assert np.array_equal(a, b)

    def test_histories_match_across_backends(self):
        rng = np.random.default_rng(3)
        train_x, train_y = _batch(rng, 40, 10)
        test_x, test_y = _batch(rng, 8, 10)
        histories = {}
        for backend in ("reference", "fused"):
            trainer = Trainer(
                _model(seed=3),
                TrainingConfig(epochs=4, batch_size=16, eval_every=1,
                               backend=backend),
            )
            histories[backend] = trainer.fit(
                train_x, train_y, test_x, test_y
            ).records
        assert histories["reference"] == histories["fused"]

    def test_numpy_rung_parity(self, monkeypatch):
        """With every compiled tier disabled, the fused NumPy formulation
        still matches the reference bitwise (and stays on the fused path)."""
        monkeypatch.setattr(
            kernels, "_build_train_steps", lambda hidden: (None, None, None)
        )
        model = _model(seed=11)
        fused = resolve_training_backend("fused", model)
        assert fused.accel_tier is None
        assert not fused._delegate  # still the fused pass, not reference
        rng = np.random.default_rng(11)
        token_ids, labels = _batch(rng, 6, 8)
        _assert_same_result(
            fused.train_batch(token_ids, labels),
            _model(seed=11).train_batch(token_ids, labels),
        )


class TestDegradation:
    def test_tanh_model_delegates_to_reference(self):
        telemetry = Telemetry()
        model = _model(seed=5, cell_activation="tanh")
        fused = resolve_training_backend("fused", model, telemetry=telemetry)
        assert fused.accel_tier is None
        assert fused.fallback_reasons.get(FALLBACK_UNSUPPORTED) == 1
        rng = np.random.default_rng(5)
        token_ids, labels = _batch(rng, 4, 6)
        _assert_same_result(
            fused.train_batch(token_ids, labels),
            _model(seed=5, cell_activation="tanh").train_batch(token_ids, labels),
        )
        reasons = {
            record["labels"]["reason"]
            for record in telemetry.metrics.snapshot()
            if record["name"] == METRIC_TRAIN_FALLBACK
        }
        assert FALLBACK_UNSUPPORTED in reasons

    def test_broken_compiled_tier_is_caught_at_build_time(self, monkeypatch):
        """A compiled tier producing wrong bits is rejected by the build-time
        self-check (counted as ``jit_error``) and the kernel re-validates on
        the NumPy rung — training output never changes."""

        def broken_fwd(*arrays):
            arrays[2][...] = 0.5  # corrupt the input-gate cache

        def inert_bwd(*arrays):
            arrays[8].fill(0.0)  # d_pre: defined but wrong

        monkeypatch.setattr(
            kernels, "_build_train_steps",
            lambda hidden: (kernels._TrainSteps(fwd=broken_fwd, bwd=inert_bwd),
                            None, "cc"),
        )
        fused = resolve_training_backend("fused", _model(seed=7))
        assert fused.accel_tier is None
        assert kernels.FALLBACK_JIT_ERROR in fused.fallback_reasons
        rng = np.random.default_rng(7)
        token_ids, labels = _batch(rng, 3, 5)
        _assert_same_result(
            fused.train_batch(token_ids, labels),
            _model(seed=7).train_batch(token_ids, labels),
        )

    def test_batch_counter_by_backend(self):
        telemetry = Telemetry()
        model = _model(seed=2)
        rng = np.random.default_rng(2)
        token_ids, labels = _batch(rng, 4, 6)
        fused = resolve_training_backend("fused", model, telemetry=telemetry)
        fused.train_batch(token_ids, labels)
        fused.train_batch(token_ids, labels)
        counts = {
            record["labels"]["backend"]: record["value"]
            for record in telemetry.metrics.snapshot()
            if record["name"] == METRIC_TRAIN_BATCHES
        }
        assert counts.get("fused") == 2
