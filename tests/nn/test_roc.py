"""Tests for ROC/AUC and the threshold sweep."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.metrics import auc, roc_curve, threshold_sweep


class TestRocCurve:
    def test_perfect_separation(self):
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        labels = np.array([1, 1, 0, 0])
        fpr, tpr, _ = roc_curve(scores, labels)
        assert auc(scores, labels) == pytest.approx(1.0)
        # The curve passes through (0, 1): all positives before any FP.
        assert any(f == 0.0 and t == 1.0 for f, t in zip(fpr, tpr))

    def test_inverted_scores_auc_zero(self):
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        labels = np.array([1, 1, 0, 0])
        assert auc(scores, labels) == pytest.approx(0.0)

    def test_random_scores_auc_near_half(self):
        rng = np.random.default_rng(0)
        scores = rng.uniform(size=4000)
        labels = rng.integers(0, 2, size=4000)
        assert auc(scores, labels) == pytest.approx(0.5, abs=0.03)

    def test_endpoints(self):
        scores = np.array([0.3, 0.7, 0.5, 0.1])
        labels = np.array([0, 1, 1, 0])
        fpr, tpr, thresholds = roc_curve(scores, labels)
        assert (fpr[0], tpr[0]) == (0.0, 0.0)
        assert (fpr[-1], tpr[-1]) == (1.0, 1.0)
        assert thresholds[0] == np.inf

    def test_monotone_nondecreasing(self):
        rng = np.random.default_rng(3)
        scores = rng.uniform(size=200)
        labels = rng.integers(0, 2, size=200)
        fpr, tpr, _ = roc_curve(scores, labels)
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)

    def test_tied_scores_collapsed(self):
        scores = np.array([0.5, 0.5, 0.5, 0.9])
        labels = np.array([1, 0, 1, 1])
        fpr, tpr, thresholds = roc_curve(scores, labels)
        # Two distinct scores -> origin + two curve points.
        assert len(thresholds) == 3

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            roc_curve(np.array([0.5, 0.6]), np.array([1, 1]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            roc_curve(np.array([0.5]), np.array([1, 0]))

    @given(st.integers(min_value=2, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_auc_bounded_property(self, count):
        rng = np.random.default_rng(count)
        scores = rng.uniform(size=count)
        labels = np.r_[1, 0, rng.integers(0, 2, size=count - 2)]
        value = auc(scores, labels)
        assert 0.0 <= value <= 1.0


class TestThresholdSweep:
    def test_monotone_recall_in_threshold(self):
        rng = np.random.default_rng(1)
        scores = np.r_[rng.uniform(0.4, 1.0, 50), rng.uniform(0.0, 0.6, 50)]
        labels = np.r_[np.ones(50, dtype=int), np.zeros(50, dtype=int)]
        sweep = threshold_sweep(scores, labels, [0.1, 0.3, 0.5, 0.7, 0.9])
        recalls = [matrix.recall for _, matrix in sweep]
        assert recalls == sorted(recalls, reverse=True)

    def test_extreme_thresholds(self):
        scores = np.array([0.2, 0.8])
        labels = np.array([0, 1])
        sweep = threshold_sweep(scores, labels, [0.0, 1.1])
        permissive, strict = sweep[0][1], sweep[1][1]
        assert permissive.recall == 1.0 and permissive.precision == 0.5
        assert strict.recall == 0.0

    def test_detector_operating_point(self, trained_model, tiny_split):
        """The ROC data behind the quarantine-threshold choice."""
        _, test = tiny_split
        sample = test.subset(np.arange(min(150, len(test))))
        scores = trained_model.predict_proba(sample.sequences)
        assert auc(scores, sample.labels) > 0.9
        sweep = threshold_sweep(scores, sample.labels, [0.5, 0.9])
        loose, strict = sweep[0][1], sweep[1][1]
        assert strict.precision >= loose.precision
