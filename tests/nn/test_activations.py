"""Tests for float activations and their gradients."""

import numpy as np
import pytest

from repro.nn.activations import (
    ACTIVATIONS,
    get_activation,
    sigmoid,
    sigmoid_grad,
    softsign,
    softsign_grad,
    tanh,
    tanh_grad,
)


def numerical_gradient(function, x, eps=1e-6):
    return (function(x + eps) - function(x - eps)) / (2 * eps)


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_saturation(self):
        assert sigmoid(np.array([50.0]))[0] == pytest.approx(1.0)
        assert sigmoid(np.array([-50.0]))[0] == pytest.approx(0.0)

    def test_no_overflow_on_large_negative(self):
        # The naive 1/(1+exp(-x)) overflows at x = -1000.
        values = sigmoid(np.array([-1000.0, 1000.0]))
        assert np.all(np.isfinite(values))

    def test_gradient_matches_numerical(self):
        xs = np.linspace(-4, 4, 17)
        np.testing.assert_allclose(
            sigmoid_grad(xs), numerical_gradient(sigmoid, xs), atol=1e-6
        )


class TestSoftsign:
    def test_zero(self):
        assert softsign(np.array([0.0]))[0] == 0.0

    def test_asymptotes(self):
        assert softsign(np.array([1e9]))[0] == pytest.approx(1.0)
        assert softsign(np.array([-1e9]))[0] == pytest.approx(-1.0)

    def test_same_s_shape_as_tanh(self):
        # The paper's justification: similar S-curve and asymptotes.
        xs = np.linspace(-5, 5, 101)
        soft = softsign(xs)
        hard = tanh(xs)
        assert np.all(np.sign(soft) == np.sign(hard))
        assert np.all(np.abs(soft) <= np.abs(hard) + 1e-12)

    def test_gradient_matches_numerical(self):
        xs = np.linspace(-4, 4, 17)
        np.testing.assert_allclose(
            softsign_grad(xs), numerical_gradient(softsign, xs), atol=1e-6
        )

    def test_gradient_never_vanishes_polynomially(self):
        # softsign's gradient decays as 1/x^2 (not exponentially like tanh).
        assert softsign_grad(np.array([10.0]))[0] > tanh_grad(np.array([10.0]))[0]


class TestTanh:
    def test_gradient_matches_numerical(self):
        xs = np.linspace(-3, 3, 13)
        np.testing.assert_allclose(
            tanh_grad(xs), numerical_gradient(tanh, xs), atol=1e-6
        )


class TestRegistry:
    def test_all_registered(self):
        assert set(ACTIVATIONS) == {"sigmoid", "tanh", "softsign"}

    def test_lookup_returns_pair(self):
        function, gradient = get_activation("softsign")
        assert function is softsign
        assert gradient is softsign_grad

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown activation"):
            get_activation("relu")
