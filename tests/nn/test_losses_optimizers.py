"""Tests for the BCE loss, optimisers, and gradient clipping."""

import numpy as np
import pytest

from repro.nn.losses import binary_cross_entropy_with_logits
from repro.nn.optimizers import SGD, Adam, clip_gradients


class TestBce:
    def test_perfect_confident_prediction_near_zero_loss(self):
        loss, _ = binary_cross_entropy_with_logits(
            np.array([20.0, -20.0]), np.array([1.0, 0.0])
        )
        assert loss < 1e-6

    def test_chance_prediction_is_log_two(self):
        loss, _ = binary_cross_entropy_with_logits(
            np.array([0.0, 0.0]), np.array([1.0, 0.0])
        )
        assert loss == pytest.approx(np.log(2.0))

    def test_stable_for_extreme_logits(self):
        loss, grad = binary_cross_entropy_with_logits(
            np.array([1000.0, -1000.0]), np.array([0.0, 1.0])
        )
        assert np.isfinite(loss)
        assert np.all(np.isfinite(grad))

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(0)
        logits = rng.standard_normal(6)
        labels = rng.integers(0, 2, size=6).astype(float)
        _, grad = binary_cross_entropy_with_logits(logits, labels)
        eps = 1e-6
        for index in range(6):
            bumped = logits.copy()
            bumped[index] += eps
            up, _ = binary_cross_entropy_with_logits(bumped, labels)
            bumped[index] -= 2 * eps
            down, _ = binary_cross_entropy_with_logits(bumped, labels)
            assert grad[index] == pytest.approx((up - down) / (2 * eps), abs=1e-6)

    def test_rejects_empty_batch(self):
        with pytest.raises(ValueError):
            binary_cross_entropy_with_logits(np.array([]), np.array([]))

    def test_accepts_column_logits(self):
        loss, grad = binary_cross_entropy_with_logits(
            np.array([[0.5], [-0.5]]), np.array([1, 0])
        )
        assert grad.shape == (2, 1)


def quadratic_problem():
    """min ||p - target||^2 with keyed parameters."""
    target = np.array([1.0, -2.0, 3.0])
    params = {"p": np.zeros(3)}

    def grads():
        return {"p": 2.0 * (params["p"] - target)}

    return params, grads, target


class TestSgd:
    def test_converges_on_quadratic(self):
        params, grads, target = quadratic_problem()
        optimizer = SGD(learning_rate=0.1)
        for _ in range(200):
            optimizer.step(params, grads())
        np.testing.assert_allclose(params["p"], target, atol=1e-6)

    def test_momentum_converges(self):
        params, grads, target = quadratic_problem()
        optimizer = SGD(learning_rate=0.05, momentum=0.9)
        for _ in range(300):
            optimizer.step(params, grads())
        np.testing.assert_allclose(params["p"], target, atol=1e-4)

    def test_unknown_key_raises(self):
        optimizer = SGD()
        with pytest.raises(KeyError):
            optimizer.step({"a": np.zeros(1)}, {"b": np.zeros(1)})

    def test_rejects_bad_hyperparameters(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=0.0)
        with pytest.raises(ValueError):
            SGD(momentum=1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        params, grads, target = quadratic_problem()
        optimizer = Adam(learning_rate=0.1)
        for _ in range(500):
            optimizer.step(params, grads())
        np.testing.assert_allclose(params["p"], target, atol=1e-4)

    def test_first_step_size_near_learning_rate(self):
        # Bias correction makes the first update ~lr regardless of scale.
        params = {"p": np.array([0.0])}
        optimizer = Adam(learning_rate=0.01)
        optimizer.step(params, {"p": np.array([1000.0])})
        assert abs(params["p"][0] + 0.01) < 1e-3

    def test_rejects_bad_hyperparameters(self):
        with pytest.raises(ValueError):
            Adam(learning_rate=-1.0)
        with pytest.raises(ValueError):
            Adam(beta1=1.0)

    def test_state_is_per_key(self):
        params = {"a": np.zeros(1), "b": np.zeros(1)}
        optimizer = Adam(learning_rate=0.1)
        optimizer.step(params, {"a": np.array([1.0])})
        optimizer.step(params, {"b": np.array([1.0])})
        # Updating "a" must not have created momentum for "b".
        assert params["a"][0] != params["b"][0] or True  # both moved once
        assert abs(params["b"][0]) > 0


class TestClipping:
    def test_small_gradients_untouched(self):
        grads = {"a": np.array([0.3, 0.4])}
        norm = clip_gradients(grads, max_norm=10.0)
        assert norm == pytest.approx(0.5)
        np.testing.assert_array_equal(grads["a"], [0.3, 0.4])

    def test_large_gradients_scaled_to_max_norm(self):
        grads = {"a": np.array([30.0, 40.0])}
        clip_gradients(grads, max_norm=5.0)
        assert np.linalg.norm(grads["a"]) == pytest.approx(5.0, rel=1e-6)

    def test_norm_is_global_across_keys(self):
        grads = {"a": np.array([3.0]), "b": np.array([4.0])}
        norm = clip_gradients(grads, max_norm=100.0)
        assert norm == pytest.approx(5.0)

    def test_rejects_nonpositive_max_norm(self):
        with pytest.raises(ValueError):
            clip_gradients({"a": np.zeros(1)}, max_norm=0.0)
