"""Tests for the text weight file format."""

import numpy as np
import pytest

from repro.nn.model import SequenceClassifier
from repro.nn.serialization import (
    SECTION_NAMES,
    dump_weights,
    load_into_model,
    load_weights,
)


@pytest.fixture
def small_model():
    return SequenceClassifier(vocab_size=10, embedding_dim=3, hidden_size=4, seed=5)


class TestDump:
    def test_contains_all_sections(self, small_model):
        text = dump_weights(small_model)
        for name in SECTION_NAMES:
            assert f"# {name}" in text

    def test_writes_to_path(self, small_model, tmp_path):
        path = tmp_path / "weights.txt"
        dump_weights(small_model, path)
        assert path.exists()
        assert load_weights(str(path))["embedding"].shape == (10, 3)


class TestRoundTrip:
    def test_exact_round_trip(self, small_model):
        arrays = load_weights(dump_weights(small_model))
        for name, original in zip(SECTION_NAMES, small_model.get_weights()):
            np.testing.assert_array_equal(arrays[name], original)

    def test_load_into_model_preserves_predictions(self, small_model, rng):
        text = dump_weights(small_model)
        other = SequenceClassifier(vocab_size=10, embedding_dim=3, hidden_size=4, seed=99)
        load_into_model(text, other)
        x = rng.integers(0, 10, size=(4, 6))
        np.testing.assert_allclose(
            small_model.predict_proba(x), other.predict_proba(x)
        )

    def test_full_precision_preserved(self, small_model):
        # repr() round-trips float64 exactly; any lossy formatting would
        # perturb the CSD engine's numerics.
        arrays = load_weights(dump_weights(small_model))
        assert np.array_equal(arrays["lstm_W_x"], small_model.lstm.W_x)


class TestMalformedInput:
    def _valid_text(self, small_model):
        return dump_weights(small_model)

    def test_unknown_section(self):
        with pytest.raises(ValueError, match="unknown section"):
            load_weights("# bogus 2\n1.0\n2.0\n")

    def test_duplicate_section(self, small_model):
        text = self._valid_text(small_model)
        with pytest.raises(ValueError, match="duplicate"):
            load_weights(text + "# embedding 1\n0.0\n")

    def test_missing_sections(self):
        with pytest.raises(ValueError, match="missing sections"):
            load_weights("# embedding 1 1\n0.5\n")

    def test_wrong_value_count(self):
        with pytest.raises(ValueError, match="expected 4 values"):
            load_weights("# embedding 2 2\n0.1\n0.2\n0.3\n# lstm_W_x 0\n")

    def test_value_before_header(self):
        with pytest.raises(ValueError, match="before any section"):
            load_weights("1.5\n# embedding 1 1\n")

    def test_non_numeric_value(self):
        with pytest.raises(ValueError, match="not a number"):
            load_weights("# embedding 1 1\nhello\n")

    def test_empty_header(self):
        with pytest.raises(ValueError, match="empty section header"):
            load_weights("#\n")

    def test_blank_lines_tolerated(self, small_model):
        text = self._valid_text(small_model).replace("\n", "\n\n", 3)
        assert load_weights(text)["embedding"].shape == (10, 3)
