"""Tests for the classification metrics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.nn.metrics import ConfusionMatrix, classification_report, confusion_matrix


class TestConfusionMatrix:
    def test_counts(self):
        predictions = np.array([1, 1, 0, 0, 1, 0])
        labels = np.array([1, 0, 0, 1, 1, 0])
        matrix = confusion_matrix(predictions, labels)
        assert (matrix.true_positive, matrix.false_positive) == (2, 1)
        assert (matrix.true_negative, matrix.false_negative) == (2, 1)

    def test_perfect_prediction(self):
        labels = np.array([1, 0, 1, 0])
        matrix = confusion_matrix(labels, labels)
        assert matrix.accuracy == 1.0
        assert matrix.precision == 1.0
        assert matrix.recall == 1.0
        assert matrix.f1 == 1.0

    def test_all_wrong(self):
        predictions = np.array([1, 0])
        labels = np.array([0, 1])
        matrix = confusion_matrix(predictions, labels)
        assert matrix.accuracy == 0.0
        assert matrix.f1 == 0.0

    def test_zero_division_guards(self):
        matrix = ConfusionMatrix(0, 0, 5, 0)
        assert matrix.precision == 0.0
        assert matrix.recall == 0.0
        assert matrix.f1 == 0.0
        empty = ConfusionMatrix(0, 0, 0, 0)
        assert empty.accuracy == 0.0

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([1, 0]), np.array([1]))

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([2, 0]), np.array([1, 0]))

    def test_paper_metric_values(self):
        # Counts engineered to approximate the paper's reported metrics.
        matrix = ConfusionMatrix(
            true_positive=2639, false_negative=29,
            true_negative=3063, false_positive=69,
        )
        assert matrix.accuracy == pytest.approx(0.983, abs=0.001)
        assert matrix.precision == pytest.approx(0.9745, abs=0.001)
        assert matrix.recall == pytest.approx(0.989, abs=0.001)

    def test_report_keys(self):
        report = classification_report(np.array([1, 0]), np.array([1, 0]))
        assert set(report) == {"accuracy", "precision", "recall", "f1"}


class TestProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=1), min_size=2, max_size=50),
        st.lists(st.integers(min_value=0, max_value=1), min_size=2, max_size=50),
    )
    def test_metrics_bounded(self, predictions, labels):
        size = min(len(predictions), len(labels))
        matrix = confusion_matrix(
            np.array(predictions[:size]), np.array(labels[:size])
        )
        for metric in matrix.as_dict().values():
            assert 0.0 <= metric <= 1.0

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=2, max_size=50))
    def test_f1_is_harmonic_mean(self, labels):
        predictions = labels[::-1]
        matrix = confusion_matrix(np.array(predictions), np.array(labels))
        p, r = matrix.precision, matrix.recall
        if p + r > 0:
            assert matrix.f1 == pytest.approx(2 * p * r / (p + r))
