"""Hierarchical control plane: routing, QoS, autoscaling, drains.

The behavioural contract under test is ``docs/control_plane.md``: shard
routing is pure stream-name arithmetic, admission is per-class and
sticky, overload sheds strictly lowest-priority-first, autoscaling
honours sustain/cooldown hysteresis, and any sequence of drains or
upgrades leaves per-stream verdict sequences bit-identical.
"""

import dataclasses

import pytest

from repro.core.config import EngineConfig, OptimizationLevel
from repro.core.control_plane import (
    AutoscalePolicy,
    ControlPlane,
    ControlPlaneConfig,
    DENY_CLASS_CAP,
    DRAIN_MANUAL,
    DRAIN_SCALE_DOWN,
    DRAIN_UPGRADE,
    QosClass,
    SCALE_DOWN,
    SCALE_UP,
    SHED_THROTTLED,
    ShardRouter,
    TopologySpec,
    generate_fleet_rounds,
    percentile_us,
)
from repro.core.serving import ServingConfig, TokenArrival, build_fleet
from repro.core.sessions import SessionConfig
from repro.core.weights import HostWeights
from repro.nn.model import SequenceClassifier

WINDOW = 8
ROUND_US = 5_000

_WEIGHTS = HostWeights.from_model(SequenceClassifier(seed=13))


def make_engines(count):
    dims = dataclasses.replace(_WEIGHTS.dimensions, sequence_length=WINDOW)
    config = EngineConfig(
        dimensions=dims, optimization=OptimizationLevel.FIXED_POINT
    )
    return build_fleet(_WEIGHTS, count, config=config)


def make_plane(topology, *, classes=(QosClass("gold"),), autoscale=None,
               drive_tokens_per_round=None, telemetry=None, classifier=None):
    return ControlPlane(
        make_engines(topology.total_drives),
        topology,
        ControlPlaneConfig(
            round_us=ROUND_US,
            drive_tokens_per_round=drive_tokens_per_round,
            classes=classes,
            autoscale=autoscale,
            serving=ServingConfig(max_batch=64, max_wait_us=100,
                                  queue_depth=4096),
            sessions=SessionConfig(stride=WINDOW),
        ),
        classifier=classifier,
        telemetry=telemetry,
    )


def round_arrivals(round_index, streams, tokens_per_stream=1):
    """One round's arrivals: each stream sends N consecutive tokens."""
    arrivals = []
    base = round_index * ROUND_US
    for position in range(tokens_per_stream):
        for index, stream in enumerate(streams):
            arrivals.append(TokenArrival(
                stream=stream,
                token=(round_index + index + position) % 50,
                arrival_us=base + position * len(streams) + index,
            ))
    return arrivals


class TestTopologySpec:
    def test_counts_and_coordinates(self):
        topology = TopologySpec(racks=2, nodes_per_rack=3, drives_per_node=4,
                                active_per_node=2, shards_per_drive=4)
        assert topology.total_nodes == 6
        assert topology.total_drives == 24
        assert topology.num_shards == 96
        assert topology.initial_active_per_node == 2
        # Drive 14: node 3 (rack 1), slot 2.
        assert topology.node_of(14) == 3
        assert topology.rack_of(14) == 1
        assert topology.slot_of(14) == 2
        assert topology.coord(14) == (1, 3, 2)
        assert list(topology.drives_of_node(3)) == [12, 13, 14, 15]

    def test_active_defaults_to_all(self):
        topology = TopologySpec(drives_per_node=3)
        assert topology.initial_active_per_node == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            TopologySpec(racks=0)
        with pytest.raises(ValueError):
            TopologySpec(drives_per_node=2, active_per_node=3)


class TestShardRouter:
    def test_shard_of_is_deterministic_name_arithmetic(self):
        router = ShardRouter(num_shards=16)
        assert router.shard_of("gold-0001") == router.shard_of("gold-0001")
        assert all(0 <= router.shard_of(f"s-{i}") < 16 for i in range(100))

    def test_assignment_and_reverse_index(self):
        router = ShardRouter(num_shards=4)
        assert router.device_of("anything") is None
        router.assign(0, 7)
        router.assign(1, 7)
        router.assign(2, 3)
        assert router.primary(0) == 7
        assert router.shards_on(7) == (0, 1)
        router.assign(1, 3)  # move
        assert router.shards_on(7) == (0,)
        assert router.shards_on(3) == (1, 2)
        router.assign(2, None)  # unplace
        assert router.primary(2) is None
        assert router.shards_on(3) == (1,)

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardRouter(num_shards=0)


class TestConfigValidation:
    def test_rejects_bad_round_and_headroom(self):
        with pytest.raises(ValueError):
            ControlPlaneConfig(round_us=0)
        with pytest.raises(ValueError):
            ControlPlaneConfig(headroom=0.0)
        with pytest.raises(ValueError):
            ControlPlaneConfig(drive_tokens_per_round=0)

    def test_rejects_duplicate_class_names(self):
        with pytest.raises(ValueError):
            ControlPlaneConfig(classes=(QosClass("a"), QosClass("a")))

    def test_autoscale_policy_validation(self):
        with pytest.raises(ValueError):
            AutoscalePolicy(high_watermark=0.2, low_watermark=0.8)
        with pytest.raises(ValueError):
            AutoscalePolicy(sustain_rounds=0)
        with pytest.raises(ValueError):
            AutoscalePolicy(cooldown_rounds=-1)

    def test_engine_count_must_match_topology(self):
        topology = TopologySpec(drives_per_node=2)
        with pytest.raises(ValueError):
            ControlPlane(make_engines(3), topology)


class TestAdmission:
    def test_zero_capacity_class_admits_nothing(self):
        topology = TopologySpec(drives_per_node=2)
        plane = make_plane(
            topology,
            classes=(QosClass("gold", priority=1),
                     QosClass("blocked", priority=0, max_streams=0)),
        )
        streams = [f"gold-{i:03d}" for i in range(6)]
        blocked = [f"blocked-{i:03d}" for i in range(6)]
        for round_index in range(2):
            plane.run_round(round_arrivals(round_index, streams + blocked))
        report = plane.finish()
        assert report.streams_admitted["blocked"] == 0
        assert report.streams_denied["blocked"] == 6
        assert report.tokens_shed["blocked"][DENY_CLASS_CAP] == 12
        assert report.streams_admitted["gold"] == 6
        assert report.tokens_admitted["gold"] == 12
        assert plane.concurrent_sessions() == 6

    def test_class_cap_is_sticky_per_stream(self):
        topology = TopologySpec(drives_per_node=2)
        plane = make_plane(
            topology, classes=(QosClass("gold", max_streams=3),)
        )
        streams = [f"gold-{i:03d}" for i in range(5)]
        plane.run_round(round_arrivals(0, streams))
        # Admitted streams keep flowing; denied streams stay denied even
        # though the cap is no longer "reached first" this round.
        plane.run_round(round_arrivals(1, streams))
        report = plane.finish()
        assert report.streams_admitted["gold"] == 3
        assert report.streams_denied["gold"] == 2
        assert report.tokens_admitted["gold"] == 6
        assert report.tokens_shed["gold"][DENY_CLASS_CAP] == 4

    def test_classifier_prefix_fallback(self):
        topology = TopologySpec(drives_per_node=2)
        plane = make_plane(
            topology,
            classes=(QosClass("default"), QosClass("gold", priority=1)),
        )
        assert plane.class_of("gold-0001") == "gold"
        assert plane.class_of("unknownprefix-7") == "default"
        assert plane.class_of("nodash") == "default"

    def test_custom_classifier(self):
        topology = TopologySpec(drives_per_node=2)
        plane = make_plane(
            topology,
            classes=(QosClass("a"), QosClass("b")),
            classifier=lambda stream: "b" if stream.endswith("7") else "a",
        )
        assert plane.class_of("stream-7") == "b"
        assert plane.class_of("stream-8") == "a"


class TestOverloadShedding:
    def test_starvation_sheds_lowest_priority_first(self):
        # One active drive, capacity 8 tokens/round; 8 gold + 8 bronze
        # offered -> every bronze token sheds, every gold token lands.
        topology = TopologySpec(drives_per_node=2, active_per_node=1)
        plane = make_plane(
            topology,
            classes=(QosClass("gold", priority=2),
                     QosClass("bronze", priority=0)),
            drive_tokens_per_round=8,
        )
        gold = [f"gold-{i:03d}" for i in range(8)]
        bronze = [f"bronze-{i:03d}" for i in range(8)]
        for round_index in range(3):
            plane.run_round(round_arrivals(round_index, gold + bronze))
        report = plane.finish()
        assert report.tokens_admitted["gold"] == 24
        assert "gold" not in report.tokens_shed
        assert report.tokens_shed["bronze"][SHED_THROTTLED] == 24
        assert report.tokens_admitted["bronze"] == 0

    def test_partial_shed_preserves_arrival_order(self):
        # Capacity 12: all 8 gold + the 4 earliest bronze tokens pass.
        topology = TopologySpec(drives_per_node=2, active_per_node=1)
        plane = make_plane(
            topology,
            classes=(QosClass("gold", priority=2),
                     QosClass("bronze", priority=0)),
            drive_tokens_per_round=12,
        )
        gold = [f"gold-{i:03d}" for i in range(8)]
        bronze = [f"bronze-{i:03d}" for i in range(8)]
        plane.run_round(round_arrivals(0, gold + bronze))
        report = plane.finish()
        assert report.tokens_admitted["gold"] == 8
        assert report.tokens_admitted["bronze"] == 4
        assert report.tokens_shed["bronze"][SHED_THROTTLED] == 4
        # The surviving bronze tokens registered sessions; the shed four
        # never did (12 = 8 gold + 4 bronze).
        assert plane.concurrent_sessions() == 12


class TestDrainDeterminism:
    SCENARIO = dict(rounds=10, round_us=ROUND_US, streams_per_class=300,
                    hot_per_class=50, registration_rounds=4, hot_rounds=9)
    CLASSES = (QosClass("gold", priority=2), QosClass("silver", priority=1),
               QosClass("bronze", priority=0))

    def _run(self, drains=()):
        topology = TopologySpec(racks=1, nodes_per_rack=2, drives_per_node=3,
                                active_per_node=2, shards_per_drive=4)
        plane = make_plane(topology, classes=self.CLASSES)
        rounds = generate_fleet_rounds(self.CLASSES, **self.SCENARIO)
        drain_at = dict(drains)
        for index, arrivals in enumerate(rounds):
            if index in drain_at:
                migrated = plane.drain(drain_at[index])
                assert migrated > 0, "drained an idle drive; test is vacuous"
            plane.run_round(arrivals)
        return plane, plane.finish()

    def test_drain_while_migrating_is_deterministic(self):
        _, base = self._run()
        plane, drained = self._run(drains=((3, 1), (6, 4)))
        assert drained.migrated_sessions > 0
        assert drained.drains == {DRAIN_MANUAL: 2}
        assert drained.shard_moves > 0
        assert 1 not in plane.active_drives
        assert 4 not in plane.active_drives
        # The contract: per-stream verdict sequences are bit-identical
        # with and without the mid-run drains.
        assert base.verdict_sequences() == drained.verdict_sequences()
        assert base.verdict_count == drained.verdict_count > 0
        # No session was lost in migration.
        assert (base.final_concurrent_sessions
                == drained.final_concurrent_sessions)

    def test_same_seed_same_run_is_byte_identical(self):
        _, first = self._run(drains=((3, 1),))
        _, second = self._run(drains=((3, 1),))
        assert first.verdict_sequences() == second.verdict_sequences()
        assert first.serving.event_log == second.serving.event_log

    def test_draining_inactive_drive_is_noop(self):
        topology = TopologySpec(drives_per_node=3, active_per_node=2)
        plane = make_plane(topology)
        assert plane.drain(2) == 0  # slot 2 is standby
        report = plane.finish()
        assert report.drains == {}
        with pytest.raises(ValueError):
            plane_late = make_plane(topology)
            plane_late.drain(99)


class TestAutoscaling:
    TOPOLOGY = TopologySpec(drives_per_node=2, active_per_node=1)
    POLICY = AutoscalePolicy(high_watermark=0.75, low_watermark=0.25,
                             sustain_rounds=2, cooldown_rounds=3)

    def _plane(self):
        return make_plane(self.TOPOLOGY, autoscale=self.POLICY,
                          drive_tokens_per_round=10)

    def test_flapping_load_never_scales(self):
        # High/low alternation never sustains either watermark for the
        # required 2 consecutive rounds -> zero scale events.
        plane = self._plane()
        busy = [f"gold-{i:03d}" for i in range(9)]   # util 0.9
        calm = [f"gold-{i:03d}" for i in range(4)]   # util 0.4 (mid-band)
        for round_index in range(12):
            streams = busy if round_index % 2 == 0 else calm
            plane.run_round(round_arrivals(round_index, streams))
        report = plane.finish()
        assert report.scale_events == ()
        assert report.active_drives == 1

    def test_sustained_overload_scales_up_once(self):
        plane = self._plane()
        busy = [f"gold-{i:03d}" for i in range(9)]
        for round_index in range(8):
            plane.run_round(round_arrivals(round_index, busy))
        report = plane.finish()
        ups = [e for e in report.scale_events if e.direction == SCALE_UP]
        # The standby restores after 2 sustained rounds; with both
        # drives active utilisation halves, so no further events fire
        # even after the cooldown expires.
        assert len(ups) == 1
        assert ups[0].round_index == 1
        assert ups[0].drive == 1
        assert report.active_drives == 2

    def test_cooldown_spaces_scale_downs(self):
        topology = TopologySpec(drives_per_node=4, active_per_node=4)
        plane = make_plane(topology, autoscale=self.POLICY,
                           drive_tokens_per_round=10)
        for round_index in range(9):
            plane.run_round(())  # idle: utilisation 0 every round
        report = plane.finish()
        downs = [e for e in report.scale_events
                 if e.direction == SCALE_DOWN]
        # Sustain 2 -> first down at round 1; cooldown 3 -> rounds 5, 9
        # would follow, but a node never drains its last drive.
        assert [e.round_index for e in downs] == [1, 5]
        # LIFO: the highest slot drains first.
        assert [e.drive for e in downs] == [3, 2]
        assert report.drains[DRAIN_SCALE_DOWN] == 2
        assert report.active_drives == 2
        gaps = [b.round_index - a.round_index
                for a, b in zip(downs, downs[1:])]
        assert all(gap > self.POLICY.cooldown_rounds for gap in gaps)

    def test_scale_down_migrates_instead_of_dropping(self):
        topology = TopologySpec(drives_per_node=2, active_per_node=2)
        plane = make_plane(topology, autoscale=self.POLICY,
                           drive_tokens_per_round=50)
        streams = [f"gold-{i:03d}" for i in range(20)]
        plane.run_round(round_arrivals(0, streams))
        before = plane.concurrent_sessions()
        for round_index in range(1, 4):
            plane.run_round(())
        report = plane.finish()
        assert report.drains.get(DRAIN_SCALE_DOWN, 0) >= 1
        assert plane.concurrent_sessions() == before == 20
        assert report.final_concurrent_sessions == 20


class TestRollingUpgrade:
    CLASSES = (QosClass("gold", priority=1), QosClass("bronze", priority=0))
    SCENARIO = dict(rounds=12, round_us=ROUND_US, streams_per_class=200,
                    hot_per_class=40, registration_rounds=3, hot_rounds=11)

    def _run(self, upgrade):
        topology = TopologySpec(racks=1, nodes_per_rack=2, drives_per_node=2,
                                active_per_node=2, shards_per_drive=4)
        plane = make_plane(topology, classes=self.CLASSES)
        queued = plane.start_rolling_upgrade() if upgrade else 0
        active_counts = []
        for arrivals in generate_fleet_rounds(self.CLASSES, **self.SCENARIO):
            plane.run_round(arrivals)
            active_counts.append(len(plane.active_drives))
        return plane, plane.finish(), queued, active_counts

    def test_upgrade_rolls_one_drive_at_a_time(self):
        plane, report, queued, active_counts = self._run(upgrade=True)
        assert queued == 4
        assert plane.upgrade_complete
        assert report.drains[DRAIN_UPGRADE] == 4
        assert report.restores == 4
        # Never more than one drive out of service.
        assert min(active_counts) >= 3
        assert len(plane.active_drives) == 4

    def test_upgrade_preserves_verdict_sequences(self):
        _, base, _, _ = self._run(upgrade=False)
        _, upgraded, _, _ = self._run(upgrade=True)
        assert upgraded.migrated_sessions > 0
        assert base.verdict_sequences() == upgraded.verdict_sequences()
        assert base.verdict_count > 0


class TestReportAndWorkload:
    def test_generate_fleet_rounds_is_deterministic(self):
        classes = (QosClass("gold"),)
        spec = dict(rounds=4, round_us=1000, streams_per_class=50,
                    hot_per_class=10, seed=3)
        first = [list(r) for r in generate_fleet_rounds(classes, **spec)]
        second = [list(r) for r in generate_fleet_rounds(classes, **spec)]
        assert first == second
        assert sum(len(r) for r in first) > 0
        flat = [a for r in first for a in r]
        assert all(a.stream.startswith("gold-") for a in flat)

    def test_report_accounting_is_consistent(self):
        classes = (QosClass("gold", priority=1), QosClass("bronze"))
        topology = TopologySpec(racks=1, nodes_per_rack=1, drives_per_node=2,
                                active_per_node=2)
        plane = make_plane(topology, classes=classes)
        report = plane.run(generate_fleet_rounds(
            classes, rounds=10, round_us=ROUND_US, streams_per_class=60,
            hot_per_class=20, registration_rounds=2, hot_rounds=10,
        ))
        assert report.rounds == 10
        assert report.duration_us == 10 * ROUND_US
        assert len(report.round_summaries) == 10
        admitted = sum(report.tokens_admitted.values())
        shed = sum(n for reasons in report.tokens_shed.values()
                   for n in reasons.values())
        assert report.tokens_offered == admitted + shed
        assert report.peak_concurrent_sessions >= report.final_concurrent_sessions
        assert report.peak_concurrent_sessions == 120
        assert report.within_memory_budget
        assert report.verdict_count > 0
        p50 = report.verdict_latency_percentile_us(50)
        p99 = report.verdict_latency_percentile_us(99)
        assert 0 <= p50 <= p99
        sequences = report.verdict_sequences()
        assert sequences and all(
            isinstance(seq, tuple) for seq in sequences.values()
        )

    def test_percentile_us_nearest_rank(self):
        assert percentile_us([1, 2, 3, 4], 50) == 2
        assert percentile_us([1, 2, 3, 4], 99) == 4
        assert percentile_us([], 99) == 0.0

    def test_telemetry_mirrors_report_counters(self):
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        classes = (QosClass("gold"),)
        topology = TopologySpec(drives_per_node=2, active_per_node=2)
        plane = make_plane(topology, classes=classes, telemetry=telemetry)
        streams = [f"gold-{i:03d}" for i in range(10)]
        for round_index in range(3):
            plane.run_round(round_arrivals(round_index, streams))
        report = plane.finish()
        assert telemetry.counter("repro_cp_rounds_total").value == report.rounds
        assert (telemetry.counter("repro_cp_tokens_admitted_total", qos="gold").value
                == report.tokens_admitted["gold"])
        assert (telemetry.counter("repro_cp_streams_admitted_total", qos="gold").value
                == report.streams_admitted["gold"])
        assert telemetry.gauge("repro_cp_concurrent_sessions").value == 10
