"""Tests for engine configuration and host weight preparation."""

import numpy as np
import pytest

from repro.core.config import EngineConfig, GATE_NAMES, ModelDimensions, OptimizationLevel
from repro.core.weights import HostWeights
from repro.fixedpoint.qformat import PAPER_QFORMAT
from repro.nn.model import SequenceClassifier
from repro.nn.serialization import dump_weights


class TestOptimizationLevel:
    def test_cumulative_ordering(self):
        assert OptimizationLevel.VANILLA < OptimizationLevel.II_OPTIMIZED
        assert OptimizationLevel.II_OPTIMIZED < OptimizationLevel.FIXED_POINT

    def test_vanilla_uses_nothing(self):
        assert not OptimizationLevel.VANILLA.uses_ii_pragmas
        assert not OptimizationLevel.VANILLA.uses_fixed_point

    def test_ii_adds_pragmas_only(self):
        assert OptimizationLevel.II_OPTIMIZED.uses_ii_pragmas
        assert not OptimizationLevel.II_OPTIMIZED.uses_fixed_point

    def test_fixed_point_includes_ii(self):
        assert OptimizationLevel.FIXED_POINT.uses_ii_pragmas
        assert OptimizationLevel.FIXED_POINT.uses_fixed_point


class TestModelDimensions:
    def test_paper_defaults(self):
        dims = ModelDimensions()
        assert dims.vocab_size == 278
        assert dims.embedding_parameters == 2224
        assert dims.lstm_parameters == 5248
        assert dims.head_parameters == 33
        assert dims.total_parameters == 7505
        assert dims.gate_input_size == 40
        assert dims.sequence_length == 100

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ModelDimensions(vocab_size=0)


class TestEngineConfig:
    def test_defaults_match_paper(self):
        config = EngineConfig()
        assert config.num_gate_cus == 4
        assert config.ddr_banks == 2
        assert config.preemptive_preprocess
        assert config.optimization is OptimizationLevel.FIXED_POINT
        assert config.qformat.scale == PAPER_QFORMAT.scale

    def test_gates_per_cu(self):
        assert EngineConfig(num_gate_cus=4).gates_per_cu == 1
        assert EngineConfig(num_gate_cus=2).gates_per_cu == 2
        assert EngineConfig(num_gate_cus=1).gates_per_cu == 4

    def test_rejects_three_cus(self):
        with pytest.raises(ValueError):
            EngineConfig(num_gate_cus=3)


@pytest.fixture
def small_model():
    return SequenceClassifier(vocab_size=9, embedding_dim=3, hidden_size=5, seed=2)


class TestHostWeights:
    def test_from_model_shapes(self, small_model):
        weights = HostWeights.from_model(small_model)
        assert weights.embedding.shape == (9, 3)
        assert set(weights.gates) == set(GATE_NAMES)
        for gate in weights.gates.values():
            assert gate.matrix.shape == (5, 8)
            assert gate.bias.shape == (5,)
        assert weights.fc_weights.shape == (5,)

    def test_dimensions_inferred(self, small_model):
        dims = HostWeights.from_model(small_model).dimensions
        assert (dims.vocab_size, dims.embedding_dim, dims.hidden_size) == (9, 3, 5)

    def test_gate_matrix_matches_keras_layout(self, small_model, rng):
        """W_g @ [h, x] + b_g must equal the Keras-layout pre-activation."""
        weights = HostWeights.from_model(small_model)
        lstm = small_model.lstm
        h = rng.standard_normal(5)
        x = rng.standard_normal(3)
        packed = x @ lstm.W_x + h @ lstm.W_h + lstm.b
        keras_slabs = {"i": packed[0:5], "f": packed[5:10], "c": packed[10:15], "o": packed[15:20]}
        concatenated = np.concatenate([h, x])
        for name, gate in weights.gates.items():
            np.testing.assert_allclose(
                gate.matrix @ concatenated + gate.bias, keras_slabs[name], atol=1e-12
            )

    def test_from_file_matches_from_model(self, small_model):
        via_file = HostWeights.from_file(dump_weights(small_model))
        via_model = HostWeights.from_model(small_model)
        np.testing.assert_array_equal(via_file.embedding, via_model.embedding)
        for name in GATE_NAMES:
            np.testing.assert_array_equal(
                via_file.gates[name].matrix, via_model.gates[name].matrix
            )

    def test_total_bytes(self, small_model):
        weights = HostWeights.from_model(small_model)
        values = 9 * 3 + 4 * (5 * 8 + 5) + 5 + 1
        assert weights.total_bytes(bytes_per_value=4) == values * 4

    def test_quantized_round_trip_close(self, small_model):
        weights = HostWeights.from_model(small_model)
        quantized = weights.quantized(PAPER_QFORMAT)
        recovered = PAPER_QFORMAT.dequantize(quantized.gates["i"].matrix)
        np.testing.assert_allclose(recovered, weights.gates["i"].matrix, atol=1e-6)

    def test_quantized_dtype(self, small_model):
        quantized = HostWeights.from_model(small_model).quantized(PAPER_QFORMAT)
        assert quantized.embedding.dtype == np.int64
        assert isinstance(quantized.fc_bias, int)
