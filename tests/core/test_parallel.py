"""WorkerPool: shard parity, crash recovery, graceful degradation.

The contract under test is the hard one from the performance docs: with
``workers=k`` every probability is **bit-identical** to ``workers=1`` at
every optimisation level — across worker deaths, retries, and full
in-process fallback — and worker telemetry merges exactly.
"""

import dataclasses
import os
import signal

import numpy as np
import pytest

from repro.core import parallel
from repro.core.config import EngineConfig, OptimizationLevel
from repro.core.engine import CSDInferenceEngine, engine_at_level
from repro.core.fleet import MonitoredStream
from repro.core.parallel import WorkerPool, _pool_supported
from repro.core.serving import FleetServer, ServingConfig, build_fleet, generate_workload
from repro.core.weights import HostWeights
from repro.nn.model import SequenceClassifier
from repro.telemetry import Telemetry

SEQ_LEN = 12
VOCAB = 278

pool_required = pytest.mark.skipif(
    not _pool_supported()[0], reason="fork/shared_memory unavailable here"
)


@pytest.fixture(scope="module")
def model():
    return SequenceClassifier(seed=11)


def make_engine(model, level=OptimizationLevel.FIXED_POINT):
    return engine_at_level(model, level, sequence_length=SEQ_LEN)


def make_batch(batch_size: int, seed: int = 5) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, VOCAB, size=(batch_size, SEQ_LEN))


# ----------------------------------------------------------------------
# Bit-exact parity
# ----------------------------------------------------------------------


@pool_required
@pytest.mark.parametrize("level", list(OptimizationLevel), ids=lambda l: l.name)
@pytest.mark.parametrize("workers", [2, 4])
def test_workers_bit_identical(model, level, workers):
    engine = make_engine(model, level)
    batch = make_batch(26)
    baseline = engine.predict_proba(batch, chunk_size=4)
    try:
        parallel_result = engine.predict_proba(
            batch, chunk_size=4, workers=workers
        )
        assert engine._pool.mode == "pool"
        assert np.array_equal(baseline, parallel_result)
    finally:
        engine.shutdown_pool()


@pool_required
def test_pool_is_cached_and_rebuilt_on_count_change(model):
    engine = make_engine(model)
    try:
        first = engine.worker_pool(2)
        assert engine.worker_pool(2) is first
        second = engine.worker_pool(3)
        assert second is not first
        assert second.workers == 3
    finally:
        engine.shutdown_pool()


@pool_required
def test_telemetry_counters_merge_exactly(model):
    def run(workers):
        engine = make_engine(model)
        telemetry = Telemetry()
        engine.attach_telemetry(telemetry)
        engine.predict_proba(make_batch(20), chunk_size=5, workers=workers)
        engine.shutdown_pool()
        return [
            record for record in telemetry.metrics.snapshot()
            if not record["name"].startswith("repro_parallel_")
        ]

    assert run(2) == run(1)


# ----------------------------------------------------------------------
# Crash recovery
# ----------------------------------------------------------------------


@pool_required
def test_worker_crash_retries_shards_exactly(model):
    engine = make_engine(model)
    batch = make_batch(24)
    expected = engine.predict_proba(batch, chunk_size=4)
    telemetry = Telemetry()
    pool = WorkerPool(engine.config, engine.weights, 2, telemetry=telemetry)
    try:
        assert pool.mode == "pool"
        victim = pool._workers[0].process
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=10)
        result = pool.predict_proba(batch, chunk_size=4)
        assert np.array_equal(result, expected)
        assert pool.mode == "pool"  # the survivor kept serving
        assert telemetry.counter("repro_parallel_worker_deaths_total").value == 1
        assert telemetry.counter("repro_parallel_retries_total").value >= 1
    finally:
        pool.close()


@pool_required
def test_all_workers_dead_falls_back_in_process(model):
    engine = make_engine(model)
    batch = make_batch(10)
    expected = engine.predict_proba(batch, chunk_size=5)
    telemetry = Telemetry()
    pool = WorkerPool(engine.config, engine.weights, 2, telemetry=telemetry)
    try:
        for worker in pool._workers:
            os.kill(worker.process.pid, signal.SIGKILL)
            worker.process.join(timeout=10)
        result = pool.predict_proba(batch, chunk_size=5)
        assert np.array_equal(result, expected)
        assert pool.mode == "inprocess"
        assert telemetry.counter(
            "repro_parallel_fallback_total", reason="all_workers_dead"
        ).value >= 1
    finally:
        pool.close()


# ----------------------------------------------------------------------
# Graceful degradation
# ----------------------------------------------------------------------


def test_unsupported_environment_falls_back(model, monkeypatch):
    engine = make_engine(model)
    batch = make_batch(8)
    expected = engine.predict_proba(batch, chunk_size=4)
    monkeypatch.setattr(parallel, "_pool_supported", lambda: (False, "no_fork"))
    telemetry = Telemetry()
    engine.attach_telemetry(telemetry)
    try:
        result = engine.predict_proba(batch, chunk_size=4, workers=2)
        assert np.array_equal(result, expected)
        assert engine._pool.mode == "inprocess"
        assert telemetry.counter(
            "repro_parallel_fallback_total", reason="no_fork"
        ).value == 1
        assert telemetry.gauge("repro_parallel_workers").value == 0
        assert telemetry.counter(
            "repro_parallel_tasks_total", mode="inprocess"
        ).value == 2
    finally:
        engine.shutdown_pool()


def test_rejects_invalid_worker_count(model):
    engine = make_engine(model)
    with pytest.raises(ValueError):
        WorkerPool(engine.config, engine.weights, 0)


# ----------------------------------------------------------------------
# Fleet offload
# ----------------------------------------------------------------------


def _fleet_fixtures(model):
    weights = HostWeights.from_model(model)
    dims = dataclasses.replace(weights.dimensions, sequence_length=SEQ_LEN)
    config = EngineConfig(
        dimensions=dims, optimization=OptimizationLevel.FIXED_POINT
    )
    streams = [
        MonitoredStream(f"s{i}", 1500.0, detection_stride=10) for i in range(4)
    ]
    workload = generate_workload(
        streams, duration_us=30_000, sequence_length=SEQ_LEN,
        vocab_size=dims.vocab_size, seed=3,
    )
    return weights, config, streams, workload


@pool_required
def test_fleet_offload_identical_event_log_and_probabilities(model):
    weights, config, streams, workload = _fleet_fixtures(model)

    def run(workers):
        engines = build_fleet(weights, 2, config=config)
        server = FleetServer(engines, streams, ServingConfig(), workers=workers)
        return server.serve(list(workload))

    baseline = run(0)
    offloaded = run(2)
    assert baseline.event_log == offloaded.event_log
    assert [c.probability for c in baseline.completed] == [
        c.probability for c in offloaded.completed
    ]
    assert baseline.completed_count > 0


def test_fleet_rejects_heterogeneous_engines_with_workers(model):
    weights, config, streams, _ = _fleet_fixtures(model)
    engines = [
        CSDInferenceEngine(config, weights),
        CSDInferenceEngine(config, HostWeights.from_model(model)),
    ]
    with pytest.raises(ValueError, match="homogeneous"):
        FleetServer(engines, streams, ServingConfig(), workers=2)


# ----------------------------------------------------------------------
# parallel_map: the generic fold-parallel task pool
# ----------------------------------------------------------------------


def _square_task(index, telemetry):
    if telemetry is not None:
        telemetry.counter("repro_gen_folds_total", modality="test").inc()
    return index * index


class TestParallelMap:
    def test_serial_runs_in_order_on_parent_telemetry(self):
        telemetry = Telemetry()
        results = parallel.parallel_map(
            _square_task, 5, workers=1, telemetry=telemetry
        )
        assert results == [0, 1, 4, 9, 16]
        counts = {
            (record["name"], record["labels"].get("modality")): record["value"]
            for record in telemetry.metrics.snapshot()
            if record["type"] == "counter"
        }
        assert counts[("repro_gen_folds_total", "test")] == 5
        assert counts[("repro_parallel_tasks_total", None)] == 5

    @pool_required
    def test_pool_results_in_index_order_with_merged_telemetry(self):
        telemetry = Telemetry()
        results = parallel.parallel_map(
            _square_task, 7, workers=3, telemetry=telemetry
        )
        assert results == [0, 1, 4, 9, 16, 25, 36]
        counts = {
            record["labels"].get("mode", record["labels"].get("modality")):
                record["value"]
            for record in telemetry.metrics.snapshot()
            if record["type"] == "counter"
        }
        assert counts["test"] == 7    # merged from worker snapshots
        assert counts["pool"] == 7

    @pool_required
    def test_pool_matches_serial(self):
        assert parallel.parallel_map(_square_task, 6, workers=2) == \
            parallel.parallel_map(_square_task, 6, workers=1)

    def test_count_zero(self):
        assert parallel.parallel_map(_square_task, 0, workers=4) == []

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            parallel.parallel_map(_square_task, -1)
        with pytest.raises(ValueError):
            parallel.parallel_map(_square_task, 3, workers=0)

    def test_task_error_raised_after_all_tasks(self):
        def sometimes_boom(index, telemetry):
            if index == 2:
                raise ValueError("boom")
            return index

        with pytest.raises(RuntimeError, match="parallel task 2 failed"):
            parallel.parallel_map(sometimes_boom, 4, workers=1)

    @pool_required
    def test_pool_error_propagates(self):
        with pytest.raises(RuntimeError, match="parallel task 1 failed"):
            parallel.parallel_map(_boom_task, 3, workers=2)

    def test_unsupported_environment_counts_fallback(self, monkeypatch):
        telemetry = Telemetry()
        monkeypatch.setattr(
            parallel, "_pool_supported", lambda: (False, "no_fork")
        )
        results = parallel.parallel_map(
            _square_task, 4, workers=2, telemetry=telemetry
        )
        assert results == [0, 1, 4, 9]
        fallbacks = {
            record["labels"]["reason"]: record["value"]
            for record in telemetry.metrics.snapshot()
            if record["name"] == "repro_parallel_fallback_total"
        }
        assert fallbacks.get("no_fork") == 1


def _boom_task(index, telemetry):
    if index == 1:
        raise ValueError("boom")
    return index
