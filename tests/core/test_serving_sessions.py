"""Session-mode (token-stream) fleet serving tests.

The contract mirrors the request-mode server's, plus session affinity:

* **Determinism** — one token schedule produces identical event logs,
  verdicts, and session stats across runs;
* **Parity** — a stream served through the fleet's buffering/tick
  machinery produces the identical verdict sequence a standalone
  :class:`SessionManager` produces for the same tokens (and therefore
  the identical probabilities to the ``infer_sequence`` recompute);
* **Failover** — killing a device migrates its session checkpoints to
  the re-routed devices; the per-stream verdict sequence is invariant,
  only timing and placement shift.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.config import EngineConfig, OptimizationLevel
from repro.core.fleet import MonitoredStream
from repro.core.serving import (
    FleetServer,
    ServingConfig,
    SessionServingReport,
    TokenArrival,
    build_fleet,
    generate_token_workload,
)
from repro.core.sessions import SessionConfig, SessionManager
from repro.core.weights import HostWeights
from repro.hw.faults import DeviceFailFault, FaultPlan
from repro.nn.model import SequenceClassifier

WINDOW = 12
VOCAB = 278

_WEIGHTS = HostWeights.from_model(SequenceClassifier(seed=13))


def make_engines(count):
    config = EngineConfig(
        dimensions=dataclasses.replace(
            _WEIGHTS.dimensions, sequence_length=WINDOW
        ),
        optimization=OptimizationLevel.FIXED_POINT,
    )
    return build_fleet(_WEIGHTS, count, config=config)


def make_streams(count):
    return [MonitoredStream(f"s{i}", 10_000.0) for i in range(count)]


def dense_schedule(streams, tokens_per_stream, gap_us=50, seed=0):
    """One token per stream every ``gap_us``; deterministic tokens."""
    rng = np.random.default_rng(seed)
    arrivals = []
    for step in range(tokens_per_stream):
        for stream in streams:
            arrivals.append(TokenArrival(
                stream=stream.name,
                token=int(rng.integers(0, VOCAB)),
                arrival_us=step * gap_us,
            ))
    return arrivals


def serve(engines, streams, arrivals, session_config=None, config=None,
          fault_plans=None, backend=None) -> SessionServingReport:
    server = FleetServer(
        engines, streams,
        config or ServingConfig(max_batch=8, max_wait_us=100,
                                queue_depth=4096),
        fault_plans=fault_plans,
    )
    return server.serve_tokens(
        arrivals, sessions=session_config or SessionConfig(stride=2),
        backend=backend,
    )


class TestTokenWorkload:
    def test_deterministic_and_sorted(self):
        streams = make_streams(3)
        first = generate_token_workload(streams, 20_000, 5_000.0, seed=4)
        second = generate_token_workload(streams, 20_000, 5_000.0, seed=4)
        assert first == second
        assert len(first) > 0
        arrivals = [a.arrival_us for a in first]
        assert arrivals == sorted(arrivals)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_token_workload(make_streams(1), 0, 100.0)
        with pytest.raises(ValueError):
            generate_token_workload(make_streams(1), 100, 0.0)


class TestDeterminism:
    def test_identical_runs(self):
        streams = make_streams(4)
        arrivals = dense_schedule(streams, 2 * WINDOW)
        reports = [
            serve(make_engines(2), streams, arrivals) for _ in range(2)
        ]
        assert reports[0].event_log == reports[1].event_log
        assert reports[0].verdicts == reports[1].verdicts
        assert reports[0].session_stats == reports[1].session_stats
        assert reports[0].token_latencies == reports[1].token_latencies

    def test_fused_backend_same_verdicts_and_schedule(self):
        """``serve_tokens(backend="fused")`` changes host wall-clock
        only: the simulated event log and verdict stream are identical
        to the reference backend's."""
        streams = make_streams(4)
        arrivals = dense_schedule(streams, 2 * WINDOW, seed=9)
        reference = serve(make_engines(2), streams, arrivals,
                          backend="reference")
        fused = serve(make_engines(2), streams, arrivals, backend="fused")
        assert fused.verdicts == reference.verdicts
        assert fused.event_log == reference.event_log
        assert fused.token_latencies == reference.token_latencies
        assert all(s["backend"] == "fused" for s in fused.session_stats)


class TestParity:
    def test_verdicts_match_standalone_session_manager(self):
        streams = make_streams(5)
        arrivals = dense_schedule(streams, 2 * WINDOW + 3, seed=6)
        engines = make_engines(2)
        report = serve(engines, streams, arrivals,
                       session_config=SessionConfig(stride=3))
        assert report.tokens_offered == len(arrivals)
        assert report.shed_count == 0
        by_stream: dict = {s.name: [] for s in streams}
        for record in report.verdicts:
            by_stream[record.stream].append(record)
        manager = SessionManager(engines[0], SessionConfig(stride=3))
        for stream in streams:
            tokens = [a.token for a in arrivals if a.stream == stream.name]
            want = []
            for token in tokens:
                verdict = manager.observe(stream.name, token)
                if verdict is not None:
                    want.append(verdict)
            got = by_stream[stream.name]
            assert [(r.window_index, r.probability) for r in got] == [
                (v.window_index, v.probability) for v in want
            ]

    def test_session_affinity(self):
        """Every verdict of a stream is emitted by one device."""
        streams = make_streams(6)
        arrivals = dense_schedule(streams, WINDOW + 2)
        report = serve(make_engines(3), streams, arrivals)
        devices_by_stream: dict = {}
        for record in report.verdicts:
            devices_by_stream.setdefault(record.stream, set()).add(record.device)
        assert devices_by_stream  # some windows completed
        for devices in devices_by_stream.values():
            assert len(devices) == 1

    def test_accounting_and_stats(self):
        streams = make_streams(3)
        arrivals = dense_schedule(streams, WINDOW)
        report = serve(make_engines(1), streams, arrivals)
        stats = report.session_stats[0]
        assert stats["tokens"] + report.shed_count == report.tokens_offered
        assert stats["resident_sessions"] == 3
        assert len(report.token_latencies) == stats["tokens"]
        assert report.token_latency_percentile_us(99) >= (
            report.token_latency_percentile_us(50)
        )

    def test_token_sheds_are_counted(self):
        streams = make_streams(1)
        arrivals = [
            TokenArrival(stream="s0", token=1, arrival_us=0)
            for _ in range(10)
        ]
        report = serve(
            make_engines(1), streams, arrivals,
            config=ServingConfig(max_batch=8, max_wait_us=100, queue_depth=2),
        )
        assert report.shed_count > 0
        assert report.tokens_offered == 10
        assert set(report.tokens_shed) == {"queue_full"}


class TestFailover:
    def test_failure_migrates_sessions_and_preserves_verdicts(self):
        streams = make_streams(4)
        arrivals = dense_schedule(streams, 3 * WINDOW, gap_us=60, seed=8)
        horizon = max(a.arrival_us for a in arrivals)
        plain = serve(make_engines(2), streams, arrivals)
        fault_plans = {0: FaultPlan(
            device_fail=DeviceFailFault(at_us=horizon // 2)
        )}
        failed = serve(make_engines(2), streams, arrivals,
                       fault_plans=fault_plans)
        assert failed.device_failures == 1
        assert failed.migrated_sessions > 0
        key = lambda report: sorted(
            (r.stream, r.window_index, r.probability, r.is_ransomware)
            for r in report.verdicts
        )
        assert key(failed) == key(plain)
        # The dead device emits nothing after the failure.
        for record in failed.verdicts:
            if record.device == 0:
                assert record.completion_us <= horizon // 2

    def test_all_devices_dead_sheds_tokens(self):
        streams = make_streams(2)
        arrivals = dense_schedule(streams, WINDOW)
        fault_plans = {0: FaultPlan(device_fail=DeviceFailFault(at_us=1))}
        report = serve(make_engines(1), streams, arrivals,
                       fault_plans=fault_plans)
        assert report.tokens_shed.get("no_device", 0) > 0
