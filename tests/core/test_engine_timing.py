"""Tests for the CSD inference engine and the Fig. 3 timing sweep."""

import dataclasses

import numpy as np
import pytest

from repro.core.config import EngineConfig, ModelDimensions, OptimizationLevel
from repro.core.engine import CSDInferenceEngine, engine_at_level
from repro.core.timing import kernel_breakdown, optimization_sweep
from repro.core.weights import HostWeights
from repro.hw.fpga import KU15P, ResourceExhausted
from repro.hw.smartssd import SmartSSD
from repro.nn.model import SequenceClassifier
from repro.nn.serialization import dump_weights

SEQ_LEN = 12


@pytest.fixture(scope="module")
def model():
    return SequenceClassifier(seed=4)


@pytest.fixture(scope="module")
def weights(model):
    return HostWeights.from_model(model)


def small_engine(model, level=OptimizationLevel.FIXED_POINT, **overrides):
    return engine_at_level(model, level, sequence_length=SEQ_LEN, **overrides)


class TestConstruction:
    def test_from_model(self, model):
        engine = CSDInferenceEngine.from_model(model, sequence_length=SEQ_LEN)
        assert engine.config.dimensions.vocab_size == 278

    def test_from_weight_file(self, model, tmp_path):
        path = tmp_path / "weights.txt"
        dump_weights(model, path)
        engine = CSDInferenceEngine.from_weight_file(str(path), sequence_length=SEQ_LEN)
        rng = np.random.default_rng(0)
        sequence = rng.integers(0, 278, size=SEQ_LEN)
        direct = CSDInferenceEngine.from_model(model, sequence_length=SEQ_LEN)
        assert engine.infer_sequence(sequence).probability == pytest.approx(
            direct.infer_sequence(sequence).probability
        )

    def test_sequence_length_and_config_mutually_exclusive(self, model):
        with pytest.raises(ValueError):
            CSDInferenceEngine.from_model(model, config=EngineConfig(), sequence_length=5)

    def test_config_dimension_mismatch_rejected(self, model):
        bad = EngineConfig(dimensions=ModelDimensions(vocab_size=10, embedding_dim=8, hidden_size=32))
        with pytest.raises(ValueError):
            CSDInferenceEngine.from_model(model, config=bad)

    def test_unloaded_engine_refuses_inference(self):
        engine = CSDInferenceEngine.build_unloaded(EngineConfig())
        with pytest.raises(RuntimeError):
            engine.infer_sequence(np.zeros(100, dtype=int))

    def test_fixed_point_four_cus_exceed_ku15p(self, weights):
        # 4 spatially-unrolled CUs need ~5120 DSPs; the KU15P has 1968.
        # The paper evaluated on the u200 for exactly this kind of headroom.
        config = EngineConfig(
            dimensions=dataclasses.replace(weights.dimensions, sequence_length=SEQ_LEN),
            fpga_part=KU15P,
            ddr_banks=1,
        )
        with pytest.raises(ResourceExhausted):
            CSDInferenceEngine(config, weights)

    def test_float_fits_on_ku15p(self, weights):
        config = EngineConfig(
            dimensions=dataclasses.replace(weights.dimensions, sequence_length=SEQ_LEN),
            optimization=OptimizationLevel.VANILLA,
            fpga_part=KU15P,
            ddr_banks=1,
        )
        engine = CSDInferenceEngine(config, weights)
        assert engine.device.used.dsp_slices <= KU15P.dsp_slices


class TestInference:
    def test_matches_offline_model_float(self, model, rng):
        engine = small_engine(model, OptimizationLevel.VANILLA)
        sequences = rng.integers(0, 278, size=(4, SEQ_LEN))
        np.testing.assert_allclose(
            engine.predict_proba(sequences), model.predict_proba(sequences), atol=1e-12
        )

    def test_fixed_point_close_to_float(self, model, rng):
        engine = small_engine(model, OptimizationLevel.FIXED_POINT)
        sequences = rng.integers(0, 278, size=(4, SEQ_LEN))
        np.testing.assert_allclose(
            engine.predict_proba(sequences), model.predict_proba(sequences), atol=0.02
        )

    def test_rejects_wrong_length(self, model):
        engine = small_engine(model)
        with pytest.raises(ValueError):
            engine.infer_sequence(np.zeros(SEQ_LEN + 1, dtype=int))

    def test_sequences_processed_counter(self, model, rng):
        engine = small_engine(model)
        engine.predict_proba(rng.integers(0, 278, size=(3, SEQ_LEN)))
        assert engine.sequences_processed == 3

    def test_predict_thresholds(self, model, rng):
        engine = small_engine(model)
        sequences = rng.integers(0, 278, size=(4, SEQ_LEN))
        probs = engine.predict_proba(sequences)
        np.testing.assert_array_equal(
            engine.predict(sequences, threshold=0.5), (probs >= 0.5).astype(int)
        )

    def test_inference_deterministic(self, model, rng):
        engine = small_engine(model)
        sequence = rng.integers(0, 278, size=SEQ_LEN)
        assert (
            engine.infer_sequence(sequence).probability
            == engine.infer_sequence(sequence).probability
        )

    def test_storage_path(self, model, rng):
        engine = small_engine(model)
        device = SmartSSD()
        engine.attach_storage(device)
        sequence = rng.integers(0, 278, size=SEQ_LEN)
        device.ssd.write_object("seq", sequence.nbytes)
        result, transfer_seconds = engine.infer_from_storage("seq", sequence)
        assert transfer_seconds > 0
        assert 0.0 <= result.probability <= 1.0

    def test_storage_requires_attachment(self, model, rng):
        engine = small_engine(model)
        with pytest.raises(RuntimeError):
            engine.infer_from_storage("seq", rng.integers(0, 278, size=SEQ_LEN))

    def test_storage_missing_key_raises(self, model, rng):
        engine = small_engine(model)
        engine.attach_storage(SmartSSD())
        with pytest.raises(KeyError):
            engine.infer_from_storage("absent", rng.integers(0, 278, size=SEQ_LEN))

    def test_rejects_out_of_vocabulary_token(self, model):
        engine = small_engine(model)
        bad = np.zeros(SEQ_LEN, dtype=int)
        bad[3] = 278  # vocab is [0, 278)
        with pytest.raises(ValueError):
            engine.infer_sequence(bad)


class TestTimingReports:
    def test_timing_attached_to_result(self, model, rng):
        engine = small_engine(model)
        result = engine.infer_sequence(rng.integers(0, 278, size=SEQ_LEN))
        timing = result.timing
        assert timing.per_item_cycles > 0
        assert timing.sequence_cycles > 0
        assert len(timing.per_item_reports) == 3

    def test_preemptive_pipeline_faster(self, model):
        fast = small_engine(model, preemptive_preprocess=True)
        slow = small_engine(model, preemptive_preprocess=False)
        rng = np.random.default_rng(0)
        sequence = rng.integers(0, 278, size=SEQ_LEN)
        fast_cycles = fast.infer_sequence(sequence).timing.sequence_cycles
        slow_cycles = slow.infer_sequence(sequence).timing.sequence_cycles
        assert fast_cycles < slow_cycles

    def test_per_item_microseconds_positive(self, model):
        for level in OptimizationLevel:
            assert small_engine(model, level).per_item_microseconds() > 0

    def test_statistics_counters(self, model, rng):
        engine = small_engine(model)
        engine.predict_proba(rng.integers(0, 278, size=(2, SEQ_LEN)))
        stats = engine.statistics()
        assert stats["sequences_processed"] == 2
        assert stats["items_processed"] == 2 * SEQ_LEN
        assert stats["ddr_bytes_allocated"] > 0
        assert 0.0 < stats["dsp_utilization"] <= 1.0
        assert stats["optimization"] == "FIXED_POINT"


#: Fig. 3 values from the paper, microseconds per kernel.
PAPER_FIG3 = {
    "VANILLA": {"preprocess": 0.8, "gates": 1.277, "hidden_state": 5.076, "total": 7.153},
    "II_OPTIMIZED": {"preprocess": 0.743, "gates": 1.651, "hidden_state": 2.001, "total": 4.395},
    "FIXED_POINT": {"preprocess": 0.74, "gates": 0.00333, "hidden_state": 1.408, "total": 2.15133},
}


class TestFig3Calibration:
    """The simulator must land near the paper's Fig. 3 operating point."""

    @pytest.fixture(scope="class")
    def sweep(self):
        return optimization_sweep()

    @pytest.mark.parametrize("level", list(PAPER_FIG3))
    def test_within_fifteen_percent(self, sweep, level):
        for kernel, paper_value in PAPER_FIG3[level].items():
            simulated = sweep[level][kernel]
            assert simulated == pytest.approx(paper_value, rel=0.15), (level, kernel)

    def test_total_speedup_matches_paper_shape(self, sweep):
        # 7.153 us -> 2.151 us is a 3.3x improvement.
        ratio = sweep["VANILLA"]["total"] / sweep["FIXED_POINT"]["total"]
        assert 2.8 < ratio < 3.9

    def test_breakdown_keys(self):
        report = kernel_breakdown(EngineConfig())
        assert set(report) == {"preprocess", "gates", "hidden_state", "total"}

    def test_total_is_sum(self, sweep):
        for level_values in sweep.values():
            parts = [v for k, v in level_values.items() if k != "total"]
            assert level_values["total"] == pytest.approx(sum(parts))
