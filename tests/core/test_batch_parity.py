"""Bit-exact parity between ``infer_batch`` and the sequential path.

The batched forward pass must produce *identical* float64 probabilities —
not approximately equal ones — to per-sequence ``infer_sequence`` calls at
every optimisation level: the fixed-point path accumulates the same int64
dot products before the single rescale, and the float path uses a
batch-stable ``np.sum`` reduction instead of shape-dependent BLAS calls.
"""

import numpy as np
import pytest

from repro.core.config import OptimizationLevel
from repro.core.engine import engine_at_level
from repro.nn.model import SequenceClassifier

SEQ_LEN = 12
VOCAB = 278
BATCH_SIZES = (1, 2, 7, 64)


@pytest.fixture(scope="module")
def model():
    return SequenceClassifier(seed=11)


@pytest.fixture(scope="module", params=list(OptimizationLevel),
                ids=lambda level: level.name)
def level(request):
    return request.param


def make_engine(model, level):
    return engine_at_level(model, level, sequence_length=SEQ_LEN)


def make_batch(batch_size: int) -> np.ndarray:
    rng = np.random.default_rng(100 + batch_size)
    return rng.integers(0, VOCAB, size=(batch_size, SEQ_LEN))


class TestBitExactParity:
    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_probabilities_identical(self, model, level, batch_size):
        engine = make_engine(model, level)
        batch = make_batch(batch_size)
        batched = engine.infer_batch(batch).probabilities
        sequential = np.array(
            [engine.infer_sequence(row).probability for row in batch]
        )
        assert batched.shape == (batch_size,)
        # Bit-exact: == on float64, no tolerance.
        assert np.array_equal(batched, sequential)

    def test_batch_of_batches_identical(self, model, level):
        # Rows must not influence each other: the same sequence classified
        # alone and inside a mixed batch yields the same bits.
        engine = make_engine(model, level)
        batch = make_batch(7)
        whole = engine.infer_batch(batch).probabilities
        for index in range(batch.shape[0]):
            alone = engine.infer_batch(batch[index:index + 1]).probabilities
            assert alone[0] == whole[index]

    def test_predict_proba_chunking_identical(self, model, level):
        engine = make_engine(model, level)
        batch = make_batch(11)
        unchunked = engine.predict_proba(batch)
        chunked = engine.predict_proba(batch, chunk_size=3)
        assert np.array_equal(unchunked, chunked)

    def test_timing_matches_sequential(self, model, level):
        engine = make_engine(model, level)
        batch = make_batch(2)
        batch_timing = engine.infer_batch(batch).timing
        sequential_timing = engine.infer_sequence(batch[0]).timing
        assert batch_timing == sequential_timing


class TestBatchAccounting:
    def test_counters_match_sequential(self, model, level):
        batched_engine = make_engine(model, level)
        sequential_engine = make_engine(model, level)
        batch = make_batch(7)
        batched_engine.infer_batch(batch)
        for row in batch:
            sequential_engine.infer_sequence(row)
        assert batched_engine.statistics() == sequential_engine.statistics()

    def test_results_views(self, model, level):
        engine = make_engine(model, level)
        result = engine.infer_batch(make_batch(3))
        assert result.batch_size == 3
        lazy = result.results()
        assert iter(lazy) is lazy  # generator: nothing materialised eagerly
        views = list(lazy)
        assert [v.probability for v in views] == result.probabilities.tolist()
        assert all(v.timing == result.timing for v in views)
        assert result.result_at(1) == views[1]


class TestBatchValidation:
    def test_rejects_wrong_length(self, model, level):
        engine = make_engine(model, level)
        with pytest.raises(ValueError):
            engine.infer_batch(np.zeros((4, SEQ_LEN + 1), dtype=np.int64))

    def test_rejects_wrong_ndim(self, model, level):
        engine = make_engine(model, level)
        with pytest.raises(ValueError):
            engine.infer_batch(np.zeros(SEQ_LEN, dtype=np.int64))

    def test_rejects_empty_batch(self, model, level):
        engine = make_engine(model, level)
        with pytest.raises(ValueError):
            engine.infer_batch(np.zeros((0, SEQ_LEN), dtype=np.int64))

    def test_rejects_out_of_vocabulary(self, model, level):
        engine = make_engine(model, level)
        batch = make_batch(2)
        batch[1, 3] = VOCAB  # one past the table
        with pytest.raises(ValueError, match="out of range"):
            engine.infer_batch(batch)

    def test_empty_predict_proba(self, model, level):
        engine = make_engine(model, level)
        out = engine.predict_proba(np.zeros((0, SEQ_LEN), dtype=np.int64))
        assert out.shape == (0,)
