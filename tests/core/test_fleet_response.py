"""Verdict-driven response wired through the session-mode fleet.

A :class:`FleetResponder` passed as ``FleetServer(on_verdict=...)``
closes the loop at fleet scale: quarantined streams are shed at
admission, killed streams additionally lose their session state, and
enforcement lands on the owning device's SmartSSD.  The property test
is the failover invariant the audit log is designed around: a mid-run
drive failure shifts timing and placement but leaves every stream's
verdict sequence — and therefore its audit chain and its data-loss
accounting — bit-identical.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import EngineConfig, OptimizationLevel
from repro.core.fleet import MonitoredStream
from repro.core.serving import (
    SHED_QUARANTINED,
    FleetServer,
    ServingConfig,
    TokenArrival,
    build_fleet,
)
from repro.core.sessions import SessionConfig
from repro.core.weights import HostWeights
from repro.hw.faults import DeviceFailFault, FaultPlan
from repro.hw.smartssd import MODE_BLOCK, SmartSSD
from repro.nn.model import SequenceClassifier
from repro.ransomware.replay import build_scenario, data_loss_accounting
from repro.response.policy import (
    ACTION_KILL,
    ACTION_QUARANTINE,
    ACTION_WRITE_BLOCK,
    ESCALATION_LADDER,
    FleetResponder,
    ResponsePolicy,
)

WINDOW = 12
STRIDE = 4
GAP_US = 50

_WEIGHTS = HostWeights.from_model(SequenceClassifier(seed=13))
_RANK = {action: rank for rank, action in enumerate(ESCALATION_LADDER)}


def make_engines(count, with_storage=True):
    config = EngineConfig(
        dimensions=dataclasses.replace(
            _WEIGHTS.dimensions, sequence_length=WINDOW
        ),
        optimization=OptimizationLevel.FIXED_POINT,
    )
    engines = build_fleet(_WEIGHTS, count, config=config)
    if with_storage:
        for engine in engines:
            engine.attach_storage(SmartSSD())
    return engines


def scenario_arrivals(scenario, tokens_per_stream):
    arrivals = []
    for step in range(tokens_per_stream):
        for stream in scenario:
            if step < len(stream.tokens):
                arrivals.append(TokenArrival(
                    stream=stream.name, token=int(stream.tokens[step]),
                    arrival_us=step * GAP_US,
                ))
    return arrivals


def aggressive_policy(**overrides):
    """Every confirmed verdict clears the requested rung immediately.

    The untrained fixture model's probabilities hover near 0.5, so a
    near-zero monitor threshold plus zero policy thresholds makes
    enforcement deterministic and model-independent.
    """
    base = dict(
        observe_threshold=0.0, write_block_threshold=0.0,
        quarantine_threshold=0.0, kill_threshold=None,
        confirmations=2, attribute=False,
    )
    base.update(overrides)
    return ResponsePolicy(**base)


def serve(engines, scenario, responder, tokens_per_stream=60,
          fault_plans=None):
    streams = [MonitoredStream(s.name, 10_000.0) for s in scenario]
    server = FleetServer(
        engines, streams,
        ServingConfig(max_batch=8, max_wait_us=100, queue_depth=4096),
        fault_plans=fault_plans, on_verdict=responder,
    )
    report = server.serve_tokens(
        scenario_arrivals(scenario, tokens_per_stream),
        sessions=SessionConfig(stride=STRIDE, threshold=0.05),
    )
    return server, report


class TestFleetEnforcement:
    def test_quarantine_sheds_future_tokens(self):
        scenario = build_scenario("api", ransomware=1, benign=2, seed=2,
                                  benign_length=80)
        responder = FleetResponder(policy=aggressive_policy())
        server, report = serve(make_engines(2), scenario, responder)
        assert server.quarantined_streams == frozenset(
            s.name for s in scenario
        )
        assert report.tokens_shed.get(SHED_QUARANTINED, 0) > 0
        assert responder.audit.verify()
        for stream in scenario:
            assert responder.engine.action_of(stream.name) == ACTION_QUARANTINE

    def test_quarantine_enforces_on_the_owning_drive(self):
        scenario = build_scenario("api", ransomware=1, benign=2, seed=2,
                                  benign_length=80)
        responder = FleetResponder(policy=aggressive_policy())
        engines = make_engines(2)
        serve(engines, scenario, responder)
        storages = [engine.storage for engine in engines]
        # Quarantine snapshots the owning volume and write-blocks the
        # stream there; every stream got quarantined somewhere.
        assert any(s.active_snapshot_id is not None for s in storages)
        for stream in scenario:
            assert any(
                s.stream_mode(stream.name) == MODE_BLOCK for s in storages
            )

    def test_kill_drops_session_state(self):
        scenario = build_scenario("api", ransomware=1, benign=1, seed=2,
                                  benign_length=80)
        responder = FleetResponder(
            policy=aggressive_policy(kill_threshold=0.0, allow_kill=True),
        )
        server, _ = serve(make_engines(2), scenario, responder)
        for stream in scenario:
            assert responder.engine.action_of(stream.name) == ACTION_KILL
            assert stream.name in server.quarantined_streams
            for device in server.devices:
                if device.sessions is not None:
                    assert stream.name not in device.sessions.known_keys()

    def test_responder_decisions_deterministic_across_runs(self):
        scenario = build_scenario("api", ransomware=1, benign=2, seed=5,
                                  benign_length=80)

        def run():
            responder = FleetResponder(policy=aggressive_policy())
            serve(make_engines(2), scenario, responder)
            return responder

        assert run().audit.to_jsonl() == run().audit.to_jsonl()


def _enforcement_cuts(audit, scenario):
    """Stream → modelled cut point, derived from the audit chain alone.

    The first escalate record at or above the write-block rung stops a
    stream's writes; its stream-local window index plus the window
    length is the number of the stream's own tokens processed by then.
    """
    cuts = {stream.name: None for stream in scenario}
    for record in audit.records:
        if (record.event == "escalate"
                and _RANK[record.action] >= _RANK[ACTION_WRITE_BLOCK]
                and cuts.get(record.stream) is None):
            cuts[record.stream] = WINDOW + record.at
    return cuts


class TestFaultParity:
    """Satellite property: a mid-run drive failure never changes the
    per-stream audit chains or the data-loss accounting."""

    @settings(max_examples=5, deadline=None)
    @given(
        fail_fraction=st.floats(min_value=0.2, max_value=0.8),
        seed=st.integers(min_value=0, max_value=3),
    )
    def test_device_failure_is_invisible_to_audit_and_accounting(
        self, fail_fraction, seed
    ):
        scenario = build_scenario("api", ransomware=1, benign=2, seed=seed,
                                  benign_length=80)
        tokens_per_stream = 60
        horizon = (tokens_per_stream - 1) * GAP_US

        def run(fault_plans):
            responder = FleetResponder(policy=aggressive_policy())
            server, report = serve(
                make_engines(2), scenario, responder,
                tokens_per_stream=tokens_per_stream,
                fault_plans=fault_plans,
            )
            assert responder.audit.verify()
            accounting = data_loss_accounting(
                scenario, _enforcement_cuts(responder.audit, scenario)
            )
            return responder, report, accounting

        base, base_report, base_accounting = run(None)
        fail_at = max(1, int(horizon * fail_fraction))
        failed, failed_report, failed_accounting = run({
            0: FaultPlan(device_fail=DeviceFailFault(at_us=fail_at))
        })
        assert failed_report.device_failures == 1
        assert base_report.device_failures == 0
        assert base.audit.stream_heads() == failed.audit.stream_heads()
        assert base_accounting == failed_accounting
        # Enforcement fired somewhere, so the parity is not vacuous.
        assert any(
            entry["prevented_bytes"] > 0
            for entry in base_accounting["per_stream"].values()
            if entry["total_bytes"] > 0
        ) or all(
            entry["total_bytes"] == 0
            for entry in base_accounting["per_stream"].values()
        )
