"""Tests for multi-CSD fleet planning."""

import pytest

from repro.core.config import EngineConfig, OptimizationLevel
from repro.core.engine import CSDInferenceEngine
from repro.core.fleet import FleetPlanner, MonitoredStream
from repro.core.throughput import throughput_report


@pytest.fixture(scope="module")
def device_report():
    engine = CSDInferenceEngine.build_unloaded(
        EngineConfig(optimization=OptimizationLevel.FIXED_POINT)
    )
    return throughput_report(engine)


def stream(name, calls_per_second, stride=10):
    return MonitoredStream(name, calls_per_second, stride)


class TestMonitoredStream:
    def test_window_rate(self):
        assert stream("h", 2000, stride=10).windows_per_second == 200.0

    def test_validation(self):
        with pytest.raises(ValueError):
            stream("h", 0)
        with pytest.raises(ValueError):
            stream("h", 100, stride=0)


class TestPlanning:
    def test_small_fleet_fits_one_device(self, device_report):
        planner = FleetPlanner(device_report)
        plan = planner.plan([stream(f"host{i}", 2000) for i in range(5)])
        assert plan.devices_needed == 1
        assert plan.peak_utilization < planner.headroom + 1e-9

    def test_large_fleet_needs_multiple_devices(self, device_report):
        planner = FleetPlanner(device_report)
        # ~4,400 windows/s per device at 0.8 headroom -> ~3,530 usable;
        # 40 hosts x 200 windows/s = 8,000 -> at least 3 devices.
        plan = planner.plan([stream(f"host{i}", 2000) for i in range(40)])
        assert plan.devices_needed >= 3
        total = sum(len(a.streams) for a in plan.assignments)
        assert total == 40

    def test_every_stream_assigned_exactly_once(self, device_report):
        planner = FleetPlanner(device_report)
        streams = [stream(f"host{i}", 500 + 100 * i) for i in range(20)]
        plan = planner.plan(streams)
        placed = [s.name for a in plan.assignments for s in a.streams]
        assert sorted(placed) == sorted(s.name for s in streams)
        for s in streams:
            plan.device_of(s.name)  # does not raise

    def test_no_device_over_headroom(self, device_report):
        planner = FleetPlanner(device_report, headroom=0.7)
        plan = planner.plan([stream(f"host{i}", 3000) for i in range(25)])
        for assignment in plan.assignments:
            assert assignment.utilization <= 0.7 + 1e-9

    def test_unsplittable_stream_rejected(self, device_report):
        planner = FleetPlanner(device_report)
        huge = stream("firehose", 10_000_000, stride=1)
        with pytest.raises(ValueError, match="lower its stride"):
            planner.plan([huge])

    def test_unknown_stream_lookup(self, device_report):
        plan = FleetPlanner(device_report).plan([stream("a", 100)])
        with pytest.raises(KeyError):
            plan.device_of("nope")

    def test_headroom_validation(self, device_report):
        with pytest.raises(ValueError):
            FleetPlanner(device_report, headroom=0.0)


class TestFailureRebalance:
    def test_orphans_reassigned(self, device_report):
        planner = FleetPlanner(device_report)
        plan = planner.plan([stream(f"host{i}", 2000) for i in range(40)])
        failed = plan.assignments[0].device_index
        rebalanced = planner.rebalance_after_failure(plan, failed)
        placed = [s.name for a in rebalanced.assignments for s in a.streams]
        assert sorted(placed) == sorted(f"host{i}" for i in range(40))
        assert all(a.device_index != failed for a in rebalanced.assignments)

    def test_rebalance_respects_headroom(self, device_report):
        planner = FleetPlanner(device_report, headroom=0.75)
        plan = planner.plan([stream(f"host{i}", 2500) for i in range(30)])
        rebalanced = planner.rebalance_after_failure(
            plan, plan.assignments[0].device_index
        )
        for assignment in rebalanced.assignments:
            assert assignment.utilization <= 0.75 + 1e-9

    def test_survivors_keep_streams(self, device_report):
        planner = FleetPlanner(device_report)
        plan = planner.plan([stream(f"host{i}", 2000) for i in range(40)])
        survivor = plan.assignments[1]
        before = {s.name for s in survivor.streams}
        rebalanced = planner.rebalance_after_failure(plan, plan.assignments[0].device_index)
        after_assignment = next(
            a for a in rebalanced.assignments if a.device_index == survivor.device_index
        )
        assert before <= {s.name for s in after_assignment.streams}

    def test_unknown_device_raises(self, device_report):
        planner = FleetPlanner(device_report)
        plan = planner.plan([stream("a", 100)])
        with pytest.raises(KeyError):
            planner.rebalance_after_failure(plan, failed_device=99)


class TestEdgeCases:
    def test_empty_fleet(self, device_report):
        plan = FleetPlanner(device_report).plan([])
        assert plan.devices_needed == 0
        assert plan.peak_utilization == 0.0
        with pytest.raises(KeyError):
            plan.device_of("anything")

    def test_single_device_failure_spawns_replacement(self, device_report):
        planner = FleetPlanner(device_report)
        plan = planner.plan([stream("only", 2000)])
        assert plan.devices_needed == 1
        failed = plan.assignments[0].device_index
        rebalanced = planner.rebalance_after_failure(plan, failed)
        placed = [s.name for a in rebalanced.assignments for s in a.streams]
        assert placed == ["only"]
        assert all(a.device_index != failed for a in rebalanced.assignments)

    def test_oversubscribed_rebalance_adds_devices(self, device_report):
        planner = FleetPlanner(device_report)
        # 3,000 windows/s per stream against a ~3,536 windows/s budget:
        # one stream per device, so no survivor can absorb an orphan.
        plan = planner.plan([stream(f"h{i}", 30_000) for i in range(8)])
        assert plan.devices_needed == 8
        original = {a.device_index for a in plan.assignments}
        rebalanced = planner.rebalance_after_failure(
            plan, plan.assignments[0].device_index
        )
        new_indices = {a.device_index for a in rebalanced.assignments} - original
        assert new_indices and min(new_indices) >= len(original)
        placed = [s.name for a in rebalanced.assignments for s in a.streams]
        assert sorted(placed) == sorted(f"h{i}" for i in range(8))

    def test_all_devices_failed_in_sequence(self, device_report):
        planner = FleetPlanner(device_report)
        plan = planner.plan([stream(f"h{i}", 3000) for i in range(12)])
        original = [a.device_index for a in plan.assignments]
        assert len(original) >= 2
        for failed in original:
            plan = planner.rebalance_after_failure(plan, failed)
        placed = [s.name for a in plan.assignments for s in a.streams]
        assert sorted(placed) == sorted(f"h{i}" for i in range(12))
        assert not set(original) & {a.device_index for a in plan.assignments}
        for assignment in plan.assignments:
            assert assignment.utilization <= planner.headroom + 1e-9
