"""Tests of the timing model's structural behaviour.

Calibration pins the paper's operating point (see
TestFig3Calibration); these tests pin the *structure*: how the model
scales when dimensions, CU counts, or optimisation levels change — the
part that makes the ablations meaningful rather than hard-coded.
"""

import dataclasses

import pytest

from repro.core.config import EngineConfig, ModelDimensions, OptimizationLevel
from repro.core.engine import CSDInferenceEngine
from repro.core.timing import (
    InferenceTiming,
    build_inference_timing,
    kernel_breakdown,
    stage_timing_from_kernels,
)
from repro.hw.clock import ClockDomain


def breakdown(level=OptimizationLevel.VANILLA, **dims):
    config = EngineConfig(
        dimensions=ModelDimensions(**dims), optimization=level
    )
    return kernel_breakdown(config)


class TestDimensionScaling:
    def test_hidden_size_grows_gates_and_hidden(self):
        small = breakdown(hidden_size=16)
        large = breakdown(hidden_size=128)
        assert large["gates"] > small["gates"]
        assert large["hidden_state"] > small["hidden_state"]

    def test_hidden_size_does_not_affect_preprocess_fetch(self):
        # Preprocess fetches one embedding row; its cost tracks the
        # embedding dim and CU count, not the hidden size.
        small = breakdown(hidden_size=16)
        large = breakdown(hidden_size=128)
        assert large["preprocess"] == small["preprocess"]

    def test_embedding_dim_grows_preprocess(self):
        small = breakdown(embedding_dim=4)
        large = breakdown(embedding_dim=64)
        assert large["preprocess"] > small["preprocess"]

    def test_vocab_size_is_timing_irrelevant(self):
        # A row lookup costs the same whatever the table height.
        small = breakdown(vocab_size=64)
        large = breakdown(vocab_size=4096)
        assert small == large

    def test_sequence_length_is_per_item_irrelevant(self):
        # Fig. 3 reports per-item times; length matters to the sequence
        # schedule only.
        assert breakdown(sequence_length=50) == breakdown(sequence_length=500)

    def test_optimization_strictly_improves_totals(self):
        totals = [
            breakdown(level=level)["total"] for level in OptimizationLevel
        ]
        assert totals[0] > totals[1] > totals[2]


class TestInferenceTimingViews:
    @pytest.fixture
    def timing(self) -> InferenceTiming:
        config = EngineConfig()
        engine = CSDInferenceEngine.build_unloaded(config)
        return build_inference_timing(
            config,
            engine.preprocess.timing(),
            engine.gates.timing(),
            engine.hidden_state.timing(),
            engine.hidden_state.classification_cycles(),
            engine.device.clock,
        )

    def test_per_item_is_sum_of_reports(self, timing):
        assert timing.per_item_cycles == sum(
            report.cycles for report in timing.per_item_reports
        )

    def test_sequence_time_exceeds_single_item(self, timing):
        assert timing.sequence_cycles > timing.per_item_cycles

    def test_sequence_benefits_from_overlap(self, timing):
        items = 100
        assert timing.sequence_cycles < timing.per_item_cycles * items

    def test_microsecond_views_consistent(self, timing):
        clock = ClockDomain()
        assert timing.per_item_microseconds == pytest.approx(
            clock.cycles_to_microseconds(timing.per_item_cycles)
        )
        assert timing.sequence_microseconds > timing.per_item_microseconds

    def test_report_labels(self, timing):
        labels = [report.kernel for report in timing.per_item_reports]
        assert labels == ["kernel_preprocess", "kernel_gates", "kernel_hidden_state"]


class TestStageAssembly:
    def test_stage_timing_reads_reported_cycles(self):
        engine = CSDInferenceEngine.build_unloaded(EngineConfig())
        stage = stage_timing_from_kernels(
            engine.preprocess.timing(),
            engine.gates.timing(),
            engine.hidden_state.timing(),
        )
        assert stage.preprocess == engine.preprocess.timing().reported_cycles
        assert stage.gates == engine.gates.timing().reported_cycles

    def test_fixed_point_stage_gates_is_one_cycle(self):
        engine = CSDInferenceEngine.build_unloaded(
            EngineConfig(optimization=OptimizationLevel.FIXED_POINT)
        )
        stage = stage_timing_from_kernels(
            engine.preprocess.timing(),
            engine.gates.timing(),
            engine.hidden_state.timing(),
        )
        assert stage.gates == 1
