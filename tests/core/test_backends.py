"""Kernel-backend registry tests (see ``docs/performance.md``).

The registry's contract: every backend is **bit-exact** with the
``reference`` per-kernel NumPy pipeline at every optimisation level, on
both the whole-window inference path and the incremental session path;
degradations (missing accelerator, unsafe bounds, mid-run overflow
guard) fall back gracefully and are *counted*, never silent.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import sessions as sessions_mod
from repro.core.config import EngineConfig, OptimizationLevel
from repro.core.engine import CSDInferenceEngine
from repro.core.kernels.backends import (
    DEFAULT_BACKEND,
    FALLBACK_OVERFLOW_GUARD,
    METRIC_FALLBACK,
    METRIC_TICKS,
    FusedOverflow,
    available_backends,
    resolve_backend,
)
from repro.core.sessions import SessionConfig, SessionManager
from repro.core.weights import HostWeights
from repro.nn.model import SequenceClassifier

WINDOW = 12
VOCAB = 278

_WEIGHTS = HostWeights.from_model(SequenceClassifier(seed=7))
_ENGINES: dict = {}


def engine_for(level, backend=DEFAULT_BACKEND) -> CSDInferenceEngine:
    engine = _ENGINES.get((level, backend))
    if engine is None:
        config = EngineConfig(
            dimensions=dataclasses.replace(
                _WEIGHTS.dimensions, sequence_length=WINDOW
            ),
            optimization=level,
            backend=backend,
        )
        engine = CSDInferenceEngine(config, _WEIGHTS)
        _ENGINES[(level, backend)] = engine
    return engine


def manager_verdicts(manager, keys, tokens) -> list:
    """Step ``tokens`` (streams x ticks) through ``manager``; flat verdicts."""
    out = []
    for tick in range(tokens.shape[1]):
        batch = {keys[i]: int(tokens[i, tick]) for i in range(len(keys))}
        out.extend(
            (v.session, v.window_index, v.probability)
            for v in manager.step(batch)
        )
    return out


class TestRegistry:
    def test_both_backends_registered(self):
        assert set(available_backends()) >= {"reference", "fused"}
        assert DEFAULT_BACKEND == "reference"
        assert EngineConfig().backend == DEFAULT_BACKEND

    def test_unknown_backend_rejected(self):
        engine = engine_for(OptimizationLevel.FIXED_POINT)
        with pytest.raises(ValueError, match="nope"):
            resolve_backend("nope", engine)

    def test_engine_caches_step_backend(self):
        engine = engine_for(OptimizationLevel.FIXED_POINT, backend="fused")
        assert engine.step_backend is engine.step_backend
        assert engine.step_backend.name == "fused"

    def test_fused_accel_tier_is_known(self):
        backend = engine_for(
            OptimizationLevel.FIXED_POINT, backend="fused"
        ).step_backend
        assert backend.accel_tier in (None, "numba", "cc")


class TestInferenceParity:
    @pytest.mark.parametrize("level", list(OptimizationLevel))
    def test_infer_batch_bit_exact_with_reference(self, level):
        rng = np.random.default_rng(17)
        batch = rng.integers(0, VOCAB, size=(8, WINDOW))
        want = engine_for(level).infer_batch(batch).probabilities
        got = engine_for(level, backend="fused").infer_batch(batch).probabilities
        np.testing.assert_array_equal(got, want)

    def test_fused_numpy_tier_also_bit_exact(self):
        """With the compiled step disabled, the vectorised-NumPy fused
        path must still match the reference bit for bit."""
        level = OptimizationLevel.FIXED_POINT
        config = EngineConfig(
            dimensions=dataclasses.replace(
                _WEIGHTS.dimensions, sequence_length=WINDOW
            ),
            optimization=level,
            backend="fused",
        )
        engine = CSDInferenceEngine(config, _WEIGHTS)
        if engine.step_backend._math is not None:
            engine.step_backend._math.disable_jit()
        rng = np.random.default_rng(19)
        batch = rng.integers(0, VOCAB, size=(6, WINDOW))
        want = engine_for(level).infer_batch(batch).probabilities
        np.testing.assert_array_equal(
            engine.infer_batch(batch).probabilities, want
        )


class TestSessionParity:
    @pytest.mark.parametrize("level", list(OptimizationLevel))
    def test_manager_verdicts_bit_exact_with_reference(self, level):
        engine = engine_for(level)
        rng = np.random.default_rng(23)
        keys = [f"s{i}" for i in range(6)]
        tokens = rng.integers(0, VOCAB, size=(6, 3 * WINDOW))
        config = SessionConfig(stride=3)
        want = manager_verdicts(
            SessionManager(engine, config, backend="reference"), keys, tokens
        )
        got = manager_verdicts(
            SessionManager(engine, config, backend="fused"), keys, tokens
        )
        assert want and got == want

    def test_parity_under_eviction_and_restore(self):
        engine = engine_for(OptimizationLevel.FIXED_POINT)
        rng = np.random.default_rng(29)
        keys = [f"s{i}" for i in range(8)]
        tokens = rng.integers(0, VOCAB, size=(8, 3 * WINDOW))
        config = SessionConfig(stride=2, max_resident_sessions=3)
        want = manager_verdicts(
            SessionManager(engine, config, backend="reference"), keys, tokens
        )
        fused = SessionManager(engine, config, backend="fused")
        got = manager_verdicts(fused, keys, tokens)
        assert want and got == want
        assert fused.stats()["restores"] > 0  # the pressure was real

    def test_checkpoints_cross_backends(self):
        """A fused manager's checkpoint resumes on a reference manager
        (and back) with the verdict stream unchanged — the external
        checkpoint format is backend-neutral."""
        engine = engine_for(OptimizationLevel.FIXED_POINT)
        rng = np.random.default_rng(31)
        tokens = rng.integers(0, VOCAB, size=3 * WINDOW)
        split = WINDOW + 5
        config = SessionConfig(stride=2)

        oracle = SessionManager(engine, config, backend="reference")
        want = [
            (v.window_index, v.probability)
            for t in tokens for v in [oracle.observe("p", int(t))]
            if v is not None
        ]
        for first, second in (("fused", "reference"), ("reference", "fused")):
            source = SessionManager(engine, config, backend=first)
            got = [
                (v.window_index, v.probability)
                for t in tokens[:split] for v in [source.observe("p", int(t))]
                if v is not None
            ]
            target = SessionManager(engine, config, backend=second)
            target.import_checkpoint(source.export_checkpoint("p"))
            got += [
                (v.window_index, v.probability)
                for t in tokens[split:] for v in [target.observe("p", int(t))]
                if v is not None
            ]
            assert got == want, f"{first} -> {second} checkpoint diverged"


class TestDegradation:
    def test_mid_run_overflow_degrades_to_reference(self, monkeypatch):
        """An injected ``FusedOverflow`` mid-stream converts state to the
        reference stepper exactly: the verdict stream is unchanged and
        the fallback is counted under ``overflow_guard``."""
        engine = engine_for(OptimizationLevel.FIXED_POINT)
        rng = np.random.default_rng(37)
        keys = [f"s{i}" for i in range(5)]
        tokens = rng.integers(0, VOCAB, size=(5, 3 * WINDOW))
        config = SessionConfig(stride=3)
        want = manager_verdicts(
            SessionManager(engine, config, backend="reference"), keys, tokens
        )

        fused = SessionManager(engine, config, backend="fused")
        original = sessions_mod.FusedStepper.step_rows
        state = {"armed": True}

        def flaky(self, stepped):
            if state["armed"] and len(self.manager._resident) and (
                next(iter(self.manager._resident.values())).calls_seen
                > WINDOW + 2
            ):
                state["armed"] = False
                raise FusedOverflow("injected")
            return original(self, stepped)

        monkeypatch.setattr(sessions_mod.FusedStepper, "step_rows", flaky)
        got = manager_verdicts(fused, keys, tokens)
        assert want and got == want
        stats = fused.stats()
        assert stats["backend_fallbacks"].get(FALLBACK_OVERFLOW_GUARD) == 1
        assert isinstance(fused._stepper, sessions_mod.ReferenceStepper)

    def test_fallbacks_and_ticks_are_observable(self):
        from repro.telemetry import Telemetry

        engine = engine_for(OptimizationLevel.FIXED_POINT, backend="fused")
        telemetry = Telemetry()
        engine.attach_telemetry(telemetry)
        try:
            manager = SessionManager(engine, SessionConfig(stride=2))
            for tick in range(WINDOW):
                manager.step({"a": tick % VOCAB})
            backend = manager.backend
            backend.record_fallback("self_check_failed")
            assert backend.fallback_reasons["self_check_failed"] == 1
            assert telemetry.metrics.counter(
                METRIC_FALLBACK, reason="self_check_failed"
            ).value == 1
            assert telemetry.metrics.counter(
                METRIC_TICKS, backend=backend.name
            ).value == WINDOW
        finally:
            engine.attach_telemetry(None)
