"""Tests for the streaming and mixed-precision extension modules."""

import numpy as np
import pytest

from repro.core.config import EngineConfig, OptimizationLevel
from repro.core.engine import CSDInferenceEngine
from repro.core.mixed_precision import (
    MixedPrecisionLstm,
    MixedPrecisionPolicy,
    evaluate_policy,
)
from repro.core.sessions import (
    STREAM_FIFO_LATENCY_CYCLES,
    StreamingReport,
    streaming_report,
)
from repro.core.weights import HostWeights
from repro.fixedpoint.qformat import PAPER_QFORMAT, QFormat
from repro.nn.model import SequenceClassifier


@pytest.fixture(scope="module")
def model():
    return SequenceClassifier(vocab_size=30, embedding_dim=4, hidden_size=8, seed=3)


@pytest.fixture(scope="module")
def weights(model):
    return HostWeights.from_model(model)


class TestStreaming:
    @pytest.mark.parametrize("level", list(OptimizationLevel))
    def test_streaming_always_helps(self, level):
        engine = CSDInferenceEngine.build_unloaded(EngineConfig(optimization=level))
        report = streaming_report(engine)
        assert report.item_speedup > 1.0
        assert report.sequence_speedup > 1.0

    def test_streaming_speedup_is_modest(self):
        # "additional acceleration", not another order of magnitude.
        engine = CSDInferenceEngine.build_unloaded(EngineConfig())
        report = streaming_report(engine)
        assert report.item_speedup < 2.0

    def test_streamed_cycles_positive(self):
        engine = CSDInferenceEngine.build_unloaded(EngineConfig())
        report = streaming_report(engine)
        assert report.streamed_item_cycles > 0
        assert report.streamed_item_microseconds > 0

    def test_fifo_latency_small(self):
        assert STREAM_FIFO_LATENCY_CYCLES < 10

    def test_zero_streamed_cycles_is_unbounded_speedup(self):
        """Regression: a zero streamed-cycle count once reported a 1.0
        "no speedup" instead of the unbounded speedup it actually is."""
        from repro.hw.clock import ClockDomain

        report = StreamingReport(
            baseline_item_cycles=100, streamed_item_cycles=0,
            baseline_sequence_cycles=1000, streamed_sequence_cycles=0,
            clock=ClockDomain(),
        )
        assert report.item_speedup == float("inf")
        assert report.sequence_speedup == float("inf")
        # Zero over zero stays the vacuous 1.0, not NaN.
        vacuous = StreamingReport(
            baseline_item_cycles=0, streamed_item_cycles=0,
            baseline_sequence_cycles=0, streamed_sequence_cycles=0,
            clock=ClockDomain(),
        )
        assert vacuous.item_speedup == 1.0


class TestMixedPrecisionPolicy:
    def test_rescale_identity_when_same_scale(self):
        policy = MixedPrecisionPolicy(PAPER_QFORMAT, PAPER_QFORMAT)
        value = np.array([123456], dtype=np.int64)
        assert policy.rescale(value, PAPER_QFORMAT, PAPER_QFORMAT) is value

    def test_rescale_down_and_up(self):
        high = QFormat(10**6)
        low = QFormat(10**3)
        policy = MixedPrecisionPolicy(low, high)
        quantised = high.quantize(0.123456)
        down = policy.rescale(quantised, high, low)
        assert down == low.quantize(0.123)  # resolution truncates
        back = policy.rescale(down, low, high)
        assert abs(back - quantised) <= 10**3  # one low-format ULP

    def test_rescale_scalar_returns_int(self):
        policy = MixedPrecisionPolicy(QFormat(100), QFormat(1000))
        assert isinstance(policy.rescale(50, QFormat(100), QFormat(1000)), int)


class TestMixedPrecisionLstm:
    def test_uniform_high_policy_close_to_float(self, model, weights, rng):
        policy = MixedPrecisionPolicy(PAPER_QFORMAT, PAPER_QFORMAT)
        lstm = MixedPrecisionLstm(weights, policy)
        sequence = rng.integers(0, 30, size=20)
        float_prob = float(model.predict_proba(sequence[None, :])[0])
        assert lstm.infer_sequence(sequence) == pytest.approx(float_prob, abs=0.05)

    def test_coarse_gates_keep_decisions(self, model, weights, rng):
        sequences = rng.integers(0, 30, size=(8, 20))
        reference = model.predict_proba(sequences)
        policy = MixedPrecisionPolicy(QFormat(10**3), QFormat(10**6))
        evaluation = evaluate_policy(weights, policy, sequences, reference)
        assert evaluation.decision_agreement >= 0.75
        assert evaluation.relative_dsp_cost < 1.0

    def test_very_coarse_state_degrades_more_than_coarse_gates(
        self, model, weights, rng
    ):
        sequences = rng.integers(0, 30, size=(8, 20))
        reference = model.predict_proba(sequences)
        coarse_gates = evaluate_policy(
            weights,
            MixedPrecisionPolicy(QFormat(10**2), QFormat(10**6)),
            sequences, reference,
        )
        coarse_state = evaluate_policy(
            weights,
            MixedPrecisionPolicy(QFormat(10**6), QFormat(10**2)),
            sequences, reference,
        )
        # The cell state integrates error over time; the gates saturate it.
        assert coarse_state.mean_probability_error >= coarse_gates.mean_probability_error

    def test_evaluate_policy_validates_lengths(self, weights, rng):
        with pytest.raises(ValueError):
            evaluate_policy(
                weights,
                MixedPrecisionPolicy(PAPER_QFORMAT, PAPER_QFORMAT),
                rng.integers(0, 30, size=(3, 10)),
                np.zeros(2),
            )
