"""Regression tests for the ``infer_from_storage`` FPGA DRAM leak.

Every ``SmartSSD.p2p_fetch`` reserves FPGA DRAM for the fetched input;
the engine used to leave those reservations in place forever, so a
long-running engine exhausted the DRAM and hit ``MemoryError``.  The
engine now releases the input reservation once inference completes.
"""

import numpy as np
import pytest

from repro.core.config import OptimizationLevel
from repro.core.engine import engine_at_level
from repro.hw.smartssd import SmartSSD
from repro.nn.model import SequenceClassifier

SEQ_LEN = 12


@pytest.fixture(scope="module")
def model():
    return SequenceClassifier(seed=11)


def test_repeated_fetches_do_not_exhaust_dram(model, rng):
    engine = engine_at_level(model, OptimizationLevel.FIXED_POINT,
                             sequence_length=SEQ_LEN)
    sequence = rng.integers(0, 278, size=SEQ_LEN)
    # DRAM only large enough for a handful of unreleased reservations:
    # looping far past capacity // nbytes fetches proves they are freed.
    device = SmartSSD(fpga_dram_bytes=4 * sequence.nbytes)
    engine.attach_storage(device)
    device.ssd.write_object("seq", sequence.nbytes)
    for _ in range(50):
        result, _ = engine.infer_from_storage("seq", sequence)
        assert 0.0 <= result.probability <= 1.0
    assert device.fpga_dram_free_bytes == device.fpga_dram_bytes


def test_reservation_released_even_when_inference_fails(model, rng):
    engine = engine_at_level(model, OptimizationLevel.FIXED_POINT,
                             sequence_length=SEQ_LEN)
    sequence = rng.integers(0, 278, size=SEQ_LEN + 5)  # wrong length
    device = SmartSSD(fpga_dram_bytes=4 * sequence.nbytes)
    engine.attach_storage(device)
    device.ssd.write_object("seq", sequence.nbytes)
    for _ in range(20):
        with pytest.raises(ValueError):
            engine.infer_from_storage("seq", sequence)
    assert device.fpga_dram_free_bytes == device.fpga_dram_bytes
