"""Streaming session subsystem tests (see ``docs/streaming.md``).

The two load-bearing properties:

* **bit-exact parity** — the incremental per-token path produces, for
  every completed window, the identical ``(window_index, probability)``
  the full-window ``infer_sequence`` recompute produces, at every
  :class:`OptimizationLevel` (hypothesis-checked over random streams);
* **bounded memory** — 10k concurrent sessions stay under a fixed byte
  budget through LRU eviction, and evicted sessions restore from their
  checkpoints bit-exactly (a restored session's subsequent verdicts
  match a never-evicted session's).
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import EngineConfig, OptimizationLevel
from repro.core.engine import CSDInferenceEngine
from repro.core.sessions import (
    EVICT_CHECKPOINT_BUDGET,
    EVICT_CLOSED,
    EVICT_IDLE,
    EVICT_LRU,
    SESSION_OVERHEAD_BYTES,
    SessionConfig,
    SessionManager,
    StreamSession,
)
from repro.core.weights import HostWeights
from repro.nn.model import SequenceClassifier
from repro.ransomware.detector import RansomwareDetector

WINDOW = 12
VOCAB = 278

_WEIGHTS = HostWeights.from_model(SequenceClassifier(seed=7))
_ENGINES: dict = {}


def engine_for(level: OptimizationLevel) -> CSDInferenceEngine:
    engine = _ENGINES.get(level)
    if engine is None:
        config = EngineConfig(
            dimensions=dataclasses.replace(
                _WEIGHTS.dimensions, sequence_length=WINDOW
            ),
            optimization=level,
        )
        engine = CSDInferenceEngine(config, _WEIGHTS)
        _ENGINES[level] = engine
    return engine


def incremental_verdicts(manager: SessionManager, key, tokens) -> list:
    verdicts = []
    for token in tokens:
        verdict = manager.observe(key, int(token))
        if verdict is not None:
            verdicts.append(verdict)
    return verdicts


def recompute_verdicts(engine, tokens, threshold, stride) -> list:
    detector = RansomwareDetector(engine, threshold=threshold, stride=stride)
    verdicts = []
    for token in tokens:
        verdict = detector.observe(int(token))
        if verdict is not None:
            verdicts.append(verdict)
    return verdicts


class TestIncrementalParity:
    @given(
        tokens=st.lists(st.integers(min_value=0, max_value=VOCAB - 1),
                        min_size=0, max_size=40),
        stride=st.integers(min_value=1, max_value=WINDOW + 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_bit_exact_with_recompute_at_every_level(self, tokens, stride):
        for level in OptimizationLevel:
            engine = engine_for(level)
            manager = SessionManager(engine, SessionConfig(stride=stride))
            got = incremental_verdicts(manager, "s", tokens)
            want = recompute_verdicts(engine, tokens, 0.5, stride)
            assert [(v.window_index, v.probability) for v in got] == [
                (v.window_index, v.probability) for v in want
            ]
            assert [v.is_ransomware for v in got] == [
                v.is_ransomware for v in want
            ]

    @given(
        tokens=st.lists(st.integers(min_value=0, max_value=VOCAB - 1),
                        min_size=0, max_size=40),
        stride=st.integers(min_value=1, max_value=WINDOW + 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_fused_backend_matches_infer_sequence_recompute(self, tokens, stride):
        """The fused hot path emits, for every completed window, exactly
        the ``infer_sequence`` recompute verdict — at every level."""
        for level in OptimizationLevel:
            engine = engine_for(level)
            manager = SessionManager(
                engine, SessionConfig(stride=stride), backend="fused"
            )
            got = incremental_verdicts(manager, "s", tokens)
            want = recompute_verdicts(engine, tokens, 0.5, stride)
            assert [(v.window_index, v.probability) for v in got] == [
                (v.window_index, v.probability) for v in want
            ]

    def test_long_stream_every_window(self):
        """stride=1: every window of a long stream, all levels."""
        rng = np.random.default_rng(3)
        tokens = rng.integers(0, VOCAB, size=3 * WINDOW)
        for level in OptimizationLevel:
            engine = engine_for(level)
            manager = SessionManager(engine, SessionConfig(stride=1))
            got = incremental_verdicts(manager, "s", tokens)
            want = recompute_verdicts(engine, tokens, 0.5, 1)
            assert len(got) == len(tokens) - WINDOW + 1
            assert [(v.window_index, v.probability) for v in got] == [
                (v.window_index, v.probability) for v in want
            ]

    def test_interleaved_streams_do_not_perturb_each_other(self):
        """A stream batched with 7 others scores exactly as it does alone."""
        engine = engine_for(OptimizationLevel.FIXED_POINT)
        rng = np.random.default_rng(11)
        streams = {f"s{i}": rng.integers(0, VOCAB, size=2 * WINDOW)
                   for i in range(8)}
        manager = SessionManager(engine, SessionConfig(stride=3))
        batched: dict = {name: [] for name in streams}
        for step in range(2 * WINDOW):
            for verdict in manager.step(
                {name: int(tokens[step]) for name, tokens in streams.items()}
            ):
                batched[verdict.session].append(verdict)
        for name, tokens in streams.items():
            solo_manager = SessionManager(engine, SessionConfig(stride=3))
            solo = incremental_verdicts(solo_manager, name, tokens)
            assert [(v.window_index, v.probability) for v in batched[name]] == [
                (v.window_index, v.probability) for v in solo
            ]

    def test_verdict_timing_matches_analytic_model(self):
        engine = engine_for(OptimizationLevel.FIXED_POINT)
        manager = SessionManager(engine, SessionConfig(stride=1))
        verdicts = incremental_verdicts(
            manager, "s", np.zeros(WINDOW, dtype=np.int64)
        )
        assert verdicts[0].inference_microseconds == engine.sequence_microseconds()


class TestMemoryBudget:
    def test_10k_sessions_bounded_by_eviction(self):
        """10k concurrent streams stay under a fixed byte budget."""
        engine = engine_for(OptimizationLevel.FIXED_POINT)
        config = SessionConfig(stride=WINDOW)  # ring of 1: cheapest sessions
        probe = SessionManager(engine, config)
        budget = 512 * probe.session_bytes
        manager = SessionManager(
            engine, dataclasses.replace(config, memory_budget_bytes=budget)
        )
        total = 10_000
        per_tick = 1_000
        for round_ in range(3):
            for start in range(0, total, per_tick):
                manager.step({
                    f"p{start + i}": (start + i + round_) % VOCAB
                    for i in range(per_tick)
                })
                assert manager.resident_count <= 512
                assert manager.resident_bytes <= budget
        stats = manager.stats()
        assert manager.resident_count + manager.checkpointed_count == total
        assert len(manager.known_keys()) == total
        assert stats["evictions"][EVICT_LRU] > 0
        # Rounds 2 and 3 touched evicted sessions: they restored.
        assert stats["restores"] > 0
        assert stats["tokens"] == 3 * total

    def test_budget_too_small_for_one_session_raises(self):
        engine = engine_for(OptimizationLevel.VANILLA)
        with pytest.raises(ValueError, match="cannot hold even one"):
            SessionManager(engine, SessionConfig(memory_budget_bytes=8))

    def test_session_bytes_accounts_ring_and_overhead(self):
        engine = engine_for(OptimizationLevel.VANILLA)
        manager = SessionManager(engine, SessionConfig(stride=5))
        hidden = engine.config.dimensions.hidden_size
        assert manager.ring_capacity == -(-WINDOW // 5)
        assert manager.session_bytes == (
            SESSION_OVERHEAD_BYTES + manager.ring_capacity * 2 * hidden * 8
        )


class TestCheckpointBudget:
    """The checkpoint store's *own* byte budget (distinct from the
    resident-session budget, which deliberately meters only live state)."""

    def _fill(self, manager, count, ticks=3):
        for tick in range(ticks):
            manager.step({f"p{i}": (i + tick) % VOCAB for i in range(count)})

    def test_checkpoint_bytes_metered_and_bounded(self):
        engine = engine_for(OptimizationLevel.FIXED_POINT)
        probe = SessionManager(engine, SessionConfig(stride=WINDOW))
        self._fill(probe, 1)
        probe.evict("p0")
        one_checkpoint = probe.checkpoint_bytes
        assert one_checkpoint > 0

        budget = 4 * one_checkpoint
        manager = SessionManager(
            engine,
            SessionConfig(stride=WINDOW, checkpoint_budget_bytes=budget),
        )
        self._fill(manager, 16)
        for i in range(16):
            manager.evict(f"p{i}")
            assert manager.checkpoint_bytes <= budget
        stats = manager.stats()
        assert stats["checkpoint_bytes"] == manager.checkpoint_bytes
        assert stats["evictions"][EVICT_CHECKPOINT_BUDGET] > 0
        # The oldest checkpoints were dropped; the newest survive.
        assert manager.checkpointed_count == 4

    def test_unbudgeted_store_counts_but_never_drops(self):
        engine = engine_for(OptimizationLevel.VANILLA)
        manager = SessionManager(engine, SessionConfig(stride=WINDOW))
        self._fill(manager, 8)
        for i in range(8):
            manager.evict(f"p{i}")
        assert manager.checkpointed_count == 8
        assert manager.checkpoint_bytes > 0
        assert EVICT_CHECKPOINT_BUDGET not in manager.stats()["evictions"]

    def test_restore_releases_checkpoint_bytes(self):
        engine = engine_for(OptimizationLevel.VANILLA)
        manager = SessionManager(engine, SessionConfig(stride=WINDOW))
        self._fill(manager, 1)
        manager.evict("p0")
        assert manager.checkpoint_bytes > 0
        manager.step({"p0": 1})  # restores
        assert manager.checkpoint_bytes == 0

    def test_resident_budget_ignores_checkpoint_store(self):
        """The memory-accounting bugfix: ``resident_bytes`` meters only
        resident sessions, and checkpoints never push residents out."""
        engine = engine_for(OptimizationLevel.FIXED_POINT)
        config = SessionConfig(stride=WINDOW)
        probe = SessionManager(engine, config)
        budget = 4 * probe.session_bytes
        manager = SessionManager(
            engine, dataclasses.replace(config, memory_budget_bytes=budget)
        )
        self._fill(manager, 32)  # 28 sessions evicted to checkpoints
        assert manager.resident_count <= 4
        assert manager.checkpointed_count >= 28
        assert manager.resident_bytes <= budget
        # Another full round: the big checkpoint store must not shrink
        # the resident set below what the budget itself allows.
        self._fill(manager, 32)
        assert manager.resident_count == 4

    def test_checkpoint_budget_validation(self):
        with pytest.raises(ValueError):
            SessionConfig(checkpoint_budget_bytes=0)

    def test_checkpoint_bytes_gauge_emitted(self):
        from repro.telemetry import Telemetry

        engine = engine_for(OptimizationLevel.FIXED_POINT)
        telemetry = Telemetry()
        engine.attach_telemetry(telemetry)
        try:
            manager = SessionManager(
                engine, SessionConfig(stride=WINDOW, max_resident_sessions=1)
            )
            self._fill(manager, 4)
            assert telemetry.metrics.gauge(
                "repro_session_checkpoint_bytes"
            ).value == manager.checkpoint_bytes > 0
        finally:
            engine.attach_telemetry(None)


class TestCheckpointRestore:
    @pytest.mark.parametrize("level", list(OptimizationLevel))
    def test_evicted_then_restored_matches_never_evicted(self, level):
        engine = engine_for(level)
        rng = np.random.default_rng(23)
        tokens = rng.integers(0, VOCAB, size=3 * WINDOW)
        split = WINDOW + 3  # mid-stream, with partial windows in the ring

        plain = SessionManager(engine, SessionConfig(stride=2))
        want = incremental_verdicts(plain, "proc", tokens)

        evicting = SessionManager(engine, SessionConfig(stride=2))
        got = incremental_verdicts(evicting, "proc", tokens[:split])
        evicting.evict("proc")
        assert evicting.resident_count == 0
        assert evicting.checkpointed_count == 1
        got += incremental_verdicts(evicting, "proc", tokens[split:])
        assert evicting.stats()["restores"] == 1
        assert [(v.window_index, v.probability) for v in got] == [
            (v.window_index, v.probability) for v in want
        ]

    def test_checkpoint_migrates_across_managers(self):
        """Export on one manager, import on another: the stream continues."""
        engine = engine_for(OptimizationLevel.FIXED_POINT)
        rng = np.random.default_rng(29)
        tokens = rng.integers(0, VOCAB, size=2 * WINDOW + 5)
        split = WINDOW + 2

        plain = SessionManager(engine, SessionConfig(stride=3))
        want = incremental_verdicts(plain, "proc", tokens)

        source = SessionManager(engine, SessionConfig(stride=3))
        got = incremental_verdicts(source, "proc", tokens[:split])
        checkpoint = source.export_checkpoint("proc")
        source.close("proc")
        target = SessionManager(engine, SessionConfig(stride=3))
        target.import_checkpoint(checkpoint)
        got += incremental_verdicts(target, "proc", tokens[split:])
        assert [(v.window_index, v.probability) for v in got] == [
            (v.window_index, v.probability) for v in want
        ]

    def test_checkpoint_does_not_alias_live_state(self):
        engine = engine_for(OptimizationLevel.FIXED_POINT)
        manager = SessionManager(engine, SessionConfig(stride=1))
        for token in range(5):
            manager.observe("proc", token)
        checkpoint = manager.export_checkpoint("proc")
        frozen = [slot[2].copy() for slot in checkpoint.slots]
        for token in range(5):
            manager.observe("proc", token)
        for before, after in zip(frozen, checkpoint.slots):
            np.testing.assert_array_equal(before, after[2])

    def test_import_resident_key_rejected(self):
        engine = engine_for(OptimizationLevel.VANILLA)
        manager = SessionManager(engine, SessionConfig())
        manager.observe("proc", 1)
        checkpoint = manager.export_checkpoint("proc")
        with pytest.raises(ValueError, match="already resident"):
            manager.import_checkpoint(checkpoint)


class TestLifecycle:
    def test_idle_sessions_evicted(self):
        engine = engine_for(OptimizationLevel.VANILLA)
        manager = SessionManager(
            engine, SessionConfig(stride=1, idle_after_steps=3)
        )
        manager.observe("sleepy", 5)
        for tick in range(4):
            manager.observe("busy", tick)
        stats = manager.stats()
        assert stats["evictions"] == {EVICT_IDLE: 1}
        assert manager.resident_count == 1
        assert manager.checkpointed_count == 1  # checkpointed, not lost

    def test_close_drops_state_and_restarts_stream(self):
        engine = engine_for(OptimizationLevel.VANILLA)
        manager = SessionManager(engine, SessionConfig(stride=1))
        tokens = np.arange(WINDOW) % VOCAB
        first = incremental_verdicts(manager, "proc", tokens)
        assert len(first) == 1 and first[0].window_index == 0
        manager.close("proc")
        assert manager.known_keys() == ()
        assert manager.stats()["evictions"] == {EVICT_CLOSED: 1}
        again = incremental_verdicts(manager, "proc", tokens)
        assert len(again) == 1 and again[0].window_index == 0
        assert again[0].probability == first[0].probability

    def test_close_unknown_key_raises(self):
        engine = engine_for(OptimizationLevel.VANILLA)
        manager = SessionManager(engine, SessionConfig())
        with pytest.raises(KeyError):
            manager.close("ghost")

    def test_early_exit_stops_stepping_flagged_sessions(self):
        engine = engine_for(OptimizationLevel.FIXED_POINT)
        rng = np.random.default_rng(31)
        tokens = rng.integers(0, VOCAB, size=4 * WINDOW)
        # A threshold below any sigmoid output: the first window flags.
        manager = SessionManager(
            engine, SessionConfig(stride=1, threshold=1e-9, early_exit=True)
        )
        verdicts = incremental_verdicts(manager, "proc", tokens)
        assert len(verdicts) == 1  # flagged at the first window, then muted
        stats = manager.stats()
        assert stats["early_exits"] == 1
        assert stats["tokens_dropped"] == len(tokens) - WINDOW
        # Without early_exit the same stream keeps producing verdicts.
        noisy = SessionManager(
            engine, SessionConfig(stride=1, threshold=1e-9, early_exit=False)
        )
        assert len(incremental_verdicts(noisy, "proc", tokens)) == (
            len(tokens) - WINDOW + 1
        )

    def test_ring_never_exceeds_capacity(self):
        engine = engine_for(OptimizationLevel.VANILLA)
        manager = SessionManager(engine, SessionConfig(stride=4))
        for token in range(5 * WINDOW):
            manager.observe("proc", token % VOCAB)
            session = manager._resident["proc"]
            assert len(session.slots) <= manager.ring_capacity

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SessionConfig(threshold=0.0)
        with pytest.raises(ValueError):
            SessionConfig(stride=0)
        with pytest.raises(ValueError):
            SessionConfig(memory_budget_bytes=0)
        with pytest.raises(ValueError):
            SessionConfig(max_resident_sessions=0)
        with pytest.raises(ValueError):
            SessionConfig(idle_after_steps=0)


class TestTelemetry:
    def test_session_metrics_and_step_span(self):
        from repro.telemetry import Telemetry

        engine = engine_for(OptimizationLevel.FIXED_POINT)
        telemetry = Telemetry()
        engine.attach_telemetry(telemetry)
        try:
            manager = SessionManager(
                engine, SessionConfig(stride=1, max_resident_sessions=1)
            )
            for token in range(WINDOW):
                manager.step({"a": token, "b": token})
            metrics = telemetry.metrics
            assert metrics.counter("repro_session_steps_total").value == WINDOW
            assert metrics.counter("repro_session_tokens_total").value == 2 * WINDOW
            assert metrics.counter(
                "repro_session_slot_steps_total"
            ).value == manager.stats()["slot_steps"]
            verdicts = manager.stats()["verdicts"]
            total_verdicts = sum(
                metrics.counter("repro_session_verdicts_total", verdict=label).value
                for label in ("ransomware", "benign")
                if verdicts.get(label)
            )
            assert total_verdicts == sum(verdicts.values()) > 0
            assert metrics.counter(
                "repro_session_evictions_total", reason=EVICT_LRU
            ).value == manager.stats()["evictions"][EVICT_LRU]
            assert metrics.counter("repro_session_restores_total").value == (
                manager.stats()["restores"]
            )
            assert metrics.gauge("repro_session_resident").value == 1
            assert metrics.gauge("repro_session_state_bytes").value == (
                manager.session_bytes
            )
            spans = [s for s in telemetry.tracer.roots if s.name == "session.step"]
            assert len(spans) == WINDOW
            assert spans[0].attributes["sessions"] == 2
        finally:
            engine.attach_telemetry(None)
