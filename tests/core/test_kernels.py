"""Tests for the three kernel implementations: function and timing."""

import dataclasses

import numpy as np
import pytest

from repro.core.config import EngineConfig, ModelDimensions, OptimizationLevel
from repro.core.kernels.gates import GATE_ACTIVATIONS, GatesKernel
from repro.core.kernels.hidden_state import HiddenStateKernel
from repro.core.kernels.preprocess import PreprocessKernel
from repro.core.weights import HostWeights
from repro.fixedpoint.qformat import PAPER_QFORMAT
from repro.nn.activations import sigmoid, softsign
from repro.nn.model import SequenceClassifier

DIMS = ModelDimensions(vocab_size=9, embedding_dim=3, hidden_size=5, sequence_length=4)


def make_config(level=OptimizationLevel.VANILLA, **overrides):
    return EngineConfig(dimensions=DIMS, optimization=level, **overrides)


@pytest.fixture
def host_weights():
    model = SequenceClassifier(vocab_size=9, embedding_dim=3, hidden_size=5, seed=2)
    return HostWeights.from_model(model)


def loaded_kernels(level, host_weights, **overrides):
    config = make_config(level, **overrides)
    quantized = (
        host_weights.quantized(PAPER_QFORMAT) if level.uses_fixed_point else None
    )
    preprocess = PreprocessKernel(config)
    preprocess.load_embeddings(host_weights, quantized)
    gates = GatesKernel(config)
    gates.load_weights(host_weights, quantized)
    hidden = HiddenStateKernel(config)
    hidden.load_weights(host_weights, quantized)
    return preprocess, gates, hidden


class TestPreprocess:
    def test_returns_one_copy_per_cu(self, host_weights):
        preprocess, _, _ = loaded_kernels(OptimizationLevel.VANILLA, host_weights)
        copies = preprocess.run(3)
        assert len(copies) == 4
        for copy in copies:
            np.testing.assert_array_equal(copy, host_weights.embedding[3])

    def test_copies_are_independent(self, host_weights):
        preprocess, _, _ = loaded_kernels(OptimizationLevel.VANILLA, host_weights)
        copies = preprocess.run(0)
        copies[0][0] = 999.0
        assert copies[1][0] != 999.0

    def test_fixed_point_returns_quantised(self, host_weights):
        preprocess, _, _ = loaded_kernels(OptimizationLevel.FIXED_POINT, host_weights)
        copies = preprocess.run(1)
        assert copies[0].dtype == np.int64

    def test_rejects_out_of_range_token(self, host_weights):
        preprocess, _, _ = loaded_kernels(OptimizationLevel.VANILLA, host_weights)
        with pytest.raises(ValueError):
            preprocess.run(9)

    def test_run_before_load_raises(self):
        with pytest.raises(RuntimeError):
            PreprocessKernel(make_config()).run(0)

    def test_timing_nearly_flat_across_levels(self, host_weights):
        # Fig. 3: "the execution time of kernel_preprocess remained fairly
        # fixed".
        times = {}
        for level in OptimizationLevel:
            preprocess, _, _ = loaded_kernels(level, host_weights)
            times[level] = preprocess.timing().reported_cycles
        spread = max(times.values()) - min(times.values())
        assert spread <= 0.2 * max(times.values())


class TestGates:
    def test_outputs_all_four_gates(self, host_weights):
        _, gates, _ = loaded_kernels(OptimizationLevel.VANILLA, host_weights)
        h = np.zeros(5)
        copies = [host_weights.embedding[2].copy() for _ in range(4)]
        outputs = gates.run(h, copies)
        assert set(outputs) == {"i", "f", "o", "c"}

    def test_float_matches_reference_math(self, host_weights, rng):
        _, gates, _ = loaded_kernels(OptimizationLevel.VANILLA, host_weights)
        h = rng.standard_normal(5)
        x = host_weights.embedding[4]
        outputs = gates.run(h, [x.copy() for _ in range(4)])
        concatenated = np.concatenate([h, x])
        for name, gate in host_weights.gates.items():
            pre = gate.matrix @ concatenated + gate.bias
            expected = sigmoid(pre) if GATE_ACTIVATIONS[name] == "sigmoid" else softsign(pre)
            np.testing.assert_allclose(outputs[name], expected, atol=1e-12)

    def test_fixed_point_close_to_float(self, host_weights, rng):
        _, float_gates, _ = loaded_kernels(OptimizationLevel.VANILLA, host_weights)
        _, fixed_gates, _ = loaded_kernels(OptimizationLevel.FIXED_POINT, host_weights)
        h_float = rng.uniform(-0.5, 0.5, size=5)
        x_float = host_weights.embedding[1]
        float_out = float_gates.run(h_float, [x_float.copy() for _ in range(4)])
        h_fixed = PAPER_QFORMAT.quantize(h_float)
        x_fixed = PAPER_QFORMAT.quantize(x_float)
        fixed_out = fixed_gates.run(h_fixed, [x_fixed.copy() for _ in range(4)])
        for name in ("i", "f", "o"):
            np.testing.assert_allclose(
                PAPER_QFORMAT.dequantize(fixed_out[name]), float_out[name], atol=0.02
            )
        np.testing.assert_allclose(
            PAPER_QFORMAT.dequantize(fixed_out["c"]), float_out["c"], atol=1e-4
        )

    def test_rejects_wrong_copy_count(self, host_weights):
        _, gates, _ = loaded_kernels(OptimizationLevel.VANILLA, host_weights)
        with pytest.raises(ValueError):
            gates.run(np.zeros(5), [np.zeros(3)])

    def test_fixed_point_reports_ii(self, host_weights):
        _, gates, _ = loaded_kernels(OptimizationLevel.FIXED_POINT, host_weights)
        timing = gates.timing()
        assert timing.reports_ii
        assert timing.reported_cycles == 1
        assert timing.fill_latency_cycles > 1

    def test_float_reports_latency(self, host_weights):
        _, gates, _ = loaded_kernels(OptimizationLevel.VANILLA, host_weights)
        timing = gates.timing()
        assert not timing.reports_ii
        assert timing.reported_cycles == timing.fill_latency_cycles

    def test_fewer_cus_serialise_gates(self, host_weights):
        times = {}
        for cus in (1, 2, 4):
            _, gates, _ = loaded_kernels(
                OptimizationLevel.VANILLA, host_weights, num_gate_cus=cus
            )
            times[cus] = gates.timing().reported_cycles
        assert times[1] == 4 * times[4]
        assert times[2] == 2 * times[4]

    def test_single_cu_functionally_identical(self, host_weights, rng):
        _, four, _ = loaded_kernels(OptimizationLevel.VANILLA, host_weights)
        _, one, _ = loaded_kernels(
            OptimizationLevel.VANILLA, host_weights, num_gate_cus=1
        )
        h = rng.standard_normal(5)
        x = host_weights.embedding[0]
        out_four = four.run(h, [x.copy() for _ in range(4)])
        out_one = one.run(h, [x.copy()])
        for name in out_four:
            np.testing.assert_allclose(out_four[name], out_one[name])


class TestHiddenState:
    def _gate_values(self, rng, fixed=False):
        i = rng.uniform(0.1, 0.9, size=5)
        f = rng.uniform(0.1, 0.9, size=5)
        o = rng.uniform(0.1, 0.9, size=5)
        c = rng.uniform(-0.8, 0.8, size=5)
        if fixed:
            return {k: PAPER_QFORMAT.quantize(v) for k, v in zip("ifoc", (i, f, o, c))}
        return {"i": i, "f": f, "o": o, "c": c}

    def test_cell_update_math(self, host_weights, rng):
        _, _, hidden = loaded_kernels(OptimizationLevel.VANILLA, host_weights)
        gates = self._gate_values(rng)
        copies, prediction = hidden.run(gates)
        expected_cell = gates["f"] * 0.0 + gates["i"] * gates["c"]
        expected_hidden = gates["o"] * softsign(expected_cell)
        np.testing.assert_allclose(copies[0], expected_hidden, atol=1e-12)
        assert prediction is None  # sequence not complete yet

    def test_prediction_fires_at_sequence_end(self, host_weights, rng):
        _, _, hidden = loaded_kernels(OptimizationLevel.VANILLA, host_weights)
        prediction = None
        for _ in range(DIMS.sequence_length):
            _, prediction = hidden.run(self._gate_values(rng))
        assert prediction is not None
        assert 0.0 < prediction < 1.0

    def test_static_counter_tracks_items(self, host_weights, rng):
        _, _, hidden = loaded_kernels(OptimizationLevel.VANILLA, host_weights)
        hidden.run(self._gate_values(rng))
        hidden.run(self._gate_values(rng))
        assert hidden.items_processed == 2
        hidden.reset()
        assert hidden.items_processed == 0

    def test_copies_per_cu(self, host_weights, rng):
        _, _, hidden = loaded_kernels(OptimizationLevel.VANILLA, host_weights)
        copies, _ = hidden.run(self._gate_values(rng))
        assert len(copies) == 4
        copies[0][0] = 123.0
        assert copies[1][0] != 123.0

    def test_run_before_load_raises(self, rng):
        kernel = HiddenStateKernel(make_config())
        with pytest.raises(RuntimeError):
            kernel.run(self._gate_values(rng))

    def test_fixed_point_state_is_integer(self, host_weights, rng):
        _, _, hidden = loaded_kernels(OptimizationLevel.FIXED_POINT, host_weights)
        copies, _ = hidden.run(self._gate_values(rng, fixed=True))
        assert copies[0].dtype == np.int64

    def test_ii_gives_wide_margin_reduction(self, host_weights):
        # Fig. 3: "II minimization reduced the execution time of
        # kernel_hidden_state by a relatively wide margin".
        _, _, vanilla = loaded_kernels(OptimizationLevel.VANILLA, host_weights)
        _, _, optimised = loaded_kernels(OptimizationLevel.II_OPTIMIZED, host_weights)
        assert optimised.timing().reported_cycles < 0.75 * vanilla.timing().reported_cycles

    def test_classification_cycles_positive(self, host_weights):
        for level in OptimizationLevel:
            _, _, hidden = loaded_kernels(level, host_weights)
            assert hidden.classification_cycles() > 0
