"""Tests for the fleet serving simulator.

The simulator's contract has three load-bearing clauses:

* **Determinism** — one seed produces *identical* event logs, scores,
  and telemetry across runs (everything lives on the simulated clock);
* **Bit-exactness** — a batch served through the queueing/batching
  machinery scores exactly what :meth:`CSDInferenceEngine.infer_batch`
  returns for the same windows;
* **Accounting** — every offered request ends the run either completed
  or shed with an explicit reason; nothing is silently dropped.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.config import EngineConfig, OptimizationLevel
from repro.core.fleet import FleetPlanner, MonitoredStream
from repro.core.serving import (
    RETRY_FAILOVER,
    RETRY_TIMEOUT,
    SHED_QUEUE_FULL,
    CompletedRequest,
    FleetServer,
    ServingConfig,
    ServingReport,
    ServingRequest,
    build_fleet,
    generate_workload,
)
from repro.core.throughput import throughput_report
from repro.core.weights import HostWeights
from repro.hw.faults import DeviceDegradeFault, DeviceFailFault, FaultPlan
from repro.telemetry import Telemetry

SEQUENCE_LENGTH = 30
DURATION_US = 30_000


@pytest.fixture(scope="module")
def fleet_weights(trained_model):
    return HostWeights.from_model(trained_model)


def make_engines(weights, count, level=OptimizationLevel.FIXED_POINT):
    config = EngineConfig(
        dimensions=dataclasses.replace(
            weights.dimensions, sequence_length=SEQUENCE_LENGTH
        ),
        optimization=level,
    )
    return build_fleet(weights, count, config=config)


def make_streams(count, calls_per_second=10_000.0, stride=10):
    return [
        MonitoredStream(f"s{i}", calls_per_second, detection_stride=stride)
        for i in range(count)
    ]


def event_details(event):
    time_us, kind, details = event
    return time_us, kind, dict(details)


def assert_accounting(report):
    assert report.completed_count + report.shed_count == report.offered


class TestWorkloadGeneration:
    def test_deterministic_and_sorted(self):
        streams = make_streams(3)
        first = generate_workload(streams, DURATION_US, SEQUENCE_LENGTH, seed=4)
        second = generate_workload(streams, DURATION_US, SEQUENCE_LENGTH, seed=4)
        assert len(first) == len(second) > 0
        for a, b in zip(first, second):
            assert a.arrival_us == b.arrival_us
            assert a.stream == b.stream
            assert np.array_equal(a.sequence, b.sequence)
        arrivals = [r.arrival_us for r in first]
        assert arrivals == sorted(arrivals)
        assert [r.request_id for r in first] == list(range(len(first)))

    def test_independent_of_stream_order(self):
        # Each stream's RNG derives from (seed, index), so adding a
        # stream must not disturb the arrivals of existing ones.
        base = generate_workload(make_streams(2), DURATION_US, 10, seed=9)
        wider = generate_workload(make_streams(3), DURATION_US, 10, seed=9)
        base_s0 = [(r.arrival_us, tuple(r.sequence)) for r in base if r.stream == "s0"]
        wide_s0 = [(r.arrival_us, tuple(r.sequence)) for r in wider if r.stream == "s0"]
        assert base_s0 == wide_s0

    def test_rejects_bad_duration(self):
        with pytest.raises(ValueError):
            generate_workload(make_streams(1), 0, SEQUENCE_LENGTH)


class TestDeterminism:
    def _run(self, weights):
        engines = make_engines(weights, 2)
        streams = make_streams(4)
        fault_plans = {
            0: FaultPlan(device_fail=DeviceFailFault(at_us=DURATION_US // 2)),
            1: FaultPlan(
                device_degrade=DeviceDegradeFault(at_us=DURATION_US // 3,
                                                  slowdown=2.0)
            ),
        }
        telemetry = Telemetry()
        server = FleetServer(
            engines, streams, ServingConfig(max_batch=8, max_wait_us=500),
            fault_plans=fault_plans, telemetry=telemetry,
        )
        workload = generate_workload(
            streams, DURATION_US, SEQUENCE_LENGTH, seed=3
        )
        return server.serve(workload), telemetry

    def test_same_seed_identical_runs(self, fleet_weights):
        first, telemetry_a = self._run(fleet_weights)
        second, telemetry_b = self._run(fleet_weights)
        assert first.event_log == second.event_log
        assert first.shed == second.shed
        assert first.retries == second.retries
        assert first.device_busy_us == second.device_busy_us
        assert [c.probability for c in first.completed] == [
            c.probability for c in second.completed
        ]
        assert telemetry_a.events() == telemetry_b.events()

    def test_simulated_clock_only(self, fleet_weights):
        report, _ = self._run(fleet_weights)
        assert all(isinstance(e[0], int) for e in report.event_log)
        times = [e[0] for e in report.event_log]
        assert times == sorted(times)


class TestBitExactness:
    def test_served_batches_match_direct_infer_batch(self, fleet_weights):
        engines = make_engines(fleet_weights, 2)
        streams = make_streams(3)
        workload = generate_workload(streams, DURATION_US, SEQUENCE_LENGTH, seed=1)
        by_id = {r.request_id: r.sequence for r in workload}
        server = FleetServer(
            engines, streams, ServingConfig(max_batch=8, max_wait_us=500)
        )
        report = server.serve(workload)
        reference = make_engines(fleet_weights, 1)[0]
        batches = [
            event_details(e)[2] for e in report.event_log
            if e[1] == "batch_complete"
        ]
        assert batches, "no batches completed"
        for details in batches:
            sequences = np.stack([by_id[rid] for rid in details["requests"]])
            direct = reference.infer_batch(sequences).probabilities
            assert tuple(float(p) for p in direct) == details["probabilities"]

    def test_completed_probabilities_match_event_log(self, fleet_weights):
        engines = make_engines(fleet_weights, 1)
        streams = make_streams(2)
        workload = generate_workload(streams, DURATION_US, SEQUENCE_LENGTH, seed=2)
        report = FleetServer(engines, streams).serve(workload)
        logged = {}
        for event in report.event_log:
            _, kind, details = event_details(event)
            if kind == "batch_complete":
                logged.update(zip(details["requests"], details["probabilities"]))
        for completed in report.completed:
            assert logged[completed.request_id] == completed.probability


class TestAdmissionControl:
    def _burst(self, count):
        rng = np.random.default_rng(0)
        return [
            ServingRequest(
                request_id=i, stream="s0",
                sequence=rng.integers(0, 278, size=SEQUENCE_LENGTH,
                                      dtype=np.int64),
                arrival_us=0,
            )
            for i in range(count)
        ]

    def test_queue_full_sheds_excess(self, fleet_weights):
        engines = make_engines(fleet_weights, 1)
        server = FleetServer(
            engines, make_streams(1),
            ServingConfig(max_batch=1, max_wait_us=0, queue_depth=2,
                          max_retries=0),
        )
        report = server.serve(self._burst(10))
        assert report.shed.get(SHED_QUEUE_FULL, 0) > 0
        assert report.completed_count > 0
        assert_accounting(report)

    def test_generous_queue_sheds_nothing(self, fleet_weights):
        engines = make_engines(fleet_weights, 1)
        server = FleetServer(
            engines, make_streams(1),
            ServingConfig(max_batch=16, max_wait_us=100, queue_depth=64),
        )
        report = server.serve(self._burst(10))
        assert report.shed == {}
        assert report.completed_count == report.offered == 10


class TestFailover:
    def test_device_failure_fails_over(self, fleet_weights):
        engines = make_engines(fleet_weights, 2)
        # Dense traffic (~250 us inter-arrival per stream) so device 0's
        # queue is non-empty at the kill instant and failover fires.
        streams = make_streams(4, calls_per_second=40_000.0)
        kill_at = DURATION_US // 2
        fault_plans = {0: FaultPlan(device_fail=DeviceFailFault(at_us=kill_at))}
        workload = generate_workload(streams, DURATION_US, SEQUENCE_LENGTH, seed=6)
        report = FleetServer(
            engines, streams, ServingConfig(max_batch=8, max_wait_us=500),
            fault_plans=fault_plans,
        ).serve(workload)
        assert report.device_failures == 1
        assert report.retries.get(RETRY_FAILOVER, 0) > 0
        late = [c for c in report.completed if c.completion_us > kill_at]
        assert late and all(c.device == 1 for c in late)
        assert_accounting(report)

    def test_planner_rebalance_used_on_failure(self, fleet_weights):
        engines = make_engines(fleet_weights, 2)
        streams = make_streams(4, calls_per_second=5_000.0)
        planner = FleetPlanner(throughput_report(engines[0]), headroom=0.9)
        fault_plans = {0: FaultPlan(device_fail=DeviceFailFault(at_us=10_000))}
        workload = generate_workload(streams, DURATION_US, SEQUENCE_LENGTH, seed=6)
        report = FleetServer(
            engines, streams, ServingConfig(max_batch=8, max_wait_us=500),
            planner=planner, fault_plans=fault_plans,
        ).serve(workload)
        assert report.device_failures == 1
        late = [c for c in report.completed if c.completion_us > 10_000]
        assert late and all(c.device == 1 for c in late)
        assert_accounting(report)

    def test_all_devices_dead_sheds_remaining(self, fleet_weights):
        engines = make_engines(fleet_weights, 1)
        streams = make_streams(2)
        fault_plans = {0: FaultPlan(device_fail=DeviceFailFault(at_us=5_000))}
        workload = generate_workload(streams, DURATION_US, SEQUENCE_LENGTH, seed=8)
        report = FleetServer(
            engines, streams, fault_plans=fault_plans
        ).serve(workload)
        assert report.device_failures == 1
        assert report.shed_count > 0
        late_arrivals = [r for r in workload if r.arrival_us > 5_000]
        assert late_arrivals  # the scenario exercised the dead-fleet path
        assert_accounting(report)

    def test_degraded_device_slows_service(self, fleet_weights):
        streams = make_streams(2)
        config = ServingConfig(max_batch=8, max_wait_us=500)
        workload = lambda: generate_workload(
            streams, DURATION_US, SEQUENCE_LENGTH, seed=5
        )
        healthy = FleetServer(
            make_engines(fleet_weights, 1), streams, config
        ).serve(workload())
        degraded = FleetServer(
            make_engines(fleet_weights, 1), streams, config,
            fault_plans={0: FaultPlan(
                device_degrade=DeviceDegradeFault(at_us=0, slowdown=4.0)
            )},
        ).serve(workload())
        assert degraded.device_busy_us[0] > healthy.device_busy_us[0]
        assert (degraded.latency_percentile_us(50)
                > healthy.latency_percentile_us(50))


class TestTimeoutRetry:
    def test_timed_out_requests_retry_elsewhere(self, fleet_weights):
        engines = make_engines(fleet_weights, 2)
        streams = make_streams(2, calls_per_second=20_000.0)
        # Device 0 is catastrophically slow from the start; its queued
        # requests blow the per-attempt deadline and must finish on 1.
        fault_plans = {0: FaultPlan(
            device_degrade=DeviceDegradeFault(at_us=0, slowdown=200.0)
        )}
        workload = generate_workload(streams, DURATION_US, SEQUENCE_LENGTH, seed=7)
        report = FleetServer(
            engines, streams,
            ServingConfig(max_batch=4, max_wait_us=200, timeout_us=2_000,
                          max_retries=2),
            fault_plans=fault_plans,
        ).serve(workload)
        assert report.retries.get(RETRY_TIMEOUT, 0) > 0
        rescued = [c for c in report.completed
                   if c.stream == "s0" and c.device == 1]
        assert rescued
        assert_accounting(report)


class TestOversubscribedPlan:
    def test_plan_spills_onto_physical_fleet(self, fleet_weights):
        engines = make_engines(fleet_weights, 1)
        planner = FleetPlanner(throughput_report(engines[0]), headroom=0.9)
        budget = planner.capacity * planner.headroom
        # Two streams at 60% of one device's budget: the plan wants two
        # devices, the fleet has one — both streams must still route.
        stride = 10
        streams = [
            MonitoredStream(f"s{i}", budget * 0.6 * stride, detection_stride=stride)
            for i in range(2)
        ]
        plan = planner.plan(streams)
        assert plan.devices_needed == 2
        workload = generate_workload(streams, 10_000, SEQUENCE_LENGTH, seed=4)
        report = FleetServer(
            engines, streams, ServingConfig(max_batch=16, max_wait_us=200),
            planner=planner,
        ).serve(workload)
        served_streams = {c.stream for c in report.completed}
        assert served_streams == {"s0", "s1"}
        assert_accounting(report)


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"max_batch": 0},
        {"max_wait_us": -1},
        {"queue_depth": 0},
        {"timeout_us": 0},
        {"max_retries": -1},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            ServingConfig(**kwargs)

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError, match="at least one device"):
            FleetServer([], make_streams(1))


class TestReport:
    def _report(self, latencies):
        completed = tuple(
            CompletedRequest(
                request_id=i, stream="s", sequence=np.zeros(1, dtype=np.int64),
                device=0, probability=0.5, arrival_us=0, completion_us=lat,
                attempts=0,
            )
            for i, lat in enumerate(latencies)
        )
        return ServingReport(
            completed=completed, shed={}, retries={}, device_failures=0,
            event_log=(), duration_us=1000, device_busy_us=(500,),
            offered=len(latencies),
        )

    def test_nearest_rank_percentiles(self):
        report = self._report([10, 20, 30, 40, 50, 60, 70, 80, 90, 100])
        assert report.latency_percentile_us(50) == 50.0
        assert report.latency_percentile_us(99) == 100.0
        assert report.latency_percentile_us(100) == 100.0
        assert report.latency_percentile_us(1) == 10.0

    def test_percentile_bounds(self):
        report = self._report([10])
        with pytest.raises(ValueError):
            report.latency_percentile_us(0)
        with pytest.raises(ValueError):
            report.latency_percentile_us(101)

    def test_empty_report(self):
        report = self._report([])
        assert np.isnan(report.latency_percentile_us(50))
        assert report.shed_rate == 0.0
        assert report.device_utilization() == (0.5,)


class TestNearestRankPercentile:
    """The one shared nearest-rank implementation (it was once duplicated
    between the request-mode and session-mode reports)."""

    def test_boundaries(self):
        from repro.core.serving import nearest_rank_percentile

        values = np.array([30, 10, 20], dtype=np.int64)  # unsorted on purpose
        assert nearest_rank_percentile(values, 100) == 30.0
        assert nearest_rank_percentile(values, 0.001) == 10.0
        assert nearest_rank_percentile(values, 50) == 20.0

    def test_single_sample_every_percentile(self):
        from repro.core.serving import nearest_rank_percentile

        single = np.array([7.0])
        for percentile in (0.001, 1, 50, 99, 100):
            assert nearest_rank_percentile(single, percentile) == 7.0

    def test_empty_is_nan(self):
        from repro.core.serving import nearest_rank_percentile

        assert np.isnan(nearest_rank_percentile(np.array([]), 50))

    def test_out_of_range_rejected(self):
        from repro.core.serving import nearest_rank_percentile

        for bad in (0, -1, 100.5, 101):
            with pytest.raises(ValueError, match="percentile"):
                nearest_rank_percentile(np.array([1.0]), bad)

    def test_session_report_shares_the_helper(self):
        from repro.core.serving import SessionServingReport

        report = SessionServingReport(
            verdicts=(), tokens_offered=3, tokens_shed={},
            migrated_sessions=0, device_failures=0, event_log=(),
            duration_us=100, device_busy_us=(10,),
            token_latencies=(5, 15, 25), session_stats=(),
        )
        assert report.token_latency_percentile_us(100) == 25.0
        assert report.token_latency_percentile_us(1) == 5.0
        empty = dataclasses.replace(report, token_latencies=())
        assert np.isnan(empty.token_latency_percentile_us(50))
