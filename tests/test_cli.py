"""Tests for the ``python -m repro`` command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.nn.serialization import dump_weights
from repro.ransomware.dataset import load_csv


@pytest.fixture(scope="module")
def csv_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "dataset.csv"
    exit_code = main([
        "dataset", str(path), "--scale", "0.01", "--sequence-length", "30",
        "--seed", "3",
    ])
    assert exit_code == 0
    return path


@pytest.fixture(scope="module")
def weights_path(tmp_path_factory, trained_model):
    # Use the shared trained model: CLI train would work but is slow.
    path = tmp_path_factory.mktemp("cli") / "weights.txt"
    dump_weights(trained_model, path)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_all_commands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for command in (
            "dataset", "train", "evaluate", "scan", "report", "monitor",
            "fleet-serve", "control-plane", "generalize",
        ):
            assert command in text


class TestDatasetCommand:
    def test_writes_loadable_csv(self, csv_path):
        dataset = load_csv(csv_path)
        assert dataset.sequence_length == 30
        assert 0.4 < dataset.ransomware_fraction < 0.5


class TestTrainCommand:
    def test_train_writes_weights(self, csv_path, tmp_path, capsys):
        weights_out = tmp_path / "w.txt"
        exit_code = main([
            "train", str(csv_path), str(weights_out),
            "--epochs", "2", "--batch-size", "32",
        ])
        assert exit_code == 0
        assert weights_out.exists()
        output = capsys.readouterr().out
        assert "peak accuracy" in output


class TestEvaluateCommand:
    def test_evaluate_prints_metrics(self, csv_path, tmp_path, capsys):
        # Train a quick model on the same CSV so dimensions line up.
        weights_out = tmp_path / "w.txt"
        main(["train", str(csv_path), str(weights_out), "--epochs", "2"])
        capsys.readouterr()
        exit_code = main([
            "evaluate", str(weights_out), str(csv_path), "--limit", "40",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "accuracy" in output
        assert "per-item inference" in output


class TestScanCommand:
    def test_scan_detects_with_trained_weights(self, weights_path, capsys):
        from tests.conftest import TEST_SEQUENCE_LENGTH

        exit_code = main([
            "scan", str(weights_path), "Lockbit", "--variant", "1",
            "--sequence-length", str(TEST_SEQUENCE_LENGTH), "--stride", "10",
        ])
        output = capsys.readouterr().out
        assert "Lockbit variant 1" in output
        assert exit_code == 0
        assert "DETECTED" in output


class TestMonitorCommand:
    def test_monitor_flags_ransomware_process(self, weights_path, capsys):
        from tests.conftest import TEST_SEQUENCE_LENGTH

        exit_code = main([
            "monitor", str(weights_path), "--ransomware", "1", "--benign", "2",
            "--sequence-length", str(TEST_SEQUENCE_LENGTH),
            "--threshold", "0.7", "--stride", "10", "--seed", "0",
        ])
        output = capsys.readouterr().out
        assert "monitored 3 processes" in output
        assert "FLAGGED" in output
        assert "sessions:" in output
        assert exit_code == 0

    def test_monitor_budget_reports_evictions(self, weights_path, capsys):
        from tests.conftest import TEST_SEQUENCE_LENGTH

        exit_code = main([
            "monitor", str(weights_path), "--ransomware", "1", "--benign", "3",
            "--sequence-length", str(TEST_SEQUENCE_LENGTH),
            "--threshold", "0.7", "--stride", "10", "--seed", "1",
            "--memory-budget-kib", "7", "--early-exit",
        ])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "evictions:" in output
        assert "restores" in output


class TestFleetServeCommand:
    def test_serves_and_prints_latency(self, weights_path, capsys):
        from tests.conftest import TEST_SEQUENCE_LENGTH

        exit_code = main([
            "fleet-serve", str(weights_path), "--devices", "2",
            "--streams", "4", "--calls-per-second", "8000",
            "--duration-ms", "20",
            "--sequence-length", str(TEST_SEQUENCE_LENGTH), "--seed", "5",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "offered" in output
        assert "p99" in output

    def test_kill_device_reports_failover(self, weights_path, capsys):
        from tests.conftest import TEST_SEQUENCE_LENGTH

        exit_code = main([
            "fleet-serve", str(weights_path), "--devices", "2",
            "--streams", "4", "--calls-per-second", "8000",
            "--duration-ms", "20",
            "--sequence-length", str(TEST_SEQUENCE_LENGTH), "--seed", "5",
            "--kill-device", "0", "--kill-at-ms", "10",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "device failures" in output


class TestControlPlaneCommand:
    def test_runs_and_prints_operator_report(self, weights_path, capsys):
        exit_code = main([
            "control-plane", str(weights_path),
            "--racks", "1", "--nodes-per-rack", "2", "--drives-per-node", "2",
            "--active-per-node", "2", "--streams-per-class", "200",
            "--hot-per-class", "40", "--rounds", "6",
            "--qos", "gold=2", "--qos", "bronze=0:100",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "class gold" in output
        assert "class bronze" in output
        assert "denied" in output
        assert "peak" in output

    def test_rolling_upgrade_and_manual_drain(self, weights_path, capsys):
        exit_code = main([
            "control-plane", str(weights_path),
            "--racks", "1", "--nodes-per-rack", "1", "--drives-per-node", "2",
            "--streams-per-class", "100", "--hot-per-class", "20",
            "--rounds", "6", "--no-autoscale",
            "--drain-drive", "1", "--drain-round", "2",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "drained drive 1 at round 2" in output
        assert "drains:" in output

    def test_bad_qos_spec_exits(self, weights_path):
        with pytest.raises(SystemExit):
            main([
                "control-plane", str(weights_path), "--qos", "gold=high",
            ])


class TestReportCommand:
    def test_report_prints_utilisation_and_timing(self, capsys):
        exit_code = main(["report", "--optimization", "FIXED_POINT"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Platform: xcu200" in output
        assert "kernel_gates" in output
        assert "TOTAL (per item)" in output

    def test_report_vanilla_single_cu(self, capsys):
        exit_code = main(["report", "--optimization", "VANILLA", "--gate-cus", "1"])
        assert exit_code == 0
        assert "1 gates CU" in capsys.readouterr().out


class TestGeneralizeCommand:
    def test_runs_one_fold_and_writes_json(self, tmp_path, capsys):
        import json

        json_path = tmp_path / "generalization.json"
        exit_code = main([
            "generalize", "--modalities", "block_io", "--folds", "1",
            "--scale", "0.01", "--sequence-length", "40", "--epochs", "2",
            "--seed", "7", "--json", str(json_path),
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "held-out recall" in output
        assert "gap" in output
        document = json.loads(json_path.read_text())
        assert document["protocol"] == "leave-k-families-out"
        assert document["config"]["modalities"] == ["block_io"]
        assert len(document["fold_sets"]) == 1

    def test_repeatable_optimization_flag(self, capsys):
        exit_code = main([
            "generalize", "--modalities", "filesystem", "--folds", "1",
            "--scale", "0.01", "--sequence-length", "40", "--epochs", "2",
            "--optimization", "VANILLA", "--optimization", "FIXED_POINT",
        ])
        assert exit_code == 0
        assert "VANILLA" in capsys.readouterr().out

    def test_unknown_modality_errors(self):
        with pytest.raises(ValueError, match="unknown modalities"):
            main(["generalize", "--modalities", "syscall", "--folds", "1"])
