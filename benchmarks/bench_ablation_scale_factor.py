"""Ablation — fixed-point scale factor (Section III-D).

The paper picks 10^6 "since the vast majority of the floating point
numbers used ... are small numbers".  This bench sweeps the scale from
10^2 to 10^8 and measures how far the quantised engine's probabilities
drift from the float reference, and whether decisions survive — mapping
the precision/cost trade the choice sits on.
"""

import dataclasses

import numpy as np

from benchmarks.conftest import record_report
from repro.core.config import EngineConfig, OptimizationLevel
from repro.core.engine import CSDInferenceEngine
from repro.core.weights import HostWeights
from repro.fixedpoint.qformat import QFormat

SCALES = tuple(10**e for e in range(2, 9))


def bench_scale_factor_sweep(benchmark, bench_model, bench_split):
    _, test = bench_split
    sample = test.subset(np.arange(min(60, len(test))))
    weights = HostWeights.from_model(bench_model)
    reference = bench_model.predict_proba(sample.sequences)

    def sweep():
        results = {}
        for scale in SCALES:
            config = EngineConfig(
                dimensions=dataclasses.replace(
                    weights.dimensions, sequence_length=sample.sequence_length
                ),
                optimization=OptimizationLevel.FIXED_POINT,
                qformat=QFormat(scale=scale),
            )
            engine = CSDInferenceEngine(config, weights)
            probabilities = engine.predict_proba(sample.sequences)
            error = np.abs(probabilities - reference)
            agreement = float(
                np.mean((probabilities >= 0.5) == (reference >= 0.5))
            )
            results[scale] = (float(error.max()), float(error.mean()), agreement)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [f"{'scale':>10s}{'max |dp|':>10s}{'mean |dp|':>11s}{'agreement':>11s}"]
    for scale in SCALES:
        max_error, mean_error, agreement = results[scale]
        marker = "  <- paper" if scale == 10**6 else ""
        lines.append(
            f"{scale:>10d}{max_error:>10.4f}{mean_error:>11.5f}"
            f"{agreement:>10.1%}{marker}"
        )
    record_report("Ablation: fixed-point scale factor", lines)

    # The paper's 10^6 must sit on the converged plateau: going to 10^8
    # buys (almost) nothing, while 10^2 visibly degrades.
    assert results[10**6][1] <= results[10**2][1]
    assert results[10**6][2] >= 0.95
    assert abs(results[10**6][1] - results[10**8][1]) < 0.02
