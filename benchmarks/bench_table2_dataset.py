"""Table II — ransomware dataset overview, plus the Appendix A numbers.

Regenerates the family/variant/behaviour table and validates the dataset
construction constants: 13,340 ransomware + 15,660 benign = 29,000
sequences of length 100, 46% ransomware.  (The paper's prose says "78
variants" while its own Table II sums to 76; we reproduce the table.)
"""

import pytest

from benchmarks.conftest import BENCH_SCALE, record_report
from repro.ransomware.dataset import (
    PAPER_BENIGN_SEQUENCES,
    PAPER_RANSOMWARE_SEQUENCES,
    PAPER_SEQUENCE_LENGTH,
    build_dataset,
)
from repro.ransomware.families import ALL_FAMILIES, TOTAL_VARIANTS, table_ii
from repro.ransomware.sandbox import CuckooSandbox

PAPER_TABLE2 = {
    "Ryuk": (5, True, True),
    "Lockbit": (6, True, True),
    "Teslacrypt": (10, True, False),
    "Virlock": (11, True, False),
    "Cryptowall": (8, True, False),
    "Cerber": (9, True, False),
    "Wannacry": (7, True, True),
    "Locky": (6, True, False),
    "Chimera": (9, True, False),
    "BadRabbit": (5, True, True),
}


def bench_table2_rows(benchmark):
    """The family table itself."""
    rows = benchmark(table_ii)
    lines = [f"{'Family':12s}{'Instances':>10s}{'Encryption':>12s}{'Propagation':>13s}"]
    for name, variants, encrypts, propagates in rows:
        lines.append(
            f"{name:12s}{variants:>8d} v{'yes':>11s}{'yes' if propagates else 'no':>13s}"
        )
        assert PAPER_TABLE2[name] == (variants, encrypts, propagates)
    lines.append(f"total variants: {TOTAL_VARIANTS} "
                 "(paper table sums to 76; prose says 78)")
    record_report("Table II: ransomware dataset overview", lines)


def bench_dataset_synthesis(benchmark):
    """Cost and shape of synthesising the dataset at benchmark scale."""
    dataset = benchmark.pedantic(
        build_dataset,
        kwargs={"scale": BENCH_SCALE, "seed": 1},
        rounds=1, iterations=1,
    )
    expected_ransomware = round(PAPER_RANSOMWARE_SEQUENCES * BENCH_SCALE)
    expected_benign = round(PAPER_BENIGN_SEQUENCES * BENCH_SCALE)
    lines = [
        f"scale {BENCH_SCALE}: {len(dataset)} sequences "
        f"(paper full scale: {PAPER_RANSOMWARE_SEQUENCES + PAPER_BENIGN_SEQUENCES})",
        f"ransomware fraction {dataset.ransomware_fraction:.3f} (paper 0.46)",
        f"sequence length {dataset.sequence_length} (paper {PAPER_SEQUENCE_LENGTH})",
    ]
    record_report("Appendix A: dataset construction", lines)
    assert len(dataset) == expected_ransomware + expected_benign
    assert dataset.ransomware_fraction == pytest.approx(0.46, abs=0.01)
    assert dataset.sequence_length == PAPER_SEQUENCE_LENGTH


def bench_sandbox_trace(benchmark):
    """Throughput of one sandbox detonation (the biggest family)."""
    sandbox = CuckooSandbox(seed=0)
    virlock = next(f for f in ALL_FAMILIES if f.name == "Virlock")
    trace = benchmark(sandbox.execute_ransomware, virlock, 0)
    assert len(trace) > 1000
