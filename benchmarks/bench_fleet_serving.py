"""Serving scenario — a CSD fleet under live traffic (ROADMAP north star).

The fleet-sizing bench answers the *static* capacity question; this one
serves actual request streams through the deterministic discrete-event
simulator: an arrival-rate sweep mapping offered load to p50/p99
end-to-end latency, shed rate, and device utilisation, plus a
fault-injected run where a drive dies mid-experiment and its streams
fail over through the planner's rebalance.
"""

import dataclasses

from benchmarks.conftest import record_report
from repro.core.config import EngineConfig, OptimizationLevel
from repro.core.fleet import FleetPlanner, MonitoredStream
from repro.core.serving import (
    FleetServer,
    ServingConfig,
    build_fleet,
    generate_workload,
)
from repro.core.throughput import throughput_report
from repro.core.weights import HostWeights
from repro.hw.faults import DeviceFailFault, FaultPlan

SEQUENCE_LENGTH = 100
DURATION_US = 150_000
NUM_DEVICES = 2
NUM_STREAMS = 6

SERVING = ServingConfig(
    max_batch=16, max_wait_us=1_000, queue_depth=64,
    timeout_us=50_000, max_retries=2,
)


def _serve(model, calls_per_second, fault_plans=None, telemetry=None):
    weights = HostWeights.from_model(model)
    config = EngineConfig(
        dimensions=dataclasses.replace(
            weights.dimensions, sequence_length=SEQUENCE_LENGTH
        ),
        optimization=OptimizationLevel.FIXED_POINT,
    )
    engines = build_fleet(weights, NUM_DEVICES, config=config)
    streams = [
        MonitoredStream(f"host{i}", calls_per_second, detection_stride=10)
        for i in range(NUM_STREAMS)
    ]
    planner = FleetPlanner(throughput_report(engines[0]), headroom=0.9)
    workload = generate_workload(
        streams, duration_us=DURATION_US, sequence_length=SEQUENCE_LENGTH,
        seed=11,
    )
    server = FleetServer(
        engines, streams, SERVING, planner=planner,
        fault_plans=fault_plans, telemetry=telemetry,
    )
    return server.serve(workload)


def bench_fleet_serving_rate_sweep(benchmark, bench_model, bench_telemetry):
    """Offered-load sweep: latency and shed rate vs arrival rate."""
    rates = (8_000.0, 20_000.0, 36_000.0)
    reports = {}
    for rate in rates[:-1]:
        reports[rate] = _serve(bench_model, rate)
    reports[rates[-1]] = benchmark(
        lambda: _serve(bench_model, rates[-1], telemetry=bench_telemetry)
    )

    lines = [
        f"{NUM_DEVICES} devices, {NUM_STREAMS} streams, "
        f"{DURATION_US / 1000:.0f} ms simulated, max_batch={SERVING.max_batch}, "
        f"max_wait={SERVING.max_wait_us} us",
        f"{'calls/s/stream':>15} {'offered':>8} {'p50 us':>8} {'p99 us':>8} "
        f"{'shed':>6} {'util0':>6} {'util1':>6}",
    ]
    for rate in rates:
        report = reports[rate]
        util = report.device_utilization()
        lines.append(
            f"{rate:>15.0f} {report.offered:>8d} "
            f"{report.latency_percentile_us(50):>8.0f} "
            f"{report.latency_percentile_us(99):>8.0f} "
            f"{report.shed_rate:>6.1%} {util[0]:>6.1%} {util[1]:>6.1%}"
        )
    record_report("Scenario: fleet serving under load (arrival-rate sweep)", lines)

    light, heavy = reports[rates[0]], reports[rates[-1]]
    assert light.completed_count == light.offered  # light load: nothing shed
    assert heavy.offered > light.offered
    # Latency is monotone in offered load at fixed capacity.
    assert (heavy.latency_percentile_us(99)
            >= light.latency_percentile_us(99))
    assert all(u <= 1.0 + 1e-9 for u in heavy.device_utilization())


def bench_fleet_serving_failover(benchmark, bench_model):
    """A drive dies mid-run; its streams fail over and service continues."""
    rate = 36_000.0
    fault_plans = {
        0: FaultPlan(device_fail=DeviceFailFault(at_us=DURATION_US // 2)),
    }
    healthy = _serve(bench_model, rate)
    degraded = benchmark(lambda: _serve(bench_model, rate, fault_plans=fault_plans))

    survivor_util = degraded.device_utilization()[1]
    lines = [
        f"device 0 killed at {DURATION_US // 2 / 1000:.0f} ms "
        f"(of {DURATION_US / 1000:.0f} ms)",
        f"healthy : completed {healthy.completed_count}/{healthy.offered}, "
        f"p99 {healthy.latency_percentile_us(99):.0f} us, "
        f"shed {healthy.shed_rate:.1%}",
        f"degraded: completed {degraded.completed_count}/{degraded.offered}, "
        f"p99 {degraded.latency_percentile_us(99):.0f} us, "
        f"shed {degraded.shed_rate:.1%}, "
        f"failovers {degraded.retries.get('failover', 0)}, "
        f"survivor utilization {survivor_util:.1%}",
    ]
    record_report("Scenario: fleet serving with mid-run device failure", lines)

    assert degraded.device_failures == 1
    # Service continues after the failure: completions keep happening in
    # the second half of the run.
    late = [c for c in degraded.completed if c.completion_us > DURATION_US // 2]
    assert late, "no completions after the device failure"
    assert all(c.device != 0 for c in late)
    assert degraded.completed_count <= healthy.completed_count
