"""Verdict-driven response: detection latency, data loss, recovery.

Drives the response subsystem (``docs/response.md``) end to end and
records the numbers the ROADMAP's mitigation item asks for:

* **detection latency** in stream tokens (the enforcing verdict's window
  index — tokens past the first complete window) per modality and
  write-block threshold;
* **data loss**: bytes the drive refused after enforcement vs bytes that
  landed first (recoverable from copy-on-write pre-images), from both
  the actual replay accounting and the timing-independent model
  (:func:`repro.ransomware.replay.data_loss_accounting`);
* **enforcement overhead**: simulated seconds spent on copy-on-write
  preservation, snapshots, and restores, relative to the plain write
  path;
* **recovery**: a snapshot → overwrite → restore rung asserting the
  restored volume is byte-identical to the pre-attack state;
* **audit determinism**: every replay runs twice and the hash-chained
  audit logs must match byte for byte; a fleet rung additionally injects
  a mid-run drive failure and requires identical *per-stream* audit
  chains (composing the serving layer's failover invariance).

Writes ``BENCH_response.json``.  The document is a pure function of the
seeded recipe — no wall-clock or host-dependent fields — so the
committed file reproduces bit-identically.  Two entry points:

* ``pytest benchmarks/bench_response.py`` — harness mode (recovery rung
  only; no training).
* ``PYTHONPATH=src python benchmarks/bench_response.py [--quick]`` —
  standalone CLI (the CI response-smoke job runs ``--quick`` with the
  three ``--assert-*`` gates; the committed JSON is the full run).

Latency is gated on the **api** modality only: API-call recon is
informative from the first window, so enforcement within one window of
attack onset is a fair bar.  The block-level modalities only become
informative once encryption-phase traffic reaches the drive (recon block
I/O is deliberately benign-identical), so they are gated on the
*prevented fraction* of attack bytes instead.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time

from repro.core.config import EngineConfig, OptimizationLevel
from repro.core.engine import engine_at_level
from repro.core.serving import FleetServer, ServingConfig, TokenArrival, build_fleet
from repro.core.sessions import SessionConfig
from repro.core.weights import HostWeights
from repro.hw.faults import DeviceFailFault, FaultPlan
from repro.hw.smartssd import MODE_COW, SmartSSD
from repro.nn.model import SequenceClassifier
from repro.nn.trainer import Trainer, TrainingConfig
from repro.ransomware.replay import (
    ScenarioReplay,
    _payload,
    build_scenario,
    data_loss_accounting,
)
from repro.ransomware.traces.adapters import MODALITIES
from repro.response.policy import ResponseEngine, ResponsePolicy, SmartSsdEnforcer

DEFAULT_OUTPUT = "BENCH_response.json"


@dataclasses.dataclass(frozen=True)
class ResponseBenchConfig:
    """The seeded recipe; every output field is a function of it."""

    modalities: tuple = ("api", "block_io", "filesystem")
    thresholds: tuple = (0.7, 0.9)      # write-block thresholds swept
    quarantine_threshold: float = 0.95
    confirmations: int = 4
    monitor_threshold: float = 0.5
    stride: int = 5
    sequence_length: int = 60
    scale: float = 0.08
    epochs: int = 12
    learning_rate: float = 0.005
    seed: int = 7
    ransomware: int = 2
    benign: int = 3
    benign_length: int = 300
    user_objects: int = 16
    user_object_bytes: int = 64 * 1024
    fleet_devices: int = 2
    fleet_tokens_per_stream: int = 150
    fleet_gap_us: int = 50

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


#: The committed full run.
FULL_CONFIG = ResponseBenchConfig()

#: CI smoke: same training recipe (the gates need a competent model),
#: smaller scenarios.
QUICK_CONFIG = dataclasses.replace(
    FULL_CONFIG, ransomware=1, benign=2, benign_length=250,
    user_objects=8, fleet_tokens_per_stream=120,
)


def _train_engine(modality: str, config: ResponseBenchConfig):
    """The per-modality model recipe (generalisation harness's protocol)."""
    dataset = MODALITIES[modality].build_dataset(
        scale=config.scale, sequence_length=config.sequence_length,
        seed=config.seed,
    )
    train_split, test_split = dataset.train_test_split(0.2, seed=config.seed)
    model = SequenceClassifier(
        vocab_size=MODALITIES[modality].vocabulary.size, seed=config.seed
    )
    Trainer(
        model,
        TrainingConfig(
            epochs=config.epochs, eval_every=config.epochs,
            learning_rate=config.learning_rate, seed=config.seed,
        ),
    ).fit(
        train_split.sequences, train_split.labels,
        test_split.sequences, test_split.labels,
    )
    engine = engine_at_level(
        model, OptimizationLevel.FIXED_POINT,
        sequence_length=config.sequence_length,
    )
    return model, engine


def _policy(config: ResponseBenchConfig, threshold: float) -> ResponsePolicy:
    # observe == write-block threshold: the confirmation streak counts
    # only windows already above the enforcement bar, so benign streams
    # that hover near the monitor threshold with occasional spikes
    # cannot accumulate a streak (verified: editor workloads on the
    # block-I/O modality sustain p >= 0.5 and spike past 0.7, but never
    # for ``confirmations`` consecutive strided windows).
    return ResponsePolicy(
        observe_threshold=threshold,
        write_block_threshold=threshold,
        quarantine_threshold=max(threshold, config.quarantine_threshold),
        kill_threshold=None,
        confirmations=config.confirmations,
    )


def _run_replay(engine, streams, policy, config: ResponseBenchConfig,
                telemetry=None):
    """One fresh replay: storage, monitor, responder, outcomes, report."""
    storage = SmartSSD()
    replay = ScenarioReplay(
        engine, storage, policy=policy,
        monitor_threshold=config.monitor_threshold, stride=config.stride,
        telemetry=telemetry,
    )
    user_keys = replay.seed_user_objects(
        count=config.user_objects, num_bytes=config.user_object_bytes
    )
    outcomes = replay.run(streams, seed=config.seed, user_keys=user_keys)
    return replay, outcomes, replay.report(outcomes)


def _threshold_entry(engine, attack_streams, benign_streams, threshold,
                     config: ResponseBenchConfig, telemetry=None) -> dict:
    policy = _policy(config, threshold)
    replay, outcomes, report = _run_replay(
        engine, attack_streams, policy, config, telemetry
    )
    # Determinism rung: an identical fresh replay must produce a
    # byte-identical audit log.
    rerun, _, _ = _run_replay(engine, attack_streams, policy, config)
    audit_bit_identical = (
        replay.audit.to_jsonl() == rerun.audit.to_jsonl()
    )
    _, benign_outcomes, benign_report = _run_replay(
        engine, benign_streams, policy, config
    )

    window = config.sequence_length
    enforcement = {
        o.name: (
            None if o.enforced_window_index is None
            else window + o.enforced_window_index
        )
        for o in outcomes.values()
    }
    modelled = data_loss_accounting(attack_streams, enforcement)
    attack_bytes = sum(
        s.total_write_bytes for s in attack_streams if s.is_ransomware
    )
    overhead = report["storage"]["protection_overhead_seconds"]
    write_seconds = report["write_seconds"]
    return {
        "threshold": threshold,
        "detection_latency_tokens": report["detection_latency_tokens"],
        "ransomware_streams": report["ransomware_streams"],
        "enforced": report["enforced"],
        "bytes_blocked": report["bytes_blocked"],
        "bytes_admitted_ransomware": report["bytes_admitted_ransomware"],
        "prevented_fraction": (
            report["bytes_blocked"] / attack_bytes if attack_bytes else 0.0
        ),
        "modelled": {
            key: modelled[key]
            for key in (
                "ransomware_bytes_prevented",
                "ransomware_bytes_exposed",
                "benign_bytes_prevented",
            )
        },
        "benign_attack_run_blocked_writes": sum(
            o.writes_blocked for o in outcomes.values() if not o.is_ransomware
        ),
        "benign_replay_blocked_writes": sum(
            o.writes_blocked for o in benign_outcomes.values()
        ),
        "benign_replay_blocked_bytes": sum(
            o.bytes_blocked for o in benign_outcomes.values()
        ),
        "enforcement_overhead_seconds": overhead,
        "enforcement_overhead_fraction": (
            overhead / (overhead + write_seconds)
            if overhead + write_seconds else 0.0
        ),
        "storage": report["storage"],
        "actions": report["response"]["actions"],
        "audit_records": report["response"]["audit_records"],
        "audit_head": report["audit_head"],
        "audit_bit_identical": audit_bit_identical,
        "benign_audit_head": benign_report["audit_head"],
    }


# ----------------------------------------------------------------------
# Recovery rung (model-free, bit-exact)
# ----------------------------------------------------------------------

def _verdict(window_index: int, probability: float):
    return dataclasses.make_dataclass(
        "V", ["window_index", "probability", "is_ransomware"]
    )(window_index, probability, probability >= 0.5)


def recovery_rung(config: ResponseBenchConfig) -> dict:
    """Snapshot → overwrite → kill → restore, checked byte for byte.

    Drives the real policy engine with synthetic high-confidence
    verdicts (no model, so the rung is bit-exact by construction): the
    first alert arms copy-on-write, the attacker overwrites user objects
    through the protected path (pre-images preserved into the snapshot),
    the confirmation streak escalates to kill, and ``allow_restore``
    rolls the volume back.  Returns the byte-identity verdicts the
    benchmark gates on.
    """
    storage = SmartSSD()
    originals = {}
    for index in range(config.user_objects):
        key = f"user-{index:04d}"
        data = _payload(key, 0, config.user_object_bytes)
        storage.ssd.write_object(key, config.user_object_bytes, data=data)
        originals[key] = data

    policy = ResponsePolicy(
        write_block_threshold=0.6, quarantine_threshold=0.8,
        kill_threshold=0.9, confirmations=3,
        allow_kill=True, allow_restore=True, attribute=False,
    )
    responder = ResponseEngine(policy, enforcer=SmartSsdEnforcer(storage))
    attacker = "rw-recovery"
    decision = responder.on_verdict(attacker, _verdict(0, 0.99))  # alert: cow armed
    assert not decision.escalated
    assert storage.stream_mode(attacker) == MODE_COW
    overwritten = list(originals)[: config.user_objects // 2]
    for position, key in enumerate(overwritten):
        storage.stream_write(
            attacker, key, config.user_object_bytes,
            data=_payload(attacker, position + 1, config.user_object_bytes),
        )
    responder.on_verdict(attacker, _verdict(1, 0.99))
    decision = responder.on_verdict(attacker, _verdict(2, 0.99))
    restore = decision.restore
    restored_identical = restore is not None and all(
        storage.ssd.read_object_data(key) == data
        for key, data in originals.items()
    )
    responder.audit.verify()
    return {
        "overwritten_objects": len(overwritten),
        "cow_bytes_preserved": storage.cow_bytes,
        "restored_objects": 0 if restore is None else restore.restored_objects,
        "restored_bytes": 0 if restore is None else restore.restored_bytes,
        "restore_seconds": 0.0 if restore is None else restore.seconds,
        "restored_byte_identical": restored_identical,
        "final_action": decision.action,
        "audit_head": responder.audit.head_hash,
    }


# ----------------------------------------------------------------------
# Fleet fault-parity rung
# ----------------------------------------------------------------------

def fleet_parity_rung(model, config: ResponseBenchConfig) -> dict:
    """Same fleet scenario with and without a mid-run drive failure.

    The per-stream audit chains must be identical: the serving layer
    guarantees failure-invariant per-stream verdict sequences, and the
    response engine adds nothing time- or placement-dependent on top
    (audit records carry window indices, never wall-clock or device).
    """
    from repro.core.fleet import MonitoredStream
    from repro.response.policy import FleetResponder

    weights = HostWeights.from_model(model)
    engine_config = EngineConfig(
        dimensions=dataclasses.replace(
            weights.dimensions, sequence_length=config.sequence_length
        ),
        optimization=OptimizationLevel.FIXED_POINT,
    )
    scenario = build_scenario(
        "api", ransomware=config.ransomware, benign=config.benign,
        seed=config.seed, benign_length=config.benign_length,
    )
    streams = [MonitoredStream(s.name, 10_000.0) for s in scenario]
    arrivals = []
    for step in range(config.fleet_tokens_per_stream):
        for s in scenario:
            if step < len(s.tokens):
                arrivals.append(TokenArrival(
                    stream=s.name, token=int(s.tokens[step]),
                    arrival_us=step * config.fleet_gap_us,
                ))
    horizon = max(a.arrival_us for a in arrivals)

    def run(fault_plans):
        engines = build_fleet(weights, config.fleet_devices,
                              config=engine_config)
        for engine in engines:
            engine.attach_storage(SmartSSD())
        responder = FleetResponder(
            policy=_policy(config, config.thresholds[0]),
        )
        server = FleetServer(
            engines, streams,
            ServingConfig(max_batch=8, max_wait_us=100, queue_depth=4096),
            fault_plans=fault_plans, on_verdict=responder,
        )
        report = server.serve_tokens(
            arrivals,
            sessions=SessionConfig(
                stride=config.stride, threshold=config.monitor_threshold
            ),
        )
        responder.audit.verify()
        return responder, server, report

    base, base_server, base_report = run(None)
    failed, failed_server, failed_report = run({
        0: FaultPlan(device_fail=DeviceFailFault(at_us=horizon // 2))
    })
    return {
        "devices": config.fleet_devices,
        "streams": len(streams),
        "quarantined": sorted(
            str(s) for s in base_server.quarantined_streams
        ),
        "quarantined_after_failover": sorted(
            str(s) for s in failed_server.quarantined_streams
        ),
        "tokens_shed_quarantined": base_report.tokens_shed.get(
            "quarantined", 0
        ),
        "device_failures": failed_report.device_failures,
        "stream_heads_match": (
            base.audit.stream_heads() == failed.audit.stream_heads()
        ),
        "stream_heads": base.audit.stream_heads(),
    }


# ----------------------------------------------------------------------
# The document
# ----------------------------------------------------------------------

def evaluate_response(config: ResponseBenchConfig, telemetry=None,
                      progress=None) -> dict:
    """Run every rung; returns the (deterministic) document body."""
    emit = progress or (lambda message: None)
    document = {
        "benchmark": "response",
        "config": config.as_dict(),
        "modalities": {},
    }
    api_model = None
    for modality in config.modalities:
        emit(f"[{modality}] training ({config.epochs} epochs, "
             f"scale {config.scale})")
        model, engine = _train_engine(modality, config)
        if modality == "api":
            api_model = model
        attack_streams = build_scenario(
            modality, ransomware=config.ransomware, benign=config.benign,
            seed=config.seed, benign_length=config.benign_length,
        )
        benign_streams = build_scenario(
            modality, ransomware=0, benign=config.benign,
            seed=config.seed, benign_length=config.benign_length,
        )
        entries = []
        for threshold in config.thresholds:
            emit(f"[{modality}] replaying at threshold {threshold}")
            entries.append(_threshold_entry(
                engine, attack_streams, benign_streams, threshold,
                config, telemetry,
            ))
        document["modalities"][modality] = {
            "attack_streams": [
                {"name": s.name, "tokens": len(s),
                 "write_bytes": s.total_write_bytes,
                 "is_ransomware": s.is_ransomware}
                for s in attack_streams
            ],
            "thresholds": entries,
        }
    emit("[recovery] snapshot → overwrite → restore")
    document["recovery"] = recovery_rung(config)
    if api_model is not None:
        emit("[fleet] fault-parity rung")
        document["fleet_parity"] = fleet_parity_rung(api_model, config)
    return document


def _report_lines(document: dict, wall_seconds: float | None = None) -> list:
    config = document["config"]
    lines = [
        f"thresholds {config['thresholds']}, confirmations "
        f"{config['confirmations']}, stride {config['stride']}, "
        f"window {config['sequence_length']}, seed {config['seed']}"
        + (f"  (wall {wall_seconds:.1f}s)" if wall_seconds is not None else "")
    ]
    for modality, body in sorted(document["modalities"].items()):
        for entry in body["thresholds"]:
            latency = entry["detection_latency_tokens"]
            lines.append(
                f"{modality:<11s} thr {entry['threshold']:.2f}: "
                f"latency {latency} tokens, prevented "
                f"{entry['prevented_fraction']:.3f} "
                f"({entry['bytes_blocked']} B), benign blocked "
                f"{entry['benign_replay_blocked_writes']}, overhead "
                f"{entry['enforcement_overhead_fraction']:.4f}"
            )
    recovery = document["recovery"]
    lines.append(
        f"recovery: {recovery['restored_objects']} objects "
        f"({recovery['restored_bytes']} B) restored, byte-identical: "
        f"{recovery['restored_byte_identical']}"
    )
    parity = document.get("fleet_parity")
    if parity:
        lines.append(
            f"fleet parity: {parity['streams']} streams, "
            f"{parity['device_failures']} failure(s), per-stream audit "
            f"chains match: {parity['stream_heads_match']}"
        )
    return lines


def _gate(document: dict, latency_within_window: bool = False,
          prevented_positive: bool = False,
          benign_clean: bool = False) -> tuple:
    """(ok, message) for the CI response-smoke gates."""
    failures = []
    window = document["config"]["sequence_length"]
    for modality, body in sorted(document["modalities"].items()):
        for entry in body["thresholds"]:
            label = f"{modality}@{entry['threshold']}"
            if not entry["audit_bit_identical"]:
                failures.append(f"{label}: audit log not bit-identical")
            if prevented_positive:
                if entry["enforced"] < entry["ransomware_streams"]:
                    failures.append(
                        f"{label}: only {entry['enforced']}/"
                        f"{entry['ransomware_streams']} attacks enforced"
                    )
                if entry["bytes_blocked"] <= 0:
                    failures.append(f"{label}: no attack bytes prevented")
            if benign_clean:
                blocked = (entry["benign_replay_blocked_writes"]
                           + entry["benign_attack_run_blocked_writes"])
                if blocked:
                    failures.append(
                        f"{label}: {blocked} benign writes blocked"
                    )
            if latency_within_window and modality == "api":
                worst = max(
                    entry["detection_latency_tokens"], default=None
                )
                if worst is None or worst > window:
                    failures.append(
                        f"{label}: detection latency {worst} tokens "
                        f"exceeds the {window}-token window"
                    )
    if not document["recovery"]["restored_byte_identical"]:
        failures.append("recovery: restored volume not byte-identical")
    parity = document.get("fleet_parity")
    if parity and not parity["stream_heads_match"]:
        failures.append("fleet parity: per-stream audit chains diverged")
    if failures:
        return False, "FAIL: " + "; ".join(failures)
    checks = ["audit bit-identical", "restore byte-identical",
              "fleet audit parity"]
    if latency_within_window:
        checks.append(f"api latency <= {window} tokens")
    if prevented_positive:
        checks.append("attack bytes prevented > 0")
    if benign_clean:
        checks.append("benign replays clean")
    return True, "; ".join(checks)


# ----------------------------------------------------------------------
# Harness mode
# ----------------------------------------------------------------------


def bench_response_recovery(benchmark, bench_telemetry):
    from benchmarks.conftest import record_report

    config = dataclasses.replace(QUICK_CONFIG, user_objects=6,
                                 user_object_bytes=16 * 1024)
    result = benchmark.pedantic(
        lambda: recovery_rung(config), rounds=1, iterations=1
    )
    record_report(
        "Response: snapshot/restore recovery rung",
        [
            f"{result['overwritten_objects']} objects overwritten, "
            f"{result['restored_objects']} restored "
            f"({result['restored_bytes']} B), byte-identical: "
            f"{result['restored_byte_identical']}",
        ],
    )
    assert result["restored_byte_identical"]


# ----------------------------------------------------------------------
# Standalone CLI (CI response smoke / the committed full run)
# ----------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller scenarios for the CI smoke "
                             "(same training recipe)")
    parser.add_argument("--assert-latency-within-window", action="store_true",
                        help="exit non-zero unless every api-modality "
                             "detection latency is within one window")
    parser.add_argument("--assert-prevented-positive", action="store_true",
                        help="exit non-zero unless every attack stream is "
                             "enforced with bytes prevented > 0")
    parser.add_argument("--assert-benign-clean", action="store_true",
                        help="exit non-zero if any benign write is blocked")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help=f"JSON result path (default {DEFAULT_OUTPUT})")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the recipe seed (changes the "
                             "committed numbers — default keeps it)")
    args = parser.parse_args(argv)

    config = QUICK_CONFIG if args.quick else FULL_CONFIG
    if args.seed is not None:
        config = dataclasses.replace(config, seed=args.seed)

    from repro.telemetry import Telemetry

    telemetry = Telemetry()
    start = time.perf_counter()
    document = evaluate_response(config, telemetry=telemetry, progress=print)
    wall_seconds = time.perf_counter() - start
    for line in _report_lines(document, wall_seconds):
        print(line)
    with open(args.output, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")

    ok, message = _gate(
        document,
        latency_within_window=args.assert_latency_within_window,
        prevented_positive=args.assert_prevented_positive,
        benign_clean=args.assert_benign_clean,
    )
    print(message)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
