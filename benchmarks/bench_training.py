"""Fused-vs-reference training kernel throughput and bit-exactness.

Times the full :meth:`~repro.nn.trainer.Trainer.fit` loop once per
registered training backend (``repro.nn.kernels``) on the same synthetic
dataset and seed, verifies the trained weights **and** the recorded
:class:`~repro.nn.trainer.ConvergenceHistory` are bit-identical across
backends (the registry's core contract), and writes
``BENCH_training.json`` (seconds, batches/sec, speedup, accel tier).

The speedup is honest about the host: on a machine with a working C
toolchain (or numba) the fused backend runs its compiled step loops and
the ``--assert-backend-speedup-if-accelerated`` gate applies; on a
NumPy-only host it falls back to the vectorised rung (counted in
``repro_train_backend_fallback_total``) and the gate is skipped.

Two entry points:

* ``pytest benchmarks/bench_training.py`` — harness mode, using the
  shared report plumbing.
* ``PYTHONPATH=src python benchmarks/bench_training.py [--quick]`` —
  standalone CLI (the CI perf-smoke job), with ``--assert-bit-exact``
  and ``--assert-backend-speedup-if-accelerated X``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.nn.kernels import DEFAULT_TRAIN_BACKEND, available_training_backends
from repro.nn.model import PAPER_VOCAB_SIZE, SequenceClassifier
from repro.nn.trainer import Trainer, TrainingConfig

DEFAULT_OUTPUT = "BENCH_training.json"


def _dataset(num_sequences: int, sequence_length: int, vocab_size: int):
    """Deterministic synthetic split (content irrelevant to kernel timing)."""
    rng = np.random.default_rng(42)
    sequences = rng.integers(0, vocab_size, size=(num_sequences, sequence_length))
    labels = rng.integers(0, 2, size=num_sequences)
    test_count = max(2, num_sequences // 5)
    return (
        sequences[test_count:], labels[test_count:],
        sequences[:test_count], labels[:test_count],
    )


def _timed_fit(backend: str, epochs: int, batch_size: int, split) -> dict:
    """Train one fresh model with ``backend``; returns the result row."""
    train_x, train_y, test_x, test_y = split
    model = SequenceClassifier(seed=0)
    trainer = Trainer(
        model,
        TrainingConfig(
            epochs=epochs, batch_size=batch_size, eval_every=epochs,
            backend=backend,
        ),
    )
    start = time.perf_counter()
    history = trainer.fit(train_x, train_y, test_x, test_y)
    seconds = time.perf_counter() - start
    batches = epochs * -(-train_x.shape[0] // batch_size)
    return {
        "backend": backend,
        "accel_tier": trainer.kernel.accel_tier,
        "fallbacks": dict(trainer.kernel.fallback_reasons),
        "seconds": seconds,
        "batches_per_second": batches / seconds,
        "weights": model.get_weights(),
        "history": history.records,
    }


def run_training_bench(epochs: int, batch_size: int, num_sequences: int,
                       sequence_length: int) -> dict:
    """Time every backend on the same run; reference defines ground truth."""
    split = _dataset(num_sequences, sequence_length, PAPER_VOCAB_SIZE)
    backends = [DEFAULT_TRAIN_BACKEND] + [
        name for name in available_training_backends()
        if name != DEFAULT_TRAIN_BACKEND
    ]
    rows = []
    reference = None
    for backend in backends:
        row = _timed_fit(backend, epochs, batch_size, split)
        weights = row.pop("weights")
        history = row.pop("history")
        if reference is None:
            reference = {"weights": weights, "history": history,
                         "seconds": row["seconds"]}
            row["bit_exact_vs_reference"] = True
        else:
            row["bit_exact_vs_reference"] = bool(
                len(weights) == len(reference["weights"])
                and all(np.array_equal(a, b)
                        for a, b in zip(weights, reference["weights"]))
                and history == reference["history"]
            )
        row["speedup_vs_reference"] = reference["seconds"] / row["seconds"]
        rows.append(row)
    return {
        "benchmark": "training_kernels",
        "epochs": epochs,
        "batch_size": batch_size,
        "num_sequences": num_sequences,
        "sequence_length": sequence_length,
        "results": rows,
    }


def _report_lines(document: dict) -> list:
    lines = [
        f"{document['num_sequences']} sequences x "
        f"{document['sequence_length']} items, "
        f"{document['epochs']} epochs (batch {document['batch_size']})",
    ]
    for row in document["results"]:
        tier = row["accel_tier"] or "numpy"
        lines.append(
            f"backend {row['backend']:>9s} [{tier:>5s}]: "
            f"{row['seconds']:6.2f}s  {row['batches_per_second']:6.1f} batch/s  "
            f"speedup {row['speedup_vs_reference']:.2f}x  "
            f"bit-exact {row['bit_exact_vs_reference']}"
        )
    return lines


# ----------------------------------------------------------------------
# Harness mode
# ----------------------------------------------------------------------


def bench_training_kernels(benchmark):
    from benchmarks.conftest import record_report

    document = run_training_bench(
        epochs=3, batch_size=64, num_sequences=320, sequence_length=60
    )
    # pytest-benchmark gets one stable measurement: a fused train_batch.
    split = _dataset(128, 60, 278)
    model = SequenceClassifier(seed=0)
    trainer = Trainer(model, TrainingConfig(backend="fused"))
    benchmark(lambda: trainer.kernel.train_batch(split[0][:64], split[1][:64]))
    record_report("Training kernels (fused vs reference)",
                  _report_lines(document))
    assert all(r["bit_exact_vs_reference"] for r in document["results"])


# ----------------------------------------------------------------------
# Standalone CLI (CI perf smoke)
# ----------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--epochs", type=int, default=5)
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--sequences", type=int, default=1024)
    parser.add_argument("--sequence-length", type=int, default=60)
    parser.add_argument("--quick", action="store_true",
                        help="small run for CI smoke")
    parser.add_argument("--assert-bit-exact", action="store_true",
                        help="exit non-zero unless every backend matches "
                             "the reference weights + history bitwise")
    parser.add_argument("--assert-backend-speedup-if-accelerated",
                        type=float, default=None, metavar="X",
                        help="exit non-zero unless the fused backend "
                             "reaches X times the reference rate — only "
                             "enforced when a compiled tier (cc/numba) "
                             "actually built on this host")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help=f"JSON result path (default {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)

    num_sequences = 320 if args.quick else args.sequences
    epochs = 3 if args.quick else args.epochs
    document = run_training_bench(
        epochs=epochs, batch_size=args.batch_size,
        num_sequences=num_sequences, sequence_length=args.sequence_length,
    )
    for line in _report_lines(document):
        print(line)
    with open(args.output, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")

    if args.assert_bit_exact:
        if not all(r["bit_exact_vs_reference"] for r in document["results"]):
            print("FAIL: a backend diverged from the reference trajectory")
            return 1
        print("bit-exactness gate passed")
    if args.assert_backend_speedup_if_accelerated is not None:
        required = args.assert_backend_speedup_if_accelerated
        fused = [r for r in document["results"] if r["backend"] == "fused"]
        accelerated = [r for r in fused if r["accel_tier"]]
        if not accelerated:
            print("speedup gate skipped: no compiled tier on this host "
                  f"(fallbacks: {[r['fallbacks'] for r in fused]})")
        else:
            best = max(r["speedup_vs_reference"] for r in accelerated)
            if best < required:
                print(f"FAIL: fused speedup {best:.2f}x < required "
                      f"{required:.2f}x")
                return 1
            print(f"speedup gate passed: {best:.2f}x >= {required:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
