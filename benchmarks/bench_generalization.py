"""Leave-k-families-out generalisation across signal modalities.

Drives :func:`repro.ransomware.generalization.evaluate_generalization` —
the block-storage study's protocol (arXiv 2412.21084) — over the three
signal sources (API calls, block I/O, filesystem events) and records the
numbers the ROADMAP asks for:

* **recall matrix**: held-out recall per (modality, family) — every
  family held out exactly once across the fold partition;
* **recall gap** per modality and OptimizationLevel: in-distribution
  recall minus held-out recall, the headline generalisation number;
* held-out AUC/precision against never-trained benign traffic.

Writes ``BENCH_generalization.json``.  The document is a pure function
of the seeded recipe — no wall-clock or host-dependent fields — so the
committed file reproduces **bit-identically** from a fixed seed.
Two entry points:

* ``pytest benchmarks/bench_generalization.py`` — harness mode (small).
* ``PYTHONPATH=src python benchmarks/bench_generalization.py [--quick]``
  — standalone CLI (the CI generalization-smoke job runs ``--quick``;
  the committed JSON is the full run).
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time

from repro.core.config import OptimizationLevel
from repro.ransomware.generalization import (
    GeneralizationConfig,
    GeneralizationReport,
    evaluate_generalization,
)

DEFAULT_OUTPUT = "BENCH_generalization.json"

#: The committed full run: every modality, every family held out exactly
#: once (5 leave-2-out folds), evaluated at every OptimizationLevel.
FULL_CONFIG = GeneralizationConfig(
    modalities=("api", "block_io", "filesystem"),
    held_out_per_fold=2,
    folds=None,
    scale=0.04,
    sequence_length=60,
    seed=7,
    epochs=10,
    optimizations=(
        OptimizationLevel.VANILLA,
        OptimizationLevel.II_OPTIMIZED,
        OptimizationLevel.FIXED_POINT,
    ),
)

#: CI smoke: one fold (two held-out families) per modality, fewer
#: epochs, FIXED_POINT only — seconds of wall time.
QUICK_CONFIG = GeneralizationConfig(
    modalities=("api", "block_io", "filesystem"),
    held_out_per_fold=2,
    folds=1,
    scale=0.02,
    sequence_length=60,
    seed=7,
    epochs=4,
    optimizations=(OptimizationLevel.FIXED_POINT,),
)


def build_document(report: GeneralizationReport) -> dict:
    """The JSON body: full report plus the headline summaries.

    Deliberately excludes wall-clock and any other host-dependent value;
    every field is a deterministic function of the config's seed.
    """
    primary = report.config.optimizations[0]
    recall_matrix = {
        result.modality: result.per_family_recall(primary)
        for result in report.modalities
    }
    summary = {
        result.modality: {
            level.name: {
                "held_out_recall": result.mean_held_out_recall(level),
                "recall_gap": result.mean_recall_gap(level),
                "held_out_auc": float(
                    sum(f.level(level).held_out_auc for f in result.folds)
                    / len(result.folds)
                ),
            }
            for level in report.config.optimizations
        }
        for result in report.modalities
    }
    document = {"benchmark": "generalization"}
    document.update(report.as_dict())
    document["recall_matrix"] = recall_matrix
    document["summary"] = summary
    return document


def _report_lines(document: dict, wall_seconds: float | None = None) -> list:
    config = document["config"]
    lines = [
        f"leave-{config['held_out_per_fold']}-out, {config['folds']} fold(s), "
        f"scale {config['scale']}, seed {config['seed']}, "
        f"levels {', '.join(config['optimizations'])}"
        + (f"  (wall {wall_seconds:.1f}s)" if wall_seconds is not None else ""),
    ]
    primary = config["optimizations"][0]
    for modality, levels in sorted(document["summary"].items()):
        row = levels[primary]
        lines.append(
            f"{modality:<11s} held-out recall {row['held_out_recall']:.3f}  "
            f"gap {row['recall_gap']:+.3f}  "
            f"held-out AUC {row['held_out_auc']:.3f}"
        )
    for modality, per_family in sorted(document["recall_matrix"].items()):
        worst = min(per_family, key=per_family.get)
        best = max(per_family, key=per_family.get)
        lines.append(
            f"{modality:<11s} per-family: worst {worst} "
            f"{per_family[worst]:.3f}, best {best} {per_family[best]:.3f}"
        )
    return lines


def _gate(document: dict, min_recall: float | None = None,
          min_held_out_families: int = 2) -> tuple:
    """Returns (ok, message) for the CI generalisation gate."""
    held_out = {
        family for fold in document["fold_sets"] for family in fold
    }
    if len(held_out) < min_held_out_families:
        return False, (
            f"FAIL: only {len(held_out)} held-out families "
            f"(need >= {min_held_out_families})"
        )
    for modality, levels in document["summary"].items():
        for level, row in levels.items():
            for key in ("held_out_recall", "recall_gap", "held_out_auc"):
                if not math.isfinite(row[key]):
                    return False, (
                        f"FAIL: {modality}/{level} {key} is not finite "
                        f"({row[key]})"
                    )
    messages = [f"{len(held_out)} families held out; all gaps finite"]
    if min_recall is not None:
        primary = document["config"]["optimizations"][0]
        for modality, levels in sorted(document["summary"].items()):
            recall = levels[primary]["held_out_recall"]
            if recall < min_recall:
                return False, (
                    f"FAIL: {modality} held-out recall {recall:.3f} "
                    f"< floor {min_recall}"
                )
        messages.append(f"held-out recall >= {min_recall} in every modality")
    return True, "; ".join(messages)


# ----------------------------------------------------------------------
# Harness mode
# ----------------------------------------------------------------------


def bench_generalization(benchmark, bench_telemetry):
    from benchmarks.conftest import record_report

    tiny = GeneralizationConfig(
        modalities=("block_io", "filesystem"),
        held_out_per_fold=2, folds=1, scale=0.02,
        sequence_length=60, seed=7, epochs=3,
        optimizations=(OptimizationLevel.FIXED_POINT,),
    )
    document = build_document(
        benchmark.pedantic(
            lambda: evaluate_generalization(tiny, telemetry=bench_telemetry),
            rounds=1, iterations=1,
        )
    )
    record_report(
        "Generalisation: leave-k-families-out (tiny rung)",
        _report_lines(document),
    )
    ok, message = _gate(document)
    assert ok, message


# ----------------------------------------------------------------------
# Standalone CLI (CI generalization smoke / the committed full run)
# ----------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="one-fold CI smoke instead of the full "
                             "every-family-held-out run")
    parser.add_argument("--assert-min-recall", type=float, default=None,
                        metavar="R",
                        help="exit non-zero unless every modality's "
                             "held-out recall (primary level) reaches R")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help=f"JSON result path (default {DEFAULT_OUTPUT})")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the recipe seed (changes the "
                             "committed numbers — default keeps it)")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="run the (modality, fold) grid across N "
                             "processes (bit-identical to serial)")
    parser.add_argument("--train-backend", default=None,
                        choices=["reference", "fused"],
                        help="training kernel backend (bit-exact either way)")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="content-addressed model cache directory "
                             "(see docs/performance.md)")
    parser.add_argument("--assert-all-cache-hits", action="store_true",
                        help="exit non-zero unless every fold's model came "
                             "out of the cache without training a single "
                             "batch (the CI cache-effectiveness gate; "
                             "requires --cache-dir and a prior warm run)")
    args = parser.parse_args(argv)

    config = QUICK_CONFIG if args.quick else FULL_CONFIG
    overrides = {
        key: value for key, value in (
            ("seed", args.seed), ("workers", args.workers),
            ("train_backend", args.train_backend),
            ("cache_dir", args.cache_dir),
        ) if value is not None
    }
    if overrides:
        import dataclasses

        config = dataclasses.replace(config, **overrides)
    if args.assert_all_cache_hits and not config.cache_dir:
        parser.error("--assert-all-cache-hits requires --cache-dir")

    from repro.telemetry import Telemetry

    telemetry = Telemetry()
    start = time.perf_counter()
    report = evaluate_generalization(config, telemetry=telemetry, progress=print)
    wall_seconds = time.perf_counter() - start
    document = build_document(report)
    for line in _report_lines(document, wall_seconds):
        print(line)
    with open(args.output, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")

    ok, message = _gate(document, min_recall=args.assert_min_recall)
    print(message)
    if ok and args.assert_all_cache_hits:
        ok, message = _cache_gate(telemetry, report)
        print(message)
    return 0 if ok else 1


def _counter_total(telemetry, name: str) -> int:
    return sum(
        record["value"] for record in telemetry.metrics.snapshot()
        if record["type"] == "counter" and record["name"] == name
    )


def _cache_gate(telemetry, report: GeneralizationReport) -> tuple:
    """(ok, message): the warm run must restore every model from cache."""
    models = len(report.modalities) * len(report.fold_sets)
    hits = _counter_total(telemetry, "repro_train_cache_hits_total")
    batches = _counter_total(telemetry, "repro_train_batches_total")
    if batches or hits != models:
        return False, (
            f"FAIL: expected {models} cache hits and 0 trained batches, "
            f"got {hits} hits and {batches} batches"
        )
    return True, f"cache gate passed: {models} models restored, 0 batches trained"


if __name__ == "__main__":
    sys.exit(main())
