"""Multi-worker scaling of the host-simulation inference throughput.

Sweeps the :class:`~repro.core.parallel.WorkerPool` from 1 worker up to
the host's core count (or ``--workers``), measuring wall-clock
``predict_proba`` throughput at each rung, verifying every rung's
probabilities are **bit-identical** to the single-process path, and
writing ``BENCH_parallel_scaling.json`` (sequences/sec, speedup,
parallel efficiency).  This quantifies the *host simulation* speedup
only — the simulated per-sequence hardware latency is unchanged by how
the simulation is scheduled (see ``docs/performance.md``).

Two entry points:

* ``pytest benchmarks/bench_parallel_scaling.py`` — harness mode, using
  the shared bench model and ``REPRO_BENCH_WORKERS`` knob.
* ``PYTHONPATH=src python benchmarks/bench_parallel_scaling.py [--quick]``
  — standalone CLI (the CI perf-smoke job), with ``--assert-speedup`` to
  gate on a minimum achieved speedup.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.core.config import OptimizationLevel
from repro.core.engine import engine_at_level
from repro.nn.model import SequenceClassifier

DEFAULT_OUTPUT = "BENCH_parallel_scaling.json"


def _worker_counts(max_workers: int) -> list:
    """1, 2, 4, ... doubling up to (and including) ``max_workers``."""
    counts = [1]
    while counts[-1] * 2 < max_workers:
        counts.append(counts[-1] * 2)
    if max_workers > 1:
        counts.append(max_workers)
    return counts


def _timed_run(engine, sequences, chunk_size: int, workers: int):
    """One timed ``predict_proba`` sweep (pool prebuilt and warmed)."""
    if workers > 1:
        engine.worker_pool(workers)  # fork + broadcast outside the clock
        engine.predict_proba(sequences[:chunk_size], chunk_size=chunk_size,
                             workers=workers)  # warm-up shard
    else:
        engine.predict_proba(sequences[:chunk_size], chunk_size=chunk_size)
    start = time.perf_counter()
    probabilities = engine.predict_proba(
        sequences, chunk_size=chunk_size, workers=workers
    )
    seconds = time.perf_counter() - start
    return probabilities, seconds


def run_scaling(
    engine,
    num_sequences: int,
    chunk_size: int,
    max_workers: int,
) -> dict:
    """Sweep worker counts; returns the result document (plain data)."""
    rng = np.random.default_rng(0)
    sequences = rng.integers(
        0, engine.config.dimensions.vocab_size,
        size=(num_sequences, engine.config.dimensions.sequence_length),
    )
    results = []
    baseline_probabilities = None
    baseline_rate = None
    for workers in _worker_counts(max_workers):
        probabilities, seconds = _timed_run(
            engine, sequences, chunk_size, workers
        )
        rate = num_sequences / seconds
        if baseline_probabilities is None:
            baseline_probabilities = probabilities
            baseline_rate = rate
        bit_exact = bool(np.array_equal(probabilities, baseline_probabilities))
        results.append(
            {
                "workers": workers,
                "mode": engine._pool.mode if workers > 1 else "single",
                "seconds": seconds,
                "sequences_per_second": rate,
                "speedup": rate / baseline_rate,
                "efficiency": rate / baseline_rate / workers,
                "bit_exact_vs_single_process": bit_exact,
            }
        )
    engine.shutdown_pool()
    return {
        "benchmark": "parallel_scaling",
        "host_cores": os.cpu_count(),
        "optimization": engine.config.optimization.name,
        "sequence_length": engine.config.dimensions.sequence_length,
        "num_sequences": num_sequences,
        "chunk_size": chunk_size,
        "results": results,
    }


def _report_lines(document: dict) -> list:
    lines = [
        f"host cores: {document['host_cores']}  "
        f"optimization: {document['optimization']}  "
        f"{document['num_sequences']} sequences x "
        f"{document['sequence_length']} items (chunk {document['chunk_size']})",
    ]
    for row in document["results"]:
        lines.append(
            f"workers {row['workers']:2d} [{row['mode']:9s}]: "
            f"{row['sequences_per_second']:8.1f} seq/s  "
            f"speedup {row['speedup']:.2f}x  "
            f"efficiency {row['efficiency']:.2f}  "
            f"bit-exact {row['bit_exact_vs_single_process']}"
        )
    return lines


# ----------------------------------------------------------------------
# Harness mode
# ----------------------------------------------------------------------


def bench_parallel_scaling(benchmark, bench_model, bench_telemetry, bench_workers):
    from benchmarks.conftest import record_report

    engine = engine_at_level(
        bench_model, OptimizationLevel.FIXED_POINT, sequence_length=100
    )
    if bench_telemetry is not None:
        engine.attach_telemetry(bench_telemetry)
    document = run_scaling(
        engine, num_sequences=512, chunk_size=64, max_workers=bench_workers
    )
    # pytest-benchmark still gets one stable measurement: the widest rung.
    widest = document["results"][-1]["workers"]
    rng = np.random.default_rng(1)
    sequences = rng.integers(0, 278, size=(128, 100))
    benchmark(
        lambda: engine.predict_proba(sequences, chunk_size=64, workers=widest)
    )
    engine.shutdown_pool()
    record_report("Parallel scaling (host simulation)", _report_lines(document))
    assert all(r["bit_exact_vs_single_process"] for r in document["results"])


# ----------------------------------------------------------------------
# Standalone CLI (CI perf smoke)
# ----------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=0,
                        help="max worker count (default: host core count)")
    parser.add_argument("--sequences", type=int, default=1024,
                        help="sequences per timed sweep")
    parser.add_argument("--chunk-size", type=int, default=64)
    parser.add_argument("--sequence-length", type=int, default=100)
    parser.add_argument("--optimization",
                        choices=[l.name for l in OptimizationLevel],
                        default=OptimizationLevel.FIXED_POINT.name)
    parser.add_argument("--quick", action="store_true",
                        help="small sweep for CI smoke (fewer sequences)")
    parser.add_argument("--assert-speedup", type=float, default=None,
                        metavar="X",
                        help="exit non-zero unless the best multi-worker "
                             "rung reaches X times the single-process rate")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help=f"JSON result path (default {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)

    num_sequences = 256 if args.quick else args.sequences
    max_workers = args.workers if args.workers > 0 else (os.cpu_count() or 1)
    engine = engine_at_level(
        SequenceClassifier(seed=0),
        OptimizationLevel[args.optimization],
        sequence_length=args.sequence_length,
    )
    document = run_scaling(
        engine, num_sequences=num_sequences,
        chunk_size=args.chunk_size, max_workers=max_workers,
    )
    for line in _report_lines(document):
        print(line)
    with open(args.output, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")

    if not all(r["bit_exact_vs_single_process"] for r in document["results"]):
        print("FAIL: multi-worker probabilities diverged from single-process")
        return 1
    if args.assert_speedup is not None:
        best = max(r["speedup"] for r in document["results"])
        if best < args.assert_speedup:
            print(f"FAIL: best speedup {best:.2f}x < required "
                  f"{args.assert_speedup:.2f}x")
            return 1
        print(f"speedup gate passed: {best:.2f}x >= {args.assert_speedup:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
