"""Ablation — parallel ``kernel_gates`` compute units (Section III-C).

The paper "enforces parallelization between four kernel_gates CUs"; with
fewer CUs the four gate computations serialise.  This bench measures the
per-item time at 1/2/4 CUs for each optimisation level, plus the DSP cost
of the parallelism.
"""

import dataclasses

from benchmarks.conftest import record_report
from repro.core.config import EngineConfig, OptimizationLevel
from repro.core.engine import CSDInferenceEngine


def _per_item_us(level: OptimizationLevel, num_cus: int) -> tuple:
    config = EngineConfig(optimization=level, num_gate_cus=num_cus)
    engine = CSDInferenceEngine.build_unloaded(config)
    return engine.per_item_microseconds(), engine.device.used.dsp_slices


def bench_cu_count_sweep(benchmark):
    def sweep():
        results = {}
        for level in OptimizationLevel:
            for cus in (1, 2, 4):
                results[(level.name, cus)] = _per_item_us(level, cus)
        return results

    results = benchmark(sweep)

    lines = [f"{'level':14s}{'CUs':>4s}{'us/item':>10s}{'DSPs':>7s}{'vs 4 CUs':>10s}"]
    for level in OptimizationLevel:
        base_us, _ = results[(level.name, 4)]
        for cus in (1, 2, 4):
            us, dsps = results[(level.name, cus)]
            lines.append(
                f"{level.name:14s}{cus:>4d}{us:>10.4f}{dsps:>7d}"
                f"{us / base_us:>9.2f}x"
            )
    lines.append(
        "finding: parallel CUs pay off in float modes; at FIXED_POINT the "
        "gates are ~1 cycle, so per-CU fan-out copies dominate and 1 CU is "
        "slightly *faster* (and 4x cheaper in DSPs)"
    )
    record_report("Ablation: gates CU count", lines)

    # Parallel CUs must help where the gates are expensive (float modes).
    for level in (OptimizationLevel.VANILLA, OptimizationLevel.II_OPTIMIZED):
        one, _ = results[(level.name, 1)]
        four, _ = results[(level.name, 4)]
        assert one > four
    # At FIXED_POINT the gate stage is ~free, so CU count barely matters.
    fp_one, _ = results[("FIXED_POINT", 1)]
    fp_four, _ = results[("FIXED_POINT", 4)]
    assert abs(fp_one - fp_four) < 0.15 * fp_four
