"""Streaming sessions vs per-window recompute (host-simulation speedup).

Sweeps concurrent stream count x detection stride, stepping every stream
through :class:`~repro.core.sessions.SessionManager` (one stacked gate
matmul per tick across all streams' open window slots) and through the
per-window recompute baseline (:class:`RansomwareDetector.observe`, one
``infer_sequence`` per classified window per stream).  For each rung it
reports verdicts/sec, host-measured p99 per-token latency (the smooth
incremental cost vs the recompute *burst*), asserts the two verdict
streams are **bit-identical**, and writes
``BENCH_streaming_sessions.json``.  A budgeted scenario additionally
exercises LRU eviction + checkpoint/restore under memory pressure and
re-checks parity.  See ``docs/streaming.md``.

Two entry points:

* ``pytest benchmarks/bench_streaming_sessions.py`` — harness mode.
* ``PYTHONPATH=src python benchmarks/bench_streaming_sessions.py
  [--quick]`` — standalone CLI (the CI perf-smoke job), with
  ``--assert-speedup`` to gate on the widest rung's speedup.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.core.config import OptimizationLevel
from repro.core.engine import engine_at_level
from repro.core.kernels.backends import (
    DEFAULT_BACKEND,
    available_backends,
    resolve_backend,
)
from repro.core.sessions import SessionConfig, SessionManager
from repro.nn.model import SequenceClassifier
from repro.ransomware.detector import RansomwareDetector

DEFAULT_OUTPUT = "BENCH_streaming_sessions.json"


def _stream_tokens(num_streams: int, num_tokens: int, vocab_size: int, seed: int):
    rng = np.random.default_rng(seed)
    return rng.integers(0, vocab_size, size=(num_streams, num_tokens))


def _keys(num_streams: int) -> list:
    return [f"stream-{index:04d}" for index in range(num_streams)]


def _run_incremental(engine, tokens, stride: int, max_resident=None,
                     backend=None):
    """Step all streams tick by tick; returns (verdicts, seconds, latencies, stats)."""
    num_streams, num_tokens = tokens.shape
    manager = SessionManager(
        engine,
        SessionConfig(stride=stride, max_resident_sessions=max_resident),
        backend=backend,
    )
    keys = _keys(num_streams)
    verdicts: dict = {key: [] for key in keys}
    per_token_seconds: list = []
    total = 0.0
    for tick in range(num_tokens):
        batch = {keys[i]: int(tokens[i, tick]) for i in range(num_streams)}
        start = time.perf_counter()
        emitted = manager.step(batch)
        elapsed = time.perf_counter() - start
        total += elapsed
        per_token_seconds.append(elapsed / num_streams)
        for verdict in emitted:
            verdicts[verdict.session].append(
                (verdict.window_index, verdict.probability)
            )
    return verdicts, total, per_token_seconds, manager.stats()


def _run_recompute(engine, tokens, stride: int):
    """The baseline: one ``RansomwareDetector`` per stream, per-window
    ``infer_sequence`` recompute."""
    num_streams, num_tokens = tokens.shape
    keys = _keys(num_streams)
    detectors = {key: RansomwareDetector(engine, stride=stride) for key in keys}
    verdicts: dict = {key: [] for key in keys}
    per_token_seconds: list = []
    total = 0.0
    for tick in range(num_tokens):
        for i, key in enumerate(keys):
            start = time.perf_counter()
            verdict = detectors[key].observe(int(tokens[i, tick]))
            elapsed = time.perf_counter() - start
            total += elapsed
            per_token_seconds.append(elapsed)
            if verdict is not None:
                verdicts[key].append((verdict.window_index, verdict.probability))
    return verdicts, total, per_token_seconds


def _p99_microseconds(seconds: list) -> float:
    ordered = sorted(seconds)
    rank = max(0, int(np.ceil(0.99 * len(ordered))) - 1)
    return ordered[rank] * 1e6


def run_sweep(
    engine,
    stream_counts,
    strides,
    num_tokens: int,
    seed: int = 0,
    backend: str = DEFAULT_BACKEND,
) -> dict:
    """streams x stride sweep; returns the result document (plain data).

    ``backend`` picks the session hot-path kernel backend under test.
    A non-reference backend additionally re-runs every rung's
    incremental pass on ``reference`` to report ``backend_speedup``
    (same manager mechanics, kernel backend isolated) and to assert the
    two verdict streams match bit-exactly.
    """
    vocab = engine.config.dimensions.vocab_size
    window = engine.config.dimensions.sequence_length
    compare_reference = backend != "reference"
    results = []
    for num_streams in stream_counts:
        for stride in strides:
            tokens = _stream_tokens(num_streams, num_tokens, vocab, seed)
            inc_verdicts, inc_seconds, inc_latencies, stats = _run_incremental(
                engine, tokens, stride, backend=backend
            )
            rec_verdicts, rec_seconds, rec_latencies = _run_recompute(
                engine, tokens, stride
            )
            num_verdicts = sum(len(v) for v in inc_verdicts.values())
            row = {
                "streams": num_streams,
                "stride": stride,
                "tokens_per_stream": num_tokens,
                "verdicts": num_verdicts,
                "backend": stats["backend"],
                "incremental_seconds": inc_seconds,
                "recompute_seconds": rec_seconds,
                "speedup": rec_seconds / inc_seconds,
                "incremental_verdicts_per_second": num_verdicts / inc_seconds,
                "recompute_verdicts_per_second": num_verdicts / rec_seconds,
                "tokens_per_second_per_stream": num_tokens / inc_seconds,
                "incremental_p99_token_us": _p99_microseconds(inc_latencies),
                "recompute_p99_token_us": _p99_microseconds(rec_latencies),
                "slot_steps": stats["slot_steps"],
                "evictions": stats["evictions"],
                "bit_exact_vs_recompute": inc_verdicts == rec_verdicts,
            }
            if compare_reference:
                ref_verdicts, ref_seconds, _, _ = _run_incremental(
                    engine, tokens, stride, backend="reference"
                )
                row["reference_incremental_seconds"] = ref_seconds
                row["backend_speedup"] = ref_seconds / inc_seconds
                row["bit_exact_vs_reference"] = inc_verdicts == ref_verdicts
            results.append(row)
    # Memory-pressure scenario: half the widest rung's streams resident,
    # the rest living as checkpoints — LRU thrash, restore on every step.
    num_streams = max(stream_counts)
    stride = strides[-1]
    tokens = _stream_tokens(num_streams, num_tokens, vocab, seed)
    free_verdicts, _, _, _ = _run_incremental(
        engine, tokens, stride, backend=backend
    )
    cap = max(1, num_streams // 2)
    bud_verdicts, bud_seconds, bud_latencies, bud_stats = _run_incremental(
        engine, tokens, stride, max_resident=cap, backend=backend
    )
    budget_row = {
        "streams": num_streams,
        "stride": stride,
        "max_resident_sessions": cap,
        "seconds": bud_seconds,
        "p99_token_us": _p99_microseconds(bud_latencies),
        "evictions": bud_stats["evictions"],
        "restores": bud_stats["restores"],
        "bit_exact_vs_unbudgeted": bud_verdicts == free_verdicts,
    }
    return {
        "benchmark": "streaming_sessions",
        "optimization": engine.config.optimization.name,
        "window_length": window,
        "hidden_size": engine.config.dimensions.hidden_size,
        "backend": backend,
        "accel_tier": getattr(
            resolve_backend(backend, engine), "accel_tier", None
        ),
        "backend_fallbacks": bud_stats["backend_fallbacks"],
        "results": results,
        "memory_pressure": budget_row,
    }


def _report_lines(document: dict) -> list:
    lines = [
        f"optimization: {document['optimization']}  "
        f"window {document['window_length']}  "
        f"backend {document.get('backend', 'reference')}"
        f" (accel tier {document.get('accel_tier')})  "
        f"(host-simulation wall clock; verdict parity is bit-exact)",
    ]
    for row in document["results"]:
        line = (
            f"streams {row['streams']:4d} stride {row['stride']:2d}: "
            f"incremental {row['incremental_verdicts_per_second']:8.1f} v/s "
            f"(p99 {row['incremental_p99_token_us']:7.1f} us/token)  "
            f"recompute {row['recompute_verdicts_per_second']:8.1f} v/s "
            f"(p99 {row['recompute_p99_token_us']:7.1f} us/token)  "
            f"speedup {row['speedup']:5.2f}x  "
            f"bit-exact {row['bit_exact_vs_recompute']}"
        )
        if "backend_speedup" in row:
            line += (
                f"  backend-speedup {row['backend_speedup']:5.2f}x "
                f"(vs reference, bit-exact {row['bit_exact_vs_reference']})"
            )
        lines.append(line)
    pressure = document["memory_pressure"]
    lines.append(
        f"memory pressure (cap {pressure['max_resident_sessions']} of "
        f"{pressure['streams']} streams): "
        f"evictions {sum(pressure['evictions'].values())} "
        f"restores {pressure['restores']}  "
        f"bit-exact {pressure['bit_exact_vs_unbudgeted']}"
    )
    return lines


def _gate(document: dict, required_speedup, min_streams: int,
          required_backend_speedup=None):
    """Returns (ok, message) for the CI speedup/parity gate."""
    for row in document["results"]:
        if not row["bit_exact_vs_recompute"]:
            return False, (
                f"FAIL: incremental verdicts diverged from recompute at "
                f"streams={row['streams']} stride={row['stride']}"
            )
        if not row.get("bit_exact_vs_reference", True):
            return False, (
                f"FAIL: {row['backend']} backend verdicts diverged from "
                f"reference at streams={row['streams']} stride={row['stride']}"
            )
    if not document["memory_pressure"]["bit_exact_vs_unbudgeted"]:
        return False, "FAIL: eviction/restore changed verdicts under memory pressure"
    messages = []
    if required_speedup is not None:
        eligible = [r for r in document["results"] if r["streams"] >= min_streams]
        if not eligible:
            return False, f"FAIL: no sweep rung reached {min_streams} streams"
        best = max(r["speedup"] for r in eligible)
        if best < required_speedup:
            return False, (
                f"FAIL: best speedup {best:.2f}x at >= {min_streams} streams "
                f"< required {required_speedup:.2f}x"
            )
        messages.append(
            f"speedup gate passed: {best:.2f}x >= {required_speedup:.2f}x "
            f"at >= {min_streams} streams"
        )
    if required_backend_speedup is not None:
        eligible = [
            r for r in document["results"]
            if r["streams"] >= min_streams and "backend_speedup" in r
        ]
        if not eligible:
            return False, (
                f"FAIL: no rung with >= {min_streams} streams compared "
                f"backends (run with a non-reference --backend)"
            )
        best = max(r["backend_speedup"] for r in eligible)
        if best < required_backend_speedup:
            return False, (
                f"FAIL: best backend speedup {best:.2f}x at >= {min_streams} "
                f"streams < required {required_backend_speedup:.2f}x"
            )
        messages.append(
            f"backend speedup gate passed: {best:.2f}x >= "
            f"{required_backend_speedup:.2f}x at >= {min_streams} streams"
        )
    return True, "; ".join(messages)


# ----------------------------------------------------------------------
# Harness mode
# ----------------------------------------------------------------------


def bench_streaming_sessions(benchmark, bench_model, bench_telemetry):
    from benchmarks.conftest import record_report

    engine = engine_at_level(
        bench_model, OptimizationLevel.FIXED_POINT, sequence_length=60
    )
    if bench_telemetry is not None:
        engine.attach_telemetry(bench_telemetry)
    document = run_sweep(
        engine, stream_counts=(8, 32), strides=(4, 10), num_tokens=90
    )
    # pytest-benchmark gets one stable measurement: a 32-stream tick loop.
    tokens = _stream_tokens(32, 90, engine.config.dimensions.vocab_size, seed=1)
    benchmark(lambda: _run_incremental(engine, tokens, stride=10))
    record_report(
        "Streaming sessions vs recompute (host simulation)",
        _report_lines(document),
    )
    ok, message = _gate(document, required_speedup=None, min_streams=0)
    assert ok, message


# ----------------------------------------------------------------------
# Standalone CLI (CI perf smoke)
# ----------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--streams", type=int, default=64,
                        help="widest sweep rung (and the gate's minimum)")
    parser.add_argument("--strides", type=int, nargs="+", default=[4, 10])
    parser.add_argument("--tokens", type=int, default=120,
                        help="tokens per stream (>= window length)")
    parser.add_argument("--sequence-length", type=int, default=60)
    parser.add_argument("--optimization",
                        choices=[l.name for l in OptimizationLevel],
                        default=OptimizationLevel.FIXED_POINT.name)
    parser.add_argument("--quick", action="store_true",
                        help="single rung for CI smoke (fewer streams/tokens)")
    parser.add_argument("--backend", choices=available_backends(),
                        default=DEFAULT_BACKEND,
                        help="session hot-path kernel backend under test; a "
                             "non-reference choice also re-runs each rung on "
                             "'reference' and reports backend_speedup")
    parser.add_argument("--assert-speedup", type=float, default=None,
                        metavar="X",
                        help="exit non-zero unless a rung with >= --streams "
                             "streams beats recompute by X times")
    parser.add_argument("--assert-backend-speedup", type=float, default=None,
                        metavar="X",
                        help="exit non-zero unless a rung with >= --streams "
                             "streams beats the reference backend by X times")
    parser.add_argument("--assert-backend-speedup-if-accelerated", type=float,
                        default=None, metavar="X",
                        help="like --assert-backend-speedup, but enforced "
                             "only when a compiled tier (numba/cc) is "
                             "active; on the pure-NumPy fallback the run "
                             "must still be bit-exact but speed is not "
                             "gated (the graceful-degradation contract)")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help=f"JSON result path (default {DEFAULT_OUTPUT})")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    if args.quick:
        window = 30
        num_tokens = 60
        stream_counts = (args.streams,)
        strides = (10,)
    else:
        window = args.sequence_length
        num_tokens = max(args.tokens, window + 1)
        stream_counts = tuple(
            sorted({max(4, args.streams // 4), args.streams})
        )
        strides = tuple(args.strides)

    engine = engine_at_level(
        SequenceClassifier(seed=0),
        OptimizationLevel[args.optimization],
        sequence_length=window,
    )
    document = run_sweep(
        engine, stream_counts=stream_counts, strides=strides,
        num_tokens=num_tokens, seed=args.seed, backend=args.backend,
    )
    for line in _report_lines(document):
        print(line)
    with open(args.output, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")

    required_backend_speedup = args.assert_backend_speedup
    if args.assert_backend_speedup_if_accelerated is not None:
        if document["accel_tier"] is not None:
            required_backend_speedup = args.assert_backend_speedup_if_accelerated
        else:
            print("no compiled tier available; backend speedup gate waived "
                  "(graceful fallback still checked for bit-exactness)")
    ok, message = _gate(document, args.assert_speedup, args.streams,
                        required_backend_speedup)
    if message:
        print(message)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
