"""Table I — traditional DL hardware comparison.

FPGA (CSD engine, hardware-emulation figure, CI "N/A") vs a Xeon-class
CPU and an A100-class GPU, per forward-pass item, with 95% confidence
intervals; plus the headline speedup (paper: 344.6x over the GPU).
"""

import pytest

from benchmarks.conftest import record_report
from repro.baselines.comparison import format_table, hardware_comparison
from repro.baselines.cpu import CpuInferenceBaseline
from repro.baselines.gpu import GpuInferenceBaseline
from repro.core.config import OptimizationLevel
from repro.core.engine import engine_at_level
from repro.core.weights import HostWeights

PAPER = {
    "FPGA": 2.15133,
    "CPU": (991.57750, 217.46576, 1765.68923),
    "GPU": (741.35336, 394.45317, 1088.25355),
    "speedup_gpu": 344.6,
}


@pytest.fixture(scope="module")
def comparison(bench_model):
    weights = HostWeights.from_model(bench_model)
    engine = engine_at_level(bench_model, OptimizationLevel.FIXED_POINT,
                             sequence_length=100)
    return hardware_comparison(
        engine, CpuInferenceBaseline(weights), GpuInferenceBaseline(weights),
        trials=10_000,
    )


def bench_table1_rows(benchmark, comparison):
    """Assemble and verify the table."""
    table = benchmark(format_table, comparison)
    lines = table.splitlines()
    lines.append("")
    lines.append(
        f"paper: FPGA {PAPER['FPGA']} us | CPU {PAPER['CPU'][0]} us "
        f"[{PAPER['CPU'][1]}, {PAPER['CPU'][2]}] | GPU {PAPER['GPU'][0]} us "
        f"[{PAPER['GPU'][1]}, {PAPER['GPU'][2]}] | {PAPER['speedup_gpu']}x over GPU"
    )
    record_report("Table I: hardware comparison", lines)

    assert comparison.fpga.mean_us == pytest.approx(PAPER["FPGA"], rel=0.15)
    assert comparison.cpu.mean_us == pytest.approx(PAPER["CPU"][0], rel=0.10)
    assert comparison.cpu.ci_low_us == pytest.approx(PAPER["CPU"][1], rel=0.25)
    assert comparison.cpu.ci_high_us == pytest.approx(PAPER["CPU"][2], rel=0.10)
    assert comparison.gpu.mean_us == pytest.approx(PAPER["GPU"][0], rel=0.10)
    # Shape claims: ordering and orders-of-magnitude speedup.
    assert comparison.fpga.mean_us < comparison.gpu.mean_us < comparison.cpu.mean_us
    assert comparison.speedup_over_gpu == pytest.approx(PAPER["speedup_gpu"], rel=0.2)


def bench_csd_simulated_inference(benchmark, bench_model):
    """Wall-clock cost of one simulated CSD inference (simulator speed)."""
    import numpy as np

    engine = engine_at_level(bench_model, OptimizationLevel.FIXED_POINT,
                             sequence_length=100)
    sequence = np.random.default_rng(0).integers(0, 278, size=100)
    result = benchmark(engine.infer_sequence, sequence)
    assert 0.0 <= result.probability <= 1.0


def bench_cpu_baseline_functional(benchmark, bench_model):
    """Wall-clock cost of the CPU baseline's real forward pass."""
    import numpy as np

    weights = HostWeights.from_model(bench_model)
    baseline = CpuInferenceBaseline(weights)
    sequence = np.random.default_rng(0).integers(0, 278, size=100)
    probability = benchmark(baseline.infer_sequence, sequence)
    assert 0.0 <= probability <= 1.0
