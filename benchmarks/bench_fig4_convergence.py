"""Fig. 4 — convergence of the LSTM training on ransomware sequences.

The paper trains the 7,472-parameter model on the 29K-sequence dataset
until convergence, peaking at test accuracy 0.9833 around 4K epochs.  At
benchmark scale (REPRO_BENCH_SCALE of the data, REPRO_BENCH_EPOCHS
epochs of mini-batch Adam rather than 4K epochs of the paper's regime)
the curve converges to the same accuracy plateau much earlier; the series
below is the reproduction's Fig. 4.
"""

from benchmarks.conftest import BENCH_EPOCHS, BENCH_SCALE, record_report

PAPER_PEAK_ACCURACY = 0.9833


def bench_fig4_convergence_curve(benchmark, bench_history):
    """Replay (and report) the recorded convergence curve."""

    def peak_accuracy():
        return bench_history.peak.test_accuracy

    peak = benchmark(peak_accuracy)

    lines = [
        f"dataset scale {BENCH_SCALE} ({BENCH_EPOCHS} epochs); "
        f"paper: peak 0.9833 near 4K epochs",
        f"{'epoch':>6s}{'train loss':>12s}{'test acc':>10s}{'f1':>8s}",
    ]
    for record in bench_history.records:
        lines.append(
            f"{record.epoch:6d}{record.train_loss:12.4f}"
            f"{record.test_accuracy:10.4f}{record.test_f1:8.4f}"
        )
    lines.append(f"peak accuracy: {peak:.4f} (paper {PAPER_PEAK_ACCURACY})")
    record_report("Fig. 4: training convergence", lines)

    # The curve must actually converge to the paper's plateau region.
    assert peak > 0.955
    # And must *be* a convergence curve: late accuracy above early.
    assert bench_history.records[-1].test_accuracy > bench_history.records[0].test_accuracy
