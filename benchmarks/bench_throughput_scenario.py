"""Deployment scenario — continuous background scanning throughput.

Quantifies the paper's Section I deployment claim: "data centers can
execute the classifier continuously in the background ... without
exhausting the CPU or consuming inordinate amounts of energy."  Reports
the CSD's sustained window-scanning rate (compute vs P2P-ingest ceiling),
how many busy hosts one drive can monitor, the host-simulation evaluation
rate of the vectorised batch path, and a multi-process incident replay
through the full detection + mitigation stack.
"""

import time

import numpy as np

from benchmarks.conftest import record_report
from repro.core.config import OptimizationLevel
from repro.core.engine import engine_at_level
from repro.core.throughput import throughput_report
from repro.hw.smartssd import SmartSSD
from repro.ransomware.benign import ALL_BENIGN_PROFILES
from repro.ransomware.families import LOCKBIT
from repro.ransomware.mitigation import ProtectedStorage
from repro.ransomware.replay import HostReplay
from repro.ransomware.sandbox import CuckooSandbox


def bench_sustained_throughput(benchmark, bench_model):
    engine = engine_at_level(bench_model, OptimizationLevel.FIXED_POINT,
                             sequence_length=100)

    def compute():
        return throughput_report(
            engine, SmartSSD(), api_calls_per_second=2000, detection_stride=10
        )

    report = benchmark(compute)
    lines = [
        f"compute ceiling : {report.windows_per_second_compute:10.0f} windows/s",
        f"ingest ceiling  : {report.windows_per_second_ingest:10.0f} windows/s (P2P)",
        f"bottleneck      : {report.bottleneck}",
        f"one busy host (2K calls/s, stride 10) uses "
        f"{report.utilization:.2%} of capacity",
        f"concurrent monitored hosts per CSD: {report.concurrent_streams:.0f}",
    ]
    record_report("Scenario: continuous background scanning", lines)
    assert report.windows_per_second > 1000
    assert report.concurrent_streams > 5


def bench_host_simulation_batch_rate(benchmark, bench_model, bench_telemetry):
    """Wall-clock rate at which *this simulation* evaluates windows.

    Distinct from the simulated-hardware ceilings above: the engine's
    batch path vectorises the forward pass across sequences, which speeds
    up evaluation/benchmarking of the reproduction itself.  The simulated
    per-sequence hardware time is byte-identical with or without batching
    — the modeled FPGA still processes sequences item by item.
    """
    engine = engine_at_level(bench_model, OptimizationLevel.FIXED_POINT,
                             sequence_length=100)
    if bench_telemetry is not None:
        engine.attach_telemetry(bench_telemetry)
    rng = np.random.default_rng(0)
    windows = rng.integers(0, 278, size=(256, 100))
    engine.infer_batch(windows[:2])  # warm-up

    result = benchmark(lambda: engine.infer_batch(windows))

    start = time.perf_counter()
    engine.infer_batch(windows)
    host_seconds = time.perf_counter() - start
    host_rate = windows.shape[0] / host_seconds
    simulated_us = result.timing.sequence_microseconds
    lines = [
        f"host-simulation batch rate : {host_rate:10.0f} windows/s "
        f"({windows.shape[0]} windows in {host_seconds * 1e3:.1f} ms)",
        f"simulated hardware latency : {simulated_us:10.1f} us/window "
        "(per sequence, unchanged by batching)",
        "note: batching accelerates the host simulation only; hardware-",
        "time claims always come from the per-sequence timing model.",
    ]
    record_report("Scenario: host-simulation batch evaluation rate", lines)
    assert host_rate > 100


def bench_multi_process_incident(benchmark, bench_model):
    """One infected process among benign neighbours, end to end."""
    engine = engine_at_level(bench_model, OptimizationLevel.FIXED_POINT,
                             sequence_length=100)
    sandbox = CuckooSandbox(seed=12)
    traces = [
        sandbox.execute_benign(ALL_BENIGN_PROFILES[0], 0, target_length=1200),
        sandbox.execute_ransomware(LOCKBIT, 4),
        sandbox.execute_benign(ALL_BENIGN_PROFILES[12], 0, target_length=1200),
        sandbox.execute_benign(ALL_BENIGN_PROFILES[20], 0, target_length=1200),
    ]

    def run():
        replay = HostReplay(
            engine, ProtectedStorage(SmartSSD().ssd),
            threshold=0.7, stride=20, confirmations=3,
        )
        outcomes = replay.run(traces, seed=3)
        return replay.incident_summary(outcomes), outcomes

    summary, outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    infected = next(o for o in outcomes.values() if o.is_ransomware)
    lines = [
        f"processes: {len(outcomes)} (1 ransomware, "
        f"{summary['benign_processes']} benign)",
        f"ransomware caught: {summary['caught']}/1 "
        f"(quarantined at interleaved step {infected.quarantined_at_step})",
        f"false quarantines: {summary['falsely_quarantined']}",
        f"encrypted writes blocked at the drive: {summary['writes_blocked']}",
        f"benign writes admitted: {summary['benign_writes_admitted']}",
    ]
    record_report("Scenario: multi-process incident replay", lines)
    assert summary["caught"] == 1
    assert summary["falsely_quarantined"] == 0
    assert summary["writes_blocked"] > 0
