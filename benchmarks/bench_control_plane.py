"""Hierarchical control plane at fleet scale (a million concurrent streams).

Drives :class:`~repro.core.control_plane.ControlPlane` — shard-affine
routing, QoS admission, autoscaling, rolling drains — over a simulated
rack/node/drive CSD fleet and measures what the operator contract in
``docs/control_plane.md`` promises:

* **Scale**: the full scenario registers ~1.05M ``StreamSession``\\ s
  (three QoS classes) across 64 drives and must peak at >= 1M concurrent
  sessions while every drive stays inside its resident-session memory
  budget (``within_memory_budget``).
* **Latency**: p50/p99 verdict latency (token arrival to verdict
  delivery, simulated microseconds) stays bounded — the p99 gate is one
  round (5 ms) by default.
* **Elasticity**: the registration burst pushes per-node utilisation
  over the high watermark (scale-up events), the idle tail after the
  hot streams stop drops it under the low watermark (scale-down).
* **Drain parity**: a scaled rung re-runs the same workload with two
  mid-run drive drains (live sessions migrate) and asserts the
  per-stream verdict sequences are **bit-identical** with and without
  the drains.

Writes ``BENCH_control_plane.json``.  Two entry points:

* ``pytest benchmarks/bench_control_plane.py`` — harness mode (small).
* ``PYTHONPATH=src python benchmarks/bench_control_plane.py [--quick]``
  — standalone CLI (the CI perf-smoke job runs ``--quick`` with
  ``--assert-concurrent`` / ``--assert-p99-us``; the committed JSON is
  the full run).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time

from repro.core.config import EngineConfig, OptimizationLevel
from repro.core.control_plane import (
    AutoscalePolicy,
    ControlPlane,
    ControlPlaneConfig,
    QosClass,
    TopologySpec,
    generate_fleet_rounds,
)
from repro.core.serving import ServingConfig, build_fleet
from repro.core.sessions import SessionConfig
from repro.core.weights import HostWeights
from repro.nn.model import SequenceClassifier

DEFAULT_OUTPUT = "BENCH_control_plane.json"
WINDOW = 16

#: QoS classes for every scenario: gold outranks silver outranks bronze.
CLASSES = (
    QosClass("gold", priority=2),
    QosClass("silver", priority=1),
    QosClass("bronze", priority=0),
)


def _make_engines(weights: HostWeights, count: int):
    dims = dataclasses.replace(weights.dimensions, sequence_length=WINDOW)
    config = EngineConfig(
        dimensions=dims, optimization=OptimizationLevel.FIXED_POINT
    )
    return build_fleet(weights, count, config=config)


def _make_plane(weights, topology, *, round_us, autoscale, telemetry=None):
    engines = _make_engines(weights, topology.total_drives)
    return ControlPlane(
        engines,
        topology,
        ControlPlaneConfig(
            round_us=round_us,
            classes=CLASSES,
            autoscale=autoscale,
            serving=ServingConfig(
                max_batch=1024, max_wait_us=200, queue_depth=4096
            ),
            sessions=SessionConfig(
                stride=WINDOW,
                memory_budget_bytes=8 * 2**20,
                # Sized so the idle-tail scale-down (the fleet shrinks to
                # a quarter) can concentrate every parked session on the
                # survivors without the checkpoint store discarding any:
                # ~1.05M sessions x 768 B / 16 drives ~= 50 MiB.
                checkpoint_budget_bytes=64 * 2**20,
                idle_after_steps=4,
            ),
            max_events_per_round=None,
        ),
        telemetry=telemetry,
    )


def run_scenario(weights, scenario: dict, *, drains=(), autoscale=True,
                 telemetry=None):
    """One control-plane run; returns ``(report, wall_seconds)``.

    ``drains`` is a sequence of ``(round_index, drive)`` manual drains
    injected before that round's arrivals are offered.
    """
    topology = TopologySpec(
        racks=scenario["racks"],
        nodes_per_rack=scenario["nodes_per_rack"],
        drives_per_node=scenario["drives_per_node"],
        active_per_node=scenario["active_per_node"],
        shards_per_drive=scenario["shards_per_drive"],
    )
    policy = AutoscalePolicy() if autoscale else None
    plane = _make_plane(
        weights, topology, round_us=scenario["round_us"], autoscale=policy,
        telemetry=telemetry,
    )
    rounds = generate_fleet_rounds(
        CLASSES,
        rounds=scenario["rounds"],
        round_us=scenario["round_us"],
        streams_per_class=scenario["streams_per_class"],
        hot_per_class=scenario["hot_per_class"],
        registration_rounds=scenario["registration_rounds"],
        hot_rounds=scenario["hot_rounds"],
        seed=scenario.get("seed", 0),
    )
    drain_at = {round_index: drive for round_index, drive in drains}
    start = time.perf_counter()
    for index, arrivals in enumerate(rounds):
        if index in drain_at:
            plane.drain(drain_at[index])
        plane.run_round(arrivals)
    report = plane.finish()
    return report, time.perf_counter() - start


def _scenario_row(scenario: dict, report, wall_seconds: float) -> dict:
    directions: dict = {}
    for event in report.scale_events:
        directions[event.direction] = directions.get(event.direction, 0) + 1
    return {
        "topology": {
            "racks": scenario["racks"],
            "nodes_per_rack": scenario["nodes_per_rack"],
            "drives_per_node": scenario["drives_per_node"],
            "active_per_node": scenario["active_per_node"],
            "total_drives": (scenario["racks"] * scenario["nodes_per_rack"]
                             * scenario["drives_per_node"]),
        },
        "streams_per_class": scenario["streams_per_class"],
        "hot_per_class": scenario["hot_per_class"],
        "rounds": report.rounds,
        "round_us": scenario["round_us"],
        "simulated_duration_us": report.duration_us,
        "tokens_offered": report.tokens_offered,
        "tokens_admitted": dict(report.tokens_admitted),
        "tokens_shed": {name: dict(reasons)
                        for name, reasons in report.tokens_shed.items()},
        "streams_admitted": dict(report.streams_admitted),
        "streams_denied": dict(report.streams_denied),
        "peak_concurrent_sessions": report.peak_concurrent_sessions,
        "final_concurrent_sessions": report.final_concurrent_sessions,
        "peak_resident_bytes_per_drive": report.peak_resident_bytes_per_drive,
        "resident_budget_bytes": report.resident_budget_bytes,
        "within_memory_budget": report.within_memory_budget,
        "verdicts": report.verdict_count,
        "verdict_latency_p50_us": report.verdict_latency_percentile_us(50),
        "verdict_latency_p99_us": report.verdict_latency_percentile_us(99),
        "scale_events": directions,
        "active_drives_final": report.active_drives,
        "drains": dict(report.drains),
        "migrated_sessions": report.migrated_sessions,
        "shard_moves": report.shard_moves,
        "wall_seconds": wall_seconds,
        "sessions_per_wall_second": (
            report.peak_concurrent_sessions / wall_seconds
            if wall_seconds else 0.0
        ),
    }


#: The drain-parity rung — small enough to run twice, busy enough that
#: the drained drives carry live sessions (the earlier standby-drain
#: version of this check was vacuous: 0 migrations proves nothing).
PARITY_SCENARIO = {
    "racks": 2, "nodes_per_rack": 2, "drives_per_node": 3,
    "active_per_node": 2, "shards_per_drive": 4,
    "streams_per_class": 1_500, "hot_per_class": 150,
    "rounds": 20, "round_us": 5_000,
    "registration_rounds": 10, "hot_rounds": 18,
}

#: Active drives in the parity topology are slots 0-1 of each 3-drive
#: node, i.e. drives {0,1}, {3,4}, {6,7}, {9,10}.
PARITY_DRAINS = ((5, 1), (9, 4))


def run_parity_check(weights) -> dict:
    """Same seed, with and without two mid-run drains: sequences must match."""
    base, _ = run_scenario(weights, PARITY_SCENARIO, autoscale=False)
    drained, _ = run_scenario(
        weights, PARITY_SCENARIO, drains=PARITY_DRAINS, autoscale=False
    )
    return {
        "drained_drives": [drive for _, drive in PARITY_DRAINS],
        "migrated_sessions": drained.migrated_sessions,
        "verdicts": base.verdict_count,
        "sequences_bit_exact": (
            base.verdict_sequences() == drained.verdict_sequences()
        ),
    }


def run_suite(weights, scenario: dict, *, parity: bool = True,
              telemetry=None) -> dict:
    report, wall_seconds = run_scenario(
        weights, scenario, telemetry=telemetry
    )
    document = {
        "benchmark": "control_plane",
        "window_length": WINDOW,
        "round_us": scenario["round_us"],
        "qos_classes": [
            {"name": qos.name, "priority": qos.priority} for qos in CLASSES
        ],
        "scenario": _scenario_row(scenario, report, wall_seconds),
    }
    if parity:
        document["drain_parity"] = run_parity_check(weights)
    return document


def _report_lines(document: dict) -> list:
    row = document["scenario"]
    topo = row["topology"]
    lines = [
        f"topology {topo['racks']}x{topo['nodes_per_rack']}x"
        f"{topo['drives_per_node']} drives "
        f"({topo['active_per_node']} active/node at start)  "
        f"rounds {row['rounds']} x {row['round_us']} us  "
        f"(simulated clock; wall {row['wall_seconds']:.1f}s)",
        f"sessions: peak {row['peak_concurrent_sessions']} concurrent "
        f"(final {row['final_concurrent_sessions']})  resident peak "
        f"{row['peak_resident_bytes_per_drive']} B/drive of "
        f"{row['resident_budget_bytes']} B budget "
        f"({'OK' if row['within_memory_budget'] else 'EXCEEDED'})",
        f"verdicts: {row['verdicts']}  latency p50 "
        f"{row['verdict_latency_p50_us']:.0f} us  p99 "
        f"{row['verdict_latency_p99_us']:.0f} us",
        f"autoscale: {row['scale_events'] or 'no events'}  "
        f"drains {row['drains'] or 'none'}  "
        f"migrated {row['migrated_sessions']}  "
        f"shard moves {row['shard_moves']}  "
        f"active at end {row['active_drives_final']}",
    ]
    shed = {name: reasons for name, reasons in row["tokens_shed"].items()
            if reasons}
    if shed:
        lines.append(f"tokens shed: {shed}")
    parity = document.get("drain_parity")
    if parity is not None:
        lines.append(
            f"drain parity: drained drives {parity['drained_drives']} "
            f"({parity['migrated_sessions']} live sessions migrated), "
            f"{parity['verdicts']} verdicts, bit-exact "
            f"{parity['sequences_bit_exact']}"
        )
    return lines


def _gate(document: dict, min_concurrent, max_p99_us) -> tuple:
    """Returns (ok, message) for the CI scale/latency/parity gate."""
    row = document["scenario"]
    if not row["within_memory_budget"]:
        return False, (
            f"FAIL: peak resident {row['peak_resident_bytes_per_drive']} B "
            f"per drive exceeds the {row['resident_budget_bytes']} B budget"
        )
    parity = document.get("drain_parity")
    if parity is not None:
        if not parity["sequences_bit_exact"]:
            return False, "FAIL: mid-run drains changed verdict sequences"
        if parity["migrated_sessions"] == 0:
            return False, ("FAIL: drain parity check drained idle drives "
                           "(0 migrations) — the check is vacuous")
    messages = []
    if min_concurrent is not None:
        if row["peak_concurrent_sessions"] < min_concurrent:
            return False, (
                f"FAIL: peak {row['peak_concurrent_sessions']} concurrent "
                f"sessions < required {min_concurrent}"
            )
        messages.append(
            f"concurrency gate passed: {row['peak_concurrent_sessions']} "
            f">= {min_concurrent}"
        )
    if max_p99_us is not None:
        if row["verdicts"] == 0:
            return False, "FAIL: no verdicts delivered; p99 gate is vacuous"
        if row["verdict_latency_p99_us"] > max_p99_us:
            return False, (
                f"FAIL: verdict p99 {row['verdict_latency_p99_us']:.0f} us "
                f"> bound {max_p99_us:.0f} us"
            )
        messages.append(
            f"latency gate passed: p99 "
            f"{row['verdict_latency_p99_us']:.0f} us <= {max_p99_us:.0f} us"
        )
    return True, "; ".join(messages)


#: Full scenario: 64 drives, ~1.05M streams, 48k hot streams completing
#: two detection windows, a 12-round idle tail for the scale-down demo.
FULL_SCENARIO = {
    "racks": 4, "nodes_per_rack": 4, "drives_per_node": 4,
    "active_per_node": 3, "shards_per_drive": 12,
    "streams_per_class": 350_000, "hot_per_class": 16_000,
    "rounds": 48, "round_us": 5_000,
    "registration_rounds": 40, "hot_rounds": 36,
}

#: CI smoke: same shape, ~12k streams, seconds of wall time.
QUICK_SCENARIO = {
    "racks": 2, "nodes_per_rack": 2, "drives_per_node": 3,
    "active_per_node": 2, "shards_per_drive": 4,
    "streams_per_class": 4_000, "hot_per_class": 300,
    "rounds": 20, "round_us": 5_000,
    "registration_rounds": 10, "hot_rounds": 16,
}


# ----------------------------------------------------------------------
# Harness mode
# ----------------------------------------------------------------------


def bench_control_plane(benchmark, bench_model, bench_telemetry):
    from benchmarks.conftest import record_report

    weights = HostWeights.from_model(bench_model)
    tiny = dict(QUICK_SCENARIO, streams_per_class=800, hot_per_class=100,
                rounds=12, registration_rounds=6, hot_rounds=10)
    document = run_suite(weights, tiny, telemetry=bench_telemetry)
    benchmark(lambda: run_scenario(weights, tiny))
    record_report(
        "Hierarchical control plane (simulated fleet)",
        _report_lines(document),
    )
    ok, message = _gate(document, min_concurrent=2_000, max_p99_us=5_000)
    assert ok, message


# ----------------------------------------------------------------------
# Standalone CLI (CI perf smoke / the committed full run)
# ----------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="scaled-down CI smoke (~12k streams) instead "
                             "of the full ~1.05M-stream scenario")
    parser.add_argument("--skip-parity", action="store_true",
                        help="skip the drain-parity rung (runs the "
                             "workload twice)")
    parser.add_argument("--assert-concurrent", type=int, default=None,
                        metavar="N",
                        help="exit non-zero unless the peak concurrent "
                             "session count reaches N "
                             "(the full-scale contract is 1000000)")
    parser.add_argument("--assert-p99-us", type=float, default=None,
                        metavar="US",
                        help="exit non-zero unless verdict p99 latency "
                             "(simulated us) stays within US")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help=f"JSON result path (default {DEFAULT_OUTPUT})")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    scenario = dict(QUICK_SCENARIO if args.quick else FULL_SCENARIO,
                    seed=args.seed)
    weights = HostWeights.from_model(SequenceClassifier(seed=0))
    document = run_suite(weights, scenario, parity=not args.skip_parity)
    for line in _report_lines(document):
        print(line)
    with open(args.output, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")

    min_concurrent = args.assert_concurrent
    if min_concurrent is None and not args.quick:
        min_concurrent = 1_000_000
    ok, message = _gate(document, min_concurrent, args.assert_p99_us)
    if message:
        print(message)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
