"""Per-family detection breakdown.

The paper reports aggregate metrics; a per-family view shows whether the
detector's coverage is uniform across Table II's behaviourally diverse
families (worm-style Wannacry vs locker-style Virlock vs doxware
Chimera), through the deployed fixed-point engine.
"""

import numpy as np

from benchmarks.conftest import record_report
from repro.core.config import OptimizationLevel
from repro.core.engine import engine_at_level
from repro.ransomware.analysis import per_family_detection
from repro.ransomware.detector import RansomwareDetector


def bench_per_family_detection(benchmark, bench_model, bench_dataset):
    engine = engine_at_level(bench_model, OptimizationLevel.FIXED_POINT,
                             sequence_length=bench_dataset.sequence_length)
    detector = RansomwareDetector(engine)
    # Fixed-size stratified sample to keep engine time bounded: up to 40
    # windows per family.
    per_source_quota = 40
    indices: list = []
    seen: dict = {}
    for index, (source, label) in enumerate(
        zip(bench_dataset.sources, bench_dataset.labels)
    ):
        if label == 1 and seen.get(source, 0) < per_source_quota:
            seen[source] = seen.get(source, 0) + 1
            indices.append(index)
    sample = bench_dataset.subset(np.array(indices))

    def run():
        return per_family_detection(detector, sample)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'family':12s}{'windows':>9s}{'detected':>10s}{'rate':>8s}"]
    for result in results:
        lines.append(
            f"{result.source:12s}{result.windows:>9d}{result.detected:>10d}"
            f"{result.rate:>8.1%}"
        )
    overall = sum(r.detected for r in results) / sum(r.windows for r in results)
    lines.append(f"overall detection on sampled ransomware windows: {overall:.1%}")
    record_report("Per-family detection (fixed-point engine)", lines)

    assert len(results) == 10  # every Table II family represented
    assert overall > 0.9
    # No family should be a blind spot.
    assert min(result.rate for result in results) > 0.6
