"""Dependability — fault injection on the deployed engine.

DSN-appropriate questions the paper leaves open, answered on the
simulated substrate:

* **SEU sensitivity** — how many random bit flips in the FPGA-resident
  quantised weights does the detector absorb before accuracy degrades?
  (Informs BRAM scrubbing intervals.)
* **AXI stalls** — degraded memory service slows inference but must not
  change verdicts.
* **DMA retry** — transient P2P failures cost retries, never corruption.
"""

import numpy as np

from benchmarks.conftest import record_report
from repro.core.config import OptimizationLevel
from repro.core.engine import engine_at_level
from repro.hw.faults import AxiStallFault, DmaErrorFault, FaultPlan, retry_dma
from repro.nn.metrics import classification_report


def _flip_random_bits(quantized_embedding, flips: int, rng, max_bit: int = 44):
    """Return a copy with ``flips`` random bit flips (SEU burst model)."""
    corrupted = np.array(quantized_embedding, copy=True)
    flat = corrupted.reshape(-1)
    for _ in range(flips):
        index = int(rng.integers(0, flat.size))
        bit = int(rng.integers(0, max_bit))
        flat[index] = np.int64(flat[index]) ^ np.int64(1 << bit)
    return corrupted


def bench_seu_sensitivity(benchmark, bench_model, bench_split):
    _, test = bench_split
    sample = test.subset(np.arange(min(200, len(test))))
    engine = engine_at_level(bench_model, OptimizationLevel.FIXED_POINT,
                             sequence_length=sample.sequence_length)
    pristine = engine.quantized.embedding
    baseline = classification_report(engine.predict(sample.sequences), sample.labels)

    def sweep():
        rng = np.random.default_rng(7)
        results = {}
        for flips in (0, 1, 8, 64, 512):
            engine.preprocess._embedding_fixed = _flip_random_bits(pristine, flips, rng)
            metrics = classification_report(
                engine.predict(sample.sequences), sample.labels
            )
            results[flips] = metrics["accuracy"]
        engine.preprocess._embedding_fixed = pristine  # scrub
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"baseline accuracy {baseline['accuracy']:.4f}",
             f"{'bit flips':>10s}{'accuracy':>10s}{'delta':>9s}"]
    for flips, accuracy in results.items():
        lines.append(
            f"{flips:>10d}{accuracy:>10.4f}{accuracy - baseline['accuracy']:>+9.4f}"
        )
    record_report("Dependability: SEU bit flips in weight memory", lines)

    # Single-event upsets are absorbed; a 512-flip burst visibly degrades.
    assert abs(results[1] - baseline["accuracy"]) < 0.03
    assert results[512] <= results[0] + 1e-9


def bench_axi_stall_latency(benchmark):
    """Stalls stretch transfers deterministically; no data corruption."""

    def measure():
        from repro.hw.axi import AxiMasterPort

        port = AxiMasterPort(name="p")
        plan = FaultPlan(axi_stall=AxiStallFault(period=3, extra_cycles=150))
        healthy = sum(port.read_cycles(256) for _ in range(30))
        degraded = healthy + sum(plan.extra_transfer_cycles() for _ in range(30))
        return healthy, degraded

    healthy, degraded = benchmark(measure)
    lines = [
        f"30 reads healthy:  {healthy} cycles",
        f"30 reads degraded: {degraded} cycles "
        f"(+{(degraded - healthy) / healthy:.0%} from periodic stalls)",
    ]
    record_report("Dependability: AXI stall degradation", lines)
    assert degraded > healthy


def bench_dma_retry_cost(benchmark):
    """Transient P2P DMA failures: bounded retry cost, guaranteed outcome."""

    def measure():
        attempts = []
        for failures in (0, 1, 2):
            plan = FaultPlan(dma_error=DmaErrorFault(failures=failures))
            attempts.append(retry_dma(plan, attempts=4))
        return attempts

    attempts = benchmark(measure)
    lines = [f"failures={f}: {a} attempt(s)" for f, a in zip((0, 1, 2), attempts)]
    record_report("Dependability: P2P DMA retry", lines)
    assert attempts == [1, 2, 3]
