"""Shared fixtures and reporting for the benchmark harness.

Every bench regenerates one of the paper's tables/figures (or an ablation
of a design choice) and *prints* the paper-vs-measured rows in the pytest
terminal summary, so ``pytest benchmarks/ --benchmark-only`` produces a
readable reproduction report even with output capture on.

Environment knobs:

* ``REPRO_BENCH_SCALE``  — dataset scale (default 0.1; 1.0 = paper size).
* ``REPRO_BENCH_EPOCHS`` — training epochs for the convergence/metric
  benches (default 25).
* ``REPRO_BENCH_TELEMETRY`` — path; when set, the harness records
  structured telemetry in the ``docs/observability.md`` JSON-lines
  schema: every ``record_report`` block is streamed as a
  ``bench_report`` event, engine-driving benches attach the shared
  session :class:`~repro.telemetry.Telemetry` (``bench_telemetry``
  fixture), and the final metric/span snapshot is appended at session
  end — so benchmark result files are self-describing.
* ``REPRO_BENCH_WORKERS`` — worker-process count for benches that can
  shard across a :class:`~repro.core.parallel.WorkerPool` (default 0 =
  auto: the host's core count).  Worker telemetry merges into the same
  session Telemetry through the exact-merge snapshot path, so
  ``REPRO_BENCH_TELEMETRY`` still produces **one** merged export with
  identical counters/histograms whether the pool is on or off.
"""

from __future__ import annotations

import os

import pytest

from repro.nn.model import SequenceClassifier
from repro.nn.trainer import Trainer, TrainingConfig
from repro.ransomware.dataset import build_dataset

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.1"))
BENCH_EPOCHS = int(os.environ.get("REPRO_BENCH_EPOCHS", "25"))
BENCH_TELEMETRY_PATH = os.environ.get("REPRO_BENCH_TELEMETRY", "")
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "0") or 0)

#: Collected report blocks, printed in the terminal summary.
_REPORT_BLOCKS: list = []

#: The session Telemetry (or None when REPRO_BENCH_TELEMETRY is unset).
_TELEMETRY = None
if BENCH_TELEMETRY_PATH:
    from repro.telemetry import JsonLinesExporter, Telemetry

    _TELEMETRY = Telemetry(exporters=[JsonLinesExporter(BENCH_TELEMETRY_PATH)])


def record_report(title: str, lines) -> None:
    """Queue a titled block of result lines for the final summary."""
    _REPORT_BLOCKS.append((title, list(lines)))
    if _TELEMETRY is not None:
        _TELEMETRY.emit(
            {"type": "bench_report", "title": title,
             "lines": [str(line) for line in lines]}
        )


def pytest_terminal_summary(terminalreporter):
    if _TELEMETRY is not None:
        _TELEMETRY.close()
    if not _REPORT_BLOCKS:
        return
    terminalreporter.section("paper reproduction results")
    for title, lines in _REPORT_BLOCKS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"--- {title} ---")
        for line in lines:
            terminalreporter.write_line(str(line))


@pytest.fixture(scope="session")
def bench_telemetry():
    """The session Telemetry, or ``None`` when the knob is unset.

    Benches that build engines attach it so kernel latency histograms
    and span trees land next to the bench_report events.
    """
    return _TELEMETRY


@pytest.fixture(scope="session")
def bench_workers():
    """Worker-pool size for shardable benches (``REPRO_BENCH_WORKERS``).

    0 (the default) means auto: use the host's core count.  1 disables
    the pool entirely.
    """
    if BENCH_WORKERS > 0:
        return BENCH_WORKERS
    return max(1, os.cpu_count() or 1)


@pytest.fixture(scope="session")
def bench_dataset():
    """The synthetic dataset at benchmark scale."""
    return build_dataset(scale=BENCH_SCALE, seed=1)


@pytest.fixture(scope="session")
def bench_split(bench_dataset):
    return bench_dataset.train_test_split(test_fraction=0.2, seed=0)


@pytest.fixture(scope="session")
def bench_history_and_model(bench_split):
    """One shared training run: Fig. 4's curve plus the deployed model."""
    train, test = bench_split
    model = SequenceClassifier(seed=0)
    trainer = Trainer(
        model,
        TrainingConfig(
            epochs=BENCH_EPOCHS, batch_size=64, learning_rate=0.005,
            eval_every=max(1, BENCH_EPOCHS // 10),
            restore_best_weights=True,  # the paper reports peak metrics
        ),
    )
    history = trainer.fit(train.sequences, train.labels, test.sequences, test.labels)
    return history, model


@pytest.fixture(scope="session")
def bench_model(bench_history_and_model):
    return bench_history_and_model[1]


@pytest.fixture(scope="session")
def bench_history(bench_history_and_model):
    return bench_history_and_model[0]
