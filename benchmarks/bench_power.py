"""Power/energy comparison (Sections I, V, VII's efficiency claims).

The paper argues CSDs cut energy under continuous background inference.
Energy = device power x per-inference time; with the Table I latencies
and representative board powers the FPGA wins by ~3-4 orders of
magnitude per inference, and by device power alone even at equal speed.
"""

from benchmarks.conftest import record_report
from repro.core.config import EngineConfig, OptimizationLevel
from repro.core.engine import CSDInferenceEngine
from repro.hw.power import (
    A100_GPU_POWER,
    SMARTSSD_FPGA_POWER,
    XEON_CPU_POWER,
    energy_comparison,
)
from repro.baselines.cpu import PAPER_CPU_MEAN_US
from repro.baselines.gpu import PAPER_GPU_MEAN_US

SEQUENCE_ITEMS = 100


def bench_energy_per_inference(benchmark):
    engine = CSDInferenceEngine.build_unloaded(
        EngineConfig(optimization=OptimizationLevel.FIXED_POINT)
    )
    fpga_item_us = engine.per_item_microseconds()

    def compute():
        seconds = {
            SMARTSSD_FPGA_POWER: fpga_item_us * SEQUENCE_ITEMS * 1e-6,
            XEON_CPU_POWER: PAPER_CPU_MEAN_US * SEQUENCE_ITEMS * 1e-6,
            A100_GPU_POWER: PAPER_GPU_MEAN_US * SEQUENCE_ITEMS * 1e-6,
        }
        return energy_comparison(seconds)

    joules = benchmark(compute)
    fpga = joules["SmartSSD-FPGA"]
    lines = [f"{'device':18s}{'mJ/window':>12s}{'vs FPGA':>10s}"]
    for device, value in joules.items():
        lines.append(f"{device:18s}{value * 1e3:>12.4f}{value / fpga:>9.0f}x")
    lines.append(f"(one {SEQUENCE_ITEMS}-item window per device, active power only)")
    record_report("Power: energy per inference", lines)

    assert joules["SmartSSD-FPGA"] < joules["Xeon-Silver-4114"] / 100
    assert joules["SmartSSD-FPGA"] < joules["A100-40GB"] / 1000


def bench_continuous_monitoring_power(benchmark):
    """The background-monitoring scenario: windows/second at budgeted W."""
    engine = CSDInferenceEngine.build_unloaded(
        EngineConfig(optimization=OptimizationLevel.FIXED_POINT)
    )

    def rate_per_watt():
        window_seconds = engine.per_item_microseconds() * SEQUENCE_ITEMS * 1e-6
        windows_per_second = 1.0 / window_seconds
        return windows_per_second / SMARTSSD_FPGA_POWER.active_watts

    fpga_rate = benchmark(rate_per_watt)
    cpu_rate = (1.0 / (PAPER_CPU_MEAN_US * SEQUENCE_ITEMS * 1e-6)) / XEON_CPU_POWER.active_watts
    gpu_rate = (1.0 / (PAPER_GPU_MEAN_US * SEQUENCE_ITEMS * 1e-6)) / A100_GPU_POWER.active_watts
    lines = [
        f"FPGA: {fpga_rate:10.1f} windows/s/W",
        f"CPU:  {cpu_rate:10.1f} windows/s/W",
        f"GPU:  {gpu_rate:10.1f} windows/s/W",
    ]
    record_report("Power: monitoring throughput per watt", lines)
    assert fpga_rate > 100 * cpu_rate
