"""Ablation — shuffled-window split vs held-out-family split.

The paper merges and shuffles all windows before splitting (Appendix A),
so near-duplicate windows from the same execution can land on both sides
of the split.  A stricter protocol holds out whole families.  This bench
quantifies the gap — and tests the paper's generalisation claim that the
sliding-window procedure helps the model flag malicious behaviour it has
not seen (here: families excluded from training entirely).
"""

import numpy as np

from benchmarks.conftest import BENCH_SCALE, record_report
from repro.nn.metrics import classification_report
from repro.nn.model import SequenceClassifier
from repro.nn.trainer import Trainer, TrainingConfig

HELD_OUT_FAMILIES = {"Cerber", "BadRabbit"}


def bench_split_protocols(benchmark, bench_dataset):
    def run():
        results = {}
        # Protocol 1: the paper's shuffled-window split.
        train, test = bench_dataset.train_test_split(test_fraction=0.2, seed=0)
        model = SequenceClassifier(seed=0)
        Trainer(model, TrainingConfig(epochs=10, eval_every=10, learning_rate=0.005)).fit(
            train.sequences, train.labels, test.sequences, test.labels
        )
        results["shuffled windows"] = classification_report(
            model.predict(test.sequences), test.labels
        )

        # Protocol 2: hold out whole families (never seen in training).
        train_f, test_f = bench_dataset.split_by_source(HELD_OUT_FAMILIES)
        model_f = SequenceClassifier(seed=0)
        Trainer(model_f, TrainingConfig(epochs=10, eval_every=10, learning_rate=0.005)).fit(
            train_f.sequences, train_f.labels, test_f.sequences, test_f.labels
        )
        # The held-out set is all-positive: report detection rate.
        detection = float(model_f.predict(test_f.sequences).mean())
        results["held-out families"] = {"detection_rate": detection}
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    shuffled = results["shuffled windows"]
    holdout = results["held-out families"]
    lines = [
        f"scale {BENCH_SCALE}",
        f"shuffled-window split (paper's): accuracy {shuffled['accuracy']:.4f}, "
        f"f1 {shuffled['f1']:.4f}",
        f"held-out families ({', '.join(sorted(HELD_OUT_FAMILIES))}): "
        f"detection rate {holdout['detection_rate']:.1%}",
    ]
    record_report("Ablation: split protocol / cross-family generalisation", lines)

    assert shuffled["accuracy"] > 0.95
    # Unseen families still mostly detected: shared behavioural motifs
    # (encryption loops, shadow deletion) transfer across families.
    assert holdout["detection_rate"] > 0.7
