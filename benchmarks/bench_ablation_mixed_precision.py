"""Ablation — mixed precision (Section VI, future work).

Maps the accuracy/DSP-cost frontier of per-stage scale assignments: the
gates tolerate coarse formats (their outputs pass through saturating
activations) while the cell state and head want the full 10^6 scale (the
cell integrates error over all 100 timesteps).
"""

import numpy as np

from benchmarks.conftest import record_report
from repro.core.mixed_precision import MixedPrecisionPolicy, evaluate_policy
from repro.core.weights import HostWeights
from repro.fixedpoint.qformat import QFormat

POLICIES = (
    ("uniform 10^6 (paper)", 10**6, 10**6),
    ("gates 10^3 / state 10^6", 10**3, 10**6),
    ("gates 10^2 / state 10^6", 10**2, 10**6),
    ("gates 10^6 / state 10^3", 10**6, 10**3),
    ("uniform 10^3", 10**3, 10**3),
)


def bench_mixed_precision_frontier(benchmark, bench_model, bench_split):
    _, test = bench_split
    sample = test.subset(np.arange(min(40, len(test))))
    weights = HostWeights.from_model(bench_model)
    reference = bench_model.predict_proba(sample.sequences)

    def sweep():
        results = {}
        for label, gate_scale, state_scale in POLICIES:
            policy = MixedPrecisionPolicy(QFormat(gate_scale), QFormat(state_scale))
            results[label] = evaluate_policy(
                weights, policy, sample.sequences, reference
            )
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [f"{'policy':28s}{'max |dp|':>10s}{'agree':>8s}{'DSP cost':>10s}"]
    for label, _, _ in POLICIES:
        evaluation = results[label]
        lines.append(
            f"{label:28s}{evaluation.max_probability_error:>10.4f}"
            f"{evaluation.decision_agreement:>7.1%}"
            f"{evaluation.relative_dsp_cost:>10.2f}"
        )
    record_report("Ablation: mixed precision (Section VI)", lines)

    paper = results["uniform 10^6 (paper)"]
    cheap_gates = results["gates 10^3 / state 10^6"]
    # Low-precision gates keep decisions while cutting DSP cost.
    assert cheap_gates.decision_agreement >= paper.decision_agreement - 0.05
    assert cheap_gates.relative_dsp_cost < 1.0
