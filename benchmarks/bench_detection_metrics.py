"""Section IV detection metrics — accuracy / precision / recall / F1.

The paper reports 0.9833 / 0.9789 / 0.9890 / 0.9840 on the held-out split
at the training peak.  This bench evaluates the trained model through the
*fixed-point CSD engine* (the deployed arithmetic, not the float training
model) and compares.
"""

import numpy as np
import pytest

from benchmarks.conftest import BENCH_SCALE, record_report
from repro.core.config import OptimizationLevel
from repro.core.engine import engine_at_level
from repro.nn.metrics import classification_report

PAPER_METRICS = {
    "accuracy": 0.9833,
    "precision": 0.9789,
    "recall": 0.9890,
    "f1": 0.9840,
}


def bench_detection_metrics_on_csd(benchmark, bench_model, bench_split):
    _, test = bench_split
    engine = engine_at_level(bench_model, OptimizationLevel.FIXED_POINT,
                             sequence_length=test.sequence_length)
    # Simulated per-sequence inference is heavyweight; evaluate a fixed
    # subsample through the engine and the full split through the model.
    sample_size = min(400, len(test))
    sample = test.subset(np.arange(sample_size))

    def evaluate():
        return classification_report(engine.predict(sample.sequences), sample.labels)

    metrics = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    model_metrics = classification_report(
        bench_model.predict(test.sequences), test.labels
    )

    lines = [
        f"scale {BENCH_SCALE}, CSD engine on {sample_size} held-out windows; "
        f"float model on all {len(test)}",
        f"{'metric':>10s}{'CSD engine':>12s}{'float model':>13s}{'paper':>8s}",
    ]
    for name, paper_value in PAPER_METRICS.items():
        lines.append(
            f"{name:>10s}{metrics[name]:12.4f}{model_metrics[name]:13.4f}"
            f"{paper_value:8.4f}"
        )
    record_report("Detection metrics (Section IV)", lines)

    for name, paper_value in PAPER_METRICS.items():
        assert metrics[name] == pytest.approx(paper_value, abs=0.035), name
        assert model_metrics[name] == pytest.approx(paper_value, abs=0.025), name
