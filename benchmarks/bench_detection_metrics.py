"""Section IV detection metrics — accuracy / precision / recall / F1.

The paper reports 0.9833 / 0.9789 / 0.9890 / 0.9840 on the held-out split
at the training peak.  This bench evaluates the trained model through the
*fixed-point CSD engine* (the deployed arithmetic, not the float training
model) and compares.  It also measures the host-simulation speedup of the
vectorised batch path over the per-sequence loop — a claim about this
simulation's wall-clock only; the simulated per-sequence hardware time is
unchanged by batching.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import BENCH_SCALE, record_report
from repro.core.config import OptimizationLevel
from repro.core.engine import engine_at_level
from repro.nn.metrics import classification_report

PAPER_METRICS = {
    "accuracy": 0.9833,
    "precision": 0.9789,
    "recall": 0.9890,
    "f1": 0.9840,
}


def bench_detection_metrics_on_csd(benchmark, bench_model, bench_split, bench_telemetry):
    _, test = bench_split
    engine = engine_at_level(bench_model, OptimizationLevel.FIXED_POINT,
                             sequence_length=test.sequence_length)
    if bench_telemetry is not None:
        engine.attach_telemetry(bench_telemetry)
    # Simulated per-sequence inference is heavyweight; evaluate a fixed
    # subsample through the engine and the full split through the model.
    sample_size = min(400, len(test))
    sample = test.subset(np.arange(sample_size))

    def evaluate():
        return classification_report(engine.predict(sample.sequences), sample.labels)

    metrics = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    model_metrics = classification_report(
        bench_model.predict(test.sequences), test.labels
    )

    # Host-simulation wall-clock: vectorised batch vs per-sequence loop on
    # a 64-window batch.  Simulated hardware time per sequence is identical
    # on both paths; only the simulation gets faster.
    batch = np.asarray(sample.sequences[: min(64, sample_size)])
    engine.infer_batch(batch[:2])  # warm-up
    start = time.perf_counter()
    batched_probs = engine.infer_batch(batch).probabilities
    batched_seconds = time.perf_counter() - start
    start = time.perf_counter()
    loop_probs = np.array(
        [engine.infer_sequence(row).probability for row in batch]
    )
    loop_seconds = time.perf_counter() - start
    speedup = loop_seconds / batched_seconds
    assert np.array_equal(batched_probs, loop_probs)  # bit-exact parity
    assert speedup >= 5.0, (
        f"batched path only {speedup:.1f}x faster than the sequential loop"
    )

    lines = [
        f"scale {BENCH_SCALE}, CSD engine on {sample_size} held-out windows; "
        f"float model on all {len(test)}",
        f"{'metric':>10s}{'CSD engine':>12s}{'float model':>13s}{'paper':>8s}",
    ]
    for name, paper_value in PAPER_METRICS.items():
        lines.append(
            f"{name:>10s}{metrics[name]:12.4f}{model_metrics[name]:13.4f}"
            f"{paper_value:8.4f}"
        )
    lines.append(
        f"host-simulation batch path: {len(batch)} windows in "
        f"{batched_seconds * 1e3:.1f} ms vs {loop_seconds * 1e3:.1f} ms "
        f"sequential ({speedup:.1f}x; bit-exact, simulated hardware time "
        f"per sequence unchanged)"
    )
    record_report("Detection metrics (Section IV)", lines)

    for name, paper_value in PAPER_METRICS.items():
        assert metrics[name] == pytest.approx(paper_value, abs=0.035), name
        assert model_metrics[name] == pytest.approx(paper_value, abs=0.025), name
