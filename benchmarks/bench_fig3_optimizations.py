"""Fig. 3 — FPGA LSTM inference time reductions through optimisations.

Regenerates the per-kernel execution times (us per forward-pass item) for
the Vanilla, +II, and +Fixed-point configurations and checks them against
the paper's bars.
"""

import pytest

from benchmarks.conftest import record_report
from repro.core.config import EngineConfig, OptimizationLevel
from repro.core.timing import kernel_breakdown, optimization_sweep

#: The paper's Fig. 3 values (us per item).
PAPER_FIG3 = {
    "VANILLA": {"preprocess": 0.800, "gates": 1.27700, "hidden_state": 5.076,
                "total": 7.153},
    "II_OPTIMIZED": {"preprocess": 0.743, "gates": 1.65100, "hidden_state": 2.001,
                     "total": 4.395},
    "FIXED_POINT": {"preprocess": 0.740, "gates": 0.00333, "hidden_state": 1.408,
                    "total": 2.15133},
}


def bench_fig3_sweep(benchmark):
    """Regenerate the full figure; every bar within 15% of the paper."""
    sweep = benchmark(optimization_sweep)

    lines = [f"{'level':14s}{'kernel':14s}{'measured':>10s}{'paper':>10s}{'err':>8s}"]
    for level, kernels in sweep.items():
        for kernel, measured in kernels.items():
            paper = PAPER_FIG3[level][kernel]
            error = (measured - paper) / paper
            lines.append(
                f"{level:14s}{kernel:14s}{measured:10.5f}{paper:10.5f}"
                f"{error:+8.1%}"
            )
            assert measured == pytest.approx(paper, rel=0.15), (level, kernel)
    record_report("Fig. 3: kernel times by optimisation (us/item)", lines)


def bench_fig3_shape_claims(benchmark):
    """The three textual claims the figure supports."""
    sweep = benchmark(optimization_sweep)
    preprocess = [sweep[level.name]["preprocess"] for level in OptimizationLevel]
    # 1. preprocess "remained fairly fixed".
    assert max(preprocess) - min(preprocess) < 0.2 * max(preprocess)
    # 2. II minimisation cuts hidden_state by a wide margin.
    assert sweep["II_OPTIMIZED"]["hidden_state"] < 0.5 * sweep["VANILLA"]["hidden_state"]
    # 3. fixed-point dramatically cuts gates.
    assert sweep["FIXED_POINT"]["gates"] < 0.01 * sweep["II_OPTIMIZED"]["gates"]
    record_report(
        "Fig. 3 shape claims",
        [
            "preprocess fairly fixed across levels: PASS",
            "II gives wide-margin hidden_state cut: PASS",
            "fixed-point dramatically cuts gates:   PASS",
        ],
    )


def bench_fig3_single_breakdown(benchmark):
    """Throughput of one breakdown evaluation (the simulator itself)."""
    config = EngineConfig(optimization=OptimizationLevel.FIXED_POINT)
    result = benchmark(kernel_breakdown, config)
    assert result["total"] > 0
