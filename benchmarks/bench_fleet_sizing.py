"""Deployment scenario — sizing a node's CSD fleet (Section II).

"a scalable solution ... allowing for the installation of multiple
devices within a single node": given a rack of monitored hosts, how many
SmartSSDs does the scanning workload need, and how gracefully does the
plan absorb a device failure?
"""

from benchmarks.conftest import record_report
from repro.core.config import EngineConfig, OptimizationLevel
from repro.core.engine import CSDInferenceEngine
from repro.core.fleet import FleetPlanner, MonitoredStream
from repro.core.throughput import throughput_report


def _rack():
    """A mixed rack: 8 busy DB hosts, 24 app servers, 32 quiet VMs."""
    streams = []
    streams += [MonitoredStream(f"db{i}", 8000, detection_stride=10) for i in range(8)]
    streams += [MonitoredStream(f"app{i}", 3000, detection_stride=10) for i in range(24)]
    streams += [MonitoredStream(f"vm{i}", 800, detection_stride=10) for i in range(32)]
    return streams


def bench_fleet_sizing(benchmark):
    engine = CSDInferenceEngine.build_unloaded(
        EngineConfig(optimization=OptimizationLevel.FIXED_POINT)
    )
    report = throughput_report(engine)
    planner = FleetPlanner(report, headroom=0.8)
    streams = _rack()

    def plan_and_fail():
        plan = planner.plan(streams)
        degraded = planner.rebalance_after_failure(
            plan, plan.assignments[0].device_index
        )
        return plan, degraded

    plan, degraded = benchmark(plan_and_fail)
    demand = sum(s.windows_per_second for s in streams)
    lines = [
        f"rack: {len(streams)} monitored streams, "
        f"{demand:.0f} windows/s total demand",
        f"per-CSD capacity: {report.windows_per_second:.0f} windows/s "
        f"({report.bottleneck}-bound), 80% headroom",
        f"devices needed: {plan.devices_needed} "
        f"(peak utilisation {plan.peak_utilization:.0%})",
        f"after one device failure: {degraded.devices_needed} devices, "
        f"peak utilisation {degraded.peak_utilization:.0%}",
    ]
    record_report("Scenario: fleet sizing for one node", lines)

    assert plan.devices_needed >= 1
    assert plan.peak_utilization <= 0.8 + 1e-9
    assert degraded.peak_utilization <= 0.8 + 1e-9
    placed = sum(len(a.streams) for a in degraded.assignments)
    assert placed == len(streams)
