"""Ablations — preemptive preprocessing and kernel-to-kernel streaming.

* **Pipeline** (Section III-C): "kernel_preprocess preemptively processes
  the next item in the sequence ... in parallel".  Compares whole-sequence
  latency with the overlap on and off.
* **Streaming** (Section III-C): "streaming can be easily ported to the
  kernel implementation for additional acceleration".  Quantifies the
  AXI-buffer-to-FIFO hand-off savings per optimisation level.
"""

from benchmarks.conftest import record_report
from repro.core.config import EngineConfig, OptimizationLevel
from repro.core.engine import CSDInferenceEngine
from repro.core.sessions import streaming_report
from repro.core.timing import build_inference_timing


def _sequence_cycles(level: OptimizationLevel, preemptive: bool) -> int:
    config = EngineConfig(optimization=level, preemptive_preprocess=preemptive)
    engine = CSDInferenceEngine.build_unloaded(config)
    timing = build_inference_timing(
        config,
        engine.preprocess.timing(),
        engine.gates.timing(),
        engine.hidden_state.timing(),
        engine.hidden_state.classification_cycles(),
        engine.device.clock,
    )
    return timing.sequence_cycles


def bench_preemptive_pipeline(benchmark):
    def sweep():
        return {
            level.name: (_sequence_cycles(level, False), _sequence_cycles(level, True))
            for level in OptimizationLevel
        }

    results = benchmark(sweep)
    lines = [f"{'level':14s}{'serial':>10s}{'pipelined':>11s}{'speedup':>9s}"]
    for name, (serial, pipelined) in results.items():
        lines.append(
            f"{name:14s}{serial:>10d}{pipelined:>11d}{serial / pipelined:>8.2f}x"
        )
    lines.append("(100-item sequence, cycles end to end)")
    record_report("Ablation: preemptive preprocess pipeline", lines)
    for serial, pipelined in results.values():
        assert pipelined < serial


def bench_streaming_extension(benchmark):
    def sweep():
        reports = {}
        for level in OptimizationLevel:
            engine = CSDInferenceEngine.build_unloaded(EngineConfig(optimization=level))
            reports[level.name] = streaming_report(engine)
        return reports

    reports = benchmark(sweep)
    lines = [f"{'level':14s}{'base us':>9s}{'streamed us':>12s}{'speedup':>9s}"]
    for name, report in reports.items():
        base_us = report.clock.cycles_to_microseconds(report.baseline_item_cycles)
        lines.append(
            f"{name:14s}{base_us:>9.3f}{report.streamed_item_microseconds:>12.3f}"
            f"{report.item_speedup:>8.2f}x"
        )
    lines.append("(per-item; streaming removes copy loops + re-invocation)")
    record_report("Ablation: kernel-to-kernel streaming", lines)
    for report in reports.values():
        assert report.item_speedup > 1.0
        assert report.sequence_speedup > 1.0
