"""Ablation — softsign vs tanh (Section III-D).

Two halves of the design choice:

* **latency** — tanh needs ``exp()``; on the fabric that is a deep,
  partially-pipelined core, while softsign is one divide.  We rebuild the
  ``kernel_hidden_state`` update-lane chain with each activation and
  compare.
* **accuracy** — the paper claims softsign is "a sufficient replacement".
  We train the same model with each cell activation on the same data and
  compare converged accuracy.
"""

from benchmarks.conftest import record_report
from repro.hw.hls import FLOAT_OPS, HlsLoop, OpLatency, PragmaSet
from repro.nn.model import SequenceClassifier
from repro.nn.trainer import Trainer, TrainingConfig

HIDDEN = 32


def _update_loop_cycles(activation_depth: int, activation_ii: int) -> int:
    chain = FLOAT_OPS["mul"].depth + FLOAT_OPS["add"].depth + activation_depth + FLOAT_OPS["mul"].depth
    loop = HlsLoop(
        name="cell_update",
        trip_count=HIDDEN,
        iteration_depth=chain,
        pragmas=PragmaSet(pipeline=True, target_ii=1, array_partition=True),
        shared_unit_ii=activation_ii,
    )
    return loop.latency_cycles


def bench_softsign_latency(benchmark):
    """Hidden-state lane latency: softsign vs exp-based tanh."""

    def compare():
        softsign_act = FLOAT_OPS["add"].depth + FLOAT_OPS["div"].depth
        softsign = _update_loop_cycles(softsign_act, FLOAT_OPS["div"].ii)
        # tanh = (exp(2x) - 1) / (exp(2x) + 1): exp + two adds + divide.
        exp_op = FLOAT_OPS["exp"]
        tanh_act = exp_op.depth + 2 * FLOAT_OPS["add"].depth + FLOAT_OPS["div"].depth
        tanh = _update_loop_cycles(tanh_act, max(exp_op.ii, FLOAT_OPS["div"].ii))
        return softsign, tanh

    softsign_cycles, tanh_cycles = benchmark(compare)
    lines = [
        f"hidden_state update loop, H={HIDDEN}, II-optimised, float:",
        f"  softsign: {softsign_cycles} cycles",
        f"  tanh:     {tanh_cycles} cycles  "
        f"({tanh_cycles / softsign_cycles:.2f}x slower)",
    ]
    record_report("Ablation: softsign vs tanh (latency)", lines)
    assert tanh_cycles > softsign_cycles


def bench_softsign_accuracy(benchmark, bench_split):
    """Converged accuracy: softsign cell vs tanh cell on the same data."""
    train, test = bench_split
    # Sub-sample for speed: this trains two models.
    import numpy as np

    keep = np.arange(min(1200, len(train)))
    keep_test = np.arange(min(400, len(test)))

    def train_both():
        accuracies = {}
        for activation in ("softsign", "tanh"):
            model = SequenceClassifier(cell_activation=activation, seed=0)
            trainer = Trainer(
                model,
                TrainingConfig(epochs=10, eval_every=10, learning_rate=0.005),
            )
            history = trainer.fit(
                train.sequences[keep], train.labels[keep],
                test.sequences[keep_test], test.labels[keep_test],
            )
            accuracies[activation] = history.peak.test_accuracy
        return accuracies

    accuracies = benchmark.pedantic(train_both, rounds=1, iterations=1)
    lines = [
        f"softsign cell: accuracy {accuracies['softsign']:.4f}",
        f"tanh cell:     accuracy {accuracies['tanh']:.4f}",
        "claim: softsign is a sufficient replacement "
        f"(|delta| = {abs(accuracies['softsign'] - accuracies['tanh']):.4f})",
    ]
    record_report("Ablation: softsign vs tanh (accuracy)", lines)
    # "Sufficient replacement": within 3 accuracy points either way.
    assert abs(accuracies["softsign"] - accuracies["tanh"]) < 0.03
