"""Ablation — detection threshold operating point.

The paper classifies at the implicit 0.5 threshold; mitigation policy in
practice trades recall for false-quarantine rate.  This bench sweeps the
threshold over the held-out split (through the float model; the CSD's
fixed-point scores track it within ~0.03) and reports the ROC AUC plus
the metric trade-off, grounding the quarantine-threshold choices used by
the replay scenario.
"""

import numpy as np

from benchmarks.conftest import record_report
from repro.nn.metrics import auc, threshold_sweep

THRESHOLDS = (0.3, 0.5, 0.7, 0.9)


def bench_threshold_operating_points(benchmark, bench_model, bench_split):
    _, test = bench_split

    def sweep():
        scores = bench_model.predict_proba(test.sequences)
        return scores, threshold_sweep(scores, test.labels, THRESHOLDS)

    scores, results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    area = auc(scores, test.labels)

    lines = [
        f"ROC AUC on held-out split: {area:.4f}",
        f"{'threshold':>10s}{'accuracy':>10s}{'precision':>11s}{'recall':>8s}{'FPR':>7s}",
    ]
    for threshold, matrix in results:
        fpr = (
            matrix.false_positive / (matrix.false_positive + matrix.true_negative)
            if (matrix.false_positive + matrix.true_negative)
            else 0.0
        )
        marker = "  <- paper" if threshold == 0.5 else ""
        lines.append(
            f"{threshold:>10.1f}{matrix.accuracy:>10.4f}{matrix.precision:>11.4f}"
            f"{matrix.recall:>8.4f}{fpr:>7.3f}{marker}"
        )
    record_report("Ablation: detection threshold / ROC", lines)

    assert area > 0.97
    # Raising the threshold must not hurt precision.
    precisions = [matrix.precision for _, matrix in results]
    assert precisions[-1] >= precisions[0]
