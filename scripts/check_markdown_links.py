#!/usr/bin/env python
"""Check that relative markdown links point at files that exist.

Scans ``docs/``, ``README.md``, and ``EXPERIMENTS.md`` (plus any paths
given on the command line) for inline links and validates every
relative target against the working tree.  External schemes
(``http(s)``, ``mailto``) and pure in-page anchors are skipped; fenced
code blocks are ignored so example snippets cannot produce false
positives.

Usage::

    python scripts/check_markdown_links.py            # default file set
    python scripts/check_markdown_links.py docs/*.md  # explicit files
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

DEFAULT_TARGETS = [
    "docs",
    "README.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "CHANGES.md",
    "benchmarks/README.md",
]

LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:")


def strip_fenced_code(text: str) -> str:
    out: list[str] = []
    in_fence = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence:
            out.append(line)
    return "\n".join(out)


def collect_files(arguments: list[str]) -> list[Path]:
    targets = arguments or DEFAULT_TARGETS
    files: list[Path] = []
    for target in targets:
        path = REPO_ROOT / target
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.exists():
            files.append(path)
        else:
            sys.stderr.write(f"warning: {target} does not exist, skipping\n")
    return files


def check_file(path: Path) -> list[str]:
    errors: list[str] = []
    text = strip_fenced_code(path.read_text(encoding="utf-8"))
    for match in LINK_PATTERN.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_SCHEMES):
            continue
        target = target.split("#", 1)[0]
        if not target:  # pure in-page anchor
            continue
        resolved = (path.parent / target).resolve()
        if not resolved.exists():
            errors.append(
                f"{path.relative_to(REPO_ROOT)}: broken link -> {match.group(1)}"
            )
    return errors


def main(arguments: list[str]) -> int:
    files = collect_files(arguments)
    if not files:
        sys.stderr.write("error: no markdown files to check\n")
        return 2
    errors: list[str] = []
    for path in files:
        errors.extend(check_file(path))
    if errors:
        for error in errors:
            print(error)
        print(f"{len(errors)} broken link(s) in {len(files)} file(s)")
        return 1
    print(f"all links resolve ({len(files)} file(s) checked)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
