"""repro — CSD-based deep learning inference to combat ransomware.

Reproduction of Friday et al., "Empowering Data Centers with Computational
Storage Drive-Based Deep Learning Inference Functionality to Combat
Ransomware" (DSN-S 2024).

Quickstart::

    from repro import build_dataset, train_detector

    dataset = build_dataset(scale=0.1)
    detector, history, test_split = train_detector(dataset)
    print(detector.evaluate(test_split))

Subpackages
-----------
``repro.nn``
    From-scratch NumPy deep learning (offline training).
``repro.fixedpoint``
    Scale-10^6 integer arithmetic (the FPGA's number format).
``repro.hw``
    FPGA / SmartSSD / PCIe / DDR timing simulation.
``repro.core``
    The CSD inference engine (the paper's contribution).
``repro.baselines``
    CPU and GPU comparison baselines (Table I).
``repro.ransomware``
    Dataset synthesis, detection, mitigation, CTI updates.
``repro.telemetry``
    Structured telemetry: metrics, span traces, exporters
    (contract in ``docs/observability.md``).
"""

from repro.baselines import (
    CpuInferenceBaseline,
    GpuInferenceBaseline,
    format_table,
    hardware_comparison,
)
from repro.core import (
    CSDInferenceEngine,
    EngineConfig,
    HostWeights,
    ModelDimensions,
    OptimizationLevel,
    engine_at_level,
    kernel_breakdown,
    optimization_sweep,
)
from repro.nn import (
    SequenceClassifier,
    Trainer,
    TrainingConfig,
    dump_weights,
    load_weights,
)
from repro.ransomware import (
    RansomwareDetector,
    build_dataset,
    train_detector,
)
from repro.telemetry import Telemetry

__version__ = "1.0.0"

__all__ = [
    "CSDInferenceEngine",
    "CpuInferenceBaseline",
    "EngineConfig",
    "GpuInferenceBaseline",
    "HostWeights",
    "ModelDimensions",
    "OptimizationLevel",
    "RansomwareDetector",
    "SequenceClassifier",
    "Telemetry",
    "Trainer",
    "TrainingConfig",
    "build_dataset",
    "dump_weights",
    "engine_at_level",
    "format_table",
    "hardware_comparison",
    "kernel_breakdown",
    "load_weights",
    "optimization_sweep",
    "train_detector",
    "__version__",
]
