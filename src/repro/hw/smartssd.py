"""SmartSSD device composition (paper Fig. 1).

A SmartSSD is an NVMe SSD and an FPGA accelerator joined by an onboard
PCIe switch, with dedicated FPGA DRAM.  The CPU can issue standard SSD
read/writes, FPGA DRAM read/writes, and FPGA compute requests; the switch
additionally supports P2P transfers so the FPGA can consume SSD data
"without necessitating CPU involvement".

This class wires the :mod:`repro.hw` component models together and exposes
the three data paths the inference engine uses:

* :meth:`host_load_weights` — host → FPGA DRAM (once, at initialisation);
* :meth:`p2p_fetch` — SSD → FPGA DRAM without the host (per batch);
* :meth:`host_fetch` — SSD → host → FPGA DRAM (the path P2P replaces).

It also models the *self-protecting* write path the response subsystem
drives (see ``docs/response.md``): per-stream write admission
(:meth:`stream_write` with ``allow``/``cow``/``block`` modes),
copy-on-write volume snapshots with integrity checksums on every
protected object, and :meth:`restore_volume` to roll the volume back to
the snapshot byte for byte.  All enforcement time is accounted on the
simulated clock (`protection_overhead_seconds`) — protection is never
free.
"""

from __future__ import annotations

import dataclasses
import hashlib

from repro.hw.fpga import KU15P, FpgaDevice
from repro.hw.pcie import PcieLink, PcieSwitch
from repro.hw.ssd import NvmeSsd

#: Per-stream write-admission modes.
MODE_ALLOW = "allow"
MODE_COW = "cow"
MODE_BLOCK = "block"

_STREAM_MODES = (MODE_ALLOW, MODE_COW, MODE_BLOCK)


class WriteRefused(PermissionError):
    """A write-blocked stream attempted a write the drive refused."""


class IntegrityError(RuntimeError):
    """A protected object's checksum did not match at restore time."""


def _object_checksum(num_bytes: int, data: bytes | None) -> str:
    """Deterministic content checksum (size-only objects hash the size)."""
    digest = hashlib.sha256()
    digest.update(str(num_bytes).encode("ascii"))
    digest.update(b":")
    if data is not None:
        digest.update(data)
    return digest.hexdigest()


@dataclasses.dataclass(frozen=True)
class TransferRecord:
    """One completed data movement, for traffic accounting."""

    route: str            # "p2p" | "host" | "host_to_fpga"
    num_bytes: int
    seconds: float


@dataclasses.dataclass(frozen=True)
class RestoreResult:
    """Outcome of one :meth:`SmartSSD.restore_volume` call."""

    snapshot_id: int
    restored_objects: int
    restored_bytes: int
    deleted_objects: int
    seconds: float


class _VolumeSnapshot:
    """Copy-on-write snapshot state: deltas accumulate lazily."""

    def __init__(self, snapshot_id: int, checksums: dict):
        self.snapshot_id = snapshot_id
        #: key -> (num_bytes, data, checksum) of the pre-image preserved
        #: the first time the key was overwritten/deleted after the
        #: snapshot was taken.
        self.delta: dict = {}
        #: keys created after the snapshot (deleted on restore).
        self.created: set = set()
        #: integrity baseline: checksum of every object at snapshot time.
        self.checksums = checksums


class SmartSSD:
    """A Samsung SmartSSD-like computational storage drive.

    Parameters
    ----------
    fpga:
        FPGA device model; defaults to the KU15P with one DDR bank, as on
        the real SmartSSD.  The paper's experiments substitute an Alveo
        u200 model (see :class:`repro.core.engine.CSDInferenceEngine`).
    ssd:
        NVMe SSD model; defaults to a PM1733-class drive.
    link:
        The device's PCIe interface (Gen3 x4 on the SmartSSD).
    fpga_dram_bytes:
        Capacity of the FPGA-attached DRAM visible over PCIe.
    """

    def __init__(
        self,
        fpga: FpgaDevice | None = None,
        ssd: NvmeSsd | None = None,
        link: PcieLink | None = None,
        fpga_dram_bytes: int = 4 * 2**30,
    ):
        self.fpga = fpga or FpgaDevice(part=KU15P, ddr_banks_used=1)
        self.ssd = ssd or NvmeSsd()
        self.switch = PcieSwitch(upstream=link or PcieLink(generation=3, lanes=4))
        self.fpga_dram_bytes = fpga_dram_bytes
        self._fpga_dram_used = 0
        self.transfers: list = []
        #: Optional :class:`repro.telemetry.Telemetry`; set directly or
        #: propagated by ``CSDInferenceEngine.attach_telemetry``.  When
        #: present, transfers and DRAM occupancy feed the
        #: ``repro_storage_*`` / ``repro_fpga_dram_used_bytes`` metrics.
        self.telemetry = None

        # Self-protecting write path (see docs/response.md).
        self._stream_modes: dict = {}
        self._checksums: dict = {}
        self._snapshots: dict = {}
        self._active_snapshot: _VolumeSnapshot | None = None
        self._snapshot_counter = 0
        self.allowed_writes = 0
        self.blocked_writes = 0
        self.blocked_bytes = 0
        self.blocked_by_stream: dict = {}
        self.cow_copies = 0
        self.cow_bytes = 0
        self.protection_overhead_seconds = 0.0

    def _record_transfer(self, record: TransferRecord) -> None:
        # Guarded here — not at the call sites — so every path that
        # records a transfer is safe with telemetry detached.
        if self.telemetry is None:
            return
        metrics = self.telemetry.metrics
        metrics.counter("repro_storage_bytes_total", route=record.route).inc(
            record.num_bytes
        )
        metrics.counter("repro_storage_transfers_total", route=record.route).inc()
        metrics.histogram(
            "repro_storage_transfer_seconds", route=record.route
        ).observe(record.seconds)

    def _update_dram_gauge(self) -> None:
        if self.telemetry is not None:
            self.telemetry.gauge("repro_fpga_dram_used_bytes").set(
                self._fpga_dram_used
            )

    @property
    def fpga_dram_free_bytes(self) -> int:
        return self.fpga_dram_bytes - self._fpga_dram_used

    def _reserve_fpga_dram(self, num_bytes: int, label: str) -> None:
        if num_bytes > self.fpga_dram_free_bytes:
            raise MemoryError(
                f"FPGA DRAM cannot hold {num_bytes} bytes for {label!r} "
                f"({self._fpga_dram_used}/{self.fpga_dram_bytes} used)"
            )
        self._fpga_dram_used += num_bytes
        self._update_dram_gauge()

    def host_load_weights(self, num_bytes: int) -> float:
        """Host → FPGA DRAM weight download at initialisation.

        Returns the transfer time in seconds.
        """
        self._reserve_fpga_dram(num_bytes, "weights")
        seconds = self.switch.upstream.transfer_seconds(num_bytes)
        record = TransferRecord("host_to_fpga", num_bytes, seconds)
        self.transfers.append(record)
        self._record_transfer(record)
        return seconds

    def p2p_fetch(self, key: str) -> float:
        """SSD → FPGA DRAM over the switch, bypassing the host.

        The object must previously have been stored with
        ``device.ssd.write_object(key, nbytes)``.  Returns total seconds
        (SSD read + switch transfer).
        """
        num_bytes, ssd_seconds = self.ssd.read_object(key)
        self._reserve_fpga_dram(num_bytes, key)
        link_seconds = self.switch.p2p_transfer_seconds(num_bytes)
        seconds = ssd_seconds + link_seconds
        record = TransferRecord("p2p", num_bytes, seconds)
        self.transfers.append(record)
        self._record_transfer(record)
        return seconds

    def host_fetch(self, key: str) -> float:
        """SSD → host DRAM → FPGA DRAM (the route P2P eliminates)."""
        num_bytes, ssd_seconds = self.ssd.read_object(key)
        self._reserve_fpga_dram(num_bytes, key)
        link_seconds = self.switch.host_mediated_transfer_seconds(num_bytes)
        seconds = ssd_seconds + link_seconds
        record = TransferRecord("host", num_bytes, seconds)
        self.transfers.append(record)
        self._record_transfer(record)
        return seconds

    def release_fpga_dram(self, num_bytes: int) -> None:
        """Free FPGA DRAM previously reserved by a fetch or weight load."""
        if num_bytes < 0 or num_bytes > self._fpga_dram_used:
            raise ValueError(
                f"cannot release {num_bytes} bytes; {self._fpga_dram_used} in use"
            )
        self._fpga_dram_used -= num_bytes
        self._update_dram_gauge()

    def traffic_summary(self) -> dict:
        """Total bytes moved per route."""
        summary = {"p2p": 0, "host": 0, "host_to_fpga": 0}
        for record in self.transfers:
            summary[record.route] += record.num_bytes
        return summary

    # ------------------------------------------------------------------
    # Self-protecting write path (verdict-gated integrity enforcement)
    # ------------------------------------------------------------------

    def _resp_counter(self, name: str, amount: int = 1) -> None:
        if self.telemetry is not None:
            self.telemetry.metrics.counter(name).inc(amount)

    def _resp_enforcement(self, op: str, seconds: float) -> None:
        self.protection_overhead_seconds += seconds
        if self.telemetry is not None:
            self.telemetry.metrics.histogram(
                "repro_resp_enforcement_seconds", op=op
            ).observe(seconds)

    def set_stream_mode(self, stream, mode: str) -> None:
        """Set a stream's write-admission mode (``allow``/``cow``/``block``)."""
        if mode not in _STREAM_MODES:
            raise ValueError(f"unknown stream mode {mode!r}; expected one of {_STREAM_MODES}")
        if mode == MODE_ALLOW:
            self._stream_modes.pop(stream, None)
        else:
            self._stream_modes[stream] = mode

    def stream_mode(self, stream) -> str:
        """The stream's current write-admission mode."""
        return self._stream_modes.get(stream, MODE_ALLOW)

    def stream_write(self, stream, key: str, num_bytes: int,
                     data: bytes | None = None) -> float:
        """One write attributed to ``stream``, through the admission gate.

        Returns the simulated seconds the write (plus any copy-on-write
        preservation it triggered) cost.  A ``block``-mode stream's write
        never reaches the medium and raises :class:`WriteRefused` — the
        paper's "immediately thwart any subsequent encryption" behaviour,
        enforced *at the drive*.  A ``cow``-mode stream's first overwrite
        of any object preserves the pre-image into the active volume
        snapshot (taking one automatically if none is active), so a later
        :meth:`restore_volume` can undo the damage byte for byte.
        """
        mode = self.stream_mode(stream)
        if mode == MODE_BLOCK:
            self.blocked_writes += 1
            self.blocked_bytes += num_bytes
            per_stream = self.blocked_by_stream
            counts = per_stream.get(stream)
            if counts is None:
                counts = per_stream[stream] = {"writes": 0, "bytes": 0}
            counts["writes"] += 1
            counts["bytes"] += num_bytes
            self._resp_counter("repro_resp_blocked_writes_total")
            self._resp_counter("repro_resp_blocked_bytes_total", num_bytes)
            raise WriteRefused(
                f"stream {stream!r} is write-blocked; write of {num_bytes} "
                f"bytes to {key!r} refused"
            )
        snapshot = self._active_snapshot
        if mode == MODE_COW and snapshot is None:
            self.snapshot_volume()
            snapshot = self._active_snapshot
        cow_seconds = 0.0
        if snapshot is not None:
            cow_seconds = self._preserve_preimage(snapshot, key)
        write_seconds = self.ssd.write_object(key, num_bytes, data=data)
        self._checksums[key] = _object_checksum(num_bytes, data)
        self.allowed_writes += 1
        return write_seconds + cow_seconds

    def _preserve_preimage(self, snapshot: _VolumeSnapshot, key: str) -> float:
        """Copy-on-write: keep the first pre-image of ``key`` per epoch."""
        if key in snapshot.delta or key in snapshot.created:
            return 0.0
        if not self.ssd.has_object(key):
            snapshot.created.add(key)
            return 0.0
        num_bytes = self.ssd.object_size(key)
        data = self.ssd.read_object_data(key)
        snapshot.delta[key] = (num_bytes, data, self._checksums.get(key))
        self.cow_copies += 1
        self.cow_bytes += num_bytes
        # Honest timing: the drive reads the old extent and writes the
        # snapshot copy before admitting the overwrite.
        seconds = (
            self.ssd.read_seconds(num_bytes)
            + self.ssd.write_latency_seconds
            + num_bytes / self.ssd.write_bandwidth_bytes_per_second
        )
        self._resp_counter("repro_resp_cow_bytes_total", num_bytes)
        self._resp_enforcement("cow", seconds)
        return seconds

    def snapshot_volume(self) -> int:
        """Start a copy-on-write snapshot epoch; returns its id.

        The snapshot is lazy: nothing is copied until a protected object
        is first overwritten (see :meth:`stream_write`).  The current
        checksum of every stored object is recorded as the integrity
        baseline :meth:`restore_volume` verifies against.
        """
        self._snapshot_counter += 1
        for key in self.ssd.object_keys():
            if key not in self._checksums:
                self._checksums[key] = _object_checksum(
                    self.ssd.object_size(key), self.ssd.read_object_data(key)
                )
        snapshot = _VolumeSnapshot(self._snapshot_counter, dict(self._checksums))
        self._snapshots[snapshot.snapshot_id] = snapshot
        self._active_snapshot = snapshot
        self._resp_counter("repro_resp_snapshots_total")
        # Metadata flush: one write command's latency.
        self._resp_enforcement("snapshot", self.ssd.write_latency_seconds)
        return snapshot.snapshot_id

    @property
    def active_snapshot_id(self) -> int | None:
        snapshot = self._active_snapshot
        return None if snapshot is None else snapshot.snapshot_id

    def verify_object(self, key: str) -> bool:
        """Recompute ``key``'s checksum against the recorded one."""
        recorded = self._checksums.get(key)
        if recorded is None:
            raise KeyError(f"no recorded checksum for object {key!r}")
        return recorded == _object_checksum(
            self.ssd.object_size(key), self.ssd.read_object_data(key)
        )

    def restore_volume(self, snapshot_id: int | None = None) -> RestoreResult:
        """Roll every object changed since the snapshot back, verified.

        Objects created after the snapshot are deleted; overwritten
        objects are rewritten from their preserved pre-images after the
        copies' checksums are verified against the snapshot's integrity
        baseline (:class:`IntegrityError` on mismatch).  Returns the
        accounting, with the simulated seconds the restore cost.
        """
        if snapshot_id is None:
            snapshot = self._active_snapshot
            if snapshot is None:
                raise RuntimeError("no active snapshot to restore")
        else:
            snapshot = self._snapshots.get(snapshot_id)
            if snapshot is None:
                raise KeyError(f"no snapshot {snapshot_id}")
        seconds = 0.0
        deleted = 0
        for key in sorted(snapshot.created):
            if self.ssd.has_object(key):
                self.ssd.delete_object(key)
                self._checksums.pop(key, None)
                deleted += 1
        restored_bytes = 0
        restored = 0
        for key in sorted(snapshot.delta):
            num_bytes, data, checksum = snapshot.delta[key]
            baseline = snapshot.checksums.get(key, checksum)
            if _object_checksum(num_bytes, data) != baseline:
                raise IntegrityError(
                    f"snapshot copy of {key!r} failed checksum verification"
                )
            seconds += self.ssd.read_seconds(num_bytes)
            seconds += self.ssd.write_object(key, num_bytes, data=data)
            self._checksums[key] = baseline
            restored += 1
            restored_bytes += num_bytes
        snapshot.delta.clear()
        snapshot.created.clear()
        self._resp_counter("repro_resp_restores_total")
        self._resp_enforcement("restore", seconds)
        return RestoreResult(
            snapshot_id=snapshot.snapshot_id,
            restored_objects=restored,
            restored_bytes=restored_bytes,
            deleted_objects=deleted,
            seconds=seconds,
        )

    def protection_summary(self) -> dict:
        """Self-protection statistics for reporting."""
        return {
            "allowed_writes": self.allowed_writes,
            "blocked_writes": self.blocked_writes,
            "blocked_bytes": self.blocked_bytes,
            "cow_copies": self.cow_copies,
            "cow_bytes": self.cow_bytes,
            "snapshots": self._snapshot_counter,
            "protection_overhead_seconds": self.protection_overhead_seconds,
            "streams_blocked": sum(
                1 for mode in self._stream_modes.values() if mode == MODE_BLOCK
            ),
        }
