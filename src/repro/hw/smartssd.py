"""SmartSSD device composition (paper Fig. 1).

A SmartSSD is an NVMe SSD and an FPGA accelerator joined by an onboard
PCIe switch, with dedicated FPGA DRAM.  The CPU can issue standard SSD
read/writes, FPGA DRAM read/writes, and FPGA compute requests; the switch
additionally supports P2P transfers so the FPGA can consume SSD data
"without necessitating CPU involvement".

This class wires the :mod:`repro.hw` component models together and exposes
the three data paths the inference engine uses:

* :meth:`host_load_weights` — host → FPGA DRAM (once, at initialisation);
* :meth:`p2p_fetch` — SSD → FPGA DRAM without the host (per batch);
* :meth:`host_fetch` — SSD → host → FPGA DRAM (the path P2P replaces).
"""

from __future__ import annotations

import dataclasses

from repro.hw.fpga import KU15P, FpgaDevice
from repro.hw.pcie import PcieLink, PcieSwitch
from repro.hw.ssd import NvmeSsd


@dataclasses.dataclass(frozen=True)
class TransferRecord:
    """One completed data movement, for traffic accounting."""

    route: str            # "p2p" | "host" | "host_to_fpga"
    num_bytes: int
    seconds: float


class SmartSSD:
    """A Samsung SmartSSD-like computational storage drive.

    Parameters
    ----------
    fpga:
        FPGA device model; defaults to the KU15P with one DDR bank, as on
        the real SmartSSD.  The paper's experiments substitute an Alveo
        u200 model (see :class:`repro.core.engine.CSDInferenceEngine`).
    ssd:
        NVMe SSD model; defaults to a PM1733-class drive.
    link:
        The device's PCIe interface (Gen3 x4 on the SmartSSD).
    fpga_dram_bytes:
        Capacity of the FPGA-attached DRAM visible over PCIe.
    """

    def __init__(
        self,
        fpga: FpgaDevice | None = None,
        ssd: NvmeSsd | None = None,
        link: PcieLink | None = None,
        fpga_dram_bytes: int = 4 * 2**30,
    ):
        self.fpga = fpga or FpgaDevice(part=KU15P, ddr_banks_used=1)
        self.ssd = ssd or NvmeSsd()
        self.switch = PcieSwitch(upstream=link or PcieLink(generation=3, lanes=4))
        self.fpga_dram_bytes = fpga_dram_bytes
        self._fpga_dram_used = 0
        self.transfers: list = []
        #: Optional :class:`repro.telemetry.Telemetry`; set directly or
        #: propagated by ``CSDInferenceEngine.attach_telemetry``.  When
        #: present, transfers and DRAM occupancy feed the
        #: ``repro_storage_*`` / ``repro_fpga_dram_used_bytes`` metrics.
        self.telemetry = None

    def _record_transfer(self, record: TransferRecord) -> None:
        metrics = self.telemetry.metrics
        metrics.counter("repro_storage_bytes_total", route=record.route).inc(
            record.num_bytes
        )
        metrics.counter("repro_storage_transfers_total", route=record.route).inc()
        metrics.histogram(
            "repro_storage_transfer_seconds", route=record.route
        ).observe(record.seconds)

    def _update_dram_gauge(self) -> None:
        if self.telemetry is not None:
            self.telemetry.gauge("repro_fpga_dram_used_bytes").set(
                self._fpga_dram_used
            )

    @property
    def fpga_dram_free_bytes(self) -> int:
        return self.fpga_dram_bytes - self._fpga_dram_used

    def _reserve_fpga_dram(self, num_bytes: int, label: str) -> None:
        if num_bytes > self.fpga_dram_free_bytes:
            raise MemoryError(
                f"FPGA DRAM cannot hold {num_bytes} bytes for {label!r} "
                f"({self._fpga_dram_used}/{self.fpga_dram_bytes} used)"
            )
        self._fpga_dram_used += num_bytes
        self._update_dram_gauge()

    def host_load_weights(self, num_bytes: int) -> float:
        """Host → FPGA DRAM weight download at initialisation.

        Returns the transfer time in seconds.
        """
        self._reserve_fpga_dram(num_bytes, "weights")
        seconds = self.switch.upstream.transfer_seconds(num_bytes)
        record = TransferRecord("host_to_fpga", num_bytes, seconds)
        self.transfers.append(record)
        if self.telemetry is not None:
            self._record_transfer(record)
        return seconds

    def p2p_fetch(self, key: str) -> float:
        """SSD → FPGA DRAM over the switch, bypassing the host.

        The object must previously have been stored with
        ``device.ssd.write_object(key, nbytes)``.  Returns total seconds
        (SSD read + switch transfer).
        """
        num_bytes, ssd_seconds = self.ssd.read_object(key)
        self._reserve_fpga_dram(num_bytes, key)
        link_seconds = self.switch.p2p_transfer_seconds(num_bytes)
        seconds = ssd_seconds + link_seconds
        record = TransferRecord("p2p", num_bytes, seconds)
        self.transfers.append(record)
        if self.telemetry is not None:
            self._record_transfer(record)
        return seconds

    def host_fetch(self, key: str) -> float:
        """SSD → host DRAM → FPGA DRAM (the route P2P eliminates)."""
        num_bytes, ssd_seconds = self.ssd.read_object(key)
        self._reserve_fpga_dram(num_bytes, key)
        link_seconds = self.switch.host_mediated_transfer_seconds(num_bytes)
        seconds = ssd_seconds + link_seconds
        record = TransferRecord("host", num_bytes, seconds)
        self.transfers.append(record)
        if self.telemetry is not None:
            self._record_transfer(record)
        return seconds

    def release_fpga_dram(self, num_bytes: int) -> None:
        """Free FPGA DRAM previously reserved by a fetch or weight load."""
        if num_bytes < 0 or num_bytes > self._fpga_dram_used:
            raise ValueError(
                f"cannot release {num_bytes} bytes; {self._fpga_dram_used} in use"
            )
        self._fpga_dram_used -= num_bytes
        self._update_dram_gauge()

    def traffic_summary(self) -> dict:
        """Total bytes moved per route."""
        summary = {"p2p": 0, "host": 0, "host_to_fpga": 0}
        for record in self.transfers:
            summary[record.route] += record.num_bytes
        return summary
