"""Xilinx Runtime (XRT)-style host interface.

The paper's host program is "responsible for general control flow,
initiating data transfers, and managing the interaction with the FPGA",
written against the Xilinx Runtime (XRT, Section IV).  This module models
the slice of that API the design uses, so the host-side costs — buffer
migrations, kernel enqueues, synchronisation — are accounted the way an
XRT profile would show them:

* :class:`DeviceBuffer` — a device-resident buffer object (cl_mem/BO
  equivalent) bound to a DDR bank;
* :class:`CommandQueue` — in-order enqueue of migrations and kernel runs,
  each returning an :class:`Event` with queue/start/end timestamps;
* :class:`XrtDevice` — the device session: buffer allocation against the
  bank ledgers, queue creation, and a profile summary.

All times are seconds of simulated wall clock; the queue maintains its
own timeline (in-order execution, back-to-back).
"""

from __future__ import annotations

import dataclasses
import enum

from repro.hw.clock import ClockDomain
from repro.hw.fpga import FpgaDevice
from repro.hw.pcie import PcieLink


class Direction(enum.Enum):
    """Migration direction (clEnqueueMigrateMemObjects semantics)."""

    HOST_TO_DEVICE = "h2d"
    DEVICE_TO_HOST = "d2h"


@dataclasses.dataclass(frozen=True)
class Event:
    """Completion record of one queued operation (OpenCL event info)."""

    kind: str                 # "migrate" | "kernel"
    label: str
    queued_seconds: float     # timeline position when enqueued
    start_seconds: float
    end_seconds: float

    @property
    def duration_seconds(self) -> float:
        return self.end_seconds - self.start_seconds


class DeviceBuffer:
    """A device-resident buffer bound to one DDR bank."""

    def __init__(self, name: str, num_bytes: int, bank, device: "XrtDevice"):
        if num_bytes <= 0:
            raise ValueError(f"buffer {name!r}: size must be positive")
        self.name = name
        self.num_bytes = num_bytes
        self.bank = bank
        self._device = device
        self._released = False

    @property
    def released(self) -> bool:
        return self._released

    def release(self) -> None:
        """Free the bank allocation (clReleaseMemObject)."""
        if self._released:
            raise RuntimeError(f"buffer {self.name!r} already released")
        self._released = True
        self._device._on_release(self)


class CommandQueue:
    """In-order command queue with a simulated timeline."""

    def __init__(self, device: "XrtDevice", link: PcieLink):
        self._device = device
        self._link = link
        self._timeline_seconds = 0.0
        self.events: list = []

    @property
    def timeline_seconds(self) -> float:
        """Current end-of-queue time."""
        return self._timeline_seconds

    def enqueue_migrate(self, buffer: DeviceBuffer, direction: Direction) -> Event:
        """Move a buffer across PCIe (clEnqueueMigrateMemObjects)."""
        if buffer.released:
            raise RuntimeError(f"buffer {buffer.name!r} was released")
        queued = self._timeline_seconds
        duration = self._link.transfer_seconds(buffer.num_bytes)
        event = Event(
            kind="migrate",
            label=f"{buffer.name}:{direction.value}",
            queued_seconds=queued,
            start_seconds=queued,
            end_seconds=queued + duration,
        )
        self._timeline_seconds = event.end_seconds
        self.events.append(event)
        return event

    def enqueue_kernel(self, label: str, cycles: int, clock: ClockDomain) -> Event:
        """Run a kernel for ``cycles`` of its clock (clEnqueueTask)."""
        if cycles < 0:
            raise ValueError(f"cycles must be non-negative, got {cycles}")
        queued = self._timeline_seconds
        duration = clock.cycles_to_seconds(cycles)
        event = Event(
            kind="kernel",
            label=label,
            queued_seconds=queued,
            start_seconds=queued,
            end_seconds=queued + duration,
        )
        self._timeline_seconds = event.end_seconds
        self.events.append(event)
        return event

    def finish(self) -> float:
        """Block until all queued work completes (clFinish).

        Returns the timeline position — total elapsed simulated seconds.
        """
        return self._timeline_seconds


class XrtDevice:
    """A host session against one FPGA device.

    Parameters
    ----------
    fpga:
        The device model whose DDR banks back the buffers.
    link:
        Host↔device PCIe link for migrations.
    """

    def __init__(self, fpga: FpgaDevice, link: PcieLink | None = None):
        self.fpga = fpga
        self.link = link or PcieLink(generation=3, lanes=16)
        self._buffers: dict = {}

    def allocate_buffer(self, name: str, num_bytes: int, bank_index: int = 0) -> DeviceBuffer:
        """Create a device buffer on a DDR bank (clCreateBuffer + bank flag).

        Raises
        ------
        MemoryError
            If the bank cannot hold the allocation.
        ValueError
            On duplicate names or a bad bank index.
        """
        if name in self._buffers:
            raise ValueError(f"buffer {name!r} already allocated")
        banks = self.fpga.ddr.banks
        if not 0 <= bank_index < len(banks):
            raise ValueError(
                f"bank index {bank_index} out of range (device has {len(banks)})"
            )
        bank = banks[bank_index]
        bank.allocate(num_bytes, label=name)
        buffer = DeviceBuffer(name, num_bytes, bank, self)
        self._buffers[name] = buffer
        return buffer

    def _on_release(self, buffer: DeviceBuffer) -> None:
        self._buffers.pop(buffer.name, None)

    @property
    def live_buffers(self) -> tuple:
        return tuple(self._buffers.values())

    def create_queue(self) -> CommandQueue:
        """Create an in-order command queue (clCreateCommandQueue)."""
        return CommandQueue(self, self.link)

    @staticmethod
    def profile_summary(queue: CommandQueue) -> dict:
        """Aggregate event durations by kind, like an XRT profile report."""
        summary = {"migrate": 0.0, "kernel": 0.0, "total": queue.finish()}
        for event in queue.events:
            summary[event.kind] += event.duration_seconds
        return summary
