"""DDR bank model and bank-sharing contention.

The paper's design "utilizes a conservative two DDR banks of global
memory" while "some Alveo cards (e.g., the u200 and u250) support four"
(Section III-C).  With four ``kernel_gates`` compute units streaming
weights from two banks, two CUs share each bank; the contention factor a
shared bank imposes on each reader is what makes the unroll-heavy II
configuration *slower* for ``kernel_gates`` in Fig. 3.
"""

from __future__ import annotations

import dataclasses
import math


@dataclasses.dataclass
class DdrBank:
    """One bank of FPGA global memory.

    Parameters
    ----------
    name:
        Bank label (``"DDR[0]"``).
    capacity_bytes:
        Bank capacity; allocation beyond it raises.
    peak_bandwidth_bytes_per_cycle:
        Sustainable data bytes per kernel-clock cycle (a 64-bit DDR4-2400
        channel feeding a 300 MHz kernel sustains roughly 64 bytes/cycle).
    """

    name: str
    capacity_bytes: int = 16 * 2**30
    peak_bandwidth_bytes_per_cycle: int = 64

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.peak_bandwidth_bytes_per_cycle <= 0:
            raise ValueError("capacity and bandwidth must be positive")
        self._allocated = 0
        self._readers: list = []

    @property
    def allocated_bytes(self) -> int:
        return self._allocated

    @property
    def readers(self) -> tuple:
        return tuple(self._readers)

    def allocate(self, num_bytes: int, label: str = "") -> None:
        """Reserve buffer space on this bank.

        Raises
        ------
        MemoryError
            If the bank cannot hold the requested allocation.
        """
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be non-negative, got {num_bytes}")
        if self._allocated + num_bytes > self.capacity_bytes:
            raise MemoryError(
                f"bank {self.name}: cannot allocate {num_bytes} bytes "
                f"({self._allocated}/{self.capacity_bytes} used) for {label!r}"
            )
        self._allocated += num_bytes

    def free_all(self) -> None:
        """Release every allocation (host re-initialisation)."""
        self._allocated = 0

    def attach_reader(self, reader_name: str) -> None:
        """Register a compute unit as a concurrent reader of this bank."""
        self._readers.append(reader_name)

    def detach_all_readers(self) -> None:
        self._readers.clear()

    @property
    def contention_factor(self) -> float:
        """Slow-down each reader sees when the bank is shared.

        One reader → 1.0; ``k`` concurrent readers → ``k`` (fair
        round-robin arbitration on the memory controller).
        """
        return float(max(1, len(self._readers)))


@dataclasses.dataclass
class DdrSubsystem:
    """A set of DDR banks with round-robin CU assignment.

    ``assign_readers`` distributes compute units across banks the way the
    Vitis linker's connectivity map would, and exposes the worst-case
    contention factor the gates kernels experience.
    """

    banks: tuple

    def __post_init__(self) -> None:
        if not self.banks:
            raise ValueError("a DDR subsystem needs at least one bank")

    @classmethod
    def with_bank_count(cls, count: int, **bank_kwargs) -> "DdrSubsystem":
        """Create ``count`` identically-configured banks."""
        if count < 1:
            raise ValueError(f"bank count must be >= 1, got {count}")
        return cls(tuple(DdrBank(name=f"DDR[{i}]", **bank_kwargs) for i in range(count)))

    def assign_readers(self, reader_names) -> dict:
        """Spread readers over banks round-robin; return name → bank map."""
        for bank in self.banks:
            bank.detach_all_readers()
        assignment = {}
        for index, reader in enumerate(reader_names):
            bank = self.banks[index % len(self.banks)]
            bank.attach_reader(reader)
            assignment[reader] = bank
        return assignment

    @property
    def worst_contention_factor(self) -> float:
        """Largest contention factor across banks (the gates CU bound)."""
        return max(bank.contention_factor for bank in self.banks)

    def total_allocated(self) -> int:
        return sum(bank.allocated_bytes for bank in self.banks)


def bandwidth_bound_ii(bytes_per_iteration: int, bank: DdrBank) -> int:
    """Lower bound on a streaming loop's II from bank bandwidth.

    A loop that pulls ``bytes_per_iteration`` from ``bank`` each iteration
    cannot initiate faster than the bank can deliver, scaled by how many
    readers share the bank.
    """
    if bytes_per_iteration < 0:
        raise ValueError("bytes_per_iteration must be non-negative")
    if bytes_per_iteration == 0:
        return 1
    effective = bank.peak_bandwidth_bytes_per_cycle / bank.contention_factor
    return max(1, math.ceil(bytes_per_iteration / effective))
