"""High-Level Synthesis loop latency model.

Vitis HLS schedules a loop as a pipeline characterised by two numbers:

* **iteration depth** — cycles for one iteration to flow through the
  pipeline (sum of operation latencies along the critical path);
* **initiation interval (II)** — cycles between starting consecutive
  iterations.

Total latency of a pipelined loop with trip count ``n`` is
``depth + II * (n - 1)``; an unpipelined loop costs
``n * (depth + loop_overhead)`` because each iteration also pays the
loop-control handshake.

The II actually *achieved* is the maximum of three lower bounds, all of
which the paper's Section III-D optimisations manipulate:

1. the **requested** II (``#pragma HLS PIPELINE II=1``);
2. the **dependence-carried** II — a loop-carried dependency (e.g. a
   floating-point accumulator) cannot start a new iteration before the
   dependent operation finishes, so II >= that operation's latency;
3. the **resource** II — memory ports and shared functional units limit
   concurrent iterations; ``ARRAY_PARTITION`` removes the port bound,
   ``UNROLL`` raises the per-cycle demand.

Operation latencies for single-precision floating point and for the
paper's 10^6-scaled 64-bit integer arithmetic are tabulated in
:data:`FLOAT_OPS` and :data:`FIXED_OPS`.  They are representative of
UltraScale-class DSP48E2 implementations and are the calibration surface
of the simulator (see DESIGN.md, "Calibration policy").
"""

from __future__ import annotations

import dataclasses
import math

#: Cycles of loop-control overhead per iteration of an *unpipelined* loop.
LOOP_OVERHEAD_CYCLES = 1

#: Fixed cost of invoking a kernel: control register writes, AXI-Lite
#: handshake, and scheduler dispatch.  Paid once per kernel invocation.
KERNEL_INVOKE_CYCLES = 62


@dataclasses.dataclass(frozen=True)
class OpLatency:
    """Latency/II pair for one arithmetic operation on the fabric.

    ``depth`` is the cycles until the result is available; ``ii`` is the
    minimum cycles between issuing consecutive operations to the same
    functional unit (1 for fully-pipelined units).
    """

    depth: int
    ii: int = 1

    def __post_init__(self) -> None:
        if self.depth < 0 or self.ii < 1:
            raise ValueError(f"invalid op latency depth={self.depth} ii={self.ii}")


#: Single-precision floating point on DSP48E2 + fabric (representative).
FLOAT_OPS = {
    "add": OpLatency(depth=8),
    "mul": OpLatency(depth=6),
    # The fdiv core is iterative; a single shared instance is not fully
    # pipelined, which is what caps the II of softsign-bearing loops.
    "div": OpLatency(depth=16, ii=16),
    "exp": OpLatency(depth=40, ii=4),
    "cmp": OpLatency(depth=2),
}

#: 64-bit scaled-integer arithmetic (paper's fixed-point with scale 10^6).
#: Multiplies cascade several DSP slices; the wide divide needed to rescale
#: products (and to evaluate softsign's denominator) is the slowest unit.
FIXED_OPS = {
    "add": OpLatency(depth=1),
    "mul": OpLatency(depth=3),
    "div": OpLatency(depth=38, ii=10),
    "cmp": OpLatency(depth=1),
    "abs": OpLatency(depth=1),
}


def op_table(fixed_point: bool) -> dict:
    """Return the operation-latency table for the chosen arithmetic."""
    return FIXED_OPS if fixed_point else FLOAT_OPS


@dataclasses.dataclass(frozen=True)
class PragmaSet:
    """HLS pragmas applied to a loop (paper Section III-D).

    Attributes
    ----------
    pipeline:
        ``#pragma HLS PIPELINE`` — overlap iterations.
    target_ii:
        Requested initiation interval (``II=1`` in the paper).
    unroll:
        ``#pragma HLS UNROLL factor=N`` — replicate the loop body.
    array_partition:
        ``#pragma HLS ARRAY_PARTITION complete`` — removes the BRAM
        two-port ceiling on concurrent buffer accesses.
    """

    pipeline: bool = False
    target_ii: int = 1
    unroll: int = 1
    array_partition: bool = False

    def __post_init__(self) -> None:
        if self.target_ii < 1:
            raise ValueError(f"target_ii must be >= 1, got {self.target_ii}")
        if self.unroll < 1:
            raise ValueError(f"unroll must be >= 1, got {self.unroll}")


#: Pragma presets for the paper's three optimisation rungs.
VANILLA_PRAGMAS = PragmaSet(pipeline=True, target_ii=1)
II_OPTIMIZED_PRAGMAS = PragmaSet(pipeline=True, target_ii=1, unroll=4, array_partition=True)

#: Dual-port BRAM allows two accesses per cycle per (unpartitioned) buffer.
BRAM_PORTS = 2


@dataclasses.dataclass(frozen=True)
class HlsLoop:
    """A single HLS loop with enough structure to estimate its latency.

    Parameters
    ----------
    name:
        Label for reports.
    trip_count:
        Number of iterations.
    iteration_depth:
        Critical-path cycles of one iteration body (from the op tables).
    pragmas:
        The applied pragma set.
    carried_dependency_ii:
        Lower bound on II from loop-carried dependencies (e.g. the latency
        of a floating-point accumulator chain).  1 when iterations are
        independent.
    memory_accesses_per_iteration:
        Accesses to unpartitioned local buffers per iteration; combined
        with ``BRAM_PORTS`` this yields the resource II bound.
    shared_unit_ii:
        II bound from a shared, not-fully-pipelined functional unit in the
        body (e.g. the divider); 1 if none.
    unroll_depth_penalty:
        Extra depth per doubling of the unroll factor (adder trees, output
        muxing).  Applied as ``penalty * log2(unroll)``.
    """

    name: str
    trip_count: int
    iteration_depth: int
    pragmas: PragmaSet = dataclasses.field(default_factory=PragmaSet)
    carried_dependency_ii: int = 1
    memory_accesses_per_iteration: int = 0
    shared_unit_ii: int = 1
    unroll_depth_penalty: int = 8

    def __post_init__(self) -> None:
        if self.trip_count < 0:
            raise ValueError(f"trip_count must be non-negative, got {self.trip_count}")
        if self.iteration_depth < 1:
            raise ValueError(
                f"iteration_depth must be >= 1, got {self.iteration_depth}"
            )
        if self.carried_dependency_ii < 1 or self.shared_unit_ii < 1:
            raise ValueError("II bounds must be >= 1")

    @property
    def effective_trip_count(self) -> int:
        """Trip count after unrolling (``ceil(n / unroll)``)."""
        if self.trip_count == 0:
            return 0
        return math.ceil(self.trip_count / self.pragmas.unroll)

    @property
    def effective_depth(self) -> int:
        """Iteration depth after unrolling (tree/mux growth)."""
        if self.pragmas.unroll == 1:
            return self.iteration_depth
        levels = math.ceil(math.log2(self.pragmas.unroll))
        return self.iteration_depth + self.unroll_depth_penalty * levels

    @property
    def achieved_ii(self) -> int:
        """The II the scheduler can actually achieve for this loop.

        Maximum of the requested II, the dependence bound, the shared-unit
        bound, and the memory-port bound.  Unrolling multiplies per-cycle
        memory demand; complete array partitioning removes the port bound.
        """
        bounds = [self.pragmas.target_ii, self.carried_dependency_ii, self.shared_unit_ii]
        if self.memory_accesses_per_iteration and not self.pragmas.array_partition:
            demand = self.memory_accesses_per_iteration * self.pragmas.unroll
            bounds.append(math.ceil(demand / BRAM_PORTS))
        return max(bounds)

    @property
    def latency_cycles(self) -> int:
        """Total cycles for the whole loop."""
        trips = self.effective_trip_count
        if trips == 0:
            return 0
        if self.pragmas.pipeline:
            return self.effective_depth + self.achieved_ii * (trips - 1)
        return trips * (self.effective_depth + LOOP_OVERHEAD_CYCLES)

    @property
    def steady_state_ii(self) -> int:
        """Cycles between results once the pipeline is full.

        For a pipelined loop this is the achieved II; an unpipelined loop
        produces one result per full iteration.
        """
        if self.pragmas.pipeline:
            return self.achieved_ii
        return self.effective_depth + LOOP_OVERHEAD_CYCLES


@dataclasses.dataclass(frozen=True)
class DataflowRegion:
    """Parallel composition of loops (``#pragma HLS DATAFLOW``).

    Section III-D: "The HLS pragma #pragma HLS DATAFLOW was also employed
    in kernel_gates to promote added parallelization between independent
    operations within the CUs."  Independent loops in a dataflow region
    execute concurrently, so the region's latency is the *maximum* of its
    members (plus a small channel hand-off).
    """

    name: str
    loops: tuple
    channel_cycles: int = 2  # PIPO/FIFO hand-off between region stages

    def __post_init__(self) -> None:
        if not self.loops:
            raise ValueError(f"dataflow region {self.name!r} needs loops")
        if self.channel_cycles < 0:
            raise ValueError("channel_cycles must be non-negative")

    @property
    def latency_cycles(self) -> int:
        return max(loop.latency_cycles for loop in self.loops) + self.channel_cycles


@dataclasses.dataclass(frozen=True)
class LoopNest:
    """Sequential composition of loops plus a fixed prologue cost.

    Models a kernel body: the invoke handshake, then each component in
    turn.  Components may be :class:`HlsLoop` or :class:`DataflowRegion`
    (parallel sub-blocks).  Perfectly-nested loop flattening is expressed
    by constructing a single :class:`HlsLoop` with the product trip count.
    """

    name: str
    loops: tuple
    prologue_cycles: int = KERNEL_INVOKE_CYCLES

    @property
    def latency_cycles(self) -> int:
        """Total kernel latency: prologue plus every component in sequence."""
        return self.prologue_cycles + sum(loop.latency_cycles for loop in self.loops)

    def breakdown(self) -> dict:
        """Per-component cycle counts, keyed by component name."""
        parts = {"prologue": self.prologue_cycles}
        for loop in self.loops:
            parts[loop.name] = loop.latency_cycles
        return parts
