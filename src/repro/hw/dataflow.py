"""Dataflow pipeline scheduling (paper Section III-C).

Two overlap mechanisms matter for the engine's end-to-end time:

1. **Parallel compute units** — the four ``kernel_gates`` CUs start
   together, so the gates stage costs the *maximum* of the four, not the
   sum ("the execution time of the gate operations is equivalent to the
   maximum execution time of each of the four CUs").
2. **Preemptive preprocessing** — "while an item in the sequence is being
   processed by the kernel_gates CUs and kernel_hidden_state,
   kernel_preprocess preemptively processes the next item", i.e. a
   two-stage software pipeline across sequence items.

The recurrent dependency through ``h_{t-1}`` forbids overlapping the
gates/hidden stages of *consecutive* items, so the item-level schedule is:

* no overlap:   ``T * (P + G + H)``
* preemptive:   ``P + T' * max(P, G + H) + (G + H)``-style pipelining,
  computed exactly by :func:`pipelined_schedule`.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class StageTiming:
    """Cycles spent in each engine stage for one sequence item."""

    preprocess: int
    gates: int
    hidden_state: int

    def __post_init__(self) -> None:
        for field_name in ("preprocess", "gates", "hidden_state"):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be non-negative")

    @property
    def serial_total(self) -> int:
        """Cycles if the three stages run back to back."""
        return self.preprocess + self.gates + self.hidden_state

    @property
    def compute_total(self) -> int:
        """Cycles of the recurrence-bound stages (gates + hidden)."""
        return self.gates + self.hidden_state


def parallel_stage_cycles(per_cu_cycles) -> int:
    """Duration of a stage whose CUs run concurrently: the maximum."""
    per_cu_cycles = list(per_cu_cycles)
    if not per_cu_cycles:
        raise ValueError("a parallel stage needs at least one compute unit")
    if any(c < 0 for c in per_cu_cycles):
        raise ValueError("cycle counts must be non-negative")
    return max(per_cu_cycles)


def serial_schedule(item_timing: StageTiming, num_items: int) -> int:
    """Total cycles with no cross-item overlap."""
    if num_items < 0:
        raise ValueError(f"num_items must be non-negative, got {num_items}")
    return num_items * item_timing.serial_total


def pipelined_schedule(item_timing: StageTiming, num_items: int) -> int:
    """Total cycles with preemptive preprocessing.

    While item ``t`` is in gates+hidden, item ``t+1`` is in preprocess.
    Steady-state per-item cost is ``max(preprocess, gates + hidden)``;
    the first item pays its full preprocess as a pipeline fill.
    """
    if num_items < 0:
        raise ValueError(f"num_items must be non-negative, got {num_items}")
    if num_items == 0:
        return 0
    steady = max(item_timing.preprocess, item_timing.compute_total)
    # Fill: item 0's preprocess cannot overlap anything.  Drain: the last
    # item's compute always runs to completion; intermediate items advance
    # at the steady-state rate.
    return item_timing.preprocess + steady * (num_items - 1) + item_timing.compute_total


def schedule(item_timing: StageTiming, num_items: int, preemptive: bool) -> int:
    """Dispatch to the serial or pipelined schedule."""
    if preemptive:
        return pipelined_schedule(item_timing, num_items)
    return serial_schedule(item_timing, num_items)


def pipeline_speedup(item_timing: StageTiming, num_items: int) -> float:
    """Serial / pipelined cycle ratio for the pipeline ablation."""
    pipelined = pipelined_schedule(item_timing, num_items)
    if pipelined == 0:
        return 1.0
    return serial_schedule(item_timing, num_items) / pipelined
