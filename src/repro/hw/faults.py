"""Fault injection for the hardware substrate.

Dependable-systems reproductions should show how the design behaves when
the substrate misbehaves, not only when it is healthy.  This module
provides a small fault-injection framework used by the failure-injection
test suite:

* :class:`AxiStallFault` — an AXI port intermittently stalls, stretching
  transfers (models DDR refresh collisions / arbitration pathologies);
* :class:`BitFlipFault` — flips a bit of a quantised buffer value (models
  an SEU in BRAM, relevant to FPGA dependability);
* :class:`DmaErrorFault` — a P2P DMA transfer fails and must be retried,
  surfacing :class:`repro.hw.axi.TransferError` after the retry budget;
* :class:`DeviceFailFault` — an entire drive drops off the node at a
  simulated instant (models a dead SmartSSD / PCIe link-down), used by
  the fleet serving simulator to exercise failover;
* :class:`DeviceDegradeFault` — a drive keeps serving but slows down by
  a factor from a simulated instant on (thermal throttling, media wear).

Faults are armed on a :class:`FaultPlan` which components consult through
narrow hooks, so the healthy path stays fault-framework-free.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.hw.axi import TransferError


@dataclasses.dataclass
class AxiStallFault:
    """Stretch every ``period``-th transfer by ``extra_cycles``."""

    period: int = 3
    extra_cycles: int = 200

    def __post_init__(self) -> None:
        if self.period < 1 or self.extra_cycles < 0:
            raise ValueError("period must be >= 1 and extra_cycles >= 0")
        self._count = 0

    def stall_cycles(self) -> int:
        """Cycles to add to the current transfer (0 when not firing)."""
        self._count += 1
        if self._count % self.period == 0:
            return self.extra_cycles
        return 0


@dataclasses.dataclass
class BitFlipFault:
    """Flip one bit of one element in a quantised int64 buffer."""

    element_index: int = 0
    bit: int = 12
    fire_once: bool = True

    def __post_init__(self) -> None:
        if not 0 <= self.bit < 63:
            raise ValueError(f"bit must be in [0, 63), got {self.bit}")
        self._fired = False

    def corrupt(self, buffer: np.ndarray) -> np.ndarray:
        """Return ``buffer`` with the configured bit flipped (copy).

        Honour ``fire_once``: subsequent calls return the buffer unchanged.
        """
        if self.fire_once and self._fired:
            return buffer
        self._fired = True
        corrupted = np.array(buffer, dtype=np.int64, copy=True)
        flat = corrupted.reshape(-1)
        index = self.element_index % flat.size
        flat[index] = np.int64(flat[index]) ^ np.int64(1 << self.bit)
        return corrupted


@dataclasses.dataclass
class DmaErrorFault:
    """Fail the first ``failures`` DMA attempts, then succeed."""

    failures: int = 1

    def __post_init__(self) -> None:
        if self.failures < 0:
            raise ValueError("failures must be non-negative")
        self._remaining = self.failures

    def check(self) -> None:
        """Raise :class:`TransferError` while failures remain."""
        if self._remaining > 0:
            self._remaining -= 1
            raise TransferError("injected DMA failure")


@dataclasses.dataclass(frozen=True)
class DeviceFailFault:
    """Kill a whole drive at ``at_us`` on the serving simulator's clock."""

    at_us: int

    def __post_init__(self) -> None:
        if self.at_us < 0:
            raise ValueError(f"at_us must be non-negative, got {self.at_us}")


@dataclasses.dataclass(frozen=True)
class DeviceDegradeFault:
    """Stretch a drive's service time by ``slowdown`` from ``at_us`` on."""

    at_us: int
    slowdown: float = 2.0

    def __post_init__(self) -> None:
        if self.at_us < 0:
            raise ValueError(f"at_us must be non-negative, got {self.at_us}")
        if self.slowdown < 1.0:
            raise ValueError(
                f"slowdown must be >= 1.0 (a degradation), got {self.slowdown}"
            )


@dataclasses.dataclass
class FaultPlan:
    """The set of faults armed for a run; all default to absent."""

    axi_stall: AxiStallFault | None = None
    bit_flip: BitFlipFault | None = None
    dma_error: DmaErrorFault | None = None
    device_fail: DeviceFailFault | None = None
    device_degrade: DeviceDegradeFault | None = None

    def extra_transfer_cycles(self) -> int:
        """AXI stall penalty for the current transfer, if armed."""
        if self.axi_stall is None:
            return 0
        return self.axi_stall.stall_cycles()

    def maybe_corrupt(self, buffer: np.ndarray) -> np.ndarray:
        """Apply the bit-flip fault to a buffer, if armed."""
        if self.bit_flip is None:
            return buffer
        return self.bit_flip.corrupt(buffer)

    def check_dma(self) -> None:
        """Raise if the DMA fault is armed and still failing."""
        if self.dma_error is not None:
            self.dma_error.check()

    def device_failed(self, now_us: int) -> bool:
        """Whether the drive is dead at simulated microsecond ``now_us``."""
        return self.device_fail is not None and now_us >= self.device_fail.at_us

    def service_slowdown(self, now_us: int) -> float:
        """Service-time stretch factor at ``now_us`` (1.0 when healthy)."""
        if self.device_degrade is None or now_us < self.device_degrade.at_us:
            return 1.0
        return self.device_degrade.slowdown


def retry_dma(plan: FaultPlan, attempts: int = 3, telemetry=None) -> int:
    """Drive a DMA through the fault plan with a retry budget.

    Returns the number of attempts used.  Raises
    :class:`repro.hw.axi.TransferError` if the budget is exhausted.
    When ``telemetry`` is given, every attempt/retry/failure increments
    the ``repro_dma_*_total`` counters (docs/observability.md).
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    for attempt in range(1, attempts + 1):
        try:
            plan.check_dma()
        except TransferError:
            if telemetry is not None:
                telemetry.counter("repro_dma_attempts_total").inc()
            if attempt == attempts:
                if telemetry is not None:
                    telemetry.counter("repro_dma_failures_total").inc()
                raise
            if telemetry is not None:
                telemetry.counter("repro_dma_retries_total").inc()
            continue
        if telemetry is not None:
            telemetry.counter("repro_dma_attempts_total").inc()
        return attempt
    raise AssertionError("unreachable")
