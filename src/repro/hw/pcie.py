"""PCIe link, switch, and peer-to-peer routing model (paper Fig. 1).

The SmartSSD pairs its SSD and FPGA behind an onboard PCIe switch on a
Gen3 x4 bus.  The switch supports peer-to-peer (P2P) transfers between the
NVMe SSD and the FPGA DRAM, which "drastically reduces PCIe traffic and
CPU overhead" — data never crosses the host root complex.

The model charges per-transfer DMA setup latency plus payload time at the
link's effective bandwidth.  A host-mediated route crosses two links (SSD →
host → FPGA) and adds host DMA/driver overhead; the P2P route crosses the
switch once.
"""

from __future__ import annotations

import dataclasses

#: Effective per-lane bandwidth in bytes/second after 128b/130b encoding
#: and protocol overhead (~985 MB/s/lane for Gen3).
_GEN_LANE_BANDWIDTH = {1: 250e6, 2: 500e6, 3: 985e6, 4: 1969e6, 5: 3938e6}

#: DMA descriptor setup + doorbell + completion latency for one transfer.
DEFAULT_DMA_SETUP_SECONDS = 2.0e-6

#: Extra latency when the host CPU mediates a transfer (driver, interrupt,
#: bounce through host DRAM).
DEFAULT_HOST_OVERHEAD_SECONDS = 8.0e-6


@dataclasses.dataclass(frozen=True)
class PcieLink:
    """A PCIe link of a given generation and width."""

    generation: int = 3
    lanes: int = 4
    dma_setup_seconds: float = DEFAULT_DMA_SETUP_SECONDS

    def __post_init__(self) -> None:
        if self.generation not in _GEN_LANE_BANDWIDTH:
            raise ValueError(
                f"unsupported PCIe generation {self.generation}; "
                f"known: {sorted(_GEN_LANE_BANDWIDTH)}"
            )
        if self.lanes not in (1, 2, 4, 8, 16):
            raise ValueError(f"invalid lane count {self.lanes}")

    @property
    def bandwidth_bytes_per_second(self) -> float:
        return _GEN_LANE_BANDWIDTH[self.generation] * self.lanes

    def transfer_seconds(self, num_bytes: int) -> float:
        """Wall time to move ``num_bytes`` across this link."""
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be non-negative, got {num_bytes}")
        if num_bytes == 0:
            return 0.0
        return self.dma_setup_seconds + num_bytes / self.bandwidth_bytes_per_second


@dataclasses.dataclass
class PcieSwitch:
    """The SmartSSD's onboard switch joining host, SSD, and FPGA.

    Routes:

    * ``p2p``  — SSD ↔ FPGA DRAM through the switch only.
    * ``host`` — SSD → host DRAM → FPGA: two link crossings plus host
      software overhead; this is what P2P avoids.
    """

    upstream: PcieLink = dataclasses.field(default_factory=PcieLink)
    host_overhead_seconds: float = DEFAULT_HOST_OVERHEAD_SECONDS

    def __post_init__(self) -> None:
        self.p2p_bytes = 0
        self.host_bytes = 0

    def p2p_transfer_seconds(self, num_bytes: int) -> float:
        """SSD ↔ FPGA DRAM peer-to-peer transfer time."""
        self.p2p_bytes += num_bytes
        return self.upstream.transfer_seconds(num_bytes)

    def host_mediated_transfer_seconds(self, num_bytes: int) -> float:
        """SSD → host → FPGA transfer time (the non-P2P path)."""
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be non-negative, got {num_bytes}")
        self.host_bytes += num_bytes
        if num_bytes == 0:
            return 0.0
        two_crossings = 2.0 * self.upstream.transfer_seconds(num_bytes)
        return two_crossings + self.host_overhead_seconds

    def p2p_savings_seconds(self, num_bytes: int) -> float:
        """How much one transfer saves by going P2P instead of via host.

        Pure arithmetic — does not update the traffic counters.
        """
        switch = PcieSwitch(upstream=self.upstream, host_overhead_seconds=self.host_overhead_seconds)
        return switch.host_mediated_transfer_seconds(num_bytes) - switch.p2p_transfer_seconds(
            num_bytes
        )
