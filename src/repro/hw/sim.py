"""Discrete-event simulation core, cross-validating the analytic model.

The kernel/pipeline latencies elsewhere in :mod:`repro.hw` are *analytic*
(closed-form schedules).  Closed forms are fast but easy to get subtly
wrong, so this module provides a small discrete-event simulator and an
event-level model of the engine's three-stage item pipeline.  The test
suite runs both and asserts they agree cycle-for-cycle — the same
validation discipline real performance-model codebases use.

The DES is deliberately minimal: a time-ordered event queue
(:class:`Simulator`), single-owner resources (:class:`Resource`), and a
process-free callback style (actions schedule further events).
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools

from repro.hw.dataflow import StageTiming


class Simulator:
    """A time-ordered event loop.

    Events fire in (time, insertion-order) order; an action may schedule
    further events.  Time is unitless (cycles, here).
    """

    def __init__(self, telemetry=None):
        self._queue: list = []
        self._counter = itertools.count()
        self.now = 0
        self._fired = 0
        #: Optional :class:`repro.telemetry.Telemetry`; when set, each
        #: :meth:`run` reports the events it drained (experimental
        #: metrics — see docs/observability.md).
        self.telemetry = telemetry

    def schedule(self, delay: int, action) -> None:
        """Run ``action()`` ``delay`` ticks from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        heapq.heappush(self._queue, (self.now + delay, next(self._counter), action))

    def run(self, max_events: int | None = 1_000_000,
            until: int | None = None) -> int:
        """Drain the queue; returns the final simulation time.

        ``max_events`` guards against runaway self-scheduling models
        (``None`` disables the guard — long-lived control-plane loops
        legitimately fire many more events than a single serve run).
        With ``until``, only events scheduled at or before that time
        fire; the clock then advances to ``until`` and later events stay
        queued for the next ``run`` call, which is what lets a caller
        step the simulation in bounded rounds.
        """
        fired_before = self._fired
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                break
            self._fired += 1
            if max_events is not None and self._fired > max_events:
                raise RuntimeError(f"exceeded {max_events} events; runaway model?")
            time, _, action = heapq.heappop(self._queue)
            self.now = time
            action()
        if until is not None and until > self.now:
            self.now = until
        if self.telemetry is not None:
            self.telemetry.counter("repro_sim_events_total").inc(
                self._fired - fired_before
            )
        return self.now

    @property
    def events_fired(self) -> int:
        return self._fired


class Resource:
    """A single-owner resource with FIFO hand-off.

    ``acquire(action)`` runs ``action`` immediately if the resource is
    free, else queues it; ``release()`` hands the resource to the next
    waiter in arrival order.
    """

    def __init__(self, name: str):
        self.name = name
        self._busy = False
        self._waiters: list = []
        self.acquisitions = 0

    @property
    def busy(self) -> bool:
        return self._busy

    def acquire(self, action) -> None:
        if self._busy:
            self._waiters.append(action)
            return
        self._busy = True
        self.acquisitions += 1
        action()

    def release(self) -> None:
        if not self._busy:
            raise RuntimeError(f"resource {self.name!r} released while free")
        if self._waiters:
            self.acquisitions += 1
            action = self._waiters.pop(0)
            action()
        else:
            self._busy = False


@dataclasses.dataclass
class PipelineTrace:
    """Per-item start/end times recorded by the event-level pipeline."""

    preprocess_spans: list = dataclasses.field(default_factory=list)
    compute_spans: list = dataclasses.field(default_factory=list)


def simulate_item_pipeline(
    timing: StageTiming, num_items: int, preemptive: bool, telemetry=None
) -> tuple:
    """Event-level model of the engine's per-item schedule.

    Structure (matching Section III-C):

    * one *preprocess* unit — embeds item ``t``;
    * one *compute* unit — the gates CUs + hidden-state kernel, which run
      back to back and carry the ``h_{t-1}`` recurrence, so compute for
      item ``t+1`` cannot start before compute for ``t`` ends **and** the
      embedding of ``t+1`` is ready;
    * preemptive mode lets preprocess work on item ``t+1`` while compute
      handles item ``t``; non-preemptive serialises everything.

    Returns ``(total_cycles, PipelineTrace)``.
    """
    if num_items < 0:
        raise ValueError(f"num_items must be non-negative, got {num_items}")
    simulator = Simulator(telemetry=telemetry)
    trace = PipelineTrace()
    embedding_ready = [None] * max(num_items, 1)  # completion time per item
    compute_done = [None] * max(num_items, 1)

    preprocess_free_at = 0
    # Schedule all preprocess work: in preemptive mode, item t+1's
    # preprocess may start as soon as the unit is free; in serial mode it
    # must additionally wait for item t's compute to finish (handled by
    # chaining below).
    def start_preprocess(item: int, not_before: int) -> None:
        nonlocal preprocess_free_at
        start = max(preprocess_free_at, not_before)
        end = start + timing.preprocess
        preprocess_free_at = end
        trace.preprocess_spans.append((start, end))
        embedding_ready[item] = end

        def on_embedding_done():
            try_start_compute(item)

        simulator.schedule(end - simulator.now, on_embedding_done)

    def try_start_compute(item: int) -> None:
        if embedding_ready[item] is None or compute_done[item] is not None:
            return  # embedding not ready, or already started
        previous_done = 0 if item == 0 else compute_done[item - 1]
        if previous_done is None:
            return  # recurrence not satisfied yet; retried when it is
        start = max(embedding_ready[item], previous_done)
        end = start + timing.compute_total
        compute_done[item] = end
        trace.compute_spans.append((start, end))

        def on_compute_done():
            if preemptive:
                if item + 1 < num_items and embedding_ready[item + 1] is not None:
                    try_start_compute(item + 1)
            else:
                if item + 1 < num_items:
                    start_preprocess(item + 1, not_before=end)

        simulator.schedule(end - simulator.now, on_compute_done)

    if num_items > 0:
        if preemptive:
            for item in range(num_items):
                start_preprocess(item, not_before=0)
        else:
            start_preprocess(0, not_before=0)

    total = simulator.run()
    if telemetry is not None:
        for stage, spans in (
            ("preprocess", trace.preprocess_spans),
            ("compute", trace.compute_spans),
        ):
            histogram = telemetry.histogram("repro_sim_stage_cycles", stage=stage)
            for start, end in spans:
                histogram.observe(end - start)
    return total, trace
