"""FPGA part catalogue and resource accounting.

The paper evaluates on the Alveo u200 ("part of the UltraScale family and
similar to the SmartSSD's Kintex KU15P", Section IV); the SmartSSD itself
carries the KU15P.  This module describes both parts and tracks resource
consumption as kernels are "linked", so configurations that would not fit
(e.g. absurd CU counts in the ablation) fail the same way ``v++`` would.
"""

from __future__ import annotations

import dataclasses

from repro.hw.clock import DEFAULT_KERNEL_CLOCK_HZ, ClockDomain
from repro.hw.memory import DdrSubsystem


@dataclasses.dataclass(frozen=True)
class FpgaPart:
    """Static description of an FPGA part's resources."""

    name: str
    luts: int
    flip_flops: int
    dsp_slices: int
    bram_blocks: int       # 36 Kb blocks
    uram_blocks: int
    ddr_banks: int
    max_kernel_clock_hz: float

    def __post_init__(self) -> None:
        for field_name in ("luts", "flip_flops", "dsp_slices", "bram_blocks", "ddr_banks"):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")


#: Xilinx Kintex UltraScale KU15P — the FPGA inside Samsung's SmartSSD.
KU15P = FpgaPart(
    name="xcku15p",
    luts=522_720,
    flip_flops=1_045_440,
    dsp_slices=1_968,
    bram_blocks=984,
    uram_blocks=128,
    ddr_banks=1,
    max_kernel_clock_hz=300_000_000,
)

#: AMD/Xilinx Alveo u200 — the paper's primary experimental platform.
ALVEO_U200 = FpgaPart(
    name="xcu200",
    luts=1_182_240,
    flip_flops=2_364_480,
    dsp_slices=6_840,
    bram_blocks=2_160,
    uram_blocks=960,
    ddr_banks=4,
    max_kernel_clock_hz=300_000_000,
)


class ResourceExhausted(RuntimeError):
    """A kernel placement exceeded the part's available resources."""


@dataclasses.dataclass(frozen=True)
class ResourceRequest:
    """Resources one kernel compute unit consumes when placed."""

    luts: int = 0
    flip_flops: int = 0
    dsp_slices: int = 0
    bram_blocks: int = 0

    def __post_init__(self) -> None:
        for field_name in ("luts", "flip_flops", "dsp_slices", "bram_blocks"):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be non-negative")


class FpgaDevice:
    """A programmable FPGA: a part, a kernel clock, DDR banks, and a
    ledger of placed kernels.

    Parameters
    ----------
    part:
        The silicon (:data:`KU15P`, :data:`ALVEO_U200`, or custom).
    kernel_clock_hz:
        Kernel clock; defaults to 300 MHz, clamped by the part's maximum.
    ddr_banks_used:
        Number of global-memory banks the design is linked against.  The
        paper uses "a conservative two" on the u200.
    """

    def __init__(
        self,
        part: FpgaPart = ALVEO_U200,
        kernel_clock_hz: float = DEFAULT_KERNEL_CLOCK_HZ,
        ddr_banks_used: int = 2,
    ):
        if kernel_clock_hz > part.max_kernel_clock_hz:
            raise ValueError(
                f"{part.name} supports at most "
                f"{part.max_kernel_clock_hz / 1e6:.0f} MHz kernel clock, "
                f"requested {kernel_clock_hz / 1e6:.0f} MHz"
            )
        if not 1 <= ddr_banks_used <= part.ddr_banks:
            raise ValueError(
                f"{part.name} has {part.ddr_banks} DDR bank(s), "
                f"requested {ddr_banks_used}"
            )
        self.part = part
        self.clock = ClockDomain(frequency_hz=kernel_clock_hz, name=f"{part.name}-kernel")
        self.ddr = DdrSubsystem.with_bank_count(ddr_banks_used)
        self._placements: dict = {}
        self._used = ResourceRequest()

    @property
    def placements(self) -> dict:
        """Kernel name → :class:`ResourceRequest` of everything placed."""
        return dict(self._placements)

    @property
    def used(self) -> ResourceRequest:
        return self._used

    def place_kernel(self, name: str, request: ResourceRequest) -> None:
        """Place one compute unit, charging its resources.

        Raises
        ------
        ResourceExhausted
            If any resource class would exceed the part's capacity.
        ValueError
            If the kernel name is already placed.
        """
        if name in self._placements:
            raise ValueError(f"kernel {name!r} is already placed")
        new_used = ResourceRequest(
            luts=self._used.luts + request.luts,
            flip_flops=self._used.flip_flops + request.flip_flops,
            dsp_slices=self._used.dsp_slices + request.dsp_slices,
            bram_blocks=self._used.bram_blocks + request.bram_blocks,
        )
        limits = (
            ("luts", self.part.luts),
            ("flip_flops", self.part.flip_flops),
            ("dsp_slices", self.part.dsp_slices),
            ("bram_blocks", self.part.bram_blocks),
        )
        for field_name, limit in limits:
            if getattr(new_used, field_name) > limit:
                raise ResourceExhausted(
                    f"placing {name!r} needs {getattr(request, field_name)} "
                    f"{field_name} but only "
                    f"{limit - getattr(self._used, field_name)} remain on "
                    f"{self.part.name}"
                )
        self._placements[name] = request
        self._used = new_used

    def utilization(self) -> dict:
        """Fractional utilisation per resource class."""
        return {
            "luts": self._used.luts / self.part.luts,
            "flip_flops": self._used.flip_flops / self.part.flip_flops,
            "dsp_slices": self._used.dsp_slices / self.part.dsp_slices,
            "bram_blocks": self._used.bram_blocks / self.part.bram_blocks,
        }

    def reset(self) -> None:
        """Clear all placements and DDR allocations (reprogramming)."""
        self._placements.clear()
        self._used = ResourceRequest()
        for bank in self.ddr.banks:
            bank.free_all()
            bank.detach_all_readers()
