"""NVMe SSD model (PM1733-class, the SmartSSD's storage half).

The detector's input — API-call sequences spooled to storage — is read by
the FPGA directly from the SSD over the P2P path, so the SSD model only
needs first-order read/write behaviour: fixed command latency plus payload
at device bandwidth, clamped by the PCIe Gen3 x4 front end, and simple
capacity bookkeeping for stored objects.

Objects may optionally carry a real payload (``data=``): the response
subsystem's copy-on-write snapshots restore protected objects and verify
the result *byte for byte*, which needs actual content, not just sizes.
Size-only objects stay supported — payloads are strictly additive.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass
class NvmeSsd:
    """A capacity/latency/bandwidth model of an NVMe SSD.

    Default constants approximate the 4 TB PM1733 behind a Gen3 x4 link:
    ~90 us random-read command latency, ~3.2 GB/s effective sequential
    read, ~2.6 GB/s write.
    """

    name: str = "PM1733"
    capacity_bytes: int = 4 * 10**12
    read_latency_seconds: float = 90e-6
    write_latency_seconds: float = 30e-6
    read_bandwidth_bytes_per_second: float = 3.2e9
    write_bandwidth_bytes_per_second: float = 2.6e9

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if min(self.read_bandwidth_bytes_per_second, self.write_bandwidth_bytes_per_second) <= 0:
            raise ValueError("bandwidths must be positive")
        self._objects: dict = {}
        self._data: dict = {}
        self._used = 0
        self.reads_issued = 0
        self.writes_issued = 0

    @property
    def used_bytes(self) -> int:
        return self._used

    def write_object(self, key: str, num_bytes: int, data: bytes | None = None) -> float:
        """Store an object; returns the simulated write time in seconds.

        ``data``, when given, is the object's actual payload and must be
        exactly ``num_bytes`` long; omitting it keeps the historical
        size-only bookkeeping.
        """
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be non-negative, got {num_bytes}")
        if data is not None and len(data) != num_bytes:
            raise ValueError(
                f"payload is {len(data)} bytes but num_bytes={num_bytes}"
            )
        existing = self._objects.get(key, 0)
        if self._used - existing + num_bytes > self.capacity_bytes:
            raise MemoryError(
                f"{self.name}: {num_bytes} bytes will not fit "
                f"({self._used}/{self.capacity_bytes} used)"
            )
        self._used = self._used - existing + num_bytes
        self._objects[key] = num_bytes
        if data is not None:
            self._data[key] = data
        else:
            self._data.pop(key, None)
        self.writes_issued += 1
        return self.write_latency_seconds + num_bytes / self.write_bandwidth_bytes_per_second

    def has_object(self, key: str) -> bool:
        """Whether an object with that key is stored."""
        return key in self._objects

    def object_size(self, key: str) -> int:
        """Stored size of an object in bytes (no simulated read issued)."""
        if key not in self._objects:
            raise KeyError(f"{self.name}: no object {key!r}")
        return self._objects[key]

    def object_keys(self) -> tuple:
        """All stored object keys, sorted (deterministic iteration)."""
        return tuple(sorted(self._objects))

    def read_object_data(self, key: str) -> bytes | None:
        """The stored payload, or ``None`` for size-only objects.

        Metadata access on the simulated device — no read command is
        issued; pair with :meth:`read_object` to account the time.
        """
        if key not in self._objects:
            raise KeyError(f"{self.name}: no object {key!r}")
        return self._data.get(key)

    def read_object(self, key: str) -> tuple:
        """Read a stored object; returns ``(num_bytes, seconds)``.

        Raises
        ------
        KeyError
            If no object with that key was written.
        """
        if key not in self._objects:
            raise KeyError(f"{self.name}: no object {key!r}")
        num_bytes = self._objects[key]
        self.reads_issued += 1
        seconds = self.read_latency_seconds + num_bytes / self.read_bandwidth_bytes_per_second
        return num_bytes, seconds

    def read_seconds(self, num_bytes: int) -> float:
        """Time to read an anonymous extent of ``num_bytes``."""
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be non-negative, got {num_bytes}")
        self.reads_issued += 1
        return self.read_latency_seconds + num_bytes / self.read_bandwidth_bytes_per_second

    def delete_object(self, key: str) -> None:
        """Remove a stored object."""
        num_bytes = self._objects.pop(key, None)
        if num_bytes is None:
            raise KeyError(f"{self.name}: no object {key!r}")
        self._data.pop(key, None)
        self._used -= num_bytes
