"""Power and energy model: FPGA vs CPU vs GPU.

The paper's efficiency argument (Sections I, V, VII) is qualitative — CSDs
draw far less power than server CPUs and GPUs, so continuous background
inference costs less energy and cooling.  This module quantifies that with
representative board-level figures so the ``bench_power`` benchmark can
report energy per inference for all three devices.

Board power figures (typical sustained, not TDP peaks):

* SmartSSD FPGA compute: the device budget is 25 W total; the KU15P
  compute portion runs ~10 W under load.
* Intel Xeon Silver 4114: 85 W TDP, one inference uses a single core plus
  uncore — ~20 W attributable.
* NVIDIA A100 (40 GB): 250 W sustained under inference load.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class PowerProfile:
    """Static + active power of one device."""

    name: str
    idle_watts: float
    active_watts: float

    def __post_init__(self) -> None:
        if self.idle_watts < 0 or self.active_watts < self.idle_watts:
            raise ValueError(
                f"require 0 <= idle <= active, got idle={self.idle_watts} "
                f"active={self.active_watts}"
            )

    def energy_joules(self, active_seconds: float, idle_seconds: float = 0.0) -> float:
        """Energy for a duty cycle of active and idle time."""
        if active_seconds < 0 or idle_seconds < 0:
            raise ValueError("durations must be non-negative")
        return self.active_watts * active_seconds + self.idle_watts * idle_seconds

    def energy_per_inference_joules(self, inference_seconds: float) -> float:
        """Energy attributable to one inference of the given duration."""
        return self.energy_joules(active_seconds=inference_seconds)


#: SmartSSD's FPGA compute portion under inference load.
SMARTSSD_FPGA_POWER = PowerProfile(name="SmartSSD-FPGA", idle_watts=5.0, active_watts=10.0)

#: Per-inference attributable power on a Xeon Silver 4114 core + uncore.
XEON_CPU_POWER = PowerProfile(name="Xeon-Silver-4114", idle_watts=9.0, active_watts=20.0)

#: NVIDIA A100 40 GB under light inference load.
A100_GPU_POWER = PowerProfile(name="A100-40GB", idle_watts=55.0, active_watts=250.0)


def energy_comparison(inference_seconds_by_device: dict) -> dict:
    """Energy per inference (joules) for each named device.

    Parameters
    ----------
    inference_seconds_by_device:
        Mapping of profile → measured per-inference seconds, e.g.
        ``{SMARTSSD_FPGA_POWER: 2.15e-6, A100_GPU_POWER: 741e-6}``.

    Returns
    -------
    dict
        Device name → joules per inference.
    """
    return {
        profile.name: profile.energy_per_inference_joules(seconds)
        for profile, seconds in inference_seconds_by_device.items()
    }
