"""Vitis-style hardware emulation reports.

The paper measures everything in "the Vitis Software Platform Development
Environment's hardware emulation mode".  Vitis emits two artefacts
developers actually read: the **HLS kernel report** (per-loop trip count,
II, iteration latency, total latency) and the **system estimate /
utilisation report** (per-kernel LUT/FF/DSP/BRAM against the platform).
This module renders the equivalents from the simulator's own models so
users can inspect *why* a configuration costs what it costs.
"""

from __future__ import annotations

import dataclasses
import io

from repro.hw.fpga import FpgaDevice
from repro.hw.hls import HlsLoop, LoopNest


@dataclasses.dataclass(frozen=True)
class LoopReportRow:
    """One loop's line in the kernel report."""

    loop: str
    trip_count: int
    pipelined: bool
    achieved_ii: int | None
    iteration_depth: int
    latency_cycles: int


def loop_report(nest: LoopNest) -> list:
    """Rows of a Vitis-style latency report for one kernel's loop nest."""
    rows = []
    for loop in nest.loops:
        rows.append(
            LoopReportRow(
                loop=loop.name,
                trip_count=loop.effective_trip_count,
                pipelined=loop.pragmas.pipeline,
                achieved_ii=loop.achieved_ii if loop.pragmas.pipeline else None,
                iteration_depth=loop.effective_depth,
                latency_cycles=loop.latency_cycles,
            )
        )
    return rows


def render_loop_report(nest: LoopNest) -> str:
    """Human-readable latency report, one kernel."""
    buffer = io.StringIO()
    buffer.write(f"== Kernel: {nest.name} ==\n")
    buffer.write(f"{'loop':24s}{'trips':>7s}{'pipe':>6s}{'II':>5s}{'depth':>7s}{'cycles':>9s}\n")
    buffer.write(f"{'(invocation overhead)':24s}{'':>7s}{'':>6s}{'':>5s}{'':>7s}"
                 f"{nest.prologue_cycles:>9d}\n")
    for row in loop_report(nest):
        ii = str(row.achieved_ii) if row.achieved_ii is not None else "-"
        buffer.write(
            f"{row.loop:24s}{row.trip_count:>7d}{'yes' if row.pipelined else 'no':>6s}"
            f"{ii:>5s}{row.iteration_depth:>7d}{row.latency_cycles:>9d}\n"
        )
    buffer.write(f"{'TOTAL':24s}{'':>7s}{'':>6s}{'':>5s}{'':>7s}{nest.latency_cycles:>9d}\n")
    return buffer.getvalue()


def render_utilization_report(device: FpgaDevice) -> str:
    """Vitis-style system estimate: per-kernel resources vs the platform."""
    buffer = io.StringIO()
    buffer.write(f"== Platform: {device.part.name} "
                 f"({device.clock.frequency_hz / 1e6:.0f} MHz kernel clock, "
                 f"{len(device.ddr.banks)} DDR bank(s)) ==\n")
    buffer.write(f"{'kernel':24s}{'LUT':>10s}{'FF':>10s}{'DSP':>8s}{'BRAM':>7s}\n")
    for name, request in device.placements.items():
        buffer.write(
            f"{name:24s}{request.luts:>10d}{request.flip_flops:>10d}"
            f"{request.dsp_slices:>8d}{request.bram_blocks:>7d}\n"
        )
    used = device.used
    buffer.write(
        f"{'TOTAL':24s}{used.luts:>10d}{used.flip_flops:>10d}"
        f"{used.dsp_slices:>8d}{used.bram_blocks:>7d}\n"
    )
    utilization = device.utilization()
    buffer.write(
        f"{'UTILISATION':24s}{utilization['luts']:>10.1%}"
        f"{utilization['flip_flops']:>10.1%}{utilization['dsp_slices']:>8.1%}"
        f"{utilization['bram_blocks']:>7.1%}\n"
    )
    return buffer.getvalue()


def render_engine_report(engine) -> str:
    """Full emulation report for a built CSD inference engine.

    Combines the utilisation estimate with each kernel's reported timing
    and the end-to-end per-item figure — roughly what a Vitis run's
    summary gives the paper's authors.
    """
    buffer = io.StringIO()
    buffer.write(render_utilization_report(engine.device))
    buffer.write("\n")
    clock = engine.device.clock
    buffer.write(f"{'kernel':24s}{'reported cycles':>16s}{'us/item':>10s}\n")
    total_cycles = 0
    for kernel in (engine.preprocess, engine.gates, engine.hidden_state):
        timing = kernel.timing()
        total_cycles += timing.reported_cycles
        buffer.write(
            f"{timing.kernel:24s}{timing.reported_cycles:>16d}"
            f"{timing.reported_microseconds(clock):>10.5f}\n"
        )
    buffer.write(
        f"{'TOTAL (per item)':24s}{total_cycles:>16d}"
        f"{clock.cycles_to_microseconds(total_cycles):>10.5f}\n"
    )
    buffer.write(
        f"optimization level: {engine.config.optimization.name}, "
        f"{engine.config.num_gate_cus} gates CU(s), "
        f"preemptive preprocess {'on' if engine.config.preemptive_preprocess else 'off'}\n"
    )
    return buffer.getvalue()
