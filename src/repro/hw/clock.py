"""Clock domains and cycle/time conversion.

Everything in the FPGA timing model is counted in cycles of a kernel clock
domain and converted to wall time only at reporting boundaries.  The paper's
per-kernel numbers are consistent with a 300 MHz kernel clock (the common
Vitis default on UltraScale+ parts): e.g. the optimised ``kernel_gates``
figure of 0.00333 us is exactly one 300 MHz cycle.
"""

from __future__ import annotations

import dataclasses

#: Kernel clock used by the paper's operating point.
DEFAULT_KERNEL_CLOCK_HZ = 300_000_000


@dataclasses.dataclass(frozen=True)
class ClockDomain:
    """A fixed-frequency clock domain.

    Parameters
    ----------
    frequency_hz:
        Clock frequency in hertz; must be positive.
    name:
        Optional human-readable label used in reports.
    """

    frequency_hz: float = DEFAULT_KERNEL_CLOCK_HZ
    name: str = "kernel"

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ValueError(f"frequency must be positive, got {self.frequency_hz}")

    @property
    def period_seconds(self) -> float:
        """Duration of one cycle in seconds."""
        return 1.0 / self.frequency_hz

    @property
    def period_microseconds(self) -> float:
        """Duration of one cycle in microseconds."""
        return 1e6 / self.frequency_hz

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a cycle count to seconds."""
        if cycles < 0:
            raise ValueError(f"cycles must be non-negative, got {cycles}")
        return cycles / self.frequency_hz

    def cycles_to_microseconds(self, cycles: float) -> float:
        """Convert a cycle count to microseconds."""
        return self.cycles_to_seconds(cycles) * 1e6

    def seconds_to_cycles(self, seconds: float) -> int:
        """Convert a duration to whole cycles (rounded up)."""
        if seconds < 0:
            raise ValueError(f"seconds must be non-negative, got {seconds}")
        import math

        return math.ceil(seconds * self.frequency_hz)
