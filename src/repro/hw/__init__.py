"""Hardware simulation substrate.

Analytic models of everything the paper's testbed provided: HLS loop
scheduling (pipeline II, unroll, array partition), AXI ports, DDR banks
and contention, the FPGA parts (KU15P, Alveo u200), the SmartSSD's PCIe
switch / SSD / P2P routes, dataflow pipeline scheduling, power, and fault
injection.
"""

from repro.hw.axi import AxiMasterPort, TransferError
from repro.hw.clock import DEFAULT_KERNEL_CLOCK_HZ, ClockDomain
from repro.hw.dataflow import (
    StageTiming,
    parallel_stage_cycles,
    pipeline_speedup,
    pipelined_schedule,
    schedule,
    serial_schedule,
)
from repro.hw.fpga import (
    ALVEO_U200,
    KU15P,
    FpgaDevice,
    FpgaPart,
    ResourceExhausted,
    ResourceRequest,
)
from repro.hw.hls import (
    FIXED_OPS,
    FLOAT_OPS,
    HlsLoop,
    KERNEL_INVOKE_CYCLES,
    LoopNest,
    OpLatency,
    PragmaSet,
    op_table,
)
from repro.hw.memory import DdrBank, DdrSubsystem, bandwidth_bound_ii
from repro.hw.pcie import PcieLink, PcieSwitch
from repro.hw.power import (
    A100_GPU_POWER,
    SMARTSSD_FPGA_POWER,
    XEON_CPU_POWER,
    PowerProfile,
    energy_comparison,
)
from repro.hw.emulation import (
    loop_report,
    render_engine_report,
    render_loop_report,
    render_utilization_report,
)
from repro.hw.sim import PipelineTrace, Resource, Simulator, simulate_item_pipeline
from repro.hw.smartssd import SmartSSD, TransferRecord
from repro.hw.xrt import CommandQueue, DeviceBuffer, Direction, Event, XrtDevice
from repro.hw.ssd import NvmeSsd

__all__ = [
    "A100_GPU_POWER",
    "ALVEO_U200",
    "AxiMasterPort",
    "ClockDomain",
    "DEFAULT_KERNEL_CLOCK_HZ",
    "DdrBank",
    "DdrSubsystem",
    "FIXED_OPS",
    "FLOAT_OPS",
    "FpgaDevice",
    "FpgaPart",
    "HlsLoop",
    "KERNEL_INVOKE_CYCLES",
    "KU15P",
    "LoopNest",
    "NvmeSsd",
    "OpLatency",
    "PcieLink",
    "PcieSwitch",
    "PowerProfile",
    "PragmaSet",
    "ResourceExhausted",
    "ResourceRequest",
    "SMARTSSD_FPGA_POWER",
    "CommandQueue",
    "DeviceBuffer",
    "Direction",
    "Event",
    "PipelineTrace",
    "Resource",
    "SmartSSD",
    "Simulator",
    "XrtDevice",
    "StageTiming",
    "TransferError",
    "TransferRecord",
    "XEON_CPU_POWER",
    "bandwidth_bound_ii",
    "energy_comparison",
    "op_table",
    "parallel_stage_cycles",
    "pipeline_speedup",
    "pipelined_schedule",
    "schedule",
    "loop_report",
    "render_engine_report",
    "render_loop_report",
    "render_utilization_report",
    "serial_schedule",
    "simulate_item_pipeline",
]
