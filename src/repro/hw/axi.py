"""AXI master interface and burst transfer model.

Kernels reach the FPGA's global memory (DDR) through AXI master ports —
"high-performance, memory-mapped communications between the kernels and
the FPGA's memory resources" (paper Section III-C).  The kernel
implementation was explicitly devised "to support a balance between
parallelization while reducing pressure on AXI Master interfaces", so the
model must capture the thing that creates the pressure: several compute
units sharing a limited number of DDR banks.

A transfer is modelled as a fixed address/latency overhead plus one beat
per ``data_width_bits / 8`` bytes, inflated by a contention factor when
more readers share the port's bank than the bank can serve.
"""

from __future__ import annotations

import dataclasses
import math

#: Cycles from issuing a read address to the first data beat (DDR round trip).
DEFAULT_READ_LATENCY_CYCLES = 150

#: Cycles of overhead to set up a write burst.
DEFAULT_WRITE_LATENCY_CYCLES = 40

#: AXI data width used by Vitis-generated masters on the u200.
DEFAULT_DATA_WIDTH_BITS = 512


class TransferError(RuntimeError):
    """Raised when a fault-injected transfer fails irrecoverably."""


@dataclasses.dataclass
class AxiMasterPort:
    """One AXI master port binding a kernel to a DDR bank.

    Parameters
    ----------
    name:
        Port label (e.g. ``"gates_i/m_axi_gmem0"``).
    data_width_bits:
        Beat width; 512 bits = 64 bytes per beat is the Vitis default.
    read_latency_cycles / write_latency_cycles:
        Fixed per-burst overhead.
    """

    name: str
    data_width_bits: int = DEFAULT_DATA_WIDTH_BITS
    read_latency_cycles: int = DEFAULT_READ_LATENCY_CYCLES
    write_latency_cycles: int = DEFAULT_WRITE_LATENCY_CYCLES

    def __post_init__(self) -> None:
        if self.data_width_bits % 8 != 0 or self.data_width_bits <= 0:
            raise ValueError(
                f"data_width_bits must be a positive multiple of 8, got "
                f"{self.data_width_bits}"
            )
        self.bytes_transferred = 0
        self.transfer_count = 0
        #: Optional :class:`repro.telemetry.Telemetry`; when set, every
        #: transfer is mirrored into the ``repro_axi_*`` metrics (see
        #: docs/observability.md).  ``None`` keeps the port hook-free.
        self.telemetry = None

    def _record(self, op: str, num_bytes: int, cycles: int) -> None:
        metrics = self.telemetry.metrics
        metrics.counter("repro_axi_bytes_total", port=self.name, op=op).inc(num_bytes)
        metrics.counter("repro_axi_transfers_total", port=self.name, op=op).inc()
        metrics.histogram(
            "repro_axi_transfer_cycles", port=self.name, op=op
        ).observe(cycles)

    @property
    def bytes_per_beat(self) -> int:
        return self.data_width_bits // 8

    def _beats(self, num_bytes: int) -> int:
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be non-negative, got {num_bytes}")
        return math.ceil(num_bytes / self.bytes_per_beat)

    def read_cycles(self, num_bytes: int, contention_factor: float = 1.0) -> int:
        """Cycles to read ``num_bytes`` as one burst.

        ``contention_factor`` >= 1 stretches the data phase when the
        target bank is shared (see :class:`repro.hw.memory.DdrBank`).
        """
        if contention_factor < 1.0:
            raise ValueError(f"contention_factor must be >= 1, got {contention_factor}")
        if num_bytes == 0:
            return 0
        self.bytes_transferred += num_bytes
        self.transfer_count += 1
        data_cycles = math.ceil(self._beats(num_bytes) * contention_factor)
        total = self.read_latency_cycles + data_cycles
        if self.telemetry is not None:
            self._record("read", num_bytes, total)
        return total

    def write_cycles(self, num_bytes: int, contention_factor: float = 1.0) -> int:
        """Cycles to write ``num_bytes`` as one burst."""
        if contention_factor < 1.0:
            raise ValueError(f"contention_factor must be >= 1, got {contention_factor}")
        if num_bytes == 0:
            return 0
        self.bytes_transferred += num_bytes
        self.transfer_count += 1
        data_cycles = math.ceil(self._beats(num_bytes) * contention_factor)
        total = self.write_latency_cycles + data_cycles
        if self.telemetry is not None:
            self._record("write", num_bytes, total)
        return total
