"""Vectorised fixed-point arithmetic primitives.

These functions operate on *quantised* values: ``int64`` scalars or NumPy
arrays whose magnitudes carry an implicit scale factor (see
:class:`repro.fixedpoint.qformat.QFormat`).  Addition is closed under the
scale; multiplication doubles it, so every product must be corrected by one
factor of the scale to stay in-format.  The paper phrases this as the
product "scales by 10^12, which requires a correction ... to maintain
accurate final values" (Section III-D).

All corrections use round-half-away-from-zero division rather than
truncation, matching the paper's emphasis on rounding to minimise finite
precision error.  Plain floor division would bias every product toward
negative infinity and the bias compounds over the 100 timesteps of a
sequence.

Overflow handling
-----------------
NumPy int64 arithmetic is modular: a product or accumulation past
``2**63 - 1`` silently wraps, flipping sign and magnitude.  Real DSP
cascades saturate instead.  :func:`qmul`, :func:`qmatvec`, :func:`qmatmul`
and :func:`qdot` therefore detect wide-accumulator overflow and, by
default, saturate the rescaled result to the largest in-format magnitude
(``on_overflow="saturate"``); pass ``on_overflow="raise"`` to get a
:class:`FixedPointOverflowError` instead.  In-range inputs are bit-exactly
unaffected by the detection machinery.
"""

from __future__ import annotations

import numpy as np

from repro.fixedpoint.qformat import QFormat
from repro.fixedpoint.saturation import rescale_saturation_limit

_INT64_MAX = np.iinfo(np.int64).max
_INT64_MIN = np.iinfo(np.int64).min

#: Conservative screening threshold: any product/accumulation whose
#: float64-estimated magnitude stays below this cannot have wrapped int64
#: (float64 holds ~15.9 significant digits; 2**62 leaves a full bit of
#: slack under 2**63 - 1 for the estimate's own rounding error).
_SAFE_MAGNITUDE = float(2**62)

#: How many full-operand ``max(|x|)`` screens have run since import.  The
#: static-bound regression test reads this to prove that constant weight
#: matrices are screened once at load time, not once per timestep.
_bound_scan_count = 0

#: When set to a list, every screen appends the scanned element count.
#: Off (``None``) outside tests so production runs never accumulate state.
bound_scan_trace: list | None = None


def _max_abs(array: np.ndarray) -> float:
    """Full-operand overflow-screen bound: ``float(max(|array|))``.

    Every call is counted (and traced when ``bound_scan_trace`` is a
    list) so tests can assert which operands are re-screened per call.
    Empty operands bound to 0.0.
    """
    global _bound_scan_count
    _bound_scan_count += 1
    if bound_scan_trace is not None:
        bound_scan_trace.append(int(array.size))
    if array.size == 0:
        return 0.0
    return float(np.max(np.abs(array.astype(np.float64))))


def bound_scan_count() -> int:
    """Total full-operand bound scans since import (monotonic)."""
    return _bound_scan_count


def operand_bound(array) -> float:
    """Precompute the overflow-screen bound of a *static* operand.

    The MAC-style ops (:func:`qmatvec`, :func:`qmatmul`, :func:`qaffine`)
    screen both operands with ``max(|x|)`` before deciding whether the
    int64 accumulation could have wrapped.  For an operand that never
    changes — a weight matrix loaded once — that scan is pure per-call
    overhead: compute it here once and pass it back via the ops'
    ``*_bound`` keywords.  The value is bit-identical to what the op
    would compute itself, so the screen's branch decisions (and therefore
    every numeric result) are unchanged.
    """
    return _max_abs(np.asarray(array, dtype=np.int64))


class FixedPointOverflowError(OverflowError):
    """A fixed-point product or accumulation exceeded the int64 range."""


def _rounded_scale_division(product, scale: int):
    """Divide ``product`` by ``scale`` rounding to the nearest integer.

    Implements round-half-away-from-zero using integer arithmetic only, as
    DSP post-processing logic would on the FPGA.  Works element-wise on
    arrays and on Python/NumPy integer scalars.  Overflow-free for every
    representable input: the rounding is carried on the division remainder
    rather than by adding ``scale // 2`` to the operand, which would wrap
    for magnitudes within ``scale // 2`` of the int64 limit.
    """
    product = np.asarray(product, dtype=np.int64)
    # abs(INT64_MIN) wraps; nudging by one only affects that single
    # unreachable-in-format value and keeps the magnitude math exact.
    magnitude = np.abs(np.where(product == _INT64_MIN, _INT64_MIN + 1, product))
    quotient = magnitude // scale
    remainder = magnitude - quotient * scale
    rounded = quotient + (remainder >= scale - scale // 2)
    result = np.where(product < 0, -rounded, rounded)
    if result.ndim == 0:
        return int(result)
    return result


def qadd(a, b):
    """Add two in-format quantised values.  Scale is preserved."""
    result = np.asarray(a, dtype=np.int64) + np.asarray(b, dtype=np.int64)
    if result.ndim == 0:
        return int(result)
    return result


def qsub(a, b):
    """Subtract two in-format quantised values.  Scale is preserved."""
    result = np.asarray(a, dtype=np.int64) - np.asarray(b, dtype=np.int64)
    if result.ndim == 0:
        return int(result)
    return result


def _saturate_rescaled(rescaled, wrapped, negative, fmt: QFormat,
                       on_overflow: str, context: str):
    """Patch ``rescaled`` entries flagged ``wrapped`` with the saturation
    limit (sign taken from ``negative``), or raise."""
    if on_overflow == "raise":
        raise FixedPointOverflowError(
            f"{context}: {int(np.count_nonzero(wrapped))} element(s) exceeded "
            f"the int64 accumulator range at scale {fmt.scale}"
        )
    if on_overflow != "saturate":
        raise ValueError(
            f"on_overflow must be 'saturate' or 'raise', got {on_overflow!r}"
        )
    limit = rescale_saturation_limit(fmt)
    saturated = np.where(negative, -limit, limit)
    return np.where(wrapped, saturated, np.asarray(rescaled, dtype=np.int64))


def qmul(a, b, fmt: QFormat, on_overflow: str = "saturate"):
    """Multiply two in-format quantised values and rescale.

    The raw product carries ``scale**2``; the result is corrected back to a
    single ``scale`` with rounded division.  Products that would wrap int64
    saturate to the largest in-format magnitude (or raise, per
    ``on_overflow``).
    """
    a64 = np.asarray(a, dtype=np.int64)
    b64 = np.asarray(b, dtype=np.int64)
    product = a64 * b64
    max_estimate = 0.0
    if a64.size and b64.size:
        max_estimate = _max_abs(a64) * _max_abs(b64)
    if max_estimate < _SAFE_MAGNITUDE:
        return _rounded_scale_division(product, fmt.scale)

    # Suspect range: recompute exactly with arbitrary-precision ints.
    wide_a, wide_b = np.broadcast_arrays(a64, b64)
    exact = wide_a.astype(object) * wide_b.astype(object)
    wrapped = np.asarray((exact > _INT64_MAX) | (exact < _INT64_MIN), dtype=bool)
    if not np.any(wrapped):
        return _rounded_scale_division(product, fmt.scale)
    rescaled = _rounded_scale_division(np.where(wrapped, 0, product), fmt.scale)
    result = _saturate_rescaled(
        rescaled, wrapped, np.asarray(exact < 0, dtype=bool), fmt, on_overflow,
        "qmul",
    )
    if result.ndim == 0:
        return int(result)
    return result


def _wide_accumulate_rescale(matrix, other, fmt: QFormat, on_overflow: str,
                             context: str, matrix_bound: float | None = None,
                             other_bound: float | None = None):
    """Shared core of the MAC-style ops: int64 ``matrix @ other`` accumulated
    at full ``scale**2`` width, overflow-checked, then rescaled once.

    Both operands must already be validated int64 2-D arrays with matching
    inner dimensions.  Returns the rescaled int64 result of shape
    ``(matrix.shape[0], other.shape[1])``.

    ``matrix_bound`` / ``other_bound`` are optional precomputed
    :func:`operand_bound` values; passing one for a static operand (a
    weight matrix) skips that operand's per-call ``max(|x|)`` scan without
    changing any screen decision or numeric result.
    """
    accumulated = matrix @ other

    # Cheap screen first: if no element-count-scaled product can reach the
    # danger zone, skip the bound matmul entirely (the hot path).
    inner = matrix.shape[1]
    max_m = _max_abs(matrix) if matrix_bound is None else matrix_bound
    max_o = _max_abs(other) if other_bound is None else other_bound
    if max_m * max_o * max(inner, 1) < _SAFE_MAGNITUDE:
        return _rounded_scale_division(accumulated, fmt.scale)

    # Tighter per-element bound: sum_j |m_ij| * |o_jk| >= |sum_j m_ij o_jk|.
    bound = np.abs(matrix.astype(np.float64)) @ np.abs(other.astype(np.float64))
    suspect = bound >= _SAFE_MAGNITUDE
    if not np.any(suspect):
        return _rounded_scale_division(accumulated, fmt.scale)

    # Recompute only the suspect elements exactly with Python ints.
    matrix_obj = matrix.astype(object)
    other_obj = other.astype(object)
    wrapped = np.zeros(accumulated.shape, dtype=bool)
    negative = np.zeros(accumulated.shape, dtype=bool)
    for row, col in np.argwhere(suspect):
        exact = int(matrix_obj[row] @ other_obj[:, col])
        if not _INT64_MIN <= exact <= _INT64_MAX:
            wrapped[row, col] = True
            negative[row, col] = exact < 0
    if not np.any(wrapped):
        return _rounded_scale_division(accumulated, fmt.scale)
    rescaled = _rounded_scale_division(np.where(wrapped, 0, accumulated), fmt.scale)
    return _saturate_rescaled(rescaled, wrapped, negative, fmt, on_overflow,
                              context)


def qmatvec(matrix, vector, fmt: QFormat, on_overflow: str = "saturate",
            matrix_bound: float | None = None,
            vector_bound: float | None = None):
    """Fixed-point matrix-vector product.

    Accumulation happens at full ``scale**2`` precision (int64), mirroring
    the wide DSP accumulators on the FPGA; a single rescale is applied at
    the end.  This ordering (accumulate wide, rescale once) loses less
    precision than rescaling each product, and is the standard DSP-slice
    MAC idiom the paper's Section III-D targets.  ``matrix_bound`` /
    ``vector_bound`` accept a precomputed :func:`operand_bound` for a
    static operand, skipping its per-call overflow-screen scan.
    """
    matrix = np.asarray(matrix, dtype=np.int64)
    vector = np.asarray(vector, dtype=np.int64)
    if matrix.ndim != 2:
        raise ValueError(f"matrix must be 2-D, got shape {matrix.shape}")
    if vector.ndim != 1:
        raise ValueError(f"vector must be 1-D, got shape {vector.shape}")
    if matrix.shape[1] != vector.shape[0]:
        raise ValueError(
            f"shape mismatch: matrix {matrix.shape} x vector {vector.shape}"
        )
    return _wide_accumulate_rescale(
        matrix, vector[:, np.newaxis], fmt, on_overflow, "qmatvec",
        matrix_bound=matrix_bound, other_bound=vector_bound,
    )[:, 0]


def qmatmul(a, b, fmt: QFormat, on_overflow: str = "saturate",
            a_bound: float | None = None, b_bound: float | None = None):
    """Fixed-point matrix-matrix product ``a @ b``, rescaled once.

    Both operands are in-format 2-D int64 arrays; each output element is a
    wide dot-product accumulation rescaled by a single factor of the scale
    — element-for-element identical to the corresponding :func:`qmatvec`
    over each column of ``b`` (int64 accumulation is exact, so the batched
    layout cannot change any value).  This is the batched-gate workhorse:
    the four per-gate CU affines collapse into one
    ``(4H, H+E) @ (H+E, N)`` product per timestep.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError(f"expected 2-D operands, got {a.shape} and {b.shape}")
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"shape mismatch: {a.shape} @ {b.shape}")
    return _wide_accumulate_rescale(a, b, fmt, on_overflow, "qmatmul",
                                    matrix_bound=a_bound, other_bound=b_bound)


def qdot(a, b, fmt: QFormat, on_overflow: str = "saturate"):
    """Fixed-point dot product of two 1-D quantised vectors."""
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError(f"expected matching 1-D vectors, got {a.shape} and {b.shape}")
    return int(
        _wide_accumulate_rescale(
            a[np.newaxis, :], b[:, np.newaxis], fmt, on_overflow, "qdot"
        )[0, 0]
    )


def qaffine(matrix, vector, bias, fmt: QFormat, on_overflow: str = "saturate",
            matrix_bound: float | None = None):
    """Fixed-point affine transform ``matrix @ vector + bias``.

    This is the core computation of every LSTM gate: the weight matrix
    multiplies the concatenated ``[h_{t-1}, x_t]`` input and the bias is
    added in-format after the product rescale.  ``matrix_bound`` accepts
    the weight matrix's precomputed :func:`operand_bound`.
    """
    return qadd(
        qmatvec(matrix, vector, fmt, on_overflow=on_overflow,
                matrix_bound=matrix_bound),
        np.asarray(bias, dtype=np.int64),
    )
