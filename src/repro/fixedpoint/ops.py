"""Vectorised fixed-point arithmetic primitives.

These functions operate on *quantised* values: ``int64`` scalars or NumPy
arrays whose magnitudes carry an implicit scale factor (see
:class:`repro.fixedpoint.qformat.QFormat`).  Addition is closed under the
scale; multiplication doubles it, so every product must be corrected by one
factor of the scale to stay in-format.  The paper phrases this as the
product "scales by 10^12, which requires a correction ... to maintain
accurate final values" (Section III-D).

All corrections use round-half-away-from-zero division rather than
truncation, matching the paper's emphasis on rounding to minimise finite
precision error.  Plain floor division would bias every product toward
negative infinity and the bias compounds over the 100 timesteps of a
sequence.
"""

from __future__ import annotations

import numpy as np

from repro.fixedpoint.qformat import QFormat


def _rounded_scale_division(product, scale: int):
    """Divide ``product`` by ``scale`` rounding to the nearest integer.

    Implements round-half-away-from-zero using integer arithmetic only, as
    DSP post-processing logic would on the FPGA.  Works element-wise on
    arrays and on Python/NumPy integer scalars.
    """
    product = np.asarray(product, dtype=np.int64)
    half = scale // 2
    adjusted = np.where(product >= 0, product + half, product - half)
    result = adjusted // scale
    # Negative operands: Python's floor division rounds toward -inf, so the
    # "away from zero" adjustment above needs a truncating divide instead.
    negative = product < 0
    if np.any(negative):
        trunc = -((-adjusted) // scale)
        result = np.where(negative, trunc, result)
    if result.ndim == 0:
        return int(result)
    return result


def qadd(a, b):
    """Add two in-format quantised values.  Scale is preserved."""
    result = np.asarray(a, dtype=np.int64) + np.asarray(b, dtype=np.int64)
    if result.ndim == 0:
        return int(result)
    return result


def qsub(a, b):
    """Subtract two in-format quantised values.  Scale is preserved."""
    result = np.asarray(a, dtype=np.int64) - np.asarray(b, dtype=np.int64)
    if result.ndim == 0:
        return int(result)
    return result


def qmul(a, b, fmt: QFormat):
    """Multiply two in-format quantised values and rescale.

    The raw product carries ``scale**2``; the result is corrected back to a
    single ``scale`` with rounded division.
    """
    product = np.asarray(a, dtype=np.int64) * np.asarray(b, dtype=np.int64)
    return _rounded_scale_division(product, fmt.scale)


def qmatvec(matrix, vector, fmt: QFormat):
    """Fixed-point matrix-vector product.

    Accumulation happens at full ``scale**2`` precision (int64), mirroring
    the wide DSP accumulators on the FPGA; a single rescale is applied at
    the end.  This ordering (accumulate wide, rescale once) loses less
    precision than rescaling each product, and is the standard DSP-slice
    MAC idiom the paper's Section III-D targets.
    """
    matrix = np.asarray(matrix, dtype=np.int64)
    vector = np.asarray(vector, dtype=np.int64)
    if matrix.ndim != 2:
        raise ValueError(f"matrix must be 2-D, got shape {matrix.shape}")
    if vector.ndim != 1:
        raise ValueError(f"vector must be 1-D, got shape {vector.shape}")
    if matrix.shape[1] != vector.shape[0]:
        raise ValueError(
            f"shape mismatch: matrix {matrix.shape} x vector {vector.shape}"
        )
    accumulated = matrix @ vector
    return _rounded_scale_division(accumulated, fmt.scale)


def qdot(a, b, fmt: QFormat):
    """Fixed-point dot product of two 1-D quantised vectors."""
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError(f"expected matching 1-D vectors, got {a.shape} and {b.shape}")
    return _rounded_scale_division(int(a @ b), fmt.scale)


def qaffine(matrix, vector, bias, fmt: QFormat):
    """Fixed-point affine transform ``matrix @ vector + bias``.

    This is the core computation of every LSTM gate: the weight matrix
    multiplies the concatenated ``[h_{t-1}, x_t]`` input and the bias is
    added in-format after the product rescale.
    """
    return qadd(qmatvec(matrix, vector, fmt), np.asarray(bias, dtype=np.int64))
