"""Scale-factor configuration for fixed-point arithmetic.

The paper (Section III-D) converts floating-point weights, biases, and
embeddings to integers by multiplying them by a scale factor of ``10**6``
before host initialisation, rounding to the nearest integer to preserve
significant digits.  Every product of two scaled values then carries a scale
of ``10**12`` and must be corrected back down before subsequent arithmetic.

This module captures that convention in a small immutable configuration
object, :class:`QFormat`, shared by the vectorised ops in
:mod:`repro.fixedpoint.ops` and by the fixed-point activation functions in
:mod:`repro.fixedpoint.activations`.

A decimal (power-of-ten) scale is unusual for hardware — binary Q-formats
are the norm — but it is what the paper specifies, and nothing in the
arithmetic below depends on the base, so the scale is a free parameter.
"""

from __future__ import annotations

import dataclasses

import numpy as np

#: The scale factor used throughout the paper.
PAPER_SCALE_FACTOR = 10**6


@dataclasses.dataclass(frozen=True)
class QFormat:
    """An immutable fixed-point format descriptor.

    Parameters
    ----------
    scale:
        Multiplicative scale factor.  A real value ``x`` is represented by
        the integer ``round(x * scale)``.  Must be a positive integer.

    Examples
    --------
    >>> q = QFormat(scale=10**6)
    >>> q.quantize(0.5)
    500000
    >>> q.dequantize(500000)
    0.5
    """

    scale: int = PAPER_SCALE_FACTOR

    def __post_init__(self) -> None:
        if not isinstance(self.scale, (int, np.integer)):
            raise TypeError(f"scale must be an integer, got {type(self.scale).__name__}")
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")

    @property
    def scale_squared(self) -> int:
        """Scale carried by the raw product of two quantised values."""
        return self.scale * self.scale

    @property
    def resolution(self) -> float:
        """Smallest representable increment, ``1 / scale``."""
        return 1.0 / self.scale

    def quantize(self, value):
        """Convert a real value (scalar or array) to its scaled integer form.

        Rounds to the nearest integer ("to minimize errors from finite
        precision, we round the results", Section III-D).  Arrays are
        returned as ``int64`` so that intermediate products up to
        ``scale**2`` magnitudes do not overflow for the small weight values
        used by the model.
        """
        scaled = np.multiply(value, self.scale)
        rounded = np.rint(scaled)
        if np.isscalar(value) or np.ndim(value) == 0:
            return int(rounded)
        return rounded.astype(np.int64)

    def dequantize(self, qvalue):
        """Convert a scaled integer (scalar or array) back to a real value."""
        return np.asarray(qvalue, dtype=np.float64) / self.scale if np.ndim(qvalue) else qvalue / self.scale

    def quantization_error(self, value) -> float:
        """Return the maximum absolute round-trip error for ``value``.

        Useful for tests and for the scale-factor ablation benchmark: the
        error is bounded by half the resolution, ``0.5 / scale``.
        """
        round_trip = self.dequantize(self.quantize(value))
        return float(np.max(np.abs(np.asarray(value, dtype=np.float64) - round_trip)))


#: The format used by the paper's FPGA implementation.
PAPER_QFORMAT = QFormat(scale=PAPER_SCALE_FACTOR)
