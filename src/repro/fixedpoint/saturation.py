"""Saturating arithmetic and overflow diagnostics.

Hardware integer datapaths have a fixed width; the paper's 10^6-scaled
values flow through DSP cascades whose accumulators are wide but finite.
This module provides:

* :func:`qsaturate` — clamp quantised values to a representable range
  (what a width-limited register would do);
* :func:`headroom_bits` — how close a quantised array comes to a given
  width (deployment check: will these weights/activations overflow?);
* :class:`OverflowAudit` — a host-side audit that walks the model's
  quantised parameters and bounds the worst-case accumulator magnitude,
  verifying the chosen scale factor fits the datapath *before* the
  bitstream runs.  The LSTM makes this tractable: gate outputs are
  bounded by construction (sigmoid in [0, 1], softsign in (-1, 1)), so
  the only unbounded-looking value, the cell state, is in fact bounded by
  ``|C_t| <= max|C_{t-1}| + 1`` ⇒ ``|C_t| <= t``; over a 100-item
  sequence that is well inside a 48-bit accumulator at scale 10^6.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.fixedpoint.qformat import QFormat


def qsaturate(q, bits: int):
    """Clamp quantised values into a signed ``bits``-wide range."""
    if not 2 <= bits <= 63:
        raise ValueError(f"bits must be in [2, 63], got {bits}")
    limit = (1 << (bits - 1)) - 1
    result = np.clip(np.asarray(q, dtype=np.int64), -limit - 1, limit)
    if result.ndim == 0:
        return int(result)
    return result


def rescale_saturation_limit(fmt: QFormat, accumulator_bits: int = 64) -> int:
    """Largest post-rescale magnitude whose re-widened product still fits.

    Overflowed wide accumulations saturate to this value so that any
    *subsequent* in-format operation that re-multiplies by the scale (e.g.
    the softsign numerator ``q * scale``) stays inside the
    ``accumulator_bits``-wide signed range instead of wrapping again.
    """
    if not 8 <= accumulator_bits <= 64:
        raise ValueError(
            f"accumulator_bits must be in [8, 64], got {accumulator_bits}"
        )
    return ((1 << (accumulator_bits - 1)) - 1) // fmt.scale


def headroom_bits(q, bits: int) -> int:
    """Unused sign-magnitude bits of ``q`` inside a ``bits``-wide word.

    Returns a negative number if the values already overflow the width.
    """
    if not 2 <= bits <= 63:
        raise ValueError(f"bits must be in [2, 63], got {bits}")
    magnitude = int(np.max(np.abs(np.asarray(q, dtype=np.int64))))
    if magnitude == 0:
        return bits - 1
    needed = magnitude.bit_length() + 1  # + sign
    return bits - needed


@dataclasses.dataclass(frozen=True)
class AuditResult:
    """Outcome of the pre-deployment overflow audit."""

    accumulator_bits: int
    worst_case_accumulator_magnitude: int
    worst_case_cell_magnitude: int
    fits: bool
    detail: dict


class OverflowAudit:
    """Bound worst-case datapath magnitudes for a quantised model.

    Parameters
    ----------
    fmt:
        The deployed fixed-point format.
    accumulator_bits:
        Width of the MAC accumulator (48 for DSP48E2 cascades).
    sequence_length:
        Items per inference; bounds the cell-state growth.
    """

    def __init__(self, fmt: QFormat, accumulator_bits: int = 48,
                 sequence_length: int = 100):
        if accumulator_bits < 8:
            raise ValueError(f"accumulator_bits must be >= 8, got {accumulator_bits}")
        if sequence_length < 1:
            raise ValueError("sequence_length must be positive")
        self.fmt = fmt
        self.accumulator_bits = accumulator_bits
        self.sequence_length = sequence_length

    def audit(self, quantized_weights) -> AuditResult:
        """Audit a :class:`~repro.core.weights.QuantizedHostWeights`.

        The worst-case gate pre-activation accumulator is bounded by
        ``sum_j |W[i,j]| * max|input_j| + |b_i|`` with inputs bounded by
        the scale (|h| < 1, |x| <= max|embedding|).  Each product carries
        ``scale**2`` before the rescale, so the bound is evaluated at
        that scale — exactly what the DSP accumulator holds.
        """
        scale = self.fmt.scale
        max_embedding = int(np.max(np.abs(quantized_weights.embedding)))
        input_bound = max(scale, max_embedding)  # |h| <= scale; |x| <= embeddings

        worst_accumulator = 0
        per_gate = {}
        for name, gate in quantized_weights.gates.items():
            row_sums = np.sum(np.abs(gate.matrix), axis=1)
            bias_max = int(np.max(np.abs(gate.bias))) if gate.bias.size else 0
            bound = int(np.max(row_sums)) * input_bound + bias_max * scale
            per_gate[name] = bound
            worst_accumulator = max(worst_accumulator, bound)

        # Cell state: |C_t| <= f*|C_{t-1}| + i*|C'| <= |C_{t-1}| + 1 per
        # item (both gates in [0,1], candidate in (-1,1)).
        cell_bound = self.sequence_length * scale

        limit = (1 << (self.accumulator_bits - 1)) - 1
        fits = worst_accumulator <= limit and cell_bound <= limit
        return AuditResult(
            accumulator_bits=self.accumulator_bits,
            worst_case_accumulator_magnitude=worst_accumulator,
            worst_case_cell_magnitude=cell_bound,
            fits=fits,
            detail=per_gate,
        )
