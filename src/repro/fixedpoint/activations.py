"""Fixed-point activation functions.

The LSTM needs a sigmoid for its three gates and an S-shaped squashing
function for cell modulation and output.  Section III-D of the paper
replaces every ``tanh`` with ``softsign(x) = x / (|x| + 1)`` because
softsign shares tanh's S-curve and asymptotes while avoiding ``exp()``,
which is expensive to synthesise on an FPGA.

* :func:`qsoftsign` is exact in fixed point up to rounding: with scale
  ``S`` and quantised input ``q = x*S``, ``softsign(x)*S = q*S/(|q|+S)``.
* :func:`qsigmoid` uses the classic PLAN piecewise-linear approximation
  (Amin, Curtis & Hayes-Gill 1997), the standard FPGA sigmoid: maximum
  absolute error below 0.019, monotone, symmetric around 0.5, and built
  from shifts/adds only on real hardware.
* :func:`qtanh` is provided for the softsign-vs-tanh ablation; it uses the
  identity ``tanh(x) = 2*sigmoid(2x) - 1`` over the PLAN sigmoid so it too
  stays exp-free.
"""

from __future__ import annotations

import numpy as np

from repro.fixedpoint.ops import _rounded_scale_division
from repro.fixedpoint.qformat import QFormat


def _rounded_elementwise_division(numerator, denominator):
    """Round-half-away-from-zero division with array denominators.

    ``denominator`` must be positive (softsign's ``|x| + 1`` always is).
    Overflow-free for every representable numerator: rounding is carried on
    the division remainder instead of pre-adding ``denominator // 2``,
    which would wrap near the int64 limit (e.g. the softsign numerator of
    a saturated cell state).
    """
    numerator = np.asarray(numerator, dtype=np.int64)
    denominator = np.asarray(denominator, dtype=np.int64)
    magnitude = np.abs(
        np.where(numerator == np.iinfo(np.int64).min,
                 np.iinfo(np.int64).min + 1, numerator)
    )
    quotient = magnitude // denominator
    remainder = magnitude - quotient * denominator
    rounded = quotient + (remainder >= denominator - denominator // 2)
    result = np.where(numerator < 0, -rounded, rounded)
    if result.ndim == 0:
        return int(result)
    return result


def qsoftsign(q, fmt: QFormat):
    """Fixed-point softsign: ``x / (|x| + 1)`` on quantised input.

    With quantised input ``q = x * S`` the identity is exact up to one
    rounding: ``softsign(x) * S = q * S / (|q| + S)``.  Output magnitude
    is strictly below the quantised representation of 1.0.
    """
    q = np.asarray(q, dtype=np.int64)
    numerator = q * fmt.scale
    denominator = np.abs(q) + fmt.scale
    return _rounded_elementwise_division(numerator, denominator)


# PLAN approximation segments for x >= 0: (x_low, x_high, slope, intercept)
# sigmoid(x) ~= slope * x + intercept on each segment; saturates to 1 at x>=5.
_PLAN_SEGMENTS = (
    (0.0, 1.0, 0.25, 0.5),
    (1.0, 2.375, 0.125, 0.625),
    (2.375, 5.0, 0.03125, 0.84375),
)


def qsigmoid(q, fmt: QFormat):
    """Fixed-point PLAN sigmoid on quantised input.

    Uses symmetry ``sigmoid(-x) = 1 - sigmoid(x)`` so only the positive
    half needs segments.  Slopes and intercepts are exact binary fractions
    (1/4, 1/8, 1/32, ...) as in the original PLAN design, so on hardware
    the multiply reduces to a shift.
    """
    q = np.asarray(q, dtype=np.int64)
    scalar = q.ndim == 0
    q = np.atleast_1d(q)
    magnitude = np.abs(q)

    half = fmt.scale // 2
    result = np.full(q.shape, fmt.scale, dtype=np.int64)  # saturation: 1.0
    for x_low, x_high, slope, intercept in _PLAN_SEGMENTS:
        q_low = int(round(x_low * fmt.scale))
        q_high = int(round(x_high * fmt.scale))
        in_segment = (magnitude >= q_low) & (magnitude < q_high)
        if not np.any(in_segment):
            continue
        seg_value = (
            _rounded_scale_division(
                magnitude[in_segment] * int(round(slope * fmt.scale)), fmt.scale
            )
            + int(round(intercept * fmt.scale))
        )
        result[in_segment] = seg_value

    negative = q < 0
    result = np.where(negative, fmt.scale - result, result)
    # Guard the exact-zero case to 0.5 regardless of segment rounding.
    result = np.where(q == 0, half, result)
    if scalar:
        return int(result[0])
    return result


def qtanh(q, fmt: QFormat):
    """Fixed-point tanh via ``2*sigmoid(2x) - 1`` over the PLAN sigmoid.

    Present for the activation ablation only; the paper's deployed design
    uses :func:`qsoftsign` everywhere.
    """
    q = np.asarray(q, dtype=np.int64)
    doubled = q * 2
    sig = np.asarray(qsigmoid(doubled, fmt), dtype=np.int64)
    result = 2 * sig - fmt.scale
    if result.ndim == 0:
        return int(result)
    return result
