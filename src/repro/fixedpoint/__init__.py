"""Fixed-point arithmetic substrate (paper Section III-D).

Implements the scale-factor-10^6 integer arithmetic the paper uses to move
the LSTM's matrix math onto FPGA DSP slices, including the rounded rescale
after every multiplication and exp-free activation functions.
"""

from repro.fixedpoint.activations import qsigmoid, qsoftsign, qtanh
from repro.fixedpoint.ops import (
    FixedPointOverflowError,
    qadd,
    qaffine,
    qdot,
    qmatmul,
    qmatvec,
    qmul,
    qsub,
)
from repro.fixedpoint.qformat import PAPER_QFORMAT, PAPER_SCALE_FACTOR, QFormat
from repro.fixedpoint.saturation import (
    AuditResult,
    OverflowAudit,
    headroom_bits,
    qsaturate,
    rescale_saturation_limit,
)

__all__ = [
    "AuditResult",
    "FixedPointOverflowError",
    "OverflowAudit",
    "PAPER_QFORMAT",
    "PAPER_SCALE_FACTOR",
    "QFormat",
    "headroom_bits",
    "qadd",
    "qaffine",
    "qdot",
    "qmatmul",
    "qmatvec",
    "qmul",
    "qsaturate",
    "qsigmoid",
    "qsoftsign",
    "qsub",
    "qtanh",
    "rescale_saturation_limit",
]
