"""The paper's contribution: CSD-offloaded LSTM inference.

Public surface: :class:`~repro.core.engine.CSDInferenceEngine` plus its
configuration types and the Fig. 3 timing sweep helpers.
"""

from repro.core.config import (
    EngineConfig,
    GATE_NAMES,
    ModelDimensions,
    OptimizationLevel,
)
from repro.core.control_plane import (
    AutoscalePolicy,
    ControlPlane,
    ControlPlaneConfig,
    ControlPlaneReport,
    QosClass,
    ScaleEvent,
    ShardRouter,
    TopologySpec,
    generate_fleet_rounds,
)
from repro.core.engine import CSDInferenceEngine, InferenceResult, engine_at_level
from repro.core.fleet import FleetPlan, FleetPlanner, MonitoredStream
from repro.core.serving import (
    CompletedRequest,
    FleetServer,
    ServingConfig,
    ServingReport,
    ServingRequest,
    SessionServingReport,
    StreamVerdictRecord,
    TokenArrival,
    build_fleet,
    generate_token_workload,
    generate_workload,
)
from repro.core.sessions import (
    SessionCheckpoint,
    SessionConfig,
    SessionManager,
    SessionVerdict,
    StreamSession,
)
from repro.core.throughput import ThroughputReport, throughput_report
from repro.core.mixed_precision import (
    MixedPrecisionLstm,
    MixedPrecisionPolicy,
    PolicyEvaluation,
    evaluate_policy,
)
from repro.core.sessions import StreamingReport, streaming_report
from repro.core.timing import (
    InferenceTiming,
    KernelReport,
    kernel_breakdown,
    optimization_sweep,
)
from repro.core.weights import HostWeights, QuantizedHostWeights

__all__ = [
    "AutoscalePolicy",
    "CSDInferenceEngine",
    "CompletedRequest",
    "ControlPlane",
    "ControlPlaneConfig",
    "ControlPlaneReport",
    "EngineConfig",
    "FleetPlan",
    "FleetPlanner",
    "FleetServer",
    "GATE_NAMES",
    "HostWeights",
    "InferenceResult",
    "InferenceTiming",
    "KernelReport",
    "MixedPrecisionLstm",
    "MixedPrecisionPolicy",
    "ModelDimensions",
    "MonitoredStream",
    "OptimizationLevel",
    "PolicyEvaluation",
    "QosClass",
    "QuantizedHostWeights",
    "ScaleEvent",
    "ServingConfig",
    "ServingReport",
    "ServingRequest",
    "SessionCheckpoint",
    "SessionConfig",
    "SessionManager",
    "SessionServingReport",
    "SessionVerdict",
    "ShardRouter",
    "StreamSession",
    "StreamVerdictRecord",
    "StreamingReport",
    "ThroughputReport",
    "TopologySpec",
    "TokenArrival",
    "build_fleet",
    "engine_at_level",
    "generate_fleet_rounds",
    "evaluate_policy",
    "generate_token_workload",
    "generate_workload",
    "kernel_breakdown",
    "optimization_sweep",
    "streaming_report",
    "throughput_report",
]
