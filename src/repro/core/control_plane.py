"""Hierarchical fleet control plane: rack → node → drive at datacenter scale.

The ROADMAP's north star is the paper's deployment story taken
seriously: *millions* of monitored process streams across a datacenter
of CSD-equipped nodes, not one flat list of drives.  This module is
that next tier up.  It layers a deterministic control plane over
:class:`~repro.core.serving.FleetServer` +
:class:`~repro.core.sessions.SessionManager`:

* **Topology** — drives live at (rack, node, slot) coordinates
  (:class:`TopologySpec`); placement and migration decisions prefer
  same-node, then same-rack targets, so a stream's checkpoint state
  moves the shortest possible distance.
* **Shard-affine routing** — streams hash (CRC-32, never Python's
  randomized ``hash``) onto a fixed shard ring (:class:`ShardRouter`);
  each shard has one primary drive and migrates *as a unit*, so routing
  state is O(shards), not O(streams) — the property that makes a
  million concurrent :class:`~repro.core.sessions.StreamSession`\\ s
  tractable.
* **QoS classes + admission control** — tenants declare
  :class:`QosClass` (priority, stream cap); new streams beyond a
  class's cap are denied, and when a drive's per-round token capacity
  is oversubscribed the lowest-priority tokens shed first, all counted
  per class (``repro_cp_*`` metrics).
* **Autoscaling** — a watermark policy (:class:`AutoscalePolicy`) with
  sustain + cooldown hysteresis activates standby drives under load and
  drains the emptiest slot when idle, driven by the per-round
  arrival-rate signal (mirrored by the ``repro_cp_arrival_rate``
  gauge).
* **Rolling drain/upgrade** — :meth:`ControlPlane.drain` and
  :meth:`ControlPlane.start_rolling_upgrade` take drives out of service
  via the existing checkpoint export/import migration; per-stream
  verdict sequences are *invariant* under drains (only timing and the
  serving device change), the same guarantee the failure path gives.

Everything runs on the simulated microsecond clock in fixed-length
rounds (:meth:`ControlPlane.run_round`): admit → throttle → ingest →
run the event core to the round boundary → autoscale/upgrade.  One
seed → byte-identical verdicts, event logs, and counters.  See
``docs/control_plane.md`` for the operator contract.
"""

from __future__ import annotations

import dataclasses
import math
import zlib

import numpy as np

from repro.core.serving import (
    FleetServer,
    ServingConfig,
    SessionServingReport,
    TokenArrival,
    nearest_rank_percentile,
)
from repro.core.sessions import SessionConfig

#: Shed/deny reasons (the ``reason`` label of ``repro_cp_tokens_shed_total``).
DENY_CLASS_CAP = "class_cap"
SHED_THROTTLED = "throttled"

#: Drain reasons (the ``reason`` label of ``repro_cp_drains_total``).
DRAIN_MANUAL = "manual"
DRAIN_UPGRADE = "upgrade"
DRAIN_SCALE_DOWN = "scale_down"

#: Scale directions (the ``direction`` label of ``repro_cp_scale_events_total``).
SCALE_UP = "up"
SCALE_DOWN = "down"


@dataclasses.dataclass(frozen=True)
class TopologySpec:
    """The physical shape of the fleet: racks of nodes of drive slots.

    Parameters
    ----------
    racks, nodes_per_rack, drives_per_node:
        Installed hardware; ``total_drives`` engines must be supplied to
        :class:`ControlPlane`.
    active_per_node:
        Drives per node initially in service; the rest (higher slots)
        start as autoscaling standby.  ``None`` activates everything.
    shards_per_drive:
        Shard-ring granularity: the ring has ``total_drives *
        shards_per_drive`` shards, so even a fully scaled-up fleet has
        several migratable units per drive.
    """

    racks: int = 1
    nodes_per_rack: int = 1
    drives_per_node: int = 2
    active_per_node: int | None = None
    shards_per_drive: int = 4

    def __post_init__(self) -> None:
        for field in ("racks", "nodes_per_rack", "drives_per_node",
                      "shards_per_drive"):
            if getattr(self, field) < 1:
                raise ValueError(f"{field} must be >= 1, got {getattr(self, field)}")
        if self.active_per_node is not None and not (
                1 <= self.active_per_node <= self.drives_per_node):
            raise ValueError(
                f"active_per_node must be in [1, {self.drives_per_node}], "
                f"got {self.active_per_node}"
            )

    @property
    def total_nodes(self) -> int:
        """Nodes in the fleet (racks x nodes_per_rack)."""
        return self.racks * self.nodes_per_rack

    @property
    def total_drives(self) -> int:
        """Installed drives (engines the control plane needs)."""
        return self.total_nodes * self.drives_per_node

    @property
    def initial_active_per_node(self) -> int:
        """Drives per node in service at start."""
        return (self.drives_per_node if self.active_per_node is None
                else self.active_per_node)

    @property
    def num_shards(self) -> int:
        """Size of the shard ring."""
        return self.total_drives * self.shards_per_drive

    def node_of(self, drive: int) -> int:
        """Global node id of a drive index."""
        return drive // self.drives_per_node

    def rack_of(self, drive: int) -> int:
        """Rack id of a drive index."""
        return self.node_of(drive) // self.nodes_per_rack

    def slot_of(self, drive: int) -> int:
        """Slot of a drive within its node."""
        return drive % self.drives_per_node

    def drives_of_node(self, node: int) -> range:
        """Drive indices installed in a node."""
        start = node * self.drives_per_node
        return range(start, start + self.drives_per_node)

    def coord(self, drive: int) -> tuple:
        """(rack, node, slot) of a drive index."""
        return (self.rack_of(drive), self.node_of(drive), self.slot_of(drive))


@dataclasses.dataclass(frozen=True)
class QosClass:
    """One tenant/QoS class: who gets admitted, who sheds last.

    ``max_streams`` caps *concurrent admitted streams* (``None`` =
    unbounded, ``0`` = a zero-capacity class that denies everything);
    ``priority`` orders shedding when a drive's per-round token capacity
    is oversubscribed — higher priorities shed last.
    """

    name: str
    priority: int = 0
    max_streams: int | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("QosClass name must be non-empty")
        if self.max_streams is not None and self.max_streams < 0:
            raise ValueError(
                f"max_streams must be >= 0 or None, got {self.max_streams}"
            )


@dataclasses.dataclass(frozen=True)
class AutoscalePolicy:
    """Watermark autoscaler with sustain + cooldown hysteresis.

    Per node and per round the signal is ``offered tokens / (active
    drives x per-drive token capacity)``.  A node must sit beyond a
    watermark for ``sustain_rounds`` *consecutive* rounds to act, and
    after acting waits ``cooldown_rounds`` before acting again — the two
    knobs that make the autoscale-flapping test pass by construction.
    """

    high_watermark: float = 0.75
    low_watermark: float = 0.25
    sustain_rounds: int = 2
    cooldown_rounds: int = 3

    def __post_init__(self) -> None:
        if not 0 < self.low_watermark < self.high_watermark:
            raise ValueError(
                "need 0 < low_watermark < high_watermark, got "
                f"{self.low_watermark} / {self.high_watermark}"
            )
        if self.sustain_rounds < 1:
            raise ValueError(
                f"sustain_rounds must be >= 1, got {self.sustain_rounds}"
            )
        if self.cooldown_rounds < 0:
            raise ValueError(
                f"cooldown_rounds must be >= 0, got {self.cooldown_rounds}"
            )


@dataclasses.dataclass(frozen=True)
class ControlPlaneConfig:
    """Policy bundle of the control plane.

    Parameters
    ----------
    round_us:
        Length of one control round in simulated microseconds; all
        admission, autoscaling, and drain decisions happen at round
        boundaries.
    drive_tokens_per_round:
        Per-drive token capacity the QoS throttle enforces each round.
        ``None`` derives it from the engine's per-token service time:
        ``floor(round_us * headroom / per_item_microseconds)``.
    headroom:
        Fraction of a drive-round the derived capacity may fill.
    classes:
        The :class:`QosClass` tuple (unique names; order fixes the
        fallback class for unclassified streams — the first entry).
    autoscale:
        :class:`AutoscalePolicy`, or ``None`` to pin the fleet.
    serving / sessions / backend:
        Passed through to :class:`~repro.core.serving.FleetServer` and
        each drive's :class:`~repro.core.sessions.SessionManager`.
    max_events_per_round:
        Optional event-count guard handed to the simulator each round
        (``None`` = unguarded; million-stream rounds legitimately fire
        hundreds of thousands of events).
    on_verdict:
        Optional per-verdict callback handed to the
        :class:`~repro.core.serving.FleetServer` — typically a
        :class:`~repro.response.policy.FleetResponder`, closing the
        verdict → action loop at fleet scale (see ``docs/response.md``).
    """

    round_us: int = 5_000
    drive_tokens_per_round: int | None = None
    headroom: float = 0.8
    classes: tuple = (QosClass("default"),)
    autoscale: AutoscalePolicy | None = dataclasses.field(
        default_factory=AutoscalePolicy
    )
    serving: ServingConfig = dataclasses.field(default_factory=ServingConfig)
    sessions: SessionConfig = dataclasses.field(default_factory=SessionConfig)
    backend: str | None = None
    max_events_per_round: int | None = None
    on_verdict: object = None

    def __post_init__(self) -> None:
        if self.round_us < 1:
            raise ValueError(f"round_us must be >= 1, got {self.round_us}")
        if not 0 < self.headroom <= 1:
            raise ValueError(f"headroom must be in (0, 1], got {self.headroom}")
        if self.drive_tokens_per_round is not None and self.drive_tokens_per_round < 1:
            raise ValueError(
                "drive_tokens_per_round must be >= 1 or None, got "
                f"{self.drive_tokens_per_round}"
            )
        classes = tuple(self.classes)
        if not classes:
            raise ValueError("need at least one QosClass")
        names = [qos.name for qos in classes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate QosClass names: {names}")
        object.__setattr__(self, "classes", classes)


class ShardRouter:
    """CRC-32 shard ring with a shard → primary-drive placement table.

    Streams hash onto shards with :func:`zlib.crc32` (stable across
    processes, unlike Python's randomized string ``hash``); shards map
    to one primary drive each.  Rebalancing reassigns shards, never
    individual streams, so the table stays O(shards).
    """

    def __init__(self, num_shards: int):
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = num_shards
        self._primary: list = [None] * num_shards
        self._by_drive: dict = {}

    def shard_of(self, stream: str) -> int:
        """Deterministic shard of a stream name."""
        return zlib.crc32(stream.encode("utf-8")) % self.num_shards

    def device_of(self, stream: str) -> int | None:
        """Primary drive of a stream's shard (``None`` if unplaced)."""
        return self._primary[self.shard_of(stream)]

    def primary(self, shard: int) -> int | None:
        """Primary drive of a shard."""
        return self._primary[shard]

    def assign(self, shard: int, drive: int | None) -> None:
        """Point a shard at a new primary drive (``None`` unplaces it)."""
        old = self._primary[shard]
        if old is not None:
            self._by_drive[old].discard(shard)
        self._primary[shard] = drive
        if drive is not None:
            self._by_drive.setdefault(drive, set()).add(shard)

    def shards_on(self, drive: int) -> tuple:
        """Sorted shards whose primary is ``drive``."""
        return tuple(sorted(self._by_drive.get(drive, ())))


@dataclasses.dataclass(frozen=True)
class ScaleEvent:
    """One autoscaling action (also counted by ``repro_cp_scale_events_total``)."""

    round_index: int
    node: int
    direction: str
    drive: int


@dataclasses.dataclass(frozen=True)
class ControlPlaneReport:
    """Plain-data outcome of a control-plane run.

    ``serving`` is the underlying
    :class:`~repro.core.serving.SessionServingReport` (verdicts, event
    log, per-drive session stats); everything else is the control
    plane's own accounting.  All counters mirror the ``repro_cp_*``
    telemetry exactly.
    """

    rounds: int
    duration_us: int
    tokens_offered: int
    tokens_admitted: dict
    tokens_shed: dict            # class -> reason -> count
    streams_offered: dict
    streams_admitted: dict
    streams_denied: dict
    scale_events: tuple          # ScaleEvent, chronological
    drains: dict                 # reason -> count
    restores: int
    shard_moves: int
    migrated_sessions: int
    device_failures: int
    active_drives: int
    peak_concurrent_sessions: int
    final_concurrent_sessions: int
    peak_resident_bytes_per_drive: int
    resident_budget_bytes: int | None
    round_summaries: tuple
    serving: SessionServingReport

    @property
    def within_memory_budget(self) -> bool:
        """True when no drive's resident tier ever exceeded its budget."""
        if self.resident_budget_bytes is None:
            return True
        return self.peak_resident_bytes_per_drive <= self.resident_budget_bytes

    @property
    def verdict_count(self) -> int:
        """Window verdicts delivered over the whole run."""
        return len(self.serving.verdicts)

    def verdict_latency_percentile_us(self, percentile: float) -> float:
        """Nearest-rank percentile of verdict delivery latency."""
        return self.serving.verdict_latency_percentile_us(percentile)

    def verdict_sequences(self) -> dict:
        """Per-stream ``(window_index, probability, is_ransomware)`` tuples.

        Timing- and placement-free: this is the artifact that must be
        bit-identical with and without drains, upgrades, or failures.
        """
        sequences: dict = {}
        for verdict in self.serving.verdicts:
            sequences.setdefault(verdict.stream, []).append(
                (verdict.window_index, verdict.probability,
                 verdict.is_ransomware)
            )
        return {
            stream: tuple(sorted(entries))
            for stream, entries in sequences.items()
        }


class ControlPlane:
    """Deterministic rack → node → drive control plane over a CSD fleet.

    Parameters
    ----------
    engines:
        One :class:`~repro.core.engine.CSDInferenceEngine` per installed
        drive — exactly ``topology.total_drives`` of them (use
        :func:`~repro.core.serving.build_fleet`).
    topology:
        The :class:`TopologySpec`.
    config:
        :class:`ControlPlaneConfig` policy bundle.
    classifier:
        Optional ``stream name -> class name``.  The default takes the
        prefix before the first ``-`` and falls back to the first
        configured class, matching the ``<class>-<index>`` names
        :func:`generate_fleet_rounds` emits.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry`; observation-only —
        every policy decision reads the plain counters the metrics
        mirror, never the telemetry itself.
    """

    def __init__(self, engines, topology: TopologySpec,
                 config: ControlPlaneConfig | None = None,
                 classifier=None, telemetry=None):
        engines = list(engines)
        self.topology = topology
        if len(engines) != topology.total_drives:
            raise ValueError(
                f"topology needs {topology.total_drives} engines, "
                f"got {len(engines)}"
            )
        self.config = config or ControlPlaneConfig()
        self.telemetry = telemetry
        self._classifier = classifier
        self._class_index = {
            qos.name: i for i, qos in enumerate(self.config.classes)
        }
        capacity = self.config.drive_tokens_per_round
        if capacity is None:
            capacity = max(1, math.floor(
                self.config.round_us * self.config.headroom
                / engines[0].per_item_microseconds()
            ))
        self.drive_tokens_per_round = capacity

        self.router = ShardRouter(topology.num_shards)
        self.server = FleetServer(
            engines, streams=[], config=self.config.serving,
            telemetry=telemetry, router=self.router.device_of,
            on_device_failed=self._on_device_failed,
            on_verdict=self.config.on_verdict,
        )
        self.server.begin_tokens(self.config.sessions, self.config.backend)

        self._active = [True] * topology.total_drives
        self._failed: set = set()
        for drive in range(topology.total_drives):
            if topology.slot_of(drive) >= topology.initial_active_per_node:
                self.server.deactivate_device(drive)
                self._active[drive] = False
        active = [d for d in range(topology.total_drives) if self._active[d]]
        for shard in range(topology.num_shards):
            self.router.assign(shard, active[shard % len(active)])

        self._round = 0
        self._finished = False
        self._stream_class: dict = {}   # stream -> class index, or -1 denied
        self._streams_offered = [0] * len(self.config.classes)
        self._streams_admitted = [0] * len(self.config.classes)
        self._streams_denied = [0] * len(self.config.classes)
        self._tokens_offered = 0
        self._tokens_admitted = [0] * len(self.config.classes)
        self._tokens_shed: dict = {}    # (class index, reason) -> count
        self._scale_events: list = []
        self._drains: dict = {}
        self._restores = 0
        self._shard_moves = 0
        self._migrated = 0
        self._high_streak = [0] * topology.total_nodes
        self._low_streak = [0] * topology.total_nodes
        self._cooldown = [0] * topology.total_nodes
        self._upgrade_pending: list = []
        self._upgrade_in_flight: int | None = None
        self._verdict_cursor = 0
        self._peak_concurrent = 0
        self._peak_resident_bytes = 0
        self._round_summaries: list = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def active_drives(self) -> tuple:
        """Drive indices currently in service, ascending."""
        return tuple(d for d, alive in enumerate(self._active) if alive)

    @property
    def upgrade_complete(self) -> bool:
        """True when no rolling upgrade is pending or in flight."""
        return not self._upgrade_pending and self._upgrade_in_flight is None

    def concurrent_sessions(self) -> int:
        """Live StreamSessions fleet-wide (resident + checkpointed).

        Counts in-service drives only: a drained/failed drive's manager
        may still hold stale copies (the drain path *copies* checkpoints
        out, like failover), but those are no longer serving anything.
        """
        total = 0
        for device in self.server.devices:
            manager = device.sessions
            if manager is not None and not device.dead:
                total += manager.resident_count + manager.checkpointed_count
        return total

    def class_of(self, stream: str) -> str:
        """The QoS class name a stream maps to."""
        return self.config.classes[self._classify(stream)].name

    # ------------------------------------------------------------------
    # Response actions (verdict-driven; see docs/response.md)
    # ------------------------------------------------------------------

    def quarantine_stream(self, stream: str) -> None:
        """Shed a stream's future tokens fleet-wide (delegates to the server)."""
        self.server.quarantine_stream(stream)

    def release_stream(self, stream: str) -> None:
        """Lift a stream quarantine."""
        self.server.release_stream(stream)

    def kill_stream(self, stream: str) -> None:
        """Quarantine a stream and drop its session state."""
        self.server.kill_stream(stream)

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------

    def _classify(self, stream: str) -> int:
        if self._classifier is not None:
            name = self._classifier(stream)
            index = self._class_index.get(name)
            if index is None:
                raise ValueError(
                    f"classifier returned unknown class {name!r} for "
                    f"stream {stream!r}"
                )
            return index
        prefix = stream.split("-", 1)[0]
        return self._class_index.get(prefix, 0)

    def _count(self, name: str, amount: int = 1, **labels) -> None:
        if self.telemetry is not None and amount:
            self.telemetry.counter(name, **labels).inc(amount)

    def _shed_tokens(self, class_index: int, reason: str, count: int) -> None:
        if count == 0:
            return
        key = (class_index, reason)
        self._tokens_shed[key] = self._tokens_shed.get(key, 0) + count
        self._count(
            "repro_cp_tokens_shed_total", count,
            qos=self.config.classes[class_index].name, reason=reason,
        )

    def _placement_targets(self, drive: int) -> list:
        """Active migration targets for a drive's shards, nearest tier first."""
        node = self.topology.node_of(drive)
        rack = self.topology.rack_of(drive)
        same_node = [d for d in self.topology.drives_of_node(node)
                     if d != drive and self._active[d]]
        if same_node:
            return same_node
        same_rack = [d for d in range(self.topology.total_drives)
                     if d != drive and self._active[d]
                     and self.topology.rack_of(d) == rack]
        if same_rack:
            return same_rack
        return [d for d in range(self.topology.total_drives)
                if d != drive and self._active[d]]

    def _reassign_shards(self, drive: int) -> None:
        """Spread a departing drive's shards over its preferred targets."""
        targets = self._placement_targets(drive)
        shards = self.router.shards_on(drive)
        for i, shard in enumerate(shards):
            self.router.assign(shard, targets[i % len(targets)] if targets
                               else None)
        if shards:
            self._shard_moves += len(shards)
            self._count("repro_cp_shard_moves_total", len(shards))

    def _on_device_failed(self, drive: int) -> None:
        """FleetServer fault-plan callback: reroute before migration."""
        self._active[drive] = False
        self._failed.add(drive)
        self._reassign_shards(drive)

    def _drain(self, drive: int, reason: str) -> int:
        if not self._active[drive]:
            return 0
        start = self.server.clock_us
        self._active[drive] = False
        self._reassign_shards(drive)
        migrated = self.server.drain_device(drive)
        self._migrated += migrated
        self._drains[reason] = self._drains.get(reason, 0) + 1
        self._count("repro_cp_drains_total", 1, reason=reason)
        self._count("repro_cp_migrated_sessions_total", migrated)
        if self.telemetry is not None:
            self.telemetry.tracer.record(
                "cp.drain", start, self.server.clock_us,
                attributes={"drive": drive, "reason": reason,
                            "migrated": migrated, "unit": "us"},
            )
        return migrated

    def _restore(self, drive: int) -> None:
        self.server.restore_device(drive)
        self._active[drive] = True
        self._failed.discard(drive)
        self._restores += 1
        self._count("repro_cp_device_restores_total")

    # ------------------------------------------------------------------
    # Public fleet operations
    # ------------------------------------------------------------------

    def drain(self, drive: int, reason: str = DRAIN_MANUAL) -> int:
        """Drain one drive now: shards reassign (same node first), every
        session migrates as a checkpoint, verdict sequences unchanged.
        Returns the number of sessions migrated."""
        if not 0 <= drive < self.topology.total_drives:
            raise ValueError(f"no drive {drive}")
        return self._drain(drive, reason)

    def start_rolling_upgrade(self) -> int:
        """Queue a rolling drain/restore of every active drive.

        Each subsequent round drains the next queued drive (its shards
        and sessions migrate, same-node first) and restores the
        previously drained one empty — exactly one drive out of service
        at a time.  Returns the number of drives queued.
        """
        self._upgrade_pending = [d for d in range(self.topology.total_drives)
                                 if self._active[d]]
        return len(self._upgrade_pending)

    def _upgrade_step(self) -> None:
        if self._upgrade_in_flight is not None:
            self._restore(self._upgrade_in_flight)
            self._upgrade_in_flight = None
        while self._upgrade_pending:
            drive = self._upgrade_pending.pop(0)
            if not self._active[drive]:
                continue  # failed or scaled down since queueing
            self._drain(drive, DRAIN_UPGRADE)
            self._upgrade_in_flight = drive
            break

    # ------------------------------------------------------------------
    # Autoscaling
    # ------------------------------------------------------------------

    def _scale_up(self, node: int) -> bool:
        candidates = [d for d in self.topology.drives_of_node(node)
                      if not self._active[d] and d not in self._failed
                      and d != self._upgrade_in_flight]
        if not candidates:
            return False
        drive = candidates[0]
        self._restore(drive)
        self._rebalance_node(node, drive)
        self._scale_events.append(ScaleEvent(
            round_index=self._round, node=node, direction=SCALE_UP,
            drive=drive,
        ))
        self._count("repro_cp_scale_events_total", 1, direction=SCALE_UP)
        return True

    def _scale_down(self, node: int) -> bool:
        actives = [d for d in self.topology.drives_of_node(node)
                   if self._active[d] and d != self._upgrade_in_flight]
        if len(actives) <= 1:
            return False
        drive = actives[-1]  # highest slot leaves first: LIFO vs scale-up
        self._drain(drive, DRAIN_SCALE_DOWN)
        self._scale_events.append(ScaleEvent(
            round_index=self._round, node=node, direction=SCALE_DOWN,
            drive=drive,
        ))
        self._count("repro_cp_scale_events_total", 1, direction=SCALE_DOWN)
        return True

    def _rebalance_node(self, node: int, new_drive: int) -> None:
        """Even out shard counts within a node after a scale-up."""
        actives = [d for d in self.topology.drives_of_node(node)
                   if self._active[d]]
        counts = {d: len(self.router.shards_on(d)) for d in actives}
        total = sum(counts.values())
        target = total // len(actives)
        while counts[new_drive] < target:
            donor = max((d for d in actives if d != new_drive),
                        key=lambda d: (counts[d], -d))
            if counts[donor] <= counts[new_drive] + 1:
                break
            shard = self.router.shards_on(donor)[0]
            keys = [key for key in
                    self.server.devices[donor].sessions.known_keys()
                    if self.router.shard_of(key) == shard]
            self.router.assign(shard, new_drive)
            moved = self.server.migrate_streams(donor, new_drive, keys)
            self._migrated += moved
            self._shard_moves += 1
            counts[donor] -= 1
            counts[new_drive] += 1
            self._count("repro_cp_shard_moves_total")
            self._count("repro_cp_migrated_sessions_total", moved)

    def _autoscale(self, offered_by_node: list) -> None:
        policy = self.config.autoscale
        if policy is None:
            return
        for node in range(self.topology.total_nodes):
            actives = [d for d in self.topology.drives_of_node(node)
                       if self._active[d]]
            if not actives:
                continue
            capacity = len(actives) * self.drive_tokens_per_round
            utilization = offered_by_node[node] / capacity
            if utilization > policy.high_watermark:
                self._high_streak[node] += 1
                self._low_streak[node] = 0
            elif utilization < policy.low_watermark:
                self._low_streak[node] += 1
                self._high_streak[node] = 0
            else:
                self._high_streak[node] = 0
                self._low_streak[node] = 0
            if self._cooldown[node] > 0:
                self._cooldown[node] -= 1
                continue
            if (self._high_streak[node] >= policy.sustain_rounds
                    and self._scale_up(node)):
                self._high_streak[node] = 0
                self._cooldown[node] = policy.cooldown_rounds
            elif (self._low_streak[node] >= policy.sustain_rounds
                    and self._scale_down(node)):
                self._low_streak[node] = 0
                self._cooldown[node] = policy.cooldown_rounds

    # ------------------------------------------------------------------
    # The round loop
    # ------------------------------------------------------------------

    def _admit(self, arrivals) -> tuple:
        """Admission + QoS throttle; returns (kept arrivals, offered/node)."""
        classes = self.config.classes
        memo = self._stream_class
        by_drive: dict = {}
        offered_by_node = [0] * self.topology.total_nodes
        for arrival in arrivals:
            self._tokens_offered += 1
            cls = memo.get(arrival.stream)
            if cls is None:
                cls = self._classify(arrival.stream)
                self._streams_offered[cls] += 1
                cap = classes[cls].max_streams
                if cap is not None and self._streams_admitted[cls] >= cap:
                    memo[arrival.stream] = -1
                    self._streams_denied[cls] += 1
                    self._count("repro_cp_streams_denied_total",
                                qos=classes[cls].name)
                    self._shed_tokens(cls, DENY_CLASS_CAP, 1)
                    continue
                memo[arrival.stream] = cls
                self._streams_admitted[cls] += 1
                self._count("repro_cp_streams_admitted_total",
                            qos=classes[cls].name)
            elif cls == -1:
                denied_cls = self._classify(arrival.stream)
                self._shed_tokens(denied_cls, DENY_CLASS_CAP, 1)
                continue
            drive = self.router.device_of(arrival.stream)
            key = drive if drive is not None else -1
            by_drive.setdefault(key, []).append((cls, arrival))
            if drive is not None:
                offered_by_node[self.topology.node_of(drive)] += 1
        kept: list = []
        capacity = self.drive_tokens_per_round
        priority_order = sorted(
            range(len(classes)), key=lambda i: (-classes[i].priority, i)
        )
        for drive, entries in by_drive.items():
            if drive == -1 or len(entries) <= capacity:
                for cls, arrival in entries:
                    self._tokens_admitted[cls] += 1
                    kept.append(arrival)
                continue
            # Oversubscribed: keep high priorities first, preserving
            # arrival order within a class (per-stream order is sacred).
            budget = capacity
            keep_flags = [False] * len(entries)
            by_class: dict = {}
            for position, (cls, _) in enumerate(entries):
                by_class.setdefault(cls, []).append(position)
            for cls in priority_order:
                for position in by_class.get(cls, ()):
                    if budget == 0:
                        break
                    keep_flags[position] = True
                    budget -= 1
            for position, (cls, arrival) in enumerate(entries):
                if keep_flags[position]:
                    self._tokens_admitted[cls] += 1
                    kept.append(arrival)
                else:
                    self._shed_tokens(cls, SHED_THROTTLED, 1)
        kept.sort(key=lambda a: a.arrival_us)
        return kept, offered_by_node

    def run_round(self, arrivals=()) -> dict:
        """Run one control round; returns its plain-data summary.

        ``arrivals`` are :class:`~repro.core.serving.TokenArrival` with
        times inside ``[round_start, round_end)``.  The sequence is:
        admission control → per-drive QoS throttle → ingest → drive the
        event core to the round boundary → upgrade step → autoscale →
        telemetry mirror.
        """
        if self._finished:
            raise RuntimeError("control plane already finished")
        start = self._round * self.config.round_us
        end = start + self.config.round_us
        admitted_before = list(self._tokens_admitted)
        offered_before = self._tokens_offered
        kept, offered_by_node = self._admit(arrivals)
        if self.telemetry is not None:
            for cls, qos in enumerate(self.config.classes):
                self._count(
                    "repro_cp_tokens_admitted_total",
                    self._tokens_admitted[cls] - admitted_before[cls],
                    qos=qos.name,
                )
        self.server.ingest_tokens(kept)
        self.server.run_tokens_until(
            end, max_events=self.config.max_events_per_round
        )
        self._upgrade_step()
        self._autoscale(offered_by_node)

        concurrent = self.concurrent_sessions()
        self._peak_concurrent = max(self._peak_concurrent, concurrent)
        resident_high = 0
        for device in self.server.devices:
            if device.sessions is not None:
                resident_high = max(resident_high,
                                    device.sessions.resident_bytes)
        self._peak_resident_bytes = max(self._peak_resident_bytes,
                                        resident_high)
        arrival_rate = sum(offered_by_node) * 1e6 / self.config.round_us
        summary = {
            "round": self._round,
            "start_us": start,
            "end_us": end,
            "offered_tokens": self._tokens_offered - offered_before,
            "admitted_tokens": sum(self._tokens_admitted)
                               - sum(admitted_before),
            "arrival_rate_tps": arrival_rate,
            "active_drives": len(self.active_drives),
            "concurrent_sessions": concurrent,
            "max_resident_bytes": resident_high,
        }
        self._round_summaries.append(summary)
        if self.telemetry is not None:
            self._count("repro_cp_rounds_total")
            self.telemetry.gauge("repro_cp_active_drives").set(
                len(self.active_drives)
            )
            self.telemetry.gauge("repro_cp_concurrent_sessions").set(concurrent)
            self.telemetry.gauge("repro_cp_arrival_rate").set(arrival_rate)
            self.telemetry.gauge("repro_cp_resident_bytes").set(resident_high)
            verdicts = self.server.session_verdicts
            histogram = self.telemetry.histogram(
                "repro_cp_verdict_latency_seconds"
            )
            for verdict in verdicts[self._verdict_cursor:]:
                histogram.observe(verdict.latency_us * 1e-6)
            self._verdict_cursor = len(verdicts)
            self.telemetry.tracer.record(
                "cp.round", start, end,
                attributes={"round": self._round,
                            "active_drives": len(self.active_drives),
                            "unit": "us"},
            )
        self._round += 1
        return summary

    def run(self, rounds) -> ControlPlaneReport:
        """Run one round per element of ``rounds`` and finish."""
        for arrivals in rounds:
            self.run_round(arrivals)
        return self.finish()

    def finish(self) -> ControlPlaneReport:
        """Drain the event core and build the final report."""
        if self._finished:
            raise RuntimeError("control plane already finished")
        self._finished = True
        serving = self.server.finish_tokens(
            max_events=self.config.max_events_per_round
        )
        classes = self.config.classes
        shed: dict = {}
        for (cls, reason), count in sorted(self._tokens_shed.items()):
            shed.setdefault(classes[cls].name, {})[reason] = count
        concurrent = self.concurrent_sessions()
        self._peak_concurrent = max(self._peak_concurrent, concurrent)
        return ControlPlaneReport(
            rounds=self._round,
            duration_us=serving.duration_us,
            tokens_offered=self._tokens_offered,
            tokens_admitted={classes[i].name: n
                             for i, n in enumerate(self._tokens_admitted)},
            tokens_shed=shed,
            streams_offered={classes[i].name: n
                             for i, n in enumerate(self._streams_offered)},
            streams_admitted={classes[i].name: n
                              for i, n in enumerate(self._streams_admitted)},
            streams_denied={classes[i].name: n
                            for i, n in enumerate(self._streams_denied)},
            scale_events=tuple(self._scale_events),
            drains=dict(self._drains),
            restores=self._restores,
            shard_moves=self._shard_moves,
            migrated_sessions=serving.migrated_sessions,
            device_failures=serving.device_failures,
            active_drives=len(self.active_drives),
            peak_concurrent_sessions=self._peak_concurrent,
            final_concurrent_sessions=concurrent,
            peak_resident_bytes_per_drive=self._peak_resident_bytes,
            resident_budget_bytes=self.config.sessions.memory_budget_bytes,
            round_summaries=tuple(self._round_summaries),
            serving=serving,
        )


def generate_fleet_rounds(
    classes,
    rounds: int,
    round_us: int,
    streams_per_class: int,
    hot_per_class: int,
    registration_rounds: int | None = None,
    hot_rounds: int | None = None,
    vocab_size: int = 278,
    seed: int = 0,
):
    """Yield per-round :class:`~repro.core.serving.TokenArrival` lists.

    The million-streams scenario generator: for each :class:`QosClass`
    in ``classes``, streams ``<name>-0000000 … <name>-<N-1>`` split into
    a *hot* head (``hot_per_class`` streams emitting one token per round
    while ``round < hot_rounds`` — these complete windows and produce
    verdicts) and a *cold* tail registered one token each, spread evenly
    over the first ``registration_rounds`` rounds (these park as
    checkpoints and drive the concurrent-session count).  Token values
    come from one vectorized draw per round seeded ``(seed, round)``;
    arrival times spread evenly across the round.  Fully deterministic
    and lazy — nothing holds more than one round of arrivals.
    """
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    if registration_rounds is None:
        registration_rounds = rounds
    if hot_rounds is None:
        hot_rounds = rounds
    registration_rounds = min(registration_rounds, rounds)
    names = [qos.name if isinstance(qos, QosClass) else str(qos)
             for qos in classes]
    hot_per_class = min(hot_per_class, streams_per_class)
    cold_per_class = streams_per_class - hot_per_class
    cold_chunk = (math.ceil(cold_per_class / registration_rounds)
                  if cold_per_class else 0)
    for round_index in range(rounds):
        start = round_index * round_us
        streams: list = []
        if round_index < hot_rounds:
            for name in names:
                streams.extend(
                    f"{name}-{i:07d}" for i in range(hot_per_class)
                )
        if cold_chunk and round_index < registration_rounds:
            low = round_index * cold_chunk
            high = min(low + cold_chunk, cold_per_class)
            for name in names:
                streams.extend(
                    f"{name}-{hot_per_class + i:07d}" for i in range(low, high)
                )
        if not streams:
            yield []
            continue
        rng = np.random.default_rng([seed, round_index])
        tokens = rng.integers(0, vocab_size, size=len(streams))
        count = len(streams)
        yield [
            TokenArrival(
                stream=stream,
                token=int(tokens[k]),
                arrival_us=start + (k * round_us) // count,
            )
            for k, stream in enumerate(streams)
        ]


def percentile_us(values, percentile: float) -> float:
    """Nearest-rank percentile over an iterable of microsecond values
    (0.0 when empty)."""
    ordered = np.array(list(values), dtype=np.int64)
    if ordered.size == 0:
        return 0.0
    return nearest_rank_percentile(ordered, percentile)
