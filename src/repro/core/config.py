"""Model dimensions, optimisation levels, and engine configuration.

The paper's experimental setup (Section IV) fixes the model: embedding
dimension 8, hidden size 32, vocabulary 278 (so the embedding table holds
2,224 parameters and the LSTM 5,248), sequence length 100, and a
single-unit fully-connected head.  The optimisation rungs of Fig. 3 are an
ordered enum: each level includes everything below it.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.fixedpoint.qformat import PAPER_QFORMAT, QFormat
from repro.hw.clock import DEFAULT_KERNEL_CLOCK_HZ
from repro.hw.fpga import ALVEO_U200, FpgaPart


class OptimizationLevel(enum.IntEnum):
    """The paper's cumulative optimisation rungs (Fig. 3, x-axis).

    * ``VANILLA`` — kernel parallelisation only (Section III-C): four
      gates CUs, per-CU buffer copies, preemptive preprocessing.
    * ``II_OPTIMIZED`` — adds ``PIPELINE II=1``, ``UNROLL``, and complete
      ``ARRAY_PARTITION`` (Section III-D, "Initiation Interval").
    * ``FIXED_POINT`` — additionally moves all arithmetic to
      scale-10^6 integers on DSP slices (Section III-D).
    """

    VANILLA = 0
    II_OPTIMIZED = 1
    FIXED_POINT = 2

    @property
    def uses_ii_pragmas(self) -> bool:
        return self >= OptimizationLevel.II_OPTIMIZED

    @property
    def uses_fixed_point(self) -> bool:
        return self >= OptimizationLevel.FIXED_POINT


@dataclasses.dataclass(frozen=True)
class ModelDimensions:
    """Shapes of the deployed model.

    Defaults reproduce the paper's 7,472-parameter configuration.
    """

    vocab_size: int = 278
    embedding_dim: int = 8
    hidden_size: int = 32
    sequence_length: int = 100

    def __post_init__(self) -> None:
        for field_name in ("vocab_size", "embedding_dim", "hidden_size", "sequence_length"):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")

    @property
    def gate_input_size(self) -> int:
        """Width of the concatenated ``[h_{t-1}, x_t]`` gate input."""
        return self.hidden_size + self.embedding_dim

    @property
    def embedding_parameters(self) -> int:
        return self.vocab_size * self.embedding_dim

    @property
    def lstm_parameters(self) -> int:
        return 4 * (self.hidden_size * self.gate_input_size + self.hidden_size)

    @property
    def head_parameters(self) -> int:
        return self.hidden_size + 1

    @property
    def total_parameters(self) -> int:
        return self.embedding_parameters + self.lstm_parameters + self.head_parameters


#: The four gate kernels, in the paper's Fig. 2 order.
GATE_NAMES = ("i", "f", "o", "c")


@dataclasses.dataclass(frozen=True)
class EngineConfig:
    """Everything needed to instantiate a CSD inference engine.

    Parameters
    ----------
    dimensions:
        Model shapes (defaults to the paper's).
    optimization:
        Which Fig. 3 rung to build.
    num_gate_cus:
        Parallel ``kernel_gates`` compute units; the paper uses 4 (one per
        gate).  Values 1/2/4 are meaningful: with fewer CUs than gates the
        gate computations serialise onto the available CUs.
    preemptive_preprocess:
        Overlap the next item's embedding lookup with the current item's
        gate/hidden computation (Section III-C).  On by default; the
        pipeline ablation turns it off.
    ddr_banks:
        Global-memory banks to link against ("a conservative two").
    fpga_part:
        Target silicon; the Alveo u200 as in the paper's evaluation.
    kernel_clock_hz:
        Kernel clock; 300 MHz matches the paper's numbers.
    qformat:
        Fixed-point format used when ``optimization`` is ``FIXED_POINT``.
    backend:
        Kernel backend for the inference/session hot path (see
        :mod:`repro.core.kernels.backends`).  ``"reference"`` (the
        default) runs the per-kernel NumPy pipeline exactly as shipped;
        ``"fused"`` collapses each tick into one precompiled step over
        persistent state, bit-exact with ``reference`` at every
        optimisation level.  Validated lazily at first use (the registry
        lives above this module in the import graph), never here.
    """

    dimensions: ModelDimensions = dataclasses.field(default_factory=ModelDimensions)
    optimization: OptimizationLevel = OptimizationLevel.FIXED_POINT
    num_gate_cus: int = 4
    preemptive_preprocess: bool = True
    ddr_banks: int = 2
    fpga_part: FpgaPart = ALVEO_U200
    kernel_clock_hz: float = DEFAULT_KERNEL_CLOCK_HZ
    qformat: QFormat = PAPER_QFORMAT
    backend: str = "reference"

    def __post_init__(self) -> None:
        if self.num_gate_cus not in (1, 2, 4):
            raise ValueError(
                f"num_gate_cus must be 1, 2, or 4 (gates per CU must divide "
                f"evenly), got {self.num_gate_cus}"
            )
        if self.ddr_banks < 1:
            raise ValueError(f"ddr_banks must be >= 1, got {self.ddr_banks}")

    @property
    def gates_per_cu(self) -> int:
        """How many of the four gate computations each CU serialises."""
        return len(GATE_NAMES) // self.num_gate_cus
