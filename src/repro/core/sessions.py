"""Streaming sessions: stateful incremental inference for live streams.

The paper's deployment story is continuous in-drive monitoring of live
I/O — a stream of API calls per process, classified over overlapping
sliding windows.  Re-running :meth:`~repro.core.engine.CSDInferenceEngine.infer_sequence`
over the whole window at every stride gives O(window) recompute *bursts*
per verdict and no way to batch across streams.  This module is the
online-serving answer:

* :class:`StreamSession` carries the LSTM ``(h, C)`` state **per token**,
  with a rotating ring of partial window states — one per overlapping
  stride window — so each arriving token advances every open window by a
  single step and the per-token cost is smooth instead of bursty.
* :class:`SessionManager` steps *many* sessions per tick through one
  stacked batched gate matmul (the same kernels ``infer_batch`` uses), so
  kernel-invocation overhead amortises across all streams and all ring
  slots; it enforces a memory budget via LRU/idle eviction with
  checkpoint/restore of evicted session state, and emits a verdict the
  moment a window completes (optionally early-exiting flagged streams).

The per-token stepping path is **bit-exact** with ``infer_sequence`` on
the same window at every :class:`~repro.core.config.OptimizationLevel`:
the gate step routes through :meth:`~repro.core.kernels.gates.GatesKernel.run_batch`
(batch-stable float reductions, exact int64 fixed-point accumulation),
the cell/hidden update through the stateless
:meth:`~repro.core.kernels.hidden_state.HiddenStateKernel.step_batch`,
and the FC head through ``classify_batch`` — all row-independent, so a
window stepped token by token inside an arbitrary batch of other
sessions produces the identical probability to a fresh full-window
recompute.  See ``docs/streaming.md`` for the lifecycle and semantics.
"""

from __future__ import annotations

import collections
import dataclasses
import math

import numpy as np

#: Fixed per-session bookkeeping estimate (Python objects, dict slots)
#: on top of the ring's state arrays; used by the memory budget.
SESSION_OVERHEAD_BYTES = 256

#: Eviction reasons (the ``reason`` label of
#: ``repro_session_evictions_total``).
EVICT_LRU = "lru"
EVICT_IDLE = "idle"
EVICT_CLOSED = "closed"
EVICT_MIGRATED = "migrated"


@dataclasses.dataclass(frozen=True)
class SessionConfig:
    """Policy knobs of a :class:`SessionManager`.

    Parameters
    ----------
    threshold:
        Ransomware probability above which a completed window raises a
        positive verdict (same semantics as the offline detector).
    stride:
        Open a new window every ``stride`` tokens (1 = classify every
        window, as in :class:`~repro.ransomware.detector.RansomwareDetector`).
    memory_budget_bytes:
        Bound on resident session state; exceeding it evicts the least
        recently stepped sessions to the checkpoint store (``None`` =
        unbounded).  Must hold at least one session.
    max_resident_sessions:
        Direct cap on resident sessions (``None`` = derived from the
        byte budget only).  The effective cap is the minimum of both.
    idle_after_steps:
        Evict a session once this many manager ticks pass without it
        receiving a token (``None`` = never).  Evicted state is
        checkpointed, not lost — an idle process that wakes up restores
        transparently.
    early_exit:
        Once a session raises a ransomware verdict, stop stepping it:
        subsequent tokens are dropped without inference until the
        session is reset or closed.  Off by default (parity with the
        recompute detector, which keeps classifying).
    """

    threshold: float = 0.5
    stride: int = 1
    memory_budget_bytes: int | None = None
    max_resident_sessions: int | None = None
    idle_after_steps: int | None = None
    early_exit: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold < 1.0:
            raise ValueError(f"threshold must be in (0, 1), got {self.threshold}")
        if self.stride < 1:
            raise ValueError(f"stride must be >= 1, got {self.stride}")
        if self.memory_budget_bytes is not None and self.memory_budget_bytes < 1:
            raise ValueError("memory_budget_bytes must be positive")
        if self.max_resident_sessions is not None and self.max_resident_sessions < 1:
            raise ValueError("max_resident_sessions must be >= 1")
        if self.idle_after_steps is not None and self.idle_after_steps < 1:
            raise ValueError("idle_after_steps must be >= 1")


@dataclasses.dataclass(frozen=True)
class SessionVerdict:
    """One completed window's classification for one stream."""

    session: object          # the session key (process id, stream name, ...)
    window_index: int        # 0 = the stream's first fully-formed window
    probability: float
    is_ransomware: bool
    inference_microseconds: float


@dataclasses.dataclass(frozen=True)
class SessionCheckpoint:
    """The complete restorable state of one evicted session.

    Slots are ``(start, filled, hidden, cell)`` tuples holding *copies*
    of the ring arrays, so a checkpoint can never alias live state.
    Restoring a checkpoint and continuing the stream produces verdicts
    bit-identical to a session that was never evicted (asserted by
    ``tests/core/test_sessions.py``).
    """

    key: object
    calls_seen: int
    flagged: bool
    windows_classified: int
    slots: tuple


class _WindowSlot:
    """One partial window: its start index, fill count, and LSTM state."""

    __slots__ = ("start", "filled", "hidden", "cell")

    def __init__(self, start: int, hidden: np.ndarray, cell: np.ndarray,
                 filled: int = 0):
        self.start = start
        self.filled = filled
        self.hidden = hidden
        self.cell = cell


class StreamSession:
    """Incremental per-stream detection state.

    Holds a rotating ring of :class:`_WindowSlot` partial windows.  A new
    slot opens whenever ``calls_seen % stride == 0`` (the same window
    positions the recompute detector classifies); every arriving token
    advances all open slots by one LSTM step; a slot whose fill count
    reaches the window length is classified and closed.  At most
    ``ceil(window_length / stride)`` slots are ever open, which bounds
    the session's state to a fixed number of ``(h, C)`` vector pairs.

    Sessions are driven by a :class:`SessionManager`; they are not
    stepped directly.
    """

    __slots__ = ("key", "calls_seen", "flagged", "windows_classified",
                 "slots", "last_used_tick", "_hidden_size", "_dtype")

    def __init__(self, key, hidden_size: int, dtype):
        self.key = key
        self.calls_seen = 0
        self.flagged = False
        self.windows_classified = 0
        self.slots: list = []
        self.last_used_tick = 0
        self._hidden_size = hidden_size
        self._dtype = dtype

    def open_slot(self) -> _WindowSlot:
        """Open a zero-state partial window starting at ``calls_seen``."""
        slot = _WindowSlot(
            start=self.calls_seen,
            hidden=np.zeros(self._hidden_size, dtype=self._dtype),
            cell=np.zeros(self._hidden_size, dtype=self._dtype),
        )
        self.slots.append(slot)
        return slot

    def close_slot(self, slot: _WindowSlot) -> None:
        self.slots.remove(slot)

    def checkpoint(self) -> SessionCheckpoint:
        """Snapshot the full session state into an alias-free checkpoint."""
        return SessionCheckpoint(
            key=self.key,
            calls_seen=self.calls_seen,
            flagged=self.flagged,
            windows_classified=self.windows_classified,
            slots=tuple(
                (slot.start, slot.filled, slot.hidden.copy(), slot.cell.copy())
                for slot in self.slots
            ),
        )

    @classmethod
    def from_checkpoint(cls, checkpoint: SessionCheckpoint,
                        hidden_size: int, dtype) -> "StreamSession":
        session = cls(checkpoint.key, hidden_size, dtype)
        session.calls_seen = checkpoint.calls_seen
        session.flagged = checkpoint.flagged
        session.windows_classified = checkpoint.windows_classified
        session.slots = [
            _WindowSlot(start=start, filled=filled,
                        hidden=np.array(hidden, dtype=dtype),
                        cell=np.array(cell, dtype=dtype))
            for start, filled, hidden, cell in checkpoint.slots
        ]
        return session


class SessionManager:
    """Batched stepping, memory budgeting, and lifecycle for many sessions.

    Parameters
    ----------
    engine:
        A loaded :class:`~repro.core.engine.CSDInferenceEngine`; the
        manager reuses its preprocess/gates/hidden-state kernels (and
        its live ``telemetry`` reference) for every step.
    config:
        Session policy; see :class:`SessionConfig`.

    The manager keeps two tiers of state:

    * **resident** sessions — hot ``(h, C)`` ring state, stepped in
      batch, bounded by the memory budget;
    * the **checkpoint store** — compact evicted state, the "storage
      tier" a real CSD would spill to; restoring from it is transparent
      and bit-exact.

    Stepping never touches the engine's sequence/AXI counters: the
    incremental path is a different execution model from the per-window
    recompute, and it reports its own ``repro_session_*`` metrics
    (see ``docs/observability.md``).
    """

    def __init__(self, engine, config: SessionConfig | None = None):
        self.engine = engine
        self.config = config or SessionConfig()
        engine._require_loaded()
        dims = engine.config.dimensions
        self.window_length = dims.sequence_length
        self.ring_capacity = math.ceil(self.window_length / self.config.stride)
        self._hidden_size = dims.hidden_size
        self._dtype = (
            np.int64 if engine.config.optimization.uses_fixed_point
            else np.float64
        )
        bytes_per_value = 8
        self.session_bytes = (
            SESSION_OVERHEAD_BYTES
            + self.ring_capacity * 2 * self._hidden_size * bytes_per_value
        )
        self._max_resident = self._effective_cap()
        self._sequence_microseconds = engine.sequence_microseconds()

        self._resident: collections.OrderedDict = collections.OrderedDict()
        self._checkpoints: dict = {}
        self._tick = 0
        # Plain-int counters, always live (telemetry only mirrors them).
        self._evictions: dict = {}
        self._restores = 0
        self._tokens = 0
        self._tokens_dropped = 0
        self._slot_steps = 0
        self._steps = 0
        self._verdicts = {"ransomware": 0, "benign": 0}
        self._early_exits = 0

    def _effective_cap(self) -> int | None:
        cap = self.config.max_resident_sessions
        budget = self.config.memory_budget_bytes
        if budget is not None:
            by_budget = budget // self.session_bytes
            if by_budget < 1:
                raise ValueError(
                    f"memory_budget_bytes={budget} cannot hold even one "
                    f"session ({self.session_bytes} bytes each)"
                )
            cap = by_budget if cap is None else min(cap, by_budget)
        return cap

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def resident_count(self) -> int:
        return len(self._resident)

    @property
    def checkpointed_count(self) -> int:
        return len(self._checkpoints)

    @property
    def resident_bytes(self) -> int:
        return len(self._resident) * self.session_bytes

    def known_keys(self) -> tuple:
        """Every session key currently held, resident or checkpointed."""
        keys = list(self._resident)
        keys.extend(k for k in self._checkpoints if k not in self._resident)
        return tuple(keys)

    def stats(self) -> dict:
        """Plain-data operational counters (mirrors the telemetry)."""
        return {
            "resident_sessions": self.resident_count,
            "checkpointed_sessions": self.checkpointed_count,
            "resident_bytes": self.resident_bytes,
            "tokens": self._tokens,
            "tokens_dropped": self._tokens_dropped,
            "steps": self._steps,
            "slot_steps": self._slot_steps,
            "verdicts": dict(self._verdicts),
            "evictions": dict(self._evictions),
            "restores": self._restores,
            "early_exits": self._early_exits,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _activate(self, key) -> StreamSession:
        """Resident lookup with LRU touch; restores or creates as needed."""
        session = self._resident.get(key)
        if session is not None:
            self._resident.move_to_end(key)
        else:
            checkpoint = self._checkpoints.pop(key, None)
            if checkpoint is not None:
                session = StreamSession.from_checkpoint(
                    checkpoint, self._hidden_size, self._dtype
                )
                self._restores += 1
                self._count("repro_session_restores_total")
            else:
                session = StreamSession(key, self._hidden_size, self._dtype)
            self._resident[key] = session
        session.last_used_tick = self._tick
        return session

    def _evict_session(self, key, reason: str, checkpoint: bool = True) -> None:
        session = self._resident.pop(key)
        if checkpoint:
            self._checkpoints[key] = session.checkpoint()
        self._evictions[reason] = self._evictions.get(reason, 0) + 1
        self._count("repro_session_evictions_total", reason=reason)

    def _enforce_budget(self) -> None:
        cap = self._max_resident
        if cap is not None:
            while len(self._resident) > cap:
                oldest = next(iter(self._resident))
                self._evict_session(oldest, EVICT_LRU)
        idle_after = self.config.idle_after_steps
        if idle_after is not None:
            horizon = self._tick - idle_after
            while self._resident:
                oldest = next(iter(self._resident))
                if self._resident[oldest].last_used_tick > horizon:
                    break
                self._evict_session(oldest, EVICT_IDLE)

    def evict(self, key, reason: str = EVICT_LRU) -> None:
        """Checkpoint and evict one resident session explicitly."""
        if key not in self._resident:
            raise KeyError(f"session {key!r} is not resident")
        self._evict_session(key, reason)

    def close(self, key) -> None:
        """Drop a session entirely (process exited); counted as eviction.

        Unlike :meth:`evict`, no checkpoint survives — a later token for
        the same key starts a fresh stream.
        """
        if key in self._resident:
            self._evict_session(key, EVICT_CLOSED, checkpoint=False)
        elif key in self._checkpoints:
            del self._checkpoints[key]
            self._evictions[EVICT_CLOSED] = self._evictions.get(EVICT_CLOSED, 0) + 1
            self._count("repro_session_evictions_total", reason=EVICT_CLOSED)
        else:
            raise KeyError(f"unknown session {key!r}")

    def export_checkpoint(self, key) -> SessionCheckpoint:
        """Snapshot one session (resident or evicted) for migration.

        The session's local state is untouched; use :meth:`close` on the
        source and :meth:`import_checkpoint` on the target to complete a
        hand-off (the fleet failover path does exactly this).
        """
        if key in self._resident:
            return self._resident[key].checkpoint()
        if key in self._checkpoints:
            return self._checkpoints[key]
        raise KeyError(f"unknown session {key!r}")

    def import_checkpoint(self, checkpoint: SessionCheckpoint) -> None:
        """Adopt a migrated session; it restores on its next token."""
        if checkpoint.key in self._resident:
            raise ValueError(f"session {checkpoint.key!r} is already resident")
        self._checkpoints[checkpoint.key] = checkpoint

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------

    def observe(self, key, token) -> SessionVerdict | None:
        """Feed one token of one stream; the single-stream convenience.

        Returns the window verdict this token completed, if any (a token
        completes at most one window: open slots always hold distinct
        fill counts).
        """
        verdicts = self.step({key: token})
        return verdicts[0] if verdicts else None

    def step(self, tokens) -> list:
        """Advance many sessions by one token each, batched.

        Parameters
        ----------
        tokens:
            Mapping of session key → token id (one token per session per
            tick; call again for further tokens).  Iteration order fixes
            the row order, so runs are deterministic for a deterministic
            mapping order.

        Returns
        -------
        list
            :class:`SessionVerdict` for every window completed this tick,
            in row order.
        """
        self._tick += 1
        stride = self.config.stride
        stepped: list = []
        for key, token in tokens.items():
            session = self._activate(key)
            self._tokens += 1
            if session.flagged and self.config.early_exit:
                self._tokens_dropped += 1
                continue
            stepped.append((session, int(token)))

        row_sessions: list = []
        row_slots: list = []
        h_rows: list = []
        c_rows: list = []
        x_tokens: list = []
        for session, token in stepped:
            if session.calls_seen % stride == 0:
                session.open_slot()
            for slot in session.slots:
                row_sessions.append(session)
                row_slots.append(slot)
                h_rows.append(slot.hidden)
                c_rows.append(slot.cell)
                x_tokens.append(token)
            session.calls_seen += 1

        verdicts: list = []
        if row_slots:
            engine = self.engine
            embedded = engine.preprocess.run_batch(
                np.asarray(x_tokens, dtype=np.int64)
            )
            gate_outputs = engine.gates.run_batch(np.stack(h_rows), embedded)
            hidden, cell = engine.hidden_state.step_batch(
                gate_outputs, np.stack(c_rows)
            )
            completed: list = []
            for index, slot in enumerate(row_slots):
                slot.hidden[:] = hidden[index]
                slot.cell[:] = cell[index]
                slot.filled += 1
                if slot.filled == self.window_length:
                    completed.append(index)
            if completed:
                probabilities = engine.hidden_state.classify_batch(
                    hidden[np.asarray(completed, dtype=np.intp)]
                )
                for probability, index in zip(probabilities, completed):
                    verdicts.append(
                        self._complete_window(
                            row_sessions[index], row_slots[index],
                            float(probability),
                        )
                    )
            self._slot_steps += len(row_slots)

        self._steps += 1
        self._enforce_budget()
        self._emit_step_telemetry(len(stepped), len(row_slots), len(verdicts))
        return verdicts

    def _complete_window(self, session: StreamSession, slot: _WindowSlot,
                         probability: float) -> SessionVerdict:
        verdict = SessionVerdict(
            session=session.key,
            window_index=slot.start,
            probability=probability,
            is_ransomware=probability >= self.config.threshold,
            inference_microseconds=self._sequence_microseconds,
        )
        session.close_slot(slot)
        session.windows_classified += 1
        label = "ransomware" if verdict.is_ransomware else "benign"
        self._verdicts[label] += 1
        self._count("repro_session_verdicts_total", verdict=label)
        if verdict.is_ransomware and not session.flagged:
            session.flagged = True
            if self.config.early_exit:
                self._early_exits += 1
                self._count("repro_session_early_exits_total")
        return verdict

    # ------------------------------------------------------------------
    # Telemetry (observation only; plain counters above are the source)
    # ------------------------------------------------------------------

    def _count(self, name: str, **labels) -> None:
        telemetry = self.engine.telemetry
        if telemetry is not None:
            telemetry.counter(name, **labels).inc()

    def _emit_step_telemetry(self, sessions: int, rows: int,
                             verdicts: int) -> None:
        telemetry = self.engine.telemetry
        if telemetry is None:
            return
        telemetry.counter("repro_session_steps_total").inc()
        telemetry.counter("repro_session_tokens_total").inc(sessions)
        telemetry.counter("repro_session_slot_steps_total").inc(rows)
        telemetry.gauge("repro_session_resident").set(self.resident_count)
        telemetry.gauge("repro_session_state_bytes").set(self.resident_bytes)
        telemetry.tracer.record(
            "session.step", self._tick - 1, self._tick,
            attributes={
                "sessions": sessions, "rows": rows, "verdicts": verdicts,
                "unit": "step",
            },
        )
