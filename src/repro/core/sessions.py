"""Streaming sessions: stateful incremental inference for live streams.

The paper's deployment story is continuous in-drive monitoring of live
I/O — a stream of API calls per process, classified over overlapping
sliding windows.  Re-running :meth:`~repro.core.engine.CSDInferenceEngine.infer_sequence`
over the whole window at every stride gives O(window) recompute *bursts*
per verdict and no way to batch across streams.  This module is the
online-serving answer:

* :class:`StreamSession` carries the LSTM ``(h, C)`` state **per token**,
  with a rotating ring of partial window states — one per overlapping
  stride window — so each arriving token advances every open window by a
  single step and the per-token cost is smooth instead of bursty.
* :class:`SessionManager` steps *many* sessions per tick through one
  stacked batched gate matmul, so kernel-invocation overhead amortises
  across all streams and all ring slots; it enforces a memory budget via
  LRU/idle eviction with checkpoint/restore of evicted session state
  (checkpoint bytes are budgeted too, see ``checkpoint_budget_bytes``),
  and emits a verdict the moment a window completes (optionally
  early-exiting flagged streams).

How each tick executes is delegated to the engine's **kernel backend**
(:mod:`repro.core.kernels.backends`): the ``reference`` backend invokes
the NumPy kernels exactly as this module always has, while the ``fused``
backend keeps all slot state in a persistent preallocated arena, caches
the row roster between structural changes (window opens/closes,
evictions), and — at ``FIXED_POINT`` — runs the whole step as one fused
pass.  Every backend is **bit-exact** with ``infer_sequence`` on the
same window at every :class:`~repro.core.config.OptimizationLevel`: a
window stepped token by token inside an arbitrary batch of other
sessions produces the identical probability to a fresh full-window
recompute.  See ``docs/streaming.md`` for the lifecycle and semantics
and ``docs/performance.md`` for the backend registry.
"""

from __future__ import annotations

import collections
import dataclasses
import math

import numpy as np

from repro.core.config import EngineConfig
from repro.core.kernels.backends import (
    FALLBACK_OVERFLOW_GUARD,
    FusedOverflow,
    METRIC_TICKS,
    resolve_backend,
)
from repro.core.kernels.base import KernelTiming
from repro.hw.clock import ClockDomain
from repro.hw.dataflow import StageTiming, schedule

#: Fixed per-session bookkeeping estimate (Python objects, dict slots)
#: on top of the ring's state arrays; used by the memory budget.
SESSION_OVERHEAD_BYTES = 256

#: Eviction reasons (the ``reason`` label of
#: ``repro_session_evictions_total``).
EVICT_LRU = "lru"
EVICT_IDLE = "idle"
EVICT_CLOSED = "closed"
EVICT_MIGRATED = "migrated"
EVICT_CHECKPOINT_BUDGET = "checkpoint_budget"


@dataclasses.dataclass(frozen=True)
class SessionConfig:
    """Policy knobs of a :class:`SessionManager`.

    Parameters
    ----------
    threshold:
        Ransomware probability above which a completed window raises a
        positive verdict (same semantics as the offline detector).
    stride:
        Open a new window every ``stride`` tokens (1 = classify every
        window, as in :class:`~repro.ransomware.detector.RansomwareDetector`).
    memory_budget_bytes:
        Bound on resident session state; exceeding it evicts the least
        recently stepped sessions to the checkpoint store (``None`` =
        unbounded).  Must hold at least one session.
    max_resident_sessions:
        Direct cap on resident sessions (``None`` = derived from the
        byte budget only).  The effective cap is the minimum of both.
    idle_after_steps:
        Evict a session once this many manager ticks pass without it
        receiving a token (``None`` = never).  Evicted state is
        checkpointed, not lost — an idle process that wakes up restores
        transparently.
    checkpoint_budget_bytes:
        Bound on the checkpoint store's bytes (``None`` = unbounded).
        When exceeded, the **oldest** checkpoints are dropped outright
        (counted as ``checkpoint_budget`` evictions) until the store
        fits — a stream whose checkpoint was dropped restarts fresh on
        its next token.  Without this bound the store of evicted/idle
        sessions grows without limit, silently defeating the memory
        budget it backs.
    early_exit:
        Once a session raises a ransomware verdict, stop stepping it:
        subsequent tokens are dropped without inference until the
        session is reset or closed.  Off by default (parity with the
        recompute detector, which keeps classifying).
    """

    threshold: float = 0.5
    stride: int = 1
    memory_budget_bytes: int | None = None
    max_resident_sessions: int | None = None
    idle_after_steps: int | None = None
    checkpoint_budget_bytes: int | None = None
    early_exit: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold < 1.0:
            raise ValueError(f"threshold must be in (0, 1), got {self.threshold}")
        if self.stride < 1:
            raise ValueError(f"stride must be >= 1, got {self.stride}")
        if self.memory_budget_bytes is not None and self.memory_budget_bytes < 1:
            raise ValueError("memory_budget_bytes must be positive")
        if self.max_resident_sessions is not None and self.max_resident_sessions < 1:
            raise ValueError("max_resident_sessions must be >= 1")
        if self.idle_after_steps is not None and self.idle_after_steps < 1:
            raise ValueError("idle_after_steps must be >= 1")
        if self.checkpoint_budget_bytes is not None and self.checkpoint_budget_bytes < 1:
            raise ValueError("checkpoint_budget_bytes must be positive")


@dataclasses.dataclass(frozen=True)
class SessionVerdict:
    """One completed window's classification for one stream."""

    session: object          # the session key (process id, stream name, ...)
    window_index: int        # 0 = the stream's first fully-formed window
    probability: float
    is_ransomware: bool
    inference_microseconds: float


@dataclasses.dataclass(frozen=True)
class SessionCheckpoint:
    """The complete restorable state of one evicted session.

    Slots are ``(start, filled, hidden, cell)`` tuples holding *copies*
    of the ring arrays, so a checkpoint can never alias live state.
    Restoring a checkpoint and continuing the stream produces verdicts
    bit-identical to a session that was never evicted (asserted by
    ``tests/core/test_sessions.py``).  Checkpoints are backend-neutral:
    state is stored in the engine's external dtype (int64 fixed-point,
    float64 otherwise), so a checkpoint exported from a ``fused``
    manager restores into a ``reference`` one and vice versa.
    """

    key: object
    calls_seen: int
    flagged: bool
    windows_classified: int
    slots: tuple

    @property
    def nbytes(self) -> int:
        """Approximate retained size (state arrays + bookkeeping)."""
        state = sum(
            np.asarray(hidden).nbytes + np.asarray(cell).nbytes
            for _, _, hidden, cell in self.slots
        )
        return SESSION_OVERHEAD_BYTES + state


class _WindowSlot:
    """One partial window: its start index, fill count, and LSTM state.

    ``hidden``/``cell`` are either owned arrays (plain store) or views
    into the backend's slot arena (``col`` is then the arena row).
    """

    __slots__ = ("start", "filled", "hidden", "cell", "col")

    def __init__(self, start: int, hidden: np.ndarray, cell: np.ndarray,
                 filled: int = 0, col: int | None = None):
        self.start = start
        self.filled = filled
        self.hidden = hidden
        self.cell = cell
        self.col = col


class _PlainSlotStore:
    """Per-slot owned arrays in the engine's external dtype (reference)."""

    def __init__(self, hidden_size: int, dtype):
        self.hidden_size = hidden_size
        self.dtype = dtype

    def new_slot(self, start: int) -> _WindowSlot:
        return _WindowSlot(
            start,
            np.zeros(self.hidden_size, dtype=self.dtype),
            np.zeros(self.hidden_size, dtype=self.dtype),
        )

    def adopt_slots(self, entries) -> list:
        return [
            _WindowSlot(start, np.array(hidden, dtype=self.dtype),
                        np.array(cell, dtype=self.dtype), filled=filled)
            for start, filled, hidden, cell in entries
        ]

    def release_slot(self, slot: _WindowSlot) -> None:
        pass


class _ArenaSlotStore:
    """Slot state packed into persistent ``(capacity, H)`` float64 arrays.

    Slots hold *views* into arena rows, so checkpoint/export code reads
    them exactly like owned arrays; the fused stepper gathers/scatters
    whole row batches by arena index instead of stacking Python lists.
    When ``hidden_limit`` is set (fixed-point), values outside the
    float64 exactness envelope are refused at write time with
    :class:`~repro.core.kernels.backends.FusedOverflow` so the manager
    can degrade instead of silently losing precision.
    """

    def __init__(self, hidden_size: int, dtype, hidden_limit: float | None,
                 cell_limit: float | None, capacity: int = 64):
        self.hidden_size = hidden_size
        self.dtype = dtype  # external/checkpoint dtype, not the arena's
        self.hidden_limit = hidden_limit
        self.cell_limit = cell_limit
        self.h = np.zeros((capacity, hidden_size), dtype=np.float64)
        self.c = np.zeros((capacity, hidden_size), dtype=np.float64)
        self._free = list(range(capacity - 1, -1, -1))
        self.grow_hook = None  # rebinds live slot views after a resize

    def _alloc(self) -> int:
        if not self._free:
            self._grow()
        return self._free.pop()

    def _grow(self) -> None:
        capacity = self.h.shape[0]
        new_h = np.zeros((capacity * 2, self.hidden_size), dtype=np.float64)
        new_c = np.zeros_like(new_h)
        new_h[:capacity] = self.h
        new_c[:capacity] = self.c
        self.h, self.c = new_h, new_c
        self._free.extend(range(capacity * 2 - 1, capacity - 1, -1))
        if self.grow_hook is not None:
            self.grow_hook()

    def new_slot(self, start: int) -> _WindowSlot:
        col = self._alloc()
        self.h[col] = 0.0
        self.c[col] = 0.0
        return _WindowSlot(start, self.h[col], self.c[col], col=col)

    def adopt_slots(self, entries) -> list:
        adopted: list = []
        try:
            for start, filled, hidden, cell in entries:
                h = np.asarray(hidden, dtype=np.float64)
                c = np.asarray(cell, dtype=np.float64)
                if self.hidden_limit is not None and (
                    float(np.max(np.abs(h), initial=0.0)) > self.hidden_limit
                    or float(np.max(np.abs(c), initial=0.0)) > self.cell_limit
                ):
                    raise FusedOverflow
                col = self._alloc()
                self.h[col] = h
                self.c[col] = c
                adopted.append(
                    _WindowSlot(start, self.h[col], self.c[col],
                                filled=filled, col=col)
                )
        except FusedOverflow:
            for slot in adopted:
                self.release_slot(slot)
            raise
        return adopted

    def release_slot(self, slot: _WindowSlot) -> None:
        if slot.col is not None:
            self._free.append(slot.col)
            slot.col = None


class StreamSession:
    """Incremental per-stream detection state.

    Holds a rotating ring of :class:`_WindowSlot` partial windows.  A new
    slot opens whenever ``calls_seen % stride == 0`` (the same window
    positions the recompute detector classifies); every arriving token
    advances all open slots by one LSTM step; a slot whose fill count
    reaches the window length is classified and closed.  At most
    ``ceil(window_length / stride)`` slots are ever open, which bounds
    the session's state to a fixed number of ``(h, C)`` vector pairs.

    Slot state lives in the manager's backend store (owned arrays for
    ``reference``, arena views for ``fused``).  Sessions are driven by a
    :class:`SessionManager`; they are not stepped directly.
    """

    __slots__ = ("key", "calls_seen", "flagged", "windows_classified",
                 "slots", "last_used_tick", "_store")

    def __init__(self, key, store):
        self.key = key
        self.calls_seen = 0
        self.flagged = False
        self.windows_classified = 0
        self.slots: list = []
        self.last_used_tick = 0
        self._store = store

    def open_slot(self) -> _WindowSlot:
        """Open a zero-state partial window starting at ``calls_seen``."""
        slot = self._store.new_slot(self.calls_seen)
        self.slots.append(slot)
        return slot

    def close_slot(self, slot: _WindowSlot) -> None:
        self.slots.remove(slot)
        self._store.release_slot(slot)

    def release_slots(self) -> None:
        """Return all slot storage to the store (eviction/close path)."""
        for slot in self.slots:
            self._store.release_slot(slot)
        self.slots = []

    def rebind_store(self, store) -> None:
        """Move this session's slot state into another store (degrade path)."""
        old_store = self._store
        for slot in self.slots:
            hidden = np.array(slot.hidden, dtype=store.dtype)
            cell = np.array(slot.cell, dtype=store.dtype)
            old_store.release_slot(slot)
            slot.hidden = hidden
            slot.cell = cell
        self._store = store

    def checkpoint(self) -> SessionCheckpoint:
        """Snapshot the full session state into an alias-free checkpoint."""
        dtype = self._store.dtype
        return SessionCheckpoint(
            key=self.key,
            calls_seen=self.calls_seen,
            flagged=self.flagged,
            windows_classified=self.windows_classified,
            slots=tuple(
                (slot.start, slot.filled,
                 np.array(slot.hidden, dtype=dtype),
                 np.array(slot.cell, dtype=dtype))
                for slot in self.slots
            ),
        )

    @classmethod
    def from_checkpoint(cls, checkpoint: SessionCheckpoint,
                        store) -> "StreamSession":
        session = cls(checkpoint.key, store)
        session.calls_seen = checkpoint.calls_seen
        session.flagged = checkpoint.flagged
        session.windows_classified = checkpoint.windows_classified
        session.slots = store.adopt_slots(checkpoint.slots)
        return session


def _open_due_slot(session: StreamSession, stride: int) -> None:
    """Open this tick's window unless an overflow retry already did.

    A fused tick that trips the overflow guard is re-run on the
    reference path *after* its slot opens; the retry must not open a
    duplicate.  A freshly-opened slot is recognisable as the last slot
    with ``start == calls_seen`` (older slots always have smaller
    starts).
    """
    if session.calls_seen % stride == 0 and (
        not session.slots or session.slots[-1].start != session.calls_seen
    ):
        session.open_slot()


class ReferenceStepper:
    """The shipped per-tick mechanics: Python row lists + NumPy kernels.

    This is the oracle the fused stepper is measured against — its
    behaviour (iteration order, kernel call sequence, rounding) is the
    bit-exactness baseline and must not drift.
    """

    name = "reference"

    def __init__(self, manager: "SessionManager"):
        self.manager = manager
        manager._store = _PlainSlotStore(manager._hidden_size, manager._dtype)

    def materialize(self) -> None:
        pass

    def after_tick(self, stepped, completed: bool) -> None:
        pass

    def step_rows(self, stepped) -> tuple:
        manager = self.manager
        stride = manager.config.stride
        row_sessions: list = []
        row_slots: list = []
        h_rows: list = []
        c_rows: list = []
        x_tokens: list = []
        for session, token in stepped:
            _open_due_slot(session, stride)
            for slot in session.slots:
                row_sessions.append(session)
                row_slots.append(slot)
                h_rows.append(slot.hidden)
                c_rows.append(slot.cell)
                x_tokens.append(token)
            session.calls_seen += 1

        completions: list = []
        if row_slots:
            engine = manager.engine
            embedded = engine.preprocess.run_batch(
                np.asarray(x_tokens, dtype=np.int64)
            )
            gate_outputs = engine.gates.run_batch(np.stack(h_rows), embedded)
            hidden, cell = engine.hidden_state.step_batch(
                gate_outputs, np.stack(c_rows)
            )
            completed: list = []
            for index, slot in enumerate(row_slots):
                slot.hidden[:] = hidden[index]
                slot.cell[:] = cell[index]
                slot.filled += 1
                if slot.filled == manager.window_length:
                    completed.append(index)
            if completed:
                probabilities = engine.hidden_state.classify_batch(
                    hidden[np.asarray(completed, dtype=np.intp)]
                )
                completions = [
                    (row_sessions[index], row_slots[index], float(probability))
                    for probability, index in zip(probabilities, completed)
                ]
        return len(row_slots), completions


class _Roster:
    """Cached row structure reused across ticks with no structural change."""

    __slots__ = ("sessions", "row_sessions", "row_slots", "cols", "counts",
                 "fast_left")

    def __init__(self, sessions, row_sessions, row_slots, cols, counts,
                 fast_left):
        self.sessions = sessions
        self.row_sessions = row_sessions
        self.row_slots = row_slots
        self.cols = cols
        self.counts = counts
        self.fast_left = fast_left


class FusedStepper:
    """Arena-backed stepping with roster caching (the ``fused`` backend).

    Two tick shapes:

    * **slow** — structural work due (a window opens or completes, or
      the stepped set changed): enumerate slots in Python like the
      reference path, but gather/scatter state by arena index and rebuild
      the roster cache.
    * **fast** — the cached roster still describes this tick exactly: no
      Python per-slot work at all; one embedding gather, one fused (or
      batched-kernel) step, one scatter.  ``slot.filled`` bookkeeping is
      deferred (``_pending``) and folded in by :meth:`materialize`
      before anything outside the tick reads it.

    How many fast ticks a roster is good for is computed at build time
    from the stride phase of every stepped session and the fill count of
    every open slot, so correctness never depends on re-checking them
    per tick.
    """

    name = "fused"

    def __init__(self, manager: "SessionManager", backend):
        self.manager = manager
        self.backend = backend
        self.math = backend.fused_math  # None on the float levels
        if self.math is not None:
            hidden_limit = float(self.math.scale)
            cell_limit = self.math.cell_limit
        else:
            hidden_limit = cell_limit = None
        store = _ArenaSlotStore(
            manager._hidden_size, manager._dtype, hidden_limit, cell_limit
        )
        store.grow_hook = self._rebind_views
        manager._store = store
        self.store = store
        self._roster: _Roster | None = None
        self._pending = 0
        self._draft: tuple | None = None

    # -- bookkeeping hooks ---------------------------------------------

    def _rebind_views(self) -> None:
        store = self.store
        for session in self.manager._resident.values():
            for slot in session.slots:
                slot.hidden = store.h[slot.col]
                slot.cell = store.c[slot.col]

    def materialize(self) -> None:
        """Fold deferred fast-tick fill counts into the slot objects."""
        pending = self._pending
        if pending and self._roster is not None:
            for slot in self._roster.row_slots:
                slot.filled += pending
        self._pending = 0

    # -- stepping -------------------------------------------------------

    def step_rows(self, stepped) -> tuple:
        roster = self._roster
        if roster is not None and roster.fast_left > 0 and len(stepped) == len(roster.sessions):
            for (session, _token), cached in zip(stepped, roster.sessions):
                if session is not cached:
                    break
            else:
                return self._fast_tick(stepped, roster)
        return self._slow_tick(stepped)

    def _step_state(self, h, c, embedded) -> tuple:
        if self.math is not None:
            return self.math.step_rows(h, c, embedded)
        engine = self.manager.engine
        gate_outputs = engine.gates.run_batch(h, embedded)
        return engine.hidden_state.step_batch(gate_outputs, c)

    def _classify(self, hidden_rows) -> np.ndarray:
        if self.math is not None:
            return self.math.classify_rows(hidden_rows)
        return self.manager.engine.hidden_state.classify_batch(hidden_rows)

    def _fast_tick(self, stepped, roster: _Roster) -> tuple:
        manager = self.manager
        tokens = np.fromiter(
            (token for _, token in stepped), dtype=np.int64, count=len(stepped)
        )
        rows = int(roster.cols.size)
        if rows:
            row_tokens = np.repeat(tokens, roster.counts)
            embedded = manager.engine.preprocess.run_batch(row_tokens)
            store = self.store
            h = store.h[roster.cols]
            c = store.c[roster.cols]
            new_h, new_c = self._step_state(h, c, embedded)  # may raise FusedOverflow
            store.h[roster.cols] = new_h
            store.c[roster.cols] = new_c
        for session, _token in stepped:
            session.calls_seen += 1
        self._pending += 1
        roster.fast_left -= 1
        return rows, []

    def _slow_tick(self, stepped) -> tuple:
        self.materialize()
        self._roster = None
        self._draft = None
        manager = self.manager
        stride = manager.config.stride
        count = len(stepped)
        sessions: list = []
        row_sessions: list = []
        row_slots: list = []
        counts = np.empty(count, dtype=np.intp)
        tokens = np.empty(count, dtype=np.int64)
        for index, (session, token) in enumerate(stepped):
            _open_due_slot(session, stride)
            slots = session.slots
            sessions.append(session)
            counts[index] = len(slots)
            tokens[index] = token
            for slot in slots:
                row_sessions.append(session)
                row_slots.append(slot)

        rows = len(row_slots)
        completions: list = []
        if rows:
            cols = np.fromiter(
                (slot.col for slot in row_slots), dtype=np.intp, count=rows
            )
            row_tokens = np.repeat(tokens, counts)
            embedded = manager.engine.preprocess.run_batch(row_tokens)
            store = self.store
            h = store.h[cols]
            c = store.c[cols]
            new_h, new_c = self._step_state(h, c, embedded)  # may raise FusedOverflow
            store.h[cols] = new_h
            store.c[cols] = new_c
            completed: list = []
            window = manager.window_length
            for index, slot in enumerate(row_slots):
                slot.filled += 1
                if slot.filled == window:
                    completed.append(index)
            if completed:
                probabilities = self._classify(
                    new_h[np.asarray(completed, dtype=np.intp)]
                )
                completions = [
                    (row_sessions[index], row_slots[index], float(probability))
                    for probability, index in zip(probabilities, completed)
                ]
        else:
            cols = np.zeros(0, dtype=np.intp)
        for session, _token in stepped:
            session.calls_seen += 1
        self._draft = (sessions, row_sessions, row_slots, cols, counts)
        return rows, completions

    def after_tick(self, stepped, completed: bool) -> None:
        """Build the roster for upcoming ticks from this tick's outcome."""
        draft = self._draft
        self._draft = None
        if draft is None:
            return  # fast tick: roster already live
        sessions, row_sessions, row_slots, cols, counts = draft
        if not sessions:
            return
        if completed:
            # Window closes invalidated the draft's rows; re-enumerate.
            row_sessions, row_slots = [], []
            for index, session in enumerate(sessions):
                counts[index] = len(session.slots)
                for slot in session.slots:
                    row_sessions.append(session)
                    row_slots.append(slot)
            cols = np.fromiter(
                (slot.col for slot in row_slots), dtype=np.intp,
                count=len(row_slots),
            )
        stride = self.manager.config.stride
        calls = np.fromiter(
            (session.calls_seen for session in sessions), dtype=np.int64,
            count=len(sessions),
        )
        # Next window opens for session i at age ((-calls_i) mod stride)+1;
        # the earliest completion at age window - max(filled).  The tick
        # at that age must be slow, every tick before it may be fast.
        next_open = int(np.min((-calls) % stride)) + 1
        if row_slots:
            max_filled = max(slot.filled for slot in row_slots)
            next_complete = self.manager.window_length - max_filled
            horizon = min(next_open, next_complete)
        else:
            horizon = next_open
        fast_left = horizon - 1
        if fast_left > 0:
            self._roster = _Roster(
                sessions, row_sessions, row_slots, cols, counts, fast_left
            )


class SessionManager:
    """Batched stepping, memory budgeting, and lifecycle for many sessions.

    Parameters
    ----------
    engine:
        A loaded :class:`~repro.core.engine.CSDInferenceEngine`; the
        manager reuses its preprocess/gates/hidden-state kernels (and
        its live ``telemetry`` reference) for every step.
    config:
        Session policy; see :class:`SessionConfig`.
    backend:
        Kernel backend name for the stepping hot path (``"reference"``
        or ``"fused"``); ``None`` uses the engine's configured backend.
        See :mod:`repro.core.kernels.backends`.

    The manager keeps two tiers of state:

    * **resident** sessions — hot ``(h, C)`` ring state, stepped in
      batch, bounded by the memory budget;
    * the **checkpoint store** — compact evicted state, the "storage
      tier" a real CSD would spill to; restoring from it is transparent
      and bit-exact.  Its bytes are tracked (``checkpoint_bytes``) and
      optionally bounded by ``checkpoint_budget_bytes``.

    Stepping never touches the engine's sequence/AXI counters: the
    incremental path is a different execution model from the per-window
    recompute, and it reports its own ``repro_session_*`` metrics
    (see ``docs/observability.md``).
    """

    def __init__(self, engine, config: SessionConfig | None = None,
                 backend: str | None = None):
        self.engine = engine
        self.config = config or SessionConfig()
        engine._require_loaded()
        dims = engine.config.dimensions
        self.window_length = dims.sequence_length
        self.ring_capacity = math.ceil(self.window_length / self.config.stride)
        self._hidden_size = dims.hidden_size
        self._dtype = (
            np.int64 if engine.config.optimization.uses_fixed_point
            else np.float64
        )
        bytes_per_value = 8
        self.session_bytes = (
            SESSION_OVERHEAD_BYTES
            + self.ring_capacity * 2 * self._hidden_size * bytes_per_value
        )
        self._max_resident = self._effective_cap()
        self._sequence_microseconds = engine.sequence_microseconds()

        backend_name = backend if backend is not None else engine.config.backend
        if backend_name == engine.config.backend:
            self.backend = engine.step_backend
        else:
            self.backend = resolve_backend(backend_name, engine)
        self._store = None  # set by the stepper's constructor
        self._stepper = self.backend.session_stepper(self)

        self._resident: collections.OrderedDict = collections.OrderedDict()
        self._checkpoints: collections.OrderedDict = collections.OrderedDict()
        self._checkpoint_bytes = 0
        self._tick = 0
        # Plain-int counters, always live (telemetry only mirrors them).
        self._evictions: dict = {}
        self._restores = 0
        self._tokens = 0
        self._tokens_dropped = 0
        self._slot_steps = 0
        self._steps = 0
        self._verdicts = {"ransomware": 0, "benign": 0}
        self._early_exits = 0

    def _effective_cap(self) -> int | None:
        cap = self.config.max_resident_sessions
        budget = self.config.memory_budget_bytes
        if budget is not None:
            by_budget = budget // self.session_bytes
            if by_budget < 1:
                raise ValueError(
                    f"memory_budget_bytes={budget} cannot hold even one "
                    f"session ({self.session_bytes} bytes each)"
                )
            cap = by_budget if cap is None else min(cap, by_budget)
        return cap

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def resident_count(self) -> int:
        return len(self._resident)

    @property
    def checkpointed_count(self) -> int:
        return len(self._checkpoints)

    @property
    def resident_bytes(self) -> int:
        return len(self._resident) * self.session_bytes

    @property
    def checkpoint_bytes(self) -> int:
        """Bytes retained by the checkpoint store (budgeted separately)."""
        return self._checkpoint_bytes

    def known_keys(self) -> tuple:
        """Every session key currently held, resident or checkpointed."""
        keys = list(self._resident)
        keys.extend(k for k in self._checkpoints if k not in self._resident)
        return tuple(keys)

    def stats(self) -> dict:
        """Plain-data operational counters (mirrors the telemetry)."""
        return {
            "backend": self.backend.name,
            "backend_fallbacks": dict(self.backend.fallback_reasons),
            "resident_sessions": self.resident_count,
            "checkpointed_sessions": self.checkpointed_count,
            "resident_bytes": self.resident_bytes,
            "checkpoint_bytes": self.checkpoint_bytes,
            "tokens": self._tokens,
            "tokens_dropped": self._tokens_dropped,
            "steps": self._steps,
            "slot_steps": self._slot_steps,
            "verdicts": dict(self._verdicts),
            "evictions": dict(self._evictions),
            "restores": self._restores,
            "early_exits": self._early_exits,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _count_eviction(self, reason: str) -> None:
        self._evictions[reason] = self._evictions.get(reason, 0) + 1
        self._count("repro_session_evictions_total", reason=reason)

    def _store_checkpoint(self, checkpoint: SessionCheckpoint) -> None:
        previous = self._checkpoints.pop(checkpoint.key, None)
        if previous is not None:
            self._checkpoint_bytes -= previous.nbytes
        self._checkpoints[checkpoint.key] = checkpoint
        self._checkpoint_bytes += checkpoint.nbytes
        budget = self.config.checkpoint_budget_bytes
        if budget is not None:
            while self._checkpoint_bytes > budget and self._checkpoints:
                _, dropped = self._checkpoints.popitem(last=False)
                self._checkpoint_bytes -= dropped.nbytes
                self._count_eviction(EVICT_CHECKPOINT_BUDGET)

    def _pop_checkpoint(self, key) -> SessionCheckpoint | None:
        checkpoint = self._checkpoints.pop(key, None)
        if checkpoint is not None:
            self._checkpoint_bytes -= checkpoint.nbytes
        return checkpoint

    def _degrade(self, reason: str) -> None:
        """Swap to the reference stepper mid-run (overflow guard path)."""
        self._stepper.materialize()
        old_stepper = self._stepper
        self._stepper = ReferenceStepper(self)  # rebinds self._store
        del old_stepper
        for session in self._resident.values():
            session.rebind_store(self._store)
        self.backend.record_fallback(reason)

    def _activate(self, key) -> StreamSession:
        """Resident lookup with LRU touch; restores or creates as needed."""
        session = self._resident.get(key)
        if session is not None:
            self._resident.move_to_end(key)
        else:
            checkpoint = self._pop_checkpoint(key)
            if checkpoint is not None:
                try:
                    session = StreamSession.from_checkpoint(checkpoint, self._store)
                except FusedOverflow:
                    self._degrade(FALLBACK_OVERFLOW_GUARD)
                    session = StreamSession.from_checkpoint(checkpoint, self._store)
                self._restores += 1
                self._count("repro_session_restores_total")
            else:
                session = StreamSession(key, self._store)
            self._resident[key] = session
        session.last_used_tick = self._tick
        return session

    def _evict_session(self, key, reason: str, checkpoint: bool = True) -> None:
        self._stepper.materialize()
        session = self._resident.pop(key)
        if checkpoint:
            self._store_checkpoint(session.checkpoint())
        session.release_slots()
        self._count_eviction(reason)

    def _enforce_budget(self) -> None:
        cap = self._max_resident
        if cap is not None:
            while len(self._resident) > cap:
                oldest = next(iter(self._resident))
                self._evict_session(oldest, EVICT_LRU)
        idle_after = self.config.idle_after_steps
        if idle_after is not None:
            horizon = self._tick - idle_after
            while self._resident:
                oldest = next(iter(self._resident))
                if self._resident[oldest].last_used_tick > horizon:
                    break
                self._evict_session(oldest, EVICT_IDLE)

    def evict(self, key, reason: str = EVICT_LRU) -> None:
        """Checkpoint and evict one resident session explicitly."""
        if key not in self._resident:
            raise KeyError(f"session {key!r} is not resident")
        self._evict_session(key, reason)

    def close(self, key) -> None:
        """Drop a session entirely (process exited); counted as eviction.

        Unlike :meth:`evict`, no checkpoint survives — a later token for
        the same key starts a fresh stream.
        """
        if key in self._resident:
            self._evict_session(key, EVICT_CLOSED, checkpoint=False)
        elif key in self._checkpoints:
            self._pop_checkpoint(key)
            self._count_eviction(EVICT_CLOSED)
        else:
            raise KeyError(f"unknown session {key!r}")

    def export_checkpoint(self, key) -> SessionCheckpoint:
        """Snapshot one session (resident or evicted) for migration.

        The session's local state is untouched; use :meth:`close` on the
        source and :meth:`import_checkpoint` on the target to complete a
        hand-off (the fleet failover path does exactly this).
        """
        if key in self._resident:
            self._stepper.materialize()
            return self._resident[key].checkpoint()
        if key in self._checkpoints:
            return self._checkpoints[key]
        raise KeyError(f"unknown session {key!r}")

    def import_checkpoint(self, checkpoint: SessionCheckpoint) -> None:
        """Adopt a migrated session; it restores on its next token."""
        if checkpoint.key in self._resident:
            raise ValueError(f"session {checkpoint.key!r} is already resident")
        self._store_checkpoint(checkpoint)

    def release(self, key) -> SessionCheckpoint:
        """Export ``key`` and drop every local copy; counted ``migrated``.

        The live-migration primitive: hand the returned checkpoint to
        another manager's :meth:`import_checkpoint` and the session has
        *moved* (unlike :meth:`export_checkpoint`, which copies).  Used
        by shard rebalancing, where the source device stays in service.
        """
        checkpoint = self.export_checkpoint(key)
        session = self._resident.pop(key, None)
        if session is not None:
            session.release_slots()
        self._pop_checkpoint(key)
        self._count_eviction(EVICT_MIGRATED)
        return checkpoint

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------

    def observe(self, key, token) -> SessionVerdict | None:
        """Feed one token of one stream; the single-stream convenience.

        Returns the window verdict this token completed, if any (a token
        completes at most one window: open slots always hold distinct
        fill counts).
        """
        verdicts = self.step({key: token})
        return verdicts[0] if verdicts else None

    def step(self, tokens) -> list:
        """Advance many sessions by one token each, batched.

        Parameters
        ----------
        tokens:
            Mapping of session key → token id (one token per session per
            tick; call again for further tokens).  Iteration order fixes
            the row order, so runs are deterministic for a deterministic
            mapping order.

        Returns
        -------
        list
            :class:`SessionVerdict` for every window completed this tick,
            in row order.
        """
        self._tick += 1
        stepped: list = []
        for key, token in tokens.items():
            session = self._activate(key)
            self._tokens += 1
            if session.flagged and self.config.early_exit:
                self._tokens_dropped += 1
                continue
            stepped.append((session, int(token)))

        try:
            rows, completions = self._stepper.step_rows(stepped)
        except FusedOverflow:
            self._degrade(FALLBACK_OVERFLOW_GUARD)
            rows, completions = self._stepper.step_rows(stepped)
        verdicts = [
            self._complete_window(session, slot, probability)
            for session, slot, probability in completions
        ]
        self._slot_steps += rows
        self._stepper.after_tick(stepped, bool(completions))

        self._steps += 1
        self._enforce_budget()
        self._emit_step_telemetry(len(stepped), rows, len(verdicts))
        return verdicts

    def _complete_window(self, session: StreamSession, slot: _WindowSlot,
                         probability: float) -> SessionVerdict:
        verdict = SessionVerdict(
            session=session.key,
            window_index=slot.start,
            probability=probability,
            is_ransomware=probability >= self.config.threshold,
            inference_microseconds=self._sequence_microseconds,
        )
        session.close_slot(slot)
        session.windows_classified += 1
        label = "ransomware" if verdict.is_ransomware else "benign"
        self._verdicts[label] += 1
        self._count("repro_session_verdicts_total", verdict=label)
        if verdict.is_ransomware and not session.flagged:
            session.flagged = True
            if self.config.early_exit:
                self._early_exits += 1
                self._count("repro_session_early_exits_total")
        return verdict

    # ------------------------------------------------------------------
    # Telemetry (observation only; plain counters above are the source)
    # ------------------------------------------------------------------

    def _count(self, name: str, **labels) -> None:
        telemetry = self.engine.telemetry
        if telemetry is not None:
            telemetry.counter(name, **labels).inc()

    def _emit_step_telemetry(self, sessions: int, rows: int,
                             verdicts: int) -> None:
        telemetry = self.engine.telemetry
        if telemetry is None:
            return
        telemetry.counter("repro_session_steps_total").inc()
        telemetry.counter("repro_session_tokens_total").inc(sessions)
        telemetry.counter("repro_session_slot_steps_total").inc(rows)
        telemetry.counter(METRIC_TICKS, backend=self.backend.name).inc()
        telemetry.gauge("repro_session_resident").set(self.resident_count)
        telemetry.gauge("repro_session_state_bytes").set(self.resident_bytes)
        telemetry.gauge("repro_session_checkpoint_bytes").set(
            self._checkpoint_bytes
        )
        telemetry.tracer.record(
            "session.step", self._tick - 1, self._tick,
            attributes={
                "sessions": sessions, "rows": rows, "verdicts": verdicts,
                "unit": "step",
            },
        )


# ---------------------------------------------------------------------------
# Kernel-to-kernel streaming extension (paper Section III-C)
# ---------------------------------------------------------------------------
# "Note that streaming can be easily ported to the kernel implementation
# for additional acceleration if the FPGA supports it."  In the baseline
# design, kernels exchange data through FPGA global memory over AXI
# masters (each hand-off pays a DDR write + read).  With AXI4-Stream
# hand-offs the producing kernel pushes words directly into the
# consumer's FIFO: the hand-off cost drops from two DDR transactions to
# a FIFO depth, and the per-CU copy loops disappear (each consumer taps
# the stream).  The model below quantifies that variant on top of the
# existing kernel timings for the streaming ablation benchmark; it lives
# with the streaming-session serving layer because both describe the
# engine's streaming story (formerly ``repro.core.streaming``, which now
# re-exports from here).

#: Cycles for a word to traverse an AXI4-Stream FIFO hand-off.
STREAM_FIFO_LATENCY_CYCLES = 2


def _speedup(baseline_cycles: int, streamed_cycles: int) -> float:
    """``baseline / streamed`` with degenerate denominators made honest.

    A zero streamed-cycle count against a non-zero baseline is an
    *unbounded* speedup — returning 1.0 there (as this once did) would
    silently report "no speedup" for the best possible outcome.  Only
    zero-over-zero, where the comparison is vacuous, reports 1.0.
    """
    if streamed_cycles == 0:
        return math.inf if baseline_cycles > 0 else 1.0
    return baseline_cycles / streamed_cycles


@dataclasses.dataclass(frozen=True)
class StreamingReport:
    """Per-item and per-sequence effect of enabling streaming."""

    baseline_item_cycles: int
    streamed_item_cycles: int
    baseline_sequence_cycles: int
    streamed_sequence_cycles: int
    clock: ClockDomain

    @property
    def item_speedup(self) -> float:
        return _speedup(self.baseline_item_cycles, self.streamed_item_cycles)

    @property
    def sequence_speedup(self) -> float:
        return _speedup(
            self.baseline_sequence_cycles, self.streamed_sequence_cycles
        )

    @property
    def streamed_item_microseconds(self) -> float:
        return self.clock.cycles_to_microseconds(self.streamed_item_cycles)


def _copy_loop_cycles(trip_count: int, ii_optimized: bool) -> int:
    """Latency of a per-CU fan-out copy loop (same model as the kernels)."""
    from repro.hw.hls import HlsLoop, PragmaSet, VANILLA_PRAGMAS

    if ii_optimized:
        pragmas = PragmaSet(pipeline=True, target_ii=1, unroll=4, array_partition=True)
    else:
        pragmas = VANILLA_PRAGMAS
    return HlsLoop(
        name="copy", trip_count=trip_count, iteration_depth=4,
        pragmas=pragmas, unroll_depth_penalty=0,
    ).latency_cycles


def _streamed(timing: KernelTiming, saved_cycles: int) -> KernelTiming:
    """Rewrite one kernel's timing with ``saved_cycles`` removed."""
    fill = max(1, timing.fill_latency_cycles - saved_cycles)
    steady = max(1, timing.steady_ii_cycles - (0 if timing.reports_ii else saved_cycles))
    return KernelTiming(
        kernel=timing.kernel,
        fill_latency_cycles=fill,
        steady_ii_cycles=steady,
        reports_ii=timing.reports_ii,
    )


def streaming_report(engine) -> StreamingReport:
    """Quantify the streaming variant against an engine's baseline.

    Savings model:

    * the producing kernels' per-CU fan-out copy loops disappear — each
      consumer taps the stream (``kernel_preprocess``'s embedding copies,
      ``kernel_hidden_state``'s ``h_t`` copies);
    * downstream kernels become free-running: the per-item AXI-Lite
      re-invocation handshake is replaced by the stream FIFO latency.

    The embedding-table DDR fetch and the first kernel's invocation are
    *not* removed — streaming changes hand-offs, not where the model's
    parameters live.

    Parameters
    ----------
    engine:
        A built :class:`~repro.core.engine.CSDInferenceEngine` (loaded or
        timing-only).
    """
    from repro.hw.hls import KERNEL_INVOKE_CYCLES

    config: EngineConfig = engine.config
    dims = config.dimensions
    clock = engine.device.clock

    preprocess = engine.preprocess.timing()
    gates = engine.gates.timing()
    hidden = engine.hidden_state.timing()

    ii_optimized = config.optimization.uses_ii_pragmas
    handoff_saving = KERNEL_INVOKE_CYCLES - STREAM_FIFO_LATENCY_CYCLES
    preprocess_copy = _copy_loop_cycles(
        dims.embedding_dim * config.num_gate_cus, ii_optimized
    )
    hidden_copy = _copy_loop_cycles(
        dims.hidden_size * config.num_gate_cus, ii_optimized
    )

    streamed_preprocess = _streamed(preprocess, preprocess_copy)
    streamed_gates = _streamed(gates, handoff_saving)
    streamed_hidden = _streamed(hidden, handoff_saving + hidden_copy)

    baseline_stage = StageTiming(
        preprocess=preprocess.reported_cycles,
        gates=gates.reported_cycles,
        hidden_state=hidden.reported_cycles,
    )
    streamed_stage = StageTiming(
        preprocess=streamed_preprocess.reported_cycles,
        gates=streamed_gates.reported_cycles,
        hidden_state=streamed_hidden.reported_cycles,
    )
    items = dims.sequence_length
    return StreamingReport(
        baseline_item_cycles=baseline_stage.serial_total,
        streamed_item_cycles=streamed_stage.serial_total,
        baseline_sequence_cycles=schedule(
            baseline_stage, items, config.preemptive_preprocess
        ),
        streamed_sequence_cycles=schedule(
            streamed_stage, items, config.preemptive_preprocess
        ),
        clock=clock,
    )
