"""Timing reports: per-kernel breakdowns and end-to-end sequence latency.

:class:`InferenceTiming` is what the engine returns alongside each
prediction; :func:`kernel_breakdown` regenerates the Fig. 3 data — the
per-item reported time of each kernel at a given optimisation level — and
:func:`optimization_sweep` produces the whole figure.
"""

from __future__ import annotations

import dataclasses

from repro.core.config import EngineConfig, OptimizationLevel
from repro.hw.clock import ClockDomain
from repro.hw.dataflow import StageTiming, schedule


@dataclasses.dataclass(frozen=True)
class KernelReport:
    """One kernel's Fig. 3 entry."""

    kernel: str
    cycles: int
    microseconds: float


@dataclasses.dataclass(frozen=True)
class InferenceTiming:
    """Timing of one full-sequence inference on the CSD."""

    per_item_reports: tuple        # (KernelReport, ...) in stage order
    per_item_cycles: int           # sum of reported per-item kernel cycles
    sequence_cycles: int           # end-to-end with pipeline overlap
    classification_cycles: int     # one-time FC epilogue
    clock: ClockDomain

    @property
    def per_item_microseconds(self) -> float:
        """The paper's headline per-forward-pass figure (2.15133 us)."""
        return self.clock.cycles_to_microseconds(self.per_item_cycles)

    @property
    def sequence_microseconds(self) -> float:
        """Whole-sequence latency including overlap and the FC epilogue."""
        return self.clock.cycles_to_microseconds(
            self.sequence_cycles + self.classification_cycles
        )


def stage_timing_from_kernels(preprocess, gates, hidden) -> StageTiming:
    """Assemble per-item stage cycles from the three kernel timings."""
    return StageTiming(
        preprocess=preprocess.reported_cycles,
        gates=gates.reported_cycles,
        hidden_state=hidden.reported_cycles,
    )


def build_inference_timing(
    config: EngineConfig,
    preprocess,
    gates,
    hidden,
    classification_cycles: int,
    clock: ClockDomain,
) -> InferenceTiming:
    """Compute all timing views for one sequence inference."""
    stage = stage_timing_from_kernels(preprocess, gates, hidden)
    sequence_cycles = schedule(
        stage,
        num_items=config.dimensions.sequence_length,
        preemptive=config.preemptive_preprocess,
    )
    reports = tuple(
        KernelReport(
            kernel=timing.kernel,
            cycles=timing.reported_cycles,
            microseconds=clock.cycles_to_microseconds(timing.reported_cycles),
        )
        for timing in (preprocess, gates, hidden)
    )
    return InferenceTiming(
        per_item_reports=reports,
        per_item_cycles=stage.serial_total,
        sequence_cycles=sequence_cycles,
        classification_cycles=classification_cycles,
        clock=clock,
    )


def kernel_breakdown(config: EngineConfig) -> dict:
    """Per-kernel reported microseconds for one configuration (one Fig. 3
    bar group).

    Returns a dict keyed ``preprocess`` / ``gates`` / ``hidden_state``
    plus ``total``.
    """
    # Imported here to avoid a module cycle (engine imports timing).
    from repro.core.engine import CSDInferenceEngine

    engine = CSDInferenceEngine.build_unloaded(config)
    clock = engine.device.clock
    reports = {
        "preprocess": engine.preprocess.timing().reported_microseconds(clock),
        "gates": engine.gates.timing().reported_microseconds(clock),
        "hidden_state": engine.hidden_state.timing().reported_microseconds(clock),
    }
    reports["total"] = sum(reports.values())
    return reports


def optimization_sweep(base_config: EngineConfig | None = None) -> dict:
    """Fig. 3: the per-kernel breakdown at each optimisation rung."""
    import dataclasses as _dc

    base = base_config or EngineConfig()
    sweep = {}
    for level in OptimizationLevel:
        config = _dc.replace(base, optimization=level)
        sweep[level.name] = kernel_breakdown(config)
    return sweep
