"""Kernel execution backends: the ``reference``/``fused`` registry.

The per-tick cost of the streaming session layer is dominated not by
arithmetic but by Python dispatch: building per-slot row lists, stacking
them, and calling three kernels per tick (``SessionManager.step``).  This
module gives the engine pluggable *execution backends* for that hot path:

* ``reference`` — the existing NumPy kernels, invoked exactly as before.
  It is the bit-exactness oracle: every other backend must reproduce its
  results bit for bit at every :class:`~repro.core.config.OptimizationLevel`.
* ``fused`` — one precompiled step per tick.  At ``FIXED_POINT`` the
  embedding lookup, stacked gate matmul, rescale, PLAN sigmoid/softsign
  activations, cell/hidden update, and FC head all execute as a single
  fused pass over ``(N, H)`` float64 state arrays held in a persistent
  slot arena — no per-slot Python, no row stacking, no int64
  temporaries.  The element-wise chain compiles through a ladder of
  acceleration tiers: numba JIT when importable, else a small C kernel
  built once per model shape with the system compiler, else a
  vectorised NumPy formulation of the same arithmetic (still fused,
  still bit-exact).  The float levels keep the reference kernels for
  the math (their ``np.sum`` pairwise reduction is the batch-stability
  contract) but still benefit from the fused session stepper's
  persistent arena and roster caching.

Why float64 carriers are exact here
-----------------------------------
Every fixed-point value in this model is an integer of magnitude far
below 2**53, so float64 holds it exactly.  The stacked gate accumulation
``[h, x] @ W.T`` is bounded by ``fan_in * max|concat| * max|W|`` (about
2.5e13 for the paper's model — comfortably under 2**53), so BLAS dgemm
sums are exact integer arithmetic.  The rescale-with-rounding, PLAN
sigmoid segments (power-of-two slopes), and softsign division are then
reproduced with float operations whose results are *provably* equal to
the int64 reference ops inside statically-checked operand bounds; the
bounds are screened once at build time, and a runtime cell-magnitude
guard covers the one quantity that grows with stream content.  Outside
the bounds the backend degrades to ``reference`` — gracefully and
in-process, exactly like ``parallel.py``'s pool fallback — counted by
``repro_backend_fallback_total{reason=...}``.

On top of the self-check probe run at construction (the fused tick is
compared against the reference kernels on an adversarial batch before it
is ever trusted), this makes "bit-exact" a *verified* property on every
host, not an assumption.

Fallback reasons
----------------
``no_numba`` / ``jit_error``
    numba missing or failed to compile; the next acceleration tier runs
    instead — the compiled C step if a system compiler is available,
    else the NumPy fused path (still fused, still fast — a degradation
    of degree only).
``unsafe_bounds``
    the model/scale violates a static exactness bound; reference math.
``self_check_failed``
    the build-time probe found a mismatch vs the reference kernels on
    this host; reference math.
``overflow_guard``
    a state magnitude crossed the runtime guard mid-run; the session
    manager converts its state and continues on reference math.

See ``docs/performance.md`` ("The kernel backend registry") and
``docs/observability.md`` for the metric contract.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import GATE_NAMES

#: Metric names (documented in docs/observability.md).
METRIC_FALLBACK = "repro_backend_fallback_total"
METRIC_TICKS = "repro_backend_ticks_total"

#: ``repro_backend_fallback_total``'s ``reason`` label values.
FALLBACK_NO_NUMBA = "no_numba"
FALLBACK_JIT_ERROR = "jit_error"
FALLBACK_UNSAFE_BOUNDS = "unsafe_bounds"
FALLBACK_SELF_CHECK = "self_check_failed"
FALLBACK_OVERFLOW_GUARD = "overflow_guard"

#: The default backend of :class:`~repro.core.config.EngineConfig`.
DEFAULT_BACKEND = "reference"

#: Safety margin for the fused matmul rescale-by-inverse: quotients up to
#: this magnitude keep the float error (~q * 2**-52) at least three
#: decades under both the nudge epsilon and the 1/scale boundary gap.
_MAX_INV_RESCALE_QUOTIENT = 1e8
_INV_RESCALE_EPS = 1e-7


class FusedUnavailable(Exception):
    """The fused fixed-point math cannot be built for this engine."""

    def __init__(self, reason: str, detail: str = ""):
        super().__init__(detail or reason)
        self.reason = reason


class FusedOverflow(Exception):
    """A runtime state magnitude crossed the fused exactness guard."""


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_REGISTRY: dict = {}


def register_backend(name: str, factory) -> None:
    """Register ``factory(engine) -> KernelBackend`` under ``name``."""
    _REGISTRY[name] = factory


def available_backends() -> tuple:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def resolve_backend(name: str, engine) -> "KernelBackend":
    """Instantiate the backend ``name`` for ``engine``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; available: "
            f"{', '.join(available_backends())}"
        ) from None
    return factory(engine)


class KernelBackend:
    """Base class: how an engine executes its per-tick/step math.

    A backend is bound to one loaded engine.  It answers two questions:
    whether it accelerates whole-batch inference (``infer_batch``'s
    timestep loop), and how the session layer should step its slots
    (:meth:`session_stepper`, consumed by
    :class:`~repro.core.sessions.SessionManager`).
    """

    name = "abstract"

    def __init__(self, engine):
        self.engine = engine
        #: Plain counters mirroring ``repro_backend_fallback_total``.
        self.fallback_reasons: dict = {}

    def record_fallback(self, reason: str) -> None:
        self.fallback_reasons[reason] = self.fallback_reasons.get(reason, 0) + 1
        telemetry = self.engine.telemetry
        if telemetry is not None:
            telemetry.counter(METRIC_FALLBACK, reason=reason).inc()

    def accelerates_inference(self) -> bool:
        return False

    def infer_probabilities(self, embedded: np.ndarray) -> np.ndarray:
        """Probabilities for an ``(N, T, E)`` embedded batch (fused only)."""
        raise NotImplementedError(f"{self.name} does not accelerate inference")

    def session_stepper(self, manager):
        """Build this backend's per-tick stepper for ``manager``."""
        raise NotImplementedError


# ----------------------------------------------------------------------
# The fused fixed-point math
# ----------------------------------------------------------------------


class _FusedFixedMath:
    """The precompiled fixed-point tick over ``(n, H)`` float64 rows.

    All quantities are exact integers carried in float64; see the module
    docstring for why the operation set below is bit-equal to the int64
    reference kernels inside the statically-checked bounds.
    """

    def __init__(self, engine):
        config = engine.config
        quantized = engine.quantized
        if quantized is None:
            raise FusedUnavailable(
                FALLBACK_UNSAFE_BOUNDS, "engine has no quantised weights"
            )
        dims = config.dimensions
        self.hidden_size = dims.hidden_size
        self.fan_in = dims.gate_input_size
        fmt = quantized.fmt
        self.scale = int(fmt.scale)
        self.fscale = float(self.scale)
        self.half = float(self.scale // 2)
        self.inv_scale = 1.0 / self.fscale

        stacked = np.concatenate(
            [quantized.gates[g].matrix for g in GATE_NAMES], axis=0
        )
        bias = np.concatenate([quantized.gates[g].bias for g in GATE_NAMES])
        self.W_T = np.ascontiguousarray(stacked.T, dtype=np.float64)  # (F, 4H)
        self.bias = bias.astype(np.float64)                           # (4H,)
        self.fc_w = quantized.fc_weights.astype(np.float64)           # (H,)
        self.fc_bias = float(quantized.fc_bias)

        self._check_static_bounds(engine)

        # PLAN sigmoid constants (power-of-two slopes; exact products).
        s = self.fscale
        self.q1, self.q2, self.q3 = s, 2.375 * s, 5.0 * s
        self.i1, self.i2, self.i3 = 0.5 * s, 0.625 * s, 0.84375 * s
        f32 = np.float32
        self.f32_q1, self.f32_q2, self.f32_q3 = f32(self.q1), f32(self.q2), f32(self.q3)
        self.f32_i1, self.f32_i2, self.f32_i3 = f32(self.i1), f32(self.i2), f32(self.i3)
        self.f32_one, self.f32_half = f32(s), f32(self.half)

        self._concat: dict = {}  # batch size -> (n, F) work buffer
        self._jit, self.jit_reason, self.accel_tier = _build_jit_step(
            self.hidden_size, self.scale, _INV_RESCALE_EPS
        )

    # -- static exactness screen ---------------------------------------

    def _check_static_bounds(self, engine) -> None:
        scale = self.scale
        two52 = float(2**52)
        if scale % 32 != 0 or scale > 2**21:
            raise FusedUnavailable(
                FALLBACK_UNSAFE_BOUNDS,
                f"scale {scale} outside the fused exactness envelope "
                "(must divide the PLAN slopes exactly and stay <= 2**21)",
            )
        max_w = float(np.max(np.abs(self.W_T))) if self.W_T.size else 0.0
        max_b = float(np.max(np.abs(self.bias))) if self.bias.size else 0.0
        table = engine.preprocess._embedding_fixed
        max_e = float(np.max(np.abs(table))) if table is not None and table.size else 0.0
        concat_max = max(float(scale), max_e)   # |h| <= scale always
        acc_bound = self.fan_in * concat_max * max_w
        quotient_bound = acc_bound / scale + 1.0
        pre_bound = quotient_bound + max_b
        fc_acc_bound = self.hidden_size * scale * float(
            np.max(np.abs(self.fc_w)) if self.fc_w.size else 0.0
        )
        if (
            acc_bound + self.half >= 0.5 * two52
            or quotient_bound > _MAX_INV_RESCALE_QUOTIENT
            or pre_bound * scale >= two52
            or fc_acc_bound + self.half >= 0.5 * two52
        ):
            raise FusedUnavailable(
                FALLBACK_UNSAFE_BOUNDS,
                "weight/embedding magnitudes exceed the float64 exactness "
                f"bounds (accumulator bound {acc_bound:.3g})",
            )
        # Runtime guard on the one unbounded quantity, the cell state:
        # below this, every product, softsign numerator, and rescale
        # division stays provably exact in float64.
        self.cell_limit = float(min(2**31, 2**51 // scale))

    # -- primitive ops (each bit-equal to its int64 reference op) ------

    def _frdiv_inv(self, x: np.ndarray) -> np.ndarray:
        """Rescale by multiply-with-inverse (matmul results only).

        Valid for quotients up to ``_MAX_INV_RESCALE_QUOTIENT`` (screened
        statically): the epsilon nudge absorbs the inverse-multiply
        rounding without ever crossing a 1/scale boundary gap.
        """
        t = np.abs(x)
        t += self.half
        t *= self.inv_scale
        t += _INV_RESCALE_EPS
        np.floor(t, out=t)
        return np.copysign(t, x, out=t)

    def _frdiv_div(self, x: np.ndarray) -> np.ndarray:
        """Rescale with true division (state products, FC head)."""
        t = np.abs(x)
        t += self.half
        t /= self.fscale
        np.floor(t, out=t)
        return np.copysign(t, x, out=t)

    def _sigmoid_f32(self, x: np.ndarray) -> np.ndarray:
        """PLAN sigmoid in float32 (gate pre-activations are f32-exact)."""
        x32 = x.astype(np.float32)
        mag = np.abs(x32)
        f32 = np.float32
        s1 = np.floor(mag * f32(0.25) + f32(0.5)) + self.f32_i1
        s2 = np.floor(mag * f32(0.125) + f32(0.5)) + self.f32_i2
        s3 = np.floor(mag * f32(0.03125) + f32(0.5)) + self.f32_i3
        res = np.where(
            mag < self.f32_q1, s1,
            np.where(mag < self.f32_q2, s2,
                     np.where(mag < self.f32_q3, s3, self.f32_one)),
        )
        res = np.where(x32 < 0, self.f32_one - res, res)
        return np.where(x32 == 0, self.f32_half, res)

    def _sigmoid_f64(self, x: np.ndarray) -> np.ndarray:
        """PLAN sigmoid in float64 (FC head)."""
        mag = np.abs(x)
        s1 = np.floor(mag * 0.25 + 0.5) + self.i1
        s2 = np.floor(mag * 0.125 + 0.5) + self.i2
        s3 = np.floor(mag * 0.03125 + 0.5) + self.i3
        res = np.where(
            mag < self.q1, s1,
            np.where(mag < self.q2, s2, np.where(mag < self.q3, s3, self.fscale)),
        )
        res = np.where(x < 0, self.fscale - res, res)
        return np.where(x == 0, self.half, res)

    def _softsign(self, x: np.ndarray) -> np.ndarray:
        """Fixed-point softsign ``x*S / (|x| + S)`` with remainder rounding."""
        num = x * self.fscale
        den = np.abs(x) + self.fscale
        mag = np.abs(num)
        quotient = np.floor(mag / den)
        remainder = mag - quotient * den
        quotient += remainder >= den - np.floor(den * 0.5)
        return np.copysign(quotient, x)

    # -- the fused tick ------------------------------------------------

    def _concat_buffer(self, n: int) -> np.ndarray:
        buffer = self._concat.get(n)
        if buffer is None:
            if len(self._concat) > 16:
                self._concat.clear()
            buffer = np.empty((n, self.fan_in), dtype=np.float64)
            self._concat[n] = buffer
        return buffer

    def step_rows(self, h: np.ndarray, c: np.ndarray,
                  x_rows: np.ndarray) -> tuple:
        """One LSTM step over ``(n, H)`` state rows.

        Parameters
        ----------
        h, c:
            Hidden/cell rows, float64 ``(n, H)`` exact integers.
        x_rows:
            Embedded tokens, int64 ``(n, E)`` (one row per state row).

        Returns
        -------
        tuple
            ``(new_h, new_c)`` — fresh float64 ``(n, H)`` arrays.

        Raises
        ------
        FusedOverflow
            if any new cell magnitude crosses the exactness guard; the
            inputs are left unmodified so the caller can re-run the tick
            on the reference path.
        """
        H = self.hidden_size
        n = h.shape[0]
        concat = self._concat_buffer(n)
        concat[:, :H] = h
        concat[:, H:] = x_rows
        pre = concat @ self.W_T                        # raw scale**2 products
        if self._jit is not None:
            out_h = np.empty((n, H), dtype=np.float64)
            out_c = np.empty((n, H), dtype=np.float64)
            max_cell = self._jit(pre, self.bias, c, out_h, out_c)
            if max_cell > self.cell_limit:
                raise FusedOverflow
            return out_h, out_c
        pre = self._frdiv_inv(pre)
        pre += self.bias
        act = self._sigmoid_f32(pre[:, : 3 * H])       # i/f/o gates, f32 ints
        c_bar = self._softsign(pre[:, 3 * H:])
        new_c = self._frdiv_div(act[:, H: 2 * H] * c)
        new_c += self._frdiv_div(act[:, :H] * c_bar)
        if float(np.max(np.abs(new_c), initial=0.0)) > self.cell_limit:
            raise FusedOverflow
        new_h = self._frdiv_div(act[:, 2 * H:] * self._softsign(new_c))
        return new_h, new_c

    def classify_rows(self, h: np.ndarray) -> np.ndarray:
        """FC head + PLAN sigmoid over ``(n, H)`` hidden rows."""
        logits = self._frdiv_div(h @ self.fc_w)
        logits += self.fc_bias
        return self._sigmoid_f64(logits) / self.fscale

    def disable_jit(self) -> None:
        self._jit = None
        self.accel_tier = None


def _build_jit_step(hidden_size: int, scale: int, eps: float) -> tuple:
    """Compile the element-wise tick chain through the acceleration ladder.

    Returns ``(compiled_or_None, fallback_reason_or_None, tier_or_None)``
    where ``tier`` is ``"numba"`` or ``"cc"``.  Tiers, in order:

    1. numba JIT of the scalar chain;
    2. a C formulation of the same arithmetic, compiled once per
       ``(hidden_size, scale)`` with the system compiler and loaded via
       ctypes;
    3. ``None`` — the caller runs the vectorised NumPy fused path.

    Every tier replicates the fused arithmetic op for op in IEEE float64
    (deterministic regardless of how it is compiled), so a successful
    compile is bit-equal by construction — and the build-time self-check
    probe verifies it on the live weights anyway.
    """
    step, reason = _build_numba_step(hidden_size, scale, eps)
    if step is not None:
        return step, None, "numba"
    cc_step = _build_cc_step(hidden_size, scale, eps)
    if cc_step is not None:
        # numba was the preferred tier; record why it was skipped even
        # though the C tier delivers comparable acceleration.
        return cc_step, reason, "cc"
    return None, reason, None


def _build_numba_step(hidden_size: int, scale: int, eps: float) -> tuple:
    """numba-JIT the scalar tick chain; ``(step_or_None, reason_or_None)``."""
    try:
        import numba
    except Exception:
        return None, FALLBACK_NO_NUMBA
    try:
        import math as pymath

        H = hidden_size
        half = float(scale // 2)
        fscale = float(scale)
        inv = 1.0 / fscale
        q1, q2, q3 = fscale, 2.375 * fscale, 5.0 * fscale
        i1, i2, i3 = 0.5 * fscale, 0.625 * fscale, 0.84375 * fscale

        @numba.njit(cache=False, fastmath=False)
        def _frd_inv(x):
            t = pymath.floor((abs(x) + half) * inv + eps)
            return -t if x < 0.0 else t

        @numba.njit(cache=False, fastmath=False)
        def _frd_div(x):
            t = pymath.floor((abs(x) + half) / fscale)
            return -t if x < 0.0 else t

        @numba.njit(cache=False, fastmath=False)
        def _sig(x):
            if x == 0.0:
                return half
            m = abs(x)
            if m < q1:
                r = pymath.floor(m * 0.25 + 0.5) + i1
            elif m < q2:
                r = pymath.floor(m * 0.125 + 0.5) + i2
            elif m < q3:
                r = pymath.floor(m * 0.03125 + 0.5) + i3
            else:
                r = fscale
            return fscale - r if x < 0.0 else r

        @numba.njit(cache=False, fastmath=False)
        def _ss(x):
            num = x * fscale
            den = abs(x) + fscale
            mag = abs(num)
            q = pymath.floor(mag / den)
            r = mag - q * den
            if r >= den - pymath.floor(den * 0.5):
                q += 1.0
            return -q if num < 0.0 else q

        @numba.njit(cache=False, fastmath=False)
        def step(pre, bias, c, out_h, out_c):
            n = pre.shape[0]
            max_cell = 0.0
            for row in range(n):
                for k in range(H):
                    g_i = _sig(_frd_inv(pre[row, k]) + bias[k])
                    g_f = _sig(_frd_inv(pre[row, H + k]) + bias[H + k])
                    g_o = _sig(_frd_inv(pre[row, 2 * H + k]) + bias[2 * H + k])
                    c_bar = _ss(_frd_inv(pre[row, 3 * H + k]) + bias[3 * H + k])
                    new_c = _frd_div(g_f * c[row, k]) + _frd_div(g_i * c_bar)
                    magnitude = abs(new_c)
                    if magnitude > max_cell:
                        max_cell = magnitude
                    out_c[row, k] = new_c
                    out_h[row, k] = _frd_div(g_o * _ss(new_c))
            return max_cell

        probe = np.zeros((1, 4 * H), dtype=np.float64)
        step(probe, np.zeros(4 * H), np.zeros((1, H)),
             np.empty((1, H)), np.empty((1, H)))
        return step, None
    except Exception:
        return None, FALLBACK_JIT_ERROR


#: Compiled C steps, one per model shape (compiling is ~100ms; tests
#: build many engines with identical shapes).  ``None`` caches failure.
_CC_STEP_CACHE: dict = {}


def _render_cc_step(hidden_size: int, scale: int, eps: float) -> str:
    """The C tick chain: same ops, formulated for auto-vectorisation.

    Per row, five flat loops (rescale+bias, PLAN sigmoid, softsign, cell
    update, hidden update) instead of one fused scalar loop: straight-line
    branchless float64 bodies that the compiler turns into SIMD.  Two
    formulations differ *syntactically* from the NumPy path but are
    proven equal on the fused operand ranges:

    * the PLAN segment select uses arithmetic masks with exact
      power-of-two slope deltas and integer intercept deltas (``scale``
      divisible by 32, screened statically);
    * ``frd_div`` replaces the true division by a reciprocal-multiply
      guess corrected with exact integer products (operands < 2**53, so
      the correction comparisons are exact and the result equals the
      floored true quotient).

    The sign/zero handling folds into ``half + copysign(r - half, x)``:
    for ``x == 0`` the magnitude path yields exactly ``half``, so no
    zero branch is needed.
    """
    half = float(scale // 2)
    fscale = float(scale)
    inv = 1.0 / fscale
    q1, q2, q3 = fscale, 2.375 * fscale, 5.0 * fscale
    i1, i2, i3 = 0.5 * fscale, 0.625 * fscale, 0.84375 * fscale
    return f'''
#include <math.h>

double repro_fused_step(const double *restrict pre, const double *restrict bias,
                        const double *restrict c, double *restrict out_h,
                        double *restrict out_c, long n)
{{
    const long H = {hidden_size};
    double max_cell = 0.0;
    double v[4 * {hidden_size}];
    double g[4 * {hidden_size}];
    for (long row = 0; row < n; ++row) {{
        const double *restrict p = pre + row * 4 * H;
        const double *restrict cr = c + row * H;
        double *restrict hr = out_h + row * H;
        double *restrict ocr = out_c + row * H;
        for (long k = 0; k < 4 * H; ++k) {{
            double t = floor((fabs(p[k]) + {half!r}) * {inv!r} + {eps!r});
            v[k] = copysign(t, p[k]) + bias[k];
        }}
        for (long k = 0; k < 3 * H; ++k) {{
            double m = fabs(v[k]);
            double b1 = (double)(m >= {q1!r});
            double b2 = (double)(m >= {q2!r});
            double b3 = (double)(m >= {q3!r});
            double slope = 0.25 - 0.125 * b1 - 0.09375 * b2 - 0.03125 * b3;
            double icept = {i1!r} + {i2 - i1!r} * b1 + {i3 - i2!r} * b2
                           + {fscale - i3!r} * b3;
            double r = floor(m * slope + 0.5) + icept;
            g[k] = {half!r} + copysign(r - {half!r}, v[k]);
        }}
        for (long k = 0; k < H; ++k) {{
            double x = v[3 * H + k];
            double num = x * {fscale!r};
            double den = fabs(x) + {fscale!r};
            double mag = fabs(num);
            double q = floor(mag / den);
            double r = mag - q * den;
            q += (double)(r >= den - floor(den * 0.5));
            g[3 * H + k] = copysign(q, x);
        }}
        for (long k = 0; k < H; ++k) {{
            double a = g[H + k] * cr[k];
            double na = fabs(a) + {half!r};
            double qa = floor(na * {inv!r});
            qa += (double)((qa + 1.0) * {fscale!r} <= na);
            qa -= (double)(qa * {fscale!r} > na);
            double b = g[k] * g[3 * H + k];
            double nb = fabs(b) + {half!r};
            double qb = floor(nb * {inv!r});
            qb += (double)((qb + 1.0) * {fscale!r} <= nb);
            qb -= (double)(qb * {fscale!r} > nb);
            double nc = copysign(qa, a) + copysign(qb, b);
            max_cell = fmax(max_cell, fabs(nc));
            ocr[k] = nc;
            v[k] = nc;
        }}
        for (long k = 0; k < H; ++k) {{
            double x = v[k];
            double num = x * {fscale!r};
            double den = fabs(x) + {fscale!r};
            double mag = fabs(num);
            double q = floor(mag / den);
            double r = mag - q * den;
            q += (double)(r >= den - floor(den * 0.5));
            double o = g[2 * H + k] * copysign(q, x);
            double no = fabs(o) + {half!r};
            double qo = floor(no * {inv!r});
            qo += (double)((qo + 1.0) * {fscale!r} <= no);
            qo -= (double)(qo * {fscale!r} > no);
            hr[k] = copysign(qo, o);
        }}
    }}
    return max_cell;
}}
'''


def _build_cc_step(hidden_size: int, scale: int, eps: float):
    """Compile the C tick chain with the system compiler, or ``None``.

    The shared object is built once per ``(hidden_size, scale, eps)``
    into a private temp directory and kept loaded for the process
    lifetime.  ``-fno-math-errno -fno-trapping-math`` only drop errno
    stores and FP-status ordering (floor/fabs/copysign never set either)
    so results stay IEEE-exact; ``-march=native`` is attempted first and
    dropped if the compiler rejects it.  Any failure — no compiler, a
    compile error, a load error — returns ``None`` and the caller moves
    down the ladder.
    """
    key = (hidden_size, scale, eps)
    if key in _CC_STEP_CACHE:
        return _CC_STEP_CACHE[key]
    step = None
    try:
        import ctypes
        import shutil
        import subprocess
        import tempfile

        compiler = shutil.which("cc") or shutil.which("gcc")
        if compiler is not None:
            build_dir = tempfile.mkdtemp(prefix="repro-fused-")
            source = f"{build_dir}/step.c"
            library = f"{build_dir}/step.so"
            with open(source, "w") as handle:
                handle.write(_render_cc_step(hidden_size, scale, eps))
            base = ["-fPIC", "-shared", "-o", library, source, "-lm"]
            safe_fast = ["-fno-math-errno", "-fno-trapping-math"]
            for flags in (
                ["-O3", "-march=native", *safe_fast],
                ["-O3", *safe_fast],
                ["-O2"],
            ):
                result = subprocess.run(
                    [compiler, *flags, *base], capture_output=True, timeout=120
                )
                if result.returncode == 0:
                    break
            else:
                result = None
            if result is not None and result.returncode == 0:
                raw = ctypes.CDLL(library).repro_fused_step
                raw.restype = ctypes.c_double
                raw.argtypes = [ctypes.c_void_p] * 5 + [ctypes.c_long]

                def step(pre, bias, c, out_h, out_c, _raw=raw):
                    pre = np.ascontiguousarray(pre)
                    c = np.ascontiguousarray(c)
                    return _raw(
                        pre.ctypes.data, bias.ctypes.data, c.ctypes.data,
                        out_h.ctypes.data, out_c.ctypes.data, pre.shape[0],
                    )

                probe = np.zeros((1, 4 * hidden_size))
                step(probe, np.zeros(4 * hidden_size), np.zeros((1, hidden_size)),
                     np.empty((1, hidden_size)), np.empty((1, hidden_size)))
    except Exception:
        step = None
    _CC_STEP_CACHE[key] = step
    return step


# ----------------------------------------------------------------------
# Build-time self-check
# ----------------------------------------------------------------------


def _self_check(engine, math_impl: _FusedFixedMath) -> None:
    """Verify the fused tick against the reference kernels on this host.

    Runs an adversarial batch (boundary-hugging cells, random hiddens,
    random tokens) through :meth:`_FusedFixedMath.step_rows` and the
    reference ``gates.run_batch`` + ``hidden_state.step_batch`` +
    ``classify_batch`` chain; any bit difference raises ``AssertionError``.
    """
    dims = engine.config.dimensions
    H = dims.hidden_size
    scale = math_impl.scale
    rng = np.random.default_rng(0xC0FFEE)
    n = 48
    h = rng.integers(-scale, scale + 1, size=(n, H), dtype=np.int64)
    c = rng.integers(-60 * scale, 60 * scale + 1, size=(n, H), dtype=np.int64)
    limit = int(math_impl.cell_limit)
    c[0] = limit - scale
    c[1] = -(limit - scale)
    c[2] = 0
    tokens = rng.integers(0, dims.vocab_size, size=n, dtype=np.int64)

    embedded = engine.preprocess.run_batch(tokens)
    ref_gates = engine.gates.run_batch(h, embedded)
    ref_h, ref_c = engine.hidden_state.step_batch(ref_gates, c)
    ref_p = engine.hidden_state.classify_batch(ref_h)

    got_h, got_c = math_impl.step_rows(
        h.astype(np.float64), c.astype(np.float64), embedded
    )
    got_p = math_impl.classify_rows(got_h)
    assert np.array_equal(got_h, ref_h.astype(np.float64)), "hidden mismatch"
    assert np.array_equal(got_c, ref_c.astype(np.float64)), "cell mismatch"
    assert np.array_equal(got_p, ref_p), "classification mismatch"

    # Primitive rescale check on half-exact boundary values, where a
    # rounding-mode bug would hide from random inputs.
    from repro.fixedpoint.ops import _rounded_scale_division

    ks = np.array([0, 1, 2, 3, 7, 1000, 10**7], dtype=np.int64)
    half = scale // 2
    edges = np.concatenate([
        ks * scale - half, ks * scale + half, ks * scale + half - 1,
        -(ks * scale - half), -(ks * scale + half), ks,
    ])
    expected = _rounded_scale_division(edges, scale).astype(np.float64)
    for op in (math_impl._frdiv_inv, math_impl._frdiv_div):
        got = op(edges.astype(np.float64))
        assert np.array_equal(got, expected), "rescale primitive mismatch"


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------


class ReferenceBackend(KernelBackend):
    """The existing NumPy kernels, exactly as the session layer shipped."""

    name = "reference"

    def session_stepper(self, manager):
        from repro.core.sessions import ReferenceStepper

        return ReferenceStepper(manager)


class FusedBackend(KernelBackend):
    """One precompiled step per tick over a persistent slot arena.

    At ``FIXED_POINT`` the math is the fused float64 pass (bit-exact by
    static bounds + build-time self-check + runtime cell guard).  At the
    float levels the reference kernels keep doing the math — their
    pairwise-sum reduction *is* the batch-stability contract — while the
    fused session stepper still eliminates the per-tick Python slot
    bookkeeping.  Any exactness obstacle degrades to reference behaviour
    in-process and is counted in ``repro_backend_fallback_total``.
    """

    name = "fused"

    def __init__(self, engine):
        super().__init__(engine)
        self._math: _FusedFixedMath | None = None
        self.degraded_reason: str | None = None
        if not engine.config.optimization.uses_fixed_point:
            return  # float levels: fused stepper, reference math
        try:
            math_impl = _FusedFixedMath(engine)
        except FusedUnavailable as unavailable:
            self.degraded_reason = unavailable.reason
            self.record_fallback(unavailable.reason)
            return
        if math_impl.jit_reason is not None:
            # Degradation of degree only: the NumPy fused path runs.
            self.record_fallback(math_impl.jit_reason)
        try:
            _self_check(engine, math_impl)
        except AssertionError:
            if math_impl._jit is not None:
                # Give the NumPy formulation a chance before giving up.
                math_impl.disable_jit()
                self.record_fallback(FALLBACK_JIT_ERROR)
                try:
                    _self_check(engine, math_impl)
                except AssertionError:
                    self.degraded_reason = FALLBACK_SELF_CHECK
                    self.record_fallback(FALLBACK_SELF_CHECK)
                    return
            else:
                self.degraded_reason = FALLBACK_SELF_CHECK
                self.record_fallback(FALLBACK_SELF_CHECK)
                return
        self._math = math_impl

    @property
    def fused_math(self) -> _FusedFixedMath | None:
        return self._math

    @property
    def accel_tier(self) -> str | None:
        """Which tier compiled the tick: ``numba``/``cc``/``None`` (NumPy)."""
        return self._math.accel_tier if self._math is not None else None

    def accelerates_inference(self) -> bool:
        return self._math is not None

    def infer_probabilities(self, embedded: np.ndarray) -> np.ndarray:
        """Fused timestep loop over an ``(N, T, E)`` embedded batch."""
        math_impl = self._math
        if math_impl is None:
            raise RuntimeError(
                "fused inference unavailable; check accelerates_inference()"
            )
        n, steps, _ = embedded.shape
        H = math_impl.hidden_size
        h = np.zeros((n, H), dtype=np.float64)
        c = np.zeros((n, H), dtype=np.float64)
        for step in range(steps):
            h, c = math_impl.step_rows(h, c, embedded[:, step, :])
        return math_impl.classify_rows(h)

    def session_stepper(self, manager):
        from repro.core.sessions import FusedStepper, ReferenceStepper

        if self.engine.config.optimization.uses_fixed_point and self._math is None:
            # Degraded at build: behave as reference end to end.
            return ReferenceStepper(manager)
        return FusedStepper(manager, self)


register_backend(ReferenceBackend.name, ReferenceBackend)
register_backend(FusedBackend.name, FusedBackend)
