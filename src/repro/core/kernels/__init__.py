"""The five-kernel decomposition of the LSTM forward pass (Fig. 2)."""

from repro.core.kernels.base import Kernel, KernelTiming
from repro.core.kernels.gates import GATE_ACTIVATIONS, GatesKernel
from repro.core.kernels.hidden_state import HiddenStateKernel
from repro.core.kernels.preprocess import PreprocessKernel

__all__ = [
    "GATE_ACTIVATIONS",
    "GatesKernel",
    "HiddenStateKernel",
    "Kernel",
    "KernelTiming",
    "PreprocessKernel",
]
