"""The five-kernel decomposition of the LSTM forward pass (Fig. 2).

:mod:`repro.core.kernels.backends` layers an execution-backend registry
on top: the per-kernel NumPy pipeline is the ``reference`` backend (the
bit-exactness oracle), and the ``fused`` backend collapses each tick
into one precompiled step over persistent state.
"""

from repro.core.kernels.backends import (
    DEFAULT_BACKEND,
    FusedOverflow,
    FusedUnavailable,
    KernelBackend,
    available_backends,
    register_backend,
    resolve_backend,
)
from repro.core.kernels.base import Kernel, KernelTiming
from repro.core.kernels.gates import GATE_ACTIVATIONS, GatesKernel
from repro.core.kernels.hidden_state import HiddenStateKernel
from repro.core.kernels.preprocess import PreprocessKernel

__all__ = [
    "DEFAULT_BACKEND",
    "FusedOverflow",
    "FusedUnavailable",
    "GATE_ACTIVATIONS",
    "GatesKernel",
    "HiddenStateKernel",
    "Kernel",
    "KernelBackend",
    "KernelTiming",
    "PreprocessKernel",
    "available_backends",
    "register_backend",
    "resolve_backend",
]
