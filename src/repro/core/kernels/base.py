"""Kernel abstraction shared by the three kernel implementations.

A kernel couples two things:

* **function** — the numeric computation (float or fixed-point), which is
  executed for real so the engine produces actual predictions; and
* **timing** — an HLS-style latency estimate built from
  :mod:`repro.hw.hls` loop models, parameterised by the optimisation level.

Timing semantics follow Vitis HLS reporting conventions:

* ``fill_latency_cycles`` — cycles from invocation until the first result
  set is complete (pipeline fill + drain for one item);
* ``steady_ii_cycles`` — cycles between consecutive item results once the
  kernel's pipeline is primed;
* ``reported_cycles`` — the number the paper's Fig. 3 plots.  For a kernel
  whose datapath is fully spatially unrolled and pipelined at II=1 (the
  fixed-point ``kernel_gates``), HLS reports the initiation interval —
  one cycle — as its per-item execution time; every other configuration
  reports the fill latency.
"""

from __future__ import annotations

import dataclasses

from repro.core.config import EngineConfig
from repro.hw.clock import ClockDomain


@dataclasses.dataclass(frozen=True)
class KernelTiming:
    """Latency report for one kernel under one configuration."""

    kernel: str
    fill_latency_cycles: int
    steady_ii_cycles: int
    reports_ii: bool = False

    def __post_init__(self) -> None:
        if self.fill_latency_cycles < 0 or self.steady_ii_cycles < 0:
            raise ValueError("cycle counts must be non-negative")

    @property
    def reported_cycles(self) -> int:
        """The per-item figure under the paper's accounting convention."""
        if self.reports_ii:
            return self.steady_ii_cycles
        return self.fill_latency_cycles

    def reported_microseconds(self, clock: ClockDomain) -> float:
        return clock.cycles_to_microseconds(self.reported_cycles)


class Kernel:
    """Base class for the engine's kernels.

    Subclasses implement :meth:`timing` (latency under the configured
    optimisation level) and their own ``run_*`` compute methods.
    """

    name = "kernel"

    def __init__(self, config: EngineConfig):
        self.config = config

    def timing(self) -> KernelTiming:
        raise NotImplementedError
