"""``kernel_preprocess`` — embedding generation (paper Section III-B).

Functionally: for each item of the sequence, produce its embedding by the
one-hot × (M × O) matrix product — i.e. a row lookup of the flattened
embedding buffer the kernel was initialised with — and make one copy of
the embedding per ``kernel_gates`` compute unit "such that each CU has its
own copies" (Section III-C).

Timing structure:

* a DDR row fetch through the kernel's AXI master (one burst, dominated
  by read latency — this is why the kernel's Fig. 3 bar "remained fairly
  fixed" across optimisation levels: there is nothing to pipeline in a
  single burst);
* a copy loop of ``O × num_cus`` element writes, which the II pragmas
  shave slightly (unroll 4 over pure wiring has no adder-tree penalty).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import EngineConfig
from repro.core.kernels.base import Kernel, KernelTiming
from repro.core.weights import HostWeights, QuantizedHostWeights
from repro.hw.axi import AxiMasterPort
from repro.hw.hls import HlsLoop, II_OPTIMIZED_PRAGMAS, LoopNest, PragmaSet, VANILLA_PRAGMAS


class PreprocessKernel(Kernel):
    """Embedding lookup + per-CU fan-out."""

    name = "kernel_preprocess"

    def __init__(self, config: EngineConfig):
        super().__init__(config)
        self.axi = AxiMasterPort(name=f"{self.name}/m_axi_gmem0")
        self._embedding_float: np.ndarray | None = None
        self._embedding_fixed: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Function
    # ------------------------------------------------------------------

    def load_embeddings(self, weights: HostWeights, quantized: QuantizedHostWeights | None) -> None:
        """Initialise the kernel's 1-D embedding buffer (host step).

        The paper initialises the kernel "with a 1-dimensional buffer
        consisting of the flattened embedding vector"; we retain the 2-D
        view for clarity but the contract is the same.
        """
        self._embedding_float = weights.embedding
        if self.config.optimization.uses_fixed_point:
            if quantized is None:
                raise ValueError("fixed-point mode requires quantised weights")
            self._embedding_fixed = quantized.embedding

    def run(self, token_id: int) -> list:
        """Embed one item and fan it out to the gate CUs.

        Returns a list of ``num_gate_cus`` *independent copies* of the
        embedding vector (float64 or int64 depending on the engine mode).
        """
        table = (
            self._embedding_fixed
            if self.config.optimization.uses_fixed_point
            else self._embedding_float
        )
        if table is None:
            raise RuntimeError("load_embeddings must be called before run")
        if not 0 <= token_id < table.shape[0]:
            raise ValueError(
                f"token id {token_id} out of range [0, {table.shape[0]})"
            )
        embedding = table[token_id]
        return [embedding.copy() for _ in range(self.config.num_gate_cus)]

    def run_batch(self, token_ids: np.ndarray) -> np.ndarray:
        """Embed a whole batch of sequences in one gather.

        ``token_ids`` may have any shape (typically ``(N, T)``); the result
        appends the embedding dimension: ``token_ids.shape + (E,)``.  The
        batch path needs no per-CU fan-out — the four gate affines collapse
        into one stacked matmul, so a single embedding view serves them all.
        Values are identical to :meth:`run`'s per-token lookups.
        """
        table = (
            self._embedding_fixed
            if self.config.optimization.uses_fixed_point
            else self._embedding_float
        )
        if table is None:
            raise RuntimeError("load_embeddings must be called before run_batch")
        tokens = np.asarray(token_ids, dtype=np.int64)
        if tokens.size:
            out_of_range = (tokens < 0) | (tokens >= table.shape[0])
            if np.any(out_of_range):
                bad = int(tokens[out_of_range].ravel()[0])
                raise ValueError(
                    f"token id {bad} out of range [0, {table.shape[0]})"
                )
        return table[tokens]

    def account_batch_fetches(self, count: int) -> None:
        """Record AXI read traffic for ``count`` additional sequences.

        The sequential path charges one embedding-row burst per sequence
        when :meth:`timing` calls ``axi.read_cycles``; a batched call
        builds timing once for the whole batch, so the remaining
        ``count`` sequences' fetches are accounted here to keep the AXI
        byte/transfer counters identical to ``count + 1`` sequential runs.
        """
        if count <= 0:
            return
        dims = self.config.dimensions
        bytes_per_value = 8 if self.config.optimization.uses_fixed_point else 4
        num_bytes = count * dims.embedding_dim * bytes_per_value
        self.axi.bytes_transferred += num_bytes
        self.axi.transfer_count += count
        if self.axi.telemetry is not None:
            # Mirror into the telemetry counters so they stay equal to the
            # port's own counters (the per-transfer hook in read_cycles is
            # bypassed here by design).
            metrics = self.axi.telemetry.metrics
            metrics.counter(
                "repro_axi_bytes_total", port=self.axi.name, op="read"
            ).inc(num_bytes)
            metrics.counter(
                "repro_axi_transfers_total", port=self.axi.name, op="read"
            ).inc(count)

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------

    def timing(self) -> KernelTiming:
        dims = self.config.dimensions
        bytes_per_value = 8 if self.config.optimization.uses_fixed_point else 4
        fetch_cycles = self.axi.read_cycles(dims.embedding_dim * bytes_per_value)

        if self.config.optimization.uses_ii_pragmas:
            copy_pragmas = PragmaSet(pipeline=True, target_ii=1, unroll=4, array_partition=True)
        else:
            copy_pragmas = VANILLA_PRAGMAS
        copy_loop = HlsLoop(
            name="embedding_copy",
            trip_count=dims.embedding_dim * self.config.num_gate_cus,
            iteration_depth=4,
            pragmas=copy_pragmas,
            unroll_depth_penalty=0,  # pure data movement: no arithmetic tree
        )
        nest = LoopNest(name=self.name, loops=(copy_loop,))
        latency = nest.latency_cycles + fetch_cycles
        return KernelTiming(
            kernel=self.name,
            fill_latency_cycles=latency,
            steady_ii_cycles=latency,
        )
