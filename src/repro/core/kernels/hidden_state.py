"""``kernel_hidden_state`` — cell update, hidden state, and FC head.

Per Section III-B, this kernel receives ``i_t``, ``f_t``, ``o_t``, ``C'_t``
and produces ``h_t``, keeping the cell state ``C_t`` *entirely inside the
kernel* ("in contrast to contending with the additional overhead associated
with passing C_t to another kernel").  It also owns the fully-connected
classification layer, applied once "a static counter" shows the whole
sequence has been processed, and fans ``h_t`` out to per-CU copies for the
next item's gate computations (Section III-C).

Timing structure (H = 32 element-wise lanes):

* **Vanilla** — the update loop body contains softsign's divide, which is
  too entangled for default scheduling: the loop runs unpipelined and its
  trip count multiplies the full ~44-cycle chain.  This is the dominant
  bar of Fig. 3's vanilla stack.
* **II-optimised** — ``PIPELINE II=1`` works here (no loop-carried
  dependency between lanes), but the shared floating-point divider is not
  fully pipelined, capping the achieved II at the divider's issue rate.
  Still a ~2.5x cut — "II minimization reduced the execution time of
  kernel_hidden_state by a relatively wide margin".
* **Fixed-point** — single-cycle integer lanes, but the 10^6 decimal
  scale forces wide integer divides (product rescale + softsign
  denominator), whose issue rate now caps the II; a further ~30% cut.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import EngineConfig
from repro.core.kernels.base import Kernel, KernelTiming
from repro.core.weights import HostWeights, QuantizedHostWeights
from repro.fixedpoint.activations import qsigmoid, qsoftsign
from repro.fixedpoint.ops import operand_bound, qadd, qmatvec, qmul
from repro.hw.hls import FIXED_OPS, FLOAT_OPS, HlsLoop, LoopNest, PragmaSet, VANILLA_PRAGMAS
from repro.nn.activations import sigmoid as float_sigmoid
from repro.nn.activations import softsign as float_softsign


class HiddenStateKernel(Kernel):
    """Cell/hidden state update plus the classification epilogue."""

    name = "kernel_hidden_state"

    def __init__(self, config: EngineConfig):
        super().__init__(config)
        self._weights: HostWeights | None = None
        self._quantized: QuantizedHostWeights | None = None
        self._cell: np.ndarray | None = None
        self._counter = 0  # the paper's "static counter"
        self._fc_bound: float | None = None  # static FC-weight screen bound

    # ------------------------------------------------------------------
    # Function
    # ------------------------------------------------------------------

    def load_weights(self, weights: HostWeights, quantized: QuantizedHostWeights | None) -> None:
        """Receive the FC layer parameters from the host program."""
        self._weights = weights
        if self.config.optimization.uses_fixed_point:
            if quantized is None:
                raise ValueError("fixed-point mode requires quantised weights")
            self._quantized = quantized
            self._fc_bound = operand_bound(quantized.fc_weights)
        self.reset()

    def reset(self, batch_size: int | None = None) -> None:
        """Zero the cell state and item counter (start of a sequence).

        With ``batch_size=None`` the cell keeps the streaming ``(H,)``
        shape used by :meth:`run`; an integer allocates a ``(batch, H)``
        cell for :meth:`run_batch`.
        """
        hidden = self.config.dimensions.hidden_size
        dtype = np.int64 if self.config.optimization.uses_fixed_point else np.float64
        shape = hidden if batch_size is None else (batch_size, hidden)
        self._cell = np.zeros(shape, dtype=dtype)
        self._counter = 0

    @property
    def items_processed(self) -> int:
        return self._counter

    def run(self, gates: dict) -> tuple:
        """Consume one item's gate outputs; produce ``h_t`` copies.

        Parameters
        ----------
        gates:
            Dict with keys ``i``, ``f``, ``o``, ``c`` from
            :class:`~repro.core.kernels.gates.GatesKernel`.

        Returns
        -------
        tuple
            ``(hidden_copies, prediction)`` — a list of per-CU copies of
            ``h_t``, and the classification probability if this item
            completed the sequence (else ``None``).
        """
        if self._cell is None:
            raise RuntimeError("load_weights must be called before run")
        fixed = self.config.optimization.uses_fixed_point
        i_t, f_t, o_t, c_bar = gates["i"], gates["f"], gates["o"], gates["c"]

        if fixed:
            fmt = self._quantized.fmt
            self._cell = qadd(qmul(f_t, self._cell, fmt), qmul(i_t, c_bar, fmt))
            hidden = qmul(o_t, qsoftsign(self._cell, fmt), fmt)
        else:
            self._cell = f_t * self._cell + i_t * c_bar
            hidden = o_t * float_softsign(self._cell)

        self._counter += 1
        prediction = None
        if self._counter >= self.config.dimensions.sequence_length:
            prediction = self._classify(hidden)

        copies = [hidden.copy() for _ in range(self.config.num_gate_cus)]
        return copies, prediction

    def run_batch(self, gates: dict) -> tuple:
        """Consume one timestep's gate outputs for a whole batch.

        Same update as :meth:`run` with every operand shaped ``(N, H)``
        (the cell must have been allocated with ``reset(batch_size=N)``).
        All arithmetic is element-wise, so each row is bit-identical to the
        sequential update of that sequence.

        Returns
        -------
        tuple
            ``(hidden, predictions)`` — the ``(N, H)`` hidden state, and
            the ``(N,)`` classification probabilities if this timestep
            completed the sequences (else ``None``).
        """
        if self._cell is None:
            raise RuntimeError("load_weights must be called before run_batch")
        fixed = self.config.optimization.uses_fixed_point
        i_t, f_t, o_t, c_bar = gates["i"], gates["f"], gates["o"], gates["c"]

        if fixed:
            fmt = self._quantized.fmt
            self._cell = qadd(qmul(f_t, self._cell, fmt), qmul(i_t, c_bar, fmt))
            hidden = qmul(o_t, qsoftsign(self._cell, fmt), fmt)
        else:
            self._cell = f_t * self._cell + i_t * c_bar
            hidden = o_t * float_softsign(self._cell)

        self._counter += 1
        predictions = None
        if self._counter >= self.config.dimensions.sequence_length:
            predictions = self.classify_batch(hidden)
        return hidden, predictions

    def step_batch(self, gates: dict, cell: np.ndarray) -> tuple:
        """Stateless cell/hidden update over caller-owned ``(N, H)`` state.

        Identical arithmetic to :meth:`run_batch`, but the cell state is
        an argument and the new state is returned instead of stored — no
        internal ``_cell``/``_counter`` mutation, no classification.
        This lets the streaming session layer step arbitrary row subsets
        (many streams, many partial windows) while staying bit-identical
        to the sequential update of each window: every operation here is
        element-wise per row.

        Returns
        -------
        tuple
            ``(hidden, new_cell)`` — both ``(N, H)``, freshly allocated.
        """
        if self._weights is None:
            raise RuntimeError("load_weights must be called before step_batch")
        i_t, f_t, o_t, c_bar = gates["i"], gates["f"], gates["o"], gates["c"]
        if self.config.optimization.uses_fixed_point:
            fmt = self._quantized.fmt
            new_cell = qadd(qmul(f_t, cell, fmt), qmul(i_t, c_bar, fmt))
            hidden = qmul(o_t, qsoftsign(new_cell, fmt), fmt)
        else:
            new_cell = f_t * cell + i_t * c_bar
            hidden = o_t * float_softsign(new_cell)
        return hidden, new_cell

    def _classify(self, hidden: np.ndarray) -> float:
        """Map the final hidden state to a ransomware probability."""
        return float(self.classify_batch(hidden[np.newaxis, :])[0])

    def classify_batch(self, hidden: np.ndarray) -> np.ndarray:
        """FC head + sigmoid over a ``(N, H)`` batch of final hidden states.

        The sequential :meth:`_classify` routes through this with ``N=1``:
        the fixed-point path is exact by construction (int64 dot products),
        and the float path uses the same ``np.sum`` reduction for every
        batch size, so per-row results are bit-identical either way.
        """
        if self.config.optimization.uses_fixed_point:
            fmt = self._quantized.fmt
            logits = qadd(
                qmatvec(hidden, self._quantized.fc_weights, fmt,
                        vector_bound=self._fc_bound),
                self._quantized.fc_bias,
            )
            return np.asarray(
                fmt.dequantize(qsigmoid(np.asarray(logits, dtype=np.int64), fmt)),
                dtype=np.float64,
            )
        logits = (
            np.sum(self._weights.fc_weights * hidden, axis=-1)
            + self._weights.fc_bias
        )
        return float_sigmoid(logits)

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------

    def _update_chain_depth(self, fixed: bool) -> int:
        """Critical path of one lane: f*C + i*C', softsign, o* multiply."""
        ops = FIXED_OPS if fixed else FLOAT_OPS
        softsign_depth = ops["abs"].depth if fixed else 0
        softsign_depth += ops["add"].depth + ops["div"].depth
        return ops["mul"].depth + ops["add"].depth + softsign_depth + ops["mul"].depth

    def timing(self) -> KernelTiming:
        dims = self.config.dimensions
        opt = self.config.optimization
        fixed = opt.uses_fixed_point
        ops = FIXED_OPS if fixed else FLOAT_OPS

        if opt.uses_ii_pragmas:
            update = HlsLoop(
                name="cell_update",
                trip_count=dims.hidden_size,
                iteration_depth=self._update_chain_depth(fixed),
                pragmas=PragmaSet(pipeline=True, target_ii=1, array_partition=True),
                shared_unit_ii=ops["div"].ii,  # the divider caps the II
            )
            copy_pragmas = PragmaSet(pipeline=True, target_ii=1, unroll=4, array_partition=True)
        else:
            update = HlsLoop(
                name="cell_update",
                trip_count=dims.hidden_size,
                iteration_depth=self._update_chain_depth(fixed),
                pragmas=PragmaSet(pipeline=False),  # divide-laden body: unpipelined
            )
            copy_pragmas = VANILLA_PRAGMAS
        copy_loop = HlsLoop(
            name="hidden_copy",
            trip_count=dims.hidden_size * self.config.num_gate_cus,
            iteration_depth=4,
            pragmas=copy_pragmas,
            unroll_depth_penalty=0,
        )
        nest = LoopNest(name=self.name, loops=(update, copy_loop))
        latency = nest.latency_cycles
        return KernelTiming(
            kernel=self.name,
            fill_latency_cycles=latency,
            steady_ii_cycles=latency,
        )

    def classification_cycles(self) -> int:
        """One-time FC epilogue cost, charged at the end of a sequence."""
        dims = self.config.dimensions
        if self.config.optimization.uses_fixed_point:
            return (
                FIXED_OPS["mul"].depth
                + 6 * FIXED_OPS["add"].depth  # adder tree over 32 lanes
                + FIXED_OPS["div"].depth
                + 4  # PLAN sigmoid
            )
        mac = HlsLoop(
            name="fc_mac",
            trip_count=dims.hidden_size,
            iteration_depth=FLOAT_OPS["mul"].depth + FLOAT_OPS["add"].depth,
            pragmas=PragmaSet(pipeline=True, target_ii=1),
            carried_dependency_ii=FLOAT_OPS["add"].depth,
        )
        return mac.latency_cycles + 16  # + PLAN sigmoid epilogue
