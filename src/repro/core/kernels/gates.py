"""``kernel_gates`` — the i/f/o/C' gate computations (paper Section III-B).

Each of the four compute units evaluates one gate:
``act(W_g [h_{t-1}, x_t] + b_g)`` — sigmoid for i/f/o, softsign for the
candidate C' (the deployed tanh replacement).  The CUs run in parallel
(Section III-C), so the stage's duration is the *maximum* over CUs; with
fewer CUs than gates (the CU-count ablation) each CU evaluates its share
of gates back to back.

Timing structure per CU (one gate, H=32 outputs over F=H+O=40 inputs):

* **Vanilla** — the input loop is pipelined with 32 parallel partial
  accumulators, but the floating-point accumulation carries a loop
  dependency, so the achieved II is the fadd latency (8 cycles).
* **II-optimised** — ``UNROLL factor=4`` + complete ``ARRAY_PARTITION``.
  Unrolling deepens the iteration with a float adder tree, and completely
  partitioning the 1,280-element weight buffer into fabric registers
  builds mux trees wide enough that the scheduler's achieved II *worsens*
  — a well-documented HLS pathology for large complete partitions, and
  the reason the gates bar in Fig. 3 grows at the II rung.  (The paper's
  text only credits II minimisation for ``kernel_hidden_state``, which
  matches.)
* **Fixed-point** — every MAC maps onto a DSP slice with dedicated
  cascade paths (no fabric muxing), the integer accumulator has
  single-cycle latency, and the whole 32 x 40 mat-vec unrolls spatially
  across 1,280 DSPs per CU (4 x 1,280 = 5,120 of the u200's 6,840).  The
  datapath initiates every cycle, so HLS reports the per-item execution
  time as the initiation interval: one cycle.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.config import EngineConfig, GATE_NAMES
from repro.core.kernels.base import Kernel, KernelTiming
from repro.core.weights import HostWeights, QuantizedHostWeights
from repro.fixedpoint.activations import qsigmoid, qsoftsign
from repro.fixedpoint.ops import qaffine
from repro.hw.hls import DataflowRegion, FIXED_OPS, FLOAT_OPS, HlsLoop, LoopNest, PragmaSet

#: Activation used by each gate in the deployed design.
GATE_ACTIVATIONS = {"i": "sigmoid", "f": "sigmoid", "o": "sigmoid", "c": "softsign"}

#: Depth of the PLAN piecewise-linear sigmoid / softsign epilogue stage.
_FLOAT_ACTIVATION_DEPTH = 16
_FIXED_ACTIVATION_DEPTH = 4

#: Elements a complete-partitioned fabric buffer can mux per cycle; larger
#: partitions inflate the achieved II (the Fig. 3 gates regression).
_PARTITION_MUX_CAPACITY = 32


def _float_sigmoid(x: np.ndarray) -> np.ndarray:
    from repro.nn.activations import sigmoid

    return sigmoid(x)


def _float_softsign(x: np.ndarray) -> np.ndarray:
    from repro.nn.activations import softsign

    return softsign(x)


class GatesKernel(Kernel):
    """All ``kernel_gates`` compute units of the engine."""

    name = "kernel_gates"

    def __init__(self, config: EngineConfig):
        super().__init__(config)
        self._weights: HostWeights | None = None
        self._quantized: QuantizedHostWeights | None = None

    # ------------------------------------------------------------------
    # Function
    # ------------------------------------------------------------------

    def load_weights(self, weights: HostWeights, quantized: QuantizedHostWeights | None) -> None:
        """Receive gate matrices and biases from the host program."""
        self._weights = weights
        if self.config.optimization.uses_fixed_point:
            if quantized is None:
                raise ValueError("fixed-point mode requires quantised weights")
            self._quantized = quantized

    def run(self, hidden_prev: np.ndarray, embedding_copies: list) -> dict:
        """Evaluate all four gates for one item.

        Parameters
        ----------
        hidden_prev:
            ``h_{t-1}`` — float64 (vanilla/II) or quantised int64
            (fixed-point), shape ``(H,)``.
        embedding_copies:
            The per-CU embedding copies produced by ``kernel_preprocess``;
            one per CU.  Each CU consumes its own copy, as in the paper.

        Returns
        -------
        dict
            Gate name → activated vector (``i``, ``f``, ``o``, ``c``).
        """
        if len(embedding_copies) != self.config.num_gate_cus:
            raise ValueError(
                f"expected {self.config.num_gate_cus} embedding copies, got "
                f"{len(embedding_copies)}"
            )
        fixed = self.config.optimization.uses_fixed_point
        outputs = {}
        for index, gate in enumerate(GATE_NAMES):
            cu_index = index % self.config.num_gate_cus
            x_t = embedding_copies[cu_index]
            concatenated = np.concatenate([hidden_prev, x_t])
            if fixed:
                params = self._quantized.gates[gate]
                pre = qaffine(params.matrix, concatenated, params.bias, self._quantized.fmt)
                if GATE_ACTIVATIONS[gate] == "sigmoid":
                    outputs[gate] = qsigmoid(pre, self._quantized.fmt)
                else:
                    outputs[gate] = qsoftsign(pre, self._quantized.fmt)
            else:
                params = self._weights.gates[gate]
                pre = params.matrix @ concatenated + params.bias
                if GATE_ACTIVATIONS[gate] == "sigmoid":
                    outputs[gate] = _float_sigmoid(pre)
                else:
                    outputs[gate] = _float_softsign(pre)
        return outputs

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------

    def _single_gate_timing(self) -> KernelTiming:
        """Latency of one gate evaluation on one CU."""
        dims = self.config.dimensions
        fan_in = dims.gate_input_size
        opt = self.config.optimization

        if opt.uses_fixed_point:
            # Full spatial unroll across DSP slices.  The h-side and
            # x-side cascades are independent, so they sit in a DATAFLOW
            # region (Section III-C's pragma) and run concurrently; a join
            # adds the partials, rescales the product, and activates.
            # Initiates every cycle.
            def cascade(name: str, width: int) -> HlsLoop:
                tree_levels = max(1, math.ceil(math.log2(width)))
                return HlsLoop(
                    name=name,
                    trip_count=1,
                    iteration_depth=FIXED_OPS["mul"].depth
                    + tree_levels * FIXED_OPS["add"].depth,
                    pragmas=PragmaSet(pipeline=True, target_ii=1, array_partition=True),
                )

            join = HlsLoop(
                name="join_rescale_activate",
                trip_count=1,
                iteration_depth=FIXED_OPS["add"].depth
                + FIXED_OPS["div"].depth       # rescale by the scale factor
                + _FIXED_ACTIVATION_DEPTH,
                pragmas=PragmaSet(pipeline=True, target_ii=1),
            )
            nest = LoopNest(
                name=self.name,
                loops=(
                    DataflowRegion(
                        name="matvec_dataflow",
                        loops=(
                            cascade("h_cascade", dims.hidden_size),
                            cascade("x_cascade", dims.embedding_dim),
                        ),
                    ),
                    join,
                ),
            )
            return KernelTiming(
                kernel=self.name,
                fill_latency_cycles=nest.latency_cycles,
                steady_ii_cycles=1,
                reports_ii=True,
            )

        mac_depth = FLOAT_OPS["mul"].depth + FLOAT_OPS["add"].depth
        if opt.uses_ii_pragmas:
            weight_elements = dims.hidden_size * fan_in
            mux_ii = math.ceil(weight_elements / _PARTITION_MUX_CAPACITY)
            matvec = HlsLoop(
                name="matvec_stream",
                trip_count=fan_in,
                iteration_depth=mac_depth,
                pragmas=PragmaSet(pipeline=True, target_ii=1, unroll=4, array_partition=True),
                carried_dependency_ii=FLOAT_OPS["add"].depth,
                shared_unit_ii=mux_ii,
                unroll_depth_penalty=FLOAT_OPS["add"].depth,
            )
        else:
            matvec = HlsLoop(
                name="matvec_stream",
                trip_count=fan_in,
                iteration_depth=mac_depth,
                pragmas=PragmaSet(pipeline=True, target_ii=1),
                carried_dependency_ii=FLOAT_OPS["add"].depth,
                memory_accesses_per_iteration=2,  # h/x element reads; weights stream via AXI
            )
        activation = HlsLoop(
            name="activation",
            trip_count=1,  # all H lanes activate in parallel registers
            iteration_depth=_FLOAT_ACTIVATION_DEPTH,
        )
        nest = LoopNest(name=self.name, loops=(matvec, activation))
        return KernelTiming(
            kernel=self.name,
            fill_latency_cycles=nest.latency_cycles,
            steady_ii_cycles=matvec.steady_state_ii,
        )

    def timing(self) -> KernelTiming:
        """Stage timing: max over CUs, times the gates each CU serialises.

        With 4 CUs each runs one gate and the stage costs one gate's
        latency; with 1 CU all four gates serialise onto it.
        """
        single = self._single_gate_timing()
        serial_factor = self.config.gates_per_cu
        return KernelTiming(
            kernel=self.name,
            fill_latency_cycles=single.fill_latency_cycles * serial_factor,
            steady_ii_cycles=single.steady_ii_cycles * serial_factor,
            reports_ii=single.reports_ii,
        )
