"""``kernel_gates`` — the i/f/o/C' gate computations (paper Section III-B).

Each of the four compute units evaluates one gate:
``act(W_g [h_{t-1}, x_t] + b_g)`` — sigmoid for i/f/o, softsign for the
candidate C' (the deployed tanh replacement).  The CUs run in parallel
(Section III-C), so the stage's duration is the *maximum* over CUs; with
fewer CUs than gates (the CU-count ablation) each CU evaluates its share
of gates back to back.

Timing structure per CU (one gate, H=32 outputs over F=H+O=40 inputs):

* **Vanilla** — the input loop is pipelined with 32 parallel partial
  accumulators, but the floating-point accumulation carries a loop
  dependency, so the achieved II is the fadd latency (8 cycles).
* **II-optimised** — ``UNROLL factor=4`` + complete ``ARRAY_PARTITION``.
  Unrolling deepens the iteration with a float adder tree, and completely
  partitioning the 1,280-element weight buffer into fabric registers
  builds mux trees wide enough that the scheduler's achieved II *worsens*
  — a well-documented HLS pathology for large complete partitions, and
  the reason the gates bar in Fig. 3 grows at the II rung.  (The paper's
  text only credits II minimisation for ``kernel_hidden_state``, which
  matches.)
* **Fixed-point** — every MAC maps onto a DSP slice with dedicated
  cascade paths (no fabric muxing), the integer accumulator has
  single-cycle latency, and the whole 32 x 40 mat-vec unrolls spatially
  across 1,280 DSPs per CU (4 x 1,280 = 5,120 of the u200's 6,840).  The
  datapath initiates every cycle, so HLS reports the per-item execution
  time as the initiation interval: one cycle.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.config import EngineConfig, GATE_NAMES
from repro.core.kernels.base import Kernel, KernelTiming
from repro.core.weights import HostWeights, QuantizedHostWeights
from repro.fixedpoint.activations import qsigmoid, qsoftsign
from repro.fixedpoint.ops import operand_bound, qadd, qaffine, qmatmul
from repro.hw.hls import DataflowRegion, FIXED_OPS, FLOAT_OPS, HlsLoop, LoopNest, PragmaSet

#: Activation used by each gate in the deployed design.
GATE_ACTIVATIONS = {"i": "sigmoid", "f": "sigmoid", "o": "sigmoid", "c": "softsign"}

#: Depth of the PLAN piecewise-linear sigmoid / softsign epilogue stage.
_FLOAT_ACTIVATION_DEPTH = 16
_FIXED_ACTIVATION_DEPTH = 4

#: Elements a complete-partitioned fabric buffer can mux per cycle; larger
#: partitions inflate the achieved II (the Fig. 3 gates regression).
_PARTITION_MUX_CAPACITY = 32


def _float_sigmoid(x: np.ndarray) -> np.ndarray:
    from repro.nn.activations import sigmoid

    return sigmoid(x)


def _float_softsign(x: np.ndarray) -> np.ndarray:
    from repro.nn.activations import softsign

    return softsign(x)


def _affine_rows(matrix: np.ndarray, rows: np.ndarray, bias: np.ndarray) -> np.ndarray:
    """Float affine ``rows @ matrix.T + bias`` with a batch-stable reduction.

    ``np.sum``'s pairwise reduction over the last axis depends only on the
    fan-in, so row ``n`` of the result is bit-identical whether computed in
    a batch of 1 or of N.  BLAS gives no such guarantee — ``matrix @ vector``
    (gemv) and ``matrix @ batch`` (gemm) round differently — so both the
    sequential and batched float gate paths route through this helper to
    keep :meth:`GatesKernel.run_batch` exactly equal to :meth:`GatesKernel.run`.
    """
    return np.sum(matrix[np.newaxis, :, :] * rows[:, np.newaxis, :], axis=2) + bias


class GatesKernel(Kernel):
    """All ``kernel_gates`` compute units of the engine."""

    name = "kernel_gates"

    def __init__(self, config: EngineConfig):
        super().__init__(config)
        self._weights: HostWeights | None = None
        self._quantized: QuantizedHostWeights | None = None
        # Stacked (4H, H+E) weight matrix / (4H,) bias in GATE_NAMES order,
        # built at load time for the batched path.
        self._stacked_float: tuple | None = None
        self._stacked_fixed: tuple | None = None
        # Static overflow-screen bounds (max|W|): the weights never change
        # after load, so screening them per timestep is pure overhead.
        self._stacked_fixed_bound: float | None = None
        self._gate_bounds: dict = {}
        # Reusable [h_{t-1}, x_t] concat buffer for run_batch; reallocated
        # only when the batch shape or dtype changes.
        self._concat_batch: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Function
    # ------------------------------------------------------------------

    def load_weights(self, weights: HostWeights, quantized: QuantizedHostWeights | None) -> None:
        """Receive gate matrices and biases from the host program."""
        self._weights = weights
        self._stacked_float = (
            np.concatenate([weights.gates[g].matrix for g in GATE_NAMES], axis=0),
            np.concatenate([weights.gates[g].bias for g in GATE_NAMES]),
        )
        if self.config.optimization.uses_fixed_point:
            if quantized is None:
                raise ValueError("fixed-point mode requires quantised weights")
            self._quantized = quantized
            self._stacked_fixed = (
                np.concatenate([quantized.gates[g].matrix for g in GATE_NAMES], axis=0),
                np.concatenate([quantized.gates[g].bias for g in GATE_NAMES]),
            )
            # Screen the static weight operands exactly once, here.
            self._stacked_fixed_bound = operand_bound(self._stacked_fixed[0])
            self._gate_bounds = {
                g: operand_bound(quantized.gates[g].matrix) for g in GATE_NAMES
            }

    def run(self, hidden_prev: np.ndarray, embedding_copies: list) -> dict:
        """Evaluate all four gates for one item.

        Parameters
        ----------
        hidden_prev:
            ``h_{t-1}`` — float64 (vanilla/II) or quantised int64
            (fixed-point), shape ``(H,)``.
        embedding_copies:
            The per-CU embedding copies produced by ``kernel_preprocess``;
            one per CU.  Each CU consumes its own copy, as in the paper.

        Returns
        -------
        dict
            Gate name → activated vector (``i``, ``f``, ``o``, ``c``).
        """
        if len(embedding_copies) != self.config.num_gate_cus:
            raise ValueError(
                f"expected {self.config.num_gate_cus} embedding copies, got "
                f"{len(embedding_copies)}"
            )
        fixed = self.config.optimization.uses_fixed_point
        outputs = {}
        for index, gate in enumerate(GATE_NAMES):
            cu_index = index % self.config.num_gate_cus
            x_t = embedding_copies[cu_index]
            concatenated = np.concatenate([hidden_prev, x_t])
            if fixed:
                params = self._quantized.gates[gate]
                pre = qaffine(params.matrix, concatenated, params.bias,
                              self._quantized.fmt,
                              matrix_bound=self._gate_bounds[gate])
                if GATE_ACTIVATIONS[gate] == "sigmoid":
                    outputs[gate] = qsigmoid(pre, self._quantized.fmt)
                else:
                    outputs[gate] = qsoftsign(pre, self._quantized.fmt)
            else:
                params = self._weights.gates[gate]
                pre = _affine_rows(params.matrix, concatenated[np.newaxis, :], params.bias)[0]
                if GATE_ACTIVATIONS[gate] == "sigmoid":
                    outputs[gate] = _float_sigmoid(pre)
                else:
                    outputs[gate] = _float_softsign(pre)
        return outputs

    def run_batch(self, hidden_prev: np.ndarray, x_t: np.ndarray) -> dict:
        """Evaluate all four gates for one timestep of a whole batch.

        The four per-gate CU affines collapse into a single stacked
        ``(4H, H+E)`` product against the ``(N, H+E)`` concatenated inputs
        — one matmul per timestep instead of ``4 N`` mat-vecs.  Results are
        bit-exact with :meth:`run` applied row by row: the fixed-point path
        accumulates the identical int64 dot products before the single
        rescale, and the float path shares :func:`_affine_rows`' batch-
        stable reduction.

        Parameters
        ----------
        hidden_prev:
            ``h_{t-1}`` for every sequence, shape ``(N, H)``.
        x_t:
            This timestep's embeddings, shape ``(N, E)``.

        Returns
        -------
        dict
            Gate name → activated ``(N, H)`` array.
        """
        hidden_size = self.config.dimensions.hidden_size
        concatenated = self._concatenated_batch(hidden_prev, x_t)
        if self.config.optimization.uses_fixed_point:
            if self._stacked_fixed is None:
                raise RuntimeError("load_weights must be called before run_batch")
            stacked, bias = self._stacked_fixed
            fmt = self._quantized.fmt
            pre = qadd(
                qmatmul(concatenated, stacked.T, fmt,
                        b_bound=self._stacked_fixed_bound),
                bias,
            )
            activate = {"sigmoid": qsigmoid, "softsign": qsoftsign}
            return {
                gate: activate[GATE_ACTIVATIONS[gate]](
                    pre[:, index * hidden_size:(index + 1) * hidden_size], fmt
                )
                for index, gate in enumerate(GATE_NAMES)
            }
        if self._stacked_float is None:
            raise RuntimeError("load_weights must be called before run_batch")
        stacked, bias = self._stacked_float
        pre = _affine_rows(stacked, concatenated, bias)
        activate = {"sigmoid": _float_sigmoid, "softsign": _float_softsign}
        return {
            gate: activate[GATE_ACTIVATIONS[gate]](
                pre[:, index * hidden_size:(index + 1) * hidden_size]
            )
            for index, gate in enumerate(GATE_NAMES)
        }

    def _concatenated_batch(self, hidden_prev: np.ndarray, x_t: np.ndarray) -> np.ndarray:
        """``[h_{t-1}, x_t]`` written into a reused ``(N, H+E)`` buffer.

        One allocation per batch shape instead of one per timestep; the
        values are copied element-for-element, so downstream results are
        bit-identical to a fresh ``np.concatenate``.  The buffer is only
        read within the same ``run_batch`` call, never retained by
        downstream kernels.
        """
        dims = self.config.dimensions
        shape = (hidden_prev.shape[0], dims.gate_input_size)
        buffer = self._concat_batch
        if buffer is None or buffer.shape != shape or buffer.dtype != hidden_prev.dtype:
            buffer = np.empty(shape, dtype=hidden_prev.dtype)
            self._concat_batch = buffer
        buffer[:, :dims.hidden_size] = hidden_prev
        buffer[:, dims.hidden_size:] = x_t
        return buffer

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------

    def _single_gate_timing(self) -> KernelTiming:
        """Latency of one gate evaluation on one CU."""
        dims = self.config.dimensions
        fan_in = dims.gate_input_size
        opt = self.config.optimization

        if opt.uses_fixed_point:
            # Full spatial unroll across DSP slices.  The h-side and
            # x-side cascades are independent, so they sit in a DATAFLOW
            # region (Section III-C's pragma) and run concurrently; a join
            # adds the partials, rescales the product, and activates.
            # Initiates every cycle.
            def cascade(name: str, width: int) -> HlsLoop:
                tree_levels = max(1, math.ceil(math.log2(width)))
                return HlsLoop(
                    name=name,
                    trip_count=1,
                    iteration_depth=FIXED_OPS["mul"].depth
                    + tree_levels * FIXED_OPS["add"].depth,
                    pragmas=PragmaSet(pipeline=True, target_ii=1, array_partition=True),
                )

            join = HlsLoop(
                name="join_rescale_activate",
                trip_count=1,
                iteration_depth=FIXED_OPS["add"].depth
                + FIXED_OPS["div"].depth       # rescale by the scale factor
                + _FIXED_ACTIVATION_DEPTH,
                pragmas=PragmaSet(pipeline=True, target_ii=1),
            )
            nest = LoopNest(
                name=self.name,
                loops=(
                    DataflowRegion(
                        name="matvec_dataflow",
                        loops=(
                            cascade("h_cascade", dims.hidden_size),
                            cascade("x_cascade", dims.embedding_dim),
                        ),
                    ),
                    join,
                ),
            )
            return KernelTiming(
                kernel=self.name,
                fill_latency_cycles=nest.latency_cycles,
                steady_ii_cycles=1,
                reports_ii=True,
            )

        mac_depth = FLOAT_OPS["mul"].depth + FLOAT_OPS["add"].depth
        if opt.uses_ii_pragmas:
            weight_elements = dims.hidden_size * fan_in
            mux_ii = math.ceil(weight_elements / _PARTITION_MUX_CAPACITY)
            matvec = HlsLoop(
                name="matvec_stream",
                trip_count=fan_in,
                iteration_depth=mac_depth,
                pragmas=PragmaSet(pipeline=True, target_ii=1, unroll=4, array_partition=True),
                carried_dependency_ii=FLOAT_OPS["add"].depth,
                shared_unit_ii=mux_ii,
                unroll_depth_penalty=FLOAT_OPS["add"].depth,
            )
        else:
            matvec = HlsLoop(
                name="matvec_stream",
                trip_count=fan_in,
                iteration_depth=mac_depth,
                pragmas=PragmaSet(pipeline=True, target_ii=1),
                carried_dependency_ii=FLOAT_OPS["add"].depth,
                memory_accesses_per_iteration=2,  # h/x element reads; weights stream via AXI
            )
        activation = HlsLoop(
            name="activation",
            trip_count=1,  # all H lanes activate in parallel registers
            iteration_depth=_FLOAT_ACTIVATION_DEPTH,
        )
        nest = LoopNest(name=self.name, loops=(matvec, activation))
        return KernelTiming(
            kernel=self.name,
            fill_latency_cycles=nest.latency_cycles,
            steady_ii_cycles=matvec.steady_state_ii,
        )

    def timing(self) -> KernelTiming:
        """Stage timing: max over CUs, times the gates each CU serialises.

        With 4 CUs each runs one gate and the stage costs one gate's
        latency; with 1 CU all four gates serialise onto it.
        """
        single = self._single_gate_timing()
        serial_factor = self.config.gates_per_cu
        return KernelTiming(
            kernel=self.name,
            fill_latency_cycles=single.fill_latency_cycles * serial_factor,
            steady_ii_cycles=single.steady_ii_cycles * serial_factor,
            reports_ii=single.reports_ii,
        )
