"""Host-side weight preparation.

The host program "ingests this text file amid initializing the FPGA"
(Section III-A): it loads the offline-trained parameters, re-arranges them
into the per-gate layout the kernels consume, and — when the engine runs
in fixed-point mode — quantises everything by the scale factor *before*
initialisation ("We multiply the floating-point values of weights, biases,
and embeddings by this factor before the host initialization shown in
Fig. 2", Section III-D).

Kernel-facing layout: each gate ``g`` owns a matrix ``W_g`` of shape
``(H, H + O)`` acting on the concatenated column ``[h_{t-1}, x_t]`` (the
paper writes the gates as ``W [h_{t-1}, x_t] + b``), plus a bias ``b_g`` of
shape ``(H,)``.  These are derived from the Keras-layout arrays stored in
the weight file (``W_x`` of shape ``(O, 4H)`` packed ``[i, f, c, o]``).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.config import ModelDimensions
from repro.fixedpoint.qformat import QFormat
from repro.nn.model import SequenceClassifier
from repro.nn.serialization import load_weights

#: Keras gate packing order along the 4H axis of W_x / W_h / b.
_KERAS_GATE_ORDER = ("i", "f", "c", "o")


@dataclasses.dataclass(frozen=True)
class GateWeights:
    """One gate's kernel-facing parameters."""

    name: str
    matrix: np.ndarray   # (H, H+O), acts on [h_{t-1}, x_t]
    bias: np.ndarray     # (H,)


class HostWeights:
    """All parameters in the layout the CSD kernels consume.

    Use :meth:`from_model` (straight from a trained
    :class:`~repro.nn.model.SequenceClassifier`) or :meth:`from_file`
    (from the text weight file, the paper's deployment path).
    """

    def __init__(
        self,
        embedding: np.ndarray,
        gate_weights: dict,
        fc_weights: np.ndarray,
        fc_bias: float,
    ):
        self.embedding = np.asarray(embedding, dtype=np.float64)
        if self.embedding.ndim != 2:
            raise ValueError(f"embedding must be 2-D, got shape {self.embedding.shape}")
        self.gates = dict(gate_weights)
        if set(self.gates) != set(_KERAS_GATE_ORDER):
            raise ValueError(
                f"expected gates {_KERAS_GATE_ORDER}, got {sorted(self.gates)}"
            )
        self.fc_weights = np.asarray(fc_weights, dtype=np.float64).reshape(-1)
        self.fc_bias = float(fc_bias)

        hidden = self.gates["i"].matrix.shape[0]
        if self.fc_weights.shape[0] != hidden:
            raise ValueError(
                f"FC weights ({self.fc_weights.shape[0]}) must match hidden "
                f"size ({hidden})"
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @staticmethod
    def _from_arrays(arrays: dict) -> "HostWeights":
        embedding = arrays["embedding"]
        w_x = arrays["lstm_W_x"]      # (O, 4H)
        w_h = arrays["lstm_W_h"]      # (H, 4H)
        bias = arrays["lstm_b"]       # (4H,)
        hidden = w_h.shape[0]
        if w_x.shape[1] != 4 * hidden or bias.shape[0] != 4 * hidden:
            raise ValueError(
                f"inconsistent LSTM shapes: W_x {w_x.shape}, W_h {w_h.shape}, "
                f"b {bias.shape}"
            )
        gates = {}
        for index, gate in enumerate(_KERAS_GATE_ORDER):
            lo, hi = index * hidden, (index + 1) * hidden
            # Keras computes x @ W_x[:, lo:hi] + h @ W_h[:, lo:hi]; as a
            # matrix on the column [h, x] that is [W_h_g^T | W_x_g^T].
            matrix = np.concatenate([w_h[:, lo:hi].T, w_x[:, lo:hi].T], axis=1)
            gates[gate] = GateWeights(name=gate, matrix=matrix, bias=bias[lo:hi].copy())
        return HostWeights(
            embedding=embedding,
            gate_weights=gates,
            fc_weights=arrays["fc_W"].reshape(-1),
            fc_bias=float(np.asarray(arrays["fc_b"]).reshape(-1)[0]),
        )

    @classmethod
    def from_model(cls, model: SequenceClassifier) -> "HostWeights":
        """Build directly from a trained in-memory model."""
        table, w_x, w_h, b, fc_w, fc_b = model.get_weights()
        return cls._from_arrays(
            {
                "embedding": table,
                "lstm_W_x": w_x,
                "lstm_W_h": w_h,
                "lstm_b": b,
                "fc_W": fc_w,
                "fc_b": fc_b,
            }
        )

    @classmethod
    def from_file(cls, source) -> "HostWeights":
        """Build from the text weight file (deployment path)."""
        return cls._from_arrays(load_weights(source))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def dimensions(self) -> ModelDimensions:
        """Model dimensions implied by the array shapes."""
        hidden, gate_input = self.gates["i"].matrix.shape
        vocab, embedding_dim = self.embedding.shape
        if gate_input != hidden + embedding_dim:
            raise ValueError(
                f"gate input width {gate_input} inconsistent with hidden "
                f"{hidden} + embedding {embedding_dim}"
            )
        return ModelDimensions(
            vocab_size=vocab, embedding_dim=embedding_dim, hidden_size=hidden
        )

    def total_bytes(self, bytes_per_value: int = 4) -> int:
        """Size of the full parameter download to FPGA DRAM."""
        values = self.embedding.size + sum(
            g.matrix.size + g.bias.size for g in self.gates.values()
        ) + self.fc_weights.size + 1
        return values * bytes_per_value

    # ------------------------------------------------------------------
    # Quantisation
    # ------------------------------------------------------------------

    def quantized(self, fmt: QFormat) -> "QuantizedHostWeights":
        """Quantise every array by the scale factor (Section III-D)."""
        gates = {
            name: QuantizedGateWeights(
                name=name,
                matrix=fmt.quantize(gate.matrix),
                bias=fmt.quantize(gate.bias),
            )
            for name, gate in self.gates.items()
        }
        return QuantizedHostWeights(
            embedding=fmt.quantize(self.embedding),
            gates=gates,
            fc_weights=fmt.quantize(self.fc_weights),
            fc_bias=int(fmt.quantize(self.fc_bias)),
            fmt=fmt,
        )


@dataclasses.dataclass(frozen=True)
class QuantizedGateWeights:
    """Fixed-point counterpart of :class:`GateWeights`."""

    name: str
    matrix: np.ndarray   # int64, (H, H+O)
    bias: np.ndarray     # int64, (H,)


@dataclasses.dataclass(frozen=True)
class QuantizedHostWeights:
    """All parameters pre-scaled to integers for the fixed-point kernels."""

    embedding: np.ndarray   # int64, (M, O)
    gates: dict             # name -> QuantizedGateWeights
    fc_weights: np.ndarray  # int64, (H,)
    fc_bias: int
    fmt: QFormat
